// Command bench is the repo's reproducible perf-trajectory harness: it
// runs the betweenness-centrality kernel through testing.Benchmark under
// fixed seeds and writes a machine-readable report (BENCH_PR7.json by
// default) recording kernel, ns/op, edges/sec, adjacency bytes and
// GOMAXPROCS. Re-running it on the same hardware reproduces the numbers
// a PR quotes; each perf PR appends its own BENCH_PRn.json and compares.
//
// The configuration matrix is the memory-layout ablation: each row adds
// one layout optimization on top of the previous, so the report isolates
// what every step buys:
//
//	baseline                 generator vertex order, raw CSR, heap scratch
//	reorder                  relabeled for locality (-reorder), raw CSR
//	reorder+compact          + delta-varint compressed adjacency (forced)
//	reorder+compact+arena    + arena-backed Brandes scratch
//	reorder+arena (default)  what -reorder degree -compact auto serves:
//	                         the auto policy only compacts when the raw
//	                         adjacency exceeds the memory budget, so at
//	                         bench scales the default stack is relabeled
//	                         raw CSR with arena scratch
//
// The forced-compact rows quantify the capacity trade (adjacency bytes
// roughly halve; throughput pays the per-edge varint decode), and the
// aggregate speedup the report headlines is the shipped default against
// the baseline. All rows run the PR-4 kernel defaults (striped
// accumulation, hybrid direction-optimizing sweeps); the ablation varies
// memory layout only. edges/sec counts NumArcs() once per source per
// iteration — the same convention as BenchmarkCentrality in
// bench_test.go, so the two report comparable throughput.
//
// -guard FILE runs only the full configuration and exits nonzero when
// its BC throughput falls below 80% of the committed report's, which is
// the CI bench-smoke job (scaled guard: CI benches a smaller scale than
// the committed scale-16 report, and smaller working sets only run
// faster, so the one-sided 0.8× bound stays meaningful).
//
// -approx switches to the adaptive approximate-BC ablation (BENCH_PR10):
// one measured full exact run and one adaptive (ε,δ) run on the default
// layout, reported in the same schema with an "approx" block recording
// the guarantee metadata and the wall-clock speedup. The approx row's
// edges/s is the equivalent-exact-work rate (arcs × n / wall time), so
// the two rows' ratios are directly comparable. -approx-guard FILE is
// the CI mode: measure both at the current (small) scale, fail when the
// speedup falls below 3×, and schema-check the committed report; -check
// FILE validates a report without running anything.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"graphct/internal/bc"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

type result struct {
	Kernel          string  `json:"kernel"`
	Layout          string  `json:"layout"`
	NsPerOp         int64   `json:"ns_per_op"`
	EdgesPerSec     float64 `json:"edges_per_sec"`
	Iterations      int     `json:"iterations"`
	AdjBytes        int64   `json:"adj_bytes"`
	MemoryFootprint int64   `json:"memory_footprint"`
}

type report struct {
	Generator        string   `json:"generator"`
	GoMaxProcs       int      `json:"gomaxprocs"`
	NumCPU           int      `json:"num_cpu"`
	GoVersion        string   `json:"go_version"`
	RMATScale        int      `json:"rmat_scale"`
	Vertices         int      `json:"vertices"`
	Arcs             int64    `json:"arcs"`
	Samples          int      `json:"samples"`
	Seed             int64    `json:"seed"`
	Reps             int      `json:"reps"`
	Reorder          string   `json:"reorder"`
	RawAdjBytes      int64    `json:"raw_adj_bytes"`
	CompactAdjBytes  int64    `json:"compact_adj_bytes"`
	CompressionRatio float64  `json:"compression_ratio"`
	AggregateSpeedup float64  `json:"aggregate_speedup"`
	Results          []result `json:"results"`
	// Approx holds the adaptive approximate-BC ablation's guarantee
	// metadata and speedup (-approx mode only).
	Approx *approxInfo `json:"approx,omitempty"`
}

// approxInfo records the adaptive run's (ε,δ) contract and the measured
// exact-vs-adaptive wall-clock comparison.
type approxInfo struct {
	Epsilon        float64 `json:"epsilon"`
	Delta          float64 `json:"delta"`
	SamplesUsed    int     `json:"samples_used"`
	Rounds         int     `json:"rounds"`
	Stopped        bool    `json:"stopped"`
	ExactNs        int64   `json:"exact_ns"`
	ApproxNs       int64   `json:"approx_ns"`
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
}

func main() {
	var (
		scale   = flag.Int("scale", 16, "R-MAT scale (2^scale vertices, paper parameters)")
		samples = flag.Int("samples", 32, "sampled betweenness sources per run")
		seed    = flag.Int64("seed", 1, "generator and sampling seed")
		procs   = flag.Int("procs", 4, "GOMAXPROCS for the runs (acceptance floor is 4)")
		k       = flag.Int("k", 1, "k for the k-betweenness rows (0 skips them)")
		reorder = flag.String("reorder", "degree", "permutation for the reordered rows: degree or bfs")
		guard   = flag.String("guard", "", "CI mode: run only the full configuration and fail if BC edges/s drops below 80% of this committed report")
		out     = flag.String("out", "BENCH_PR7.json", "output path; - for stdout")
		only    = flag.String("only", "", "run a single ablation layout (for profiling); skips the JSON report")
		reps    = flag.Int("reps", 3, "benchmark repetitions per row; the fastest is reported (noise floor)")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")

		approx      = flag.Bool("approx", false, "run the adaptive approximate-BC ablation instead of the layout matrix")
		eps         = flag.Float64("eps", bc.DefaultEpsilon, "adaptive estimator absolute-error bound (approx mode)")
		delta       = flag.Float64("delta", bc.DefaultDelta, "adaptive estimator failure probability (approx mode)")
		approxGuard = flag.String("approx-guard", "", "CI mode: run the approx ablation at -scale, fail if the speedup is under 3x, and schema-check this committed report")
		check       = flag.String("check", "", "validate a committed report's schema and exit (no benchmarks run)")
	)
	flag.Parse()
	if *check != "" {
		if err := checkReport(*check); err != nil {
			fmt.Fprintln(os.Stderr, "bench: -check:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "check: %s ok\n", *check)
		return
	}
	// NumCPU is recorded before the GOMAXPROCS override so the report
	// states the machine's real core count next to the (possibly
	// oversubscribed) worker count the numbers were taken at.
	numCPU := runtime.NumCPU()
	runtime.GOMAXPROCS(*procs)
	if *reps > 0 {
		benchReps = *reps
	}

	kind, err := graph.ParseReorder(*reorder)
	if err != nil || kind == graph.ReorderNone {
		fmt.Fprintf(os.Stderr, "bench: -reorder must be degree or bfs\n")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating R-MAT scale %d (seed %d)...\n", *scale, *seed)
	raw := gen.RMAT(gen.PaperRMAT(*scale, *seed))
	arcs := raw.NumArcs()

	reordered, _, err := graph.Layout{Reorder: kind, Compact: graph.CompactOff}.Apply(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	rep := report{
		Generator:   fmt.Sprintf("cmd/bench -scale %d -samples %d -seed %d -reorder %s", *scale, *samples, *seed, kind),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      numCPU,
		GoVersion:   runtime.Version(),
		RMATScale:   *scale,
		Vertices:    raw.NumVertices(),
		Arcs:        arcs,
		Samples:     *samples,
		Seed:        *seed,
		Reps:        benchReps,
		Reorder:     kind.String(),
		RawAdjBytes: raw.AdjBytes(),
	}

	if *approx || *approxGuard != "" {
		// The approx ablation compares the shipped default layout only;
		// compression fields stay zero (no compaction at scale 18+ for
		// columns the comparison doesn't use).
		rep.Generator = fmt.Sprintf("cmd/bench -approx -scale %d -eps %g -delta %g -seed %d -reorder %s",
			*scale, *eps, *delta, *seed, kind)
		rep.Samples = 0 // the exact row sweeps every source
		runApprox(&rep, reordered, arcs, *eps, *delta, *seed, *out, *approxGuard)
		return
	}

	compact := reordered.Compact()
	rep.CompactAdjBytes = compact.AdjBytes()
	rep.CompressionRatio = float64(raw.AdjBytes()) / float64(compact.AdjBytes())

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	steps := []struct {
		layout  string
		g       *graph.Graph
		scratch bc.Scratch
	}{
		{"baseline", raw, bc.ScratchHeap},
		{"reorder", reordered, bc.ScratchHeap},
		// Forced compression quantifies the capacity trade: adjacency bytes
		// roughly halve, throughput pays the per-edge decode. The auto
		// policy takes this trade only when the raw adjacency exceeds the
		// memory budget, which is why the shipped default below stays raw
		// at bench scales.
		{"reorder+compact", compact, bc.ScratchHeap},
		{"reorder+compact+arena", compact, bc.ScratchAuto},
		// What -reorder degree -compact auto actually serves at this
		// working-set size: relabeled raw CSR with arena scratch.
		{"reorder+arena (default)", reordered, bc.ScratchAuto},
	}
	if *guard != "" {
		steps = steps[len(steps)-1:] // full configuration only
	} else if *only != "" {
		kept := steps[:0]
		for _, st := range steps {
			if st.layout == *only {
				kept = append(kept, st)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "bench: -only: unknown layout %q\n", *only)
			os.Exit(2)
		}
		steps = kept
	}
	for _, st := range steps {
		g, scratch := st.g, st.scratch
		opt := bc.Options{Samples: *samples, Seed: *seed, Scratch: scratch}
		rep.Results = append(rep.Results, run("centrality", st.layout, g, arcs, int64(*samples), func() {
			bc.Centrality(g, opt)
		}))
	}
	if *guard != "" {
		runGuard(*guard, rep.Results[len(rep.Results)-1])
		return
	}
	if *only != "" {
		return // per-run lines already printed; no report for partial matrices
	}
	rep.AggregateSpeedup = rep.Results[len(rep.Results)-1].EdgesPerSec / rep.Results[0].EdgesPerSec
	if *k > 0 {
		// k-betweenness is where scratch churn dominated pre-arena; bench
		// it at both ablation endpoints so the GC-pressure claim is
		// auditable.
		for _, st := range []struct {
			layout  string
			g       *graph.Graph
			scratch bc.Scratch
		}{
			{"baseline", raw, bc.ScratchHeap},
			{"reorder+arena (default)", reordered, bc.ScratchAuto},
		} {
			g := st.g
			opt := bc.Options{K: *k, Samples: *samples, Seed: *seed, Scratch: st.scratch}
			rep.Results = append(rep.Results, run(fmt.Sprintf("kcentrality/k=%d", *k), st.layout, g, arcs, int64(*samples), func() {
				bc.Centrality(g, opt)
			}))
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	table := os.Stdout
	if *out == "-" {
		os.Stdout.Write(enc)
		table = os.Stderr
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	printTable(table, &rep)
}

// printTable renders the ablation as a human-readable stdout table; the
// JSON report stays the machine-readable artifact.
func printTable(w *os.File, rep *report) {
	fmt.Fprintf(w, "\nmemory-layout ablation: R-MAT scale %d, %d arcs, %d samples, GOMAXPROCS=%d\n\n",
		rep.RMATScale, rep.Arcs, rep.Samples, rep.GoMaxProcs)
	fmt.Fprintf(w, "%-22s %-22s %14s %14s %12s %8s\n", "kernel", "layout", "ns/op", "edges/s", "adj bytes", "speedup")
	base := make(map[string]float64)
	for _, r := range rep.Results {
		if r.Layout == "baseline" {
			base[r.Kernel] = r.EdgesPerSec
		}
		speedup := "-"
		if b := base[r.Kernel]; b > 0 {
			speedup = fmt.Sprintf("%.2fx", r.EdgesPerSec/b)
		}
		fmt.Fprintf(w, "%-22s %-22s %14d %14.0f %12d %8s\n",
			r.Kernel, r.Layout, r.NsPerOp, r.EdgesPerSec, r.AdjBytes, speedup)
	}
	if rep.Approx != nil {
		a := rep.Approx
		fmt.Fprintf(w, "\nadaptive guarantee: eps=%g delta=%g, %d samples in %d rounds (stopped=%v)\n",
			a.Epsilon, a.Delta, a.SamplesUsed, a.Rounds, a.Stopped)
		fmt.Fprintf(w, "speedup vs exact: %.1fx (%.2fs -> %.3fs)\n",
			a.SpeedupVsExact, float64(a.ExactNs)*1e-9, float64(a.ApproxNs)*1e-9)
		return
	}
	fmt.Fprintf(w, "\nadjacency compression: %d -> %d bytes (%.2fx)\n",
		rep.RawAdjBytes, rep.CompactAdjBytes, rep.CompressionRatio)
	if rep.AggregateSpeedup > 0 {
		fmt.Fprintf(w, "aggregate BC speedup (default vs baseline): %.2fx\n", rep.AggregateSpeedup)
	}
}

// runGuard compares the just-measured full-configuration BC throughput
// against the committed report and exits nonzero on a >20% regression.
func runGuard(path string, measured result) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: -guard:", err)
		os.Exit(1)
	}
	var committed report
	if err := json.Unmarshal(data, &committed); err != nil {
		fmt.Fprintln(os.Stderr, "bench: -guard:", err)
		os.Exit(1)
	}
	var want float64
	for _, r := range committed.Results {
		if strings.HasPrefix(r.Kernel, "centrality") && strings.HasPrefix(r.Layout, "reorder+arena") {
			want = r.EdgesPerSec
		}
	}
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "bench: -guard: no full-configuration centrality row in %s\n", path)
		os.Exit(1)
	}
	floor := 0.8 * want
	fmt.Fprintf(os.Stderr, "guard: measured %.0f edges/s, committed %.0f, floor %.0f\n",
		measured.EdgesPerSec, want, floor)
	if measured.EdgesPerSec < floor {
		fmt.Fprintf(os.Stderr, "guard: FAIL — BC throughput regressed more than 20%%\n")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "guard: ok")
}

// run benchmarks fn via testing.Benchmark and converts the timing into
// the report row. edgesTraversed is arcs × sources per iteration — the
// throughput denominator. The row records the fastest of benchReps
// repetitions: scheduler and frequency noise on shared machines only ever
// slows a run down, so the minimum is the stable estimator and repeated
// invocations agree far better than single-shot timings.
func run(kernel, layout string, g *graph.Graph, arcs, sources int64, fn func()) result {
	fmt.Fprintf(os.Stderr, "%-14s %-22s ", kernel, layout)
	var ns int64
	iters := 0
	for rep := 0; rep < benchReps; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		if ns == 0 || r.NsPerOp() < ns {
			ns = r.NsPerOp()
			iters = r.N
		}
	}
	eps := float64(arcs*sources) / (float64(ns) * 1e-9)
	fmt.Fprintf(os.Stderr, "%12d ns/op %14.0f edges/s\n", ns, eps)
	return result{
		Kernel: kernel, Layout: layout, NsPerOp: ns, EdgesPerSec: eps,
		Iterations: iters, AdjBytes: g.AdjBytes(), MemoryFootprint: g.MemoryFootprint(),
	}
}

// benchReps is the -reps flag: repetitions per row, fastest reported.
var benchReps = 1

// runApprox measures the adaptive approximate-BC ablation: one full exact
// run and benchReps adaptive runs on the default layout. The exact row is
// timed directly rather than through testing.Benchmark — at the committed
// scale a single exact sweep takes the better part of an hour, and a
// wall-clock measurement of one run is exactly the quantity the speedup
// claim is about. The adaptive row keeps the best-of-reps convention (it
// is cheap enough to repeat). Both rows' edges/s is the equivalent-exact-
// work rate arcs × n / wall time, so their ratio is the wall-clock
// speedup. With guardPath set this is the CI gate: fail when the measured
// speedup is under 3× and schema-check the committed report instead of
// writing a new one.
func runApprox(rep *report, g *graph.Graph, arcs int64, eps, delta float64, seed int64, outPath, guardPath string) {
	n := g.NumVertices()
	exactWork := float64(arcs) * float64(n)
	layout := "reorder+arena (default)"

	fmt.Fprintf(os.Stderr, "%-36s %-22s ", "centrality/exact", layout)
	t0 := time.Now()
	bc.Centrality(g, bc.Options{Seed: seed, Scratch: bc.ScratchAuto})
	exactNs := time.Since(t0).Nanoseconds()
	exactEPS := exactWork / (float64(exactNs) * 1e-9)
	fmt.Fprintf(os.Stderr, "%14d ns/op %14.0f edges/s\n", exactNs, exactEPS)
	rep.Results = append(rep.Results, result{
		Kernel: "centrality/exact", Layout: layout, NsPerOp: exactNs,
		EdgesPerSec: exactEPS, Iterations: 1,
		AdjBytes: g.AdjBytes(), MemoryFootprint: g.MemoryFootprint(),
	})

	approxKernel := fmt.Sprintf("centrality/approx(eps=%g,delta=%g)", eps, delta)
	opt := bc.Options{Adaptive: true, Epsilon: eps, Delta: delta, Seed: seed}
	fmt.Fprintf(os.Stderr, "%-36s %-22s ", approxKernel, layout)
	var approxNs int64
	var ar *bc.ApproxResult
	for r := 0; r < benchReps; r++ {
		t0 := time.Now()
		res := bc.ApproxCentrality(g, opt)
		ns := time.Since(t0).Nanoseconds()
		if approxNs == 0 || ns < approxNs {
			approxNs = ns
		}
		ar = res // deterministic: every rep returns identical scores
	}
	approxEPS := exactWork / (float64(approxNs) * 1e-9)
	fmt.Fprintf(os.Stderr, "%14d ns/op %14.0f edges/s (equiv)\n", approxNs, approxEPS)
	rep.Results = append(rep.Results, result{
		Kernel: approxKernel, Layout: layout, NsPerOp: approxNs,
		EdgesPerSec: approxEPS, Iterations: benchReps,
		AdjBytes: g.AdjBytes(), MemoryFootprint: g.MemoryFootprint(),
	})

	speedup := float64(exactNs) / float64(approxNs)
	rep.AggregateSpeedup = speedup
	rep.Approx = &approxInfo{
		Epsilon:        ar.Guarantee.Epsilon,
		Delta:          ar.Guarantee.Delta,
		SamplesUsed:    ar.Guarantee.SamplesUsed,
		Rounds:         ar.Guarantee.Rounds,
		Stopped:        ar.Guarantee.Stopped,
		ExactNs:        exactNs,
		ApproxNs:       approxNs,
		SpeedupVsExact: speedup,
	}
	fmt.Fprintf(os.Stderr, "approx: %d samples in %d rounds (stopped=%v), speedup %.1fx over exact (n=%d)\n",
		ar.Guarantee.SamplesUsed, ar.Guarantee.Rounds, ar.Guarantee.Stopped, speedup, n)

	if guardPath != "" {
		const floor = 3.0
		if speedup < floor {
			fmt.Fprintf(os.Stderr, "approx-guard: FAIL — speedup %.2fx below the %.0fx floor\n", speedup, floor)
			os.Exit(1)
		}
		if err := checkReport(guardPath); err != nil {
			fmt.Fprintln(os.Stderr, "bench: -approx-guard:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "approx-guard: ok (speedup %.2fx, %s schema valid)\n", speedup, guardPath)
		return
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if outPath == "-" {
		os.Stdout.Write(enc)
		printTable(os.Stderr, rep)
		return
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	printTable(os.Stdout, rep)
}

// checkReport validates a committed bench report against the schema this
// binary writes: unknown fields are rejected (schema drift), and the
// fields downstream tooling reads must be present and sane. Reports both
// with and without the approx block pass — the same validator covers
// BENCH_PR4/PR7 and BENCH_PR10 artifacts.
func checkReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Generator == "" || rep.GoVersion == "" {
		return fmt.Errorf("%s: missing generator/go_version provenance", path)
	}
	if rep.RMATScale <= 0 || rep.Vertices <= 0 || rep.Arcs <= 0 {
		return fmt.Errorf("%s: missing graph dimensions", path)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s: no result rows", path)
	}
	for i, r := range rep.Results {
		// Layout is not required: PR-2-era reports predate the ablation
		// matrix and encode the configuration in the kernel name.
		if r.Kernel == "" || r.NsPerOp <= 0 || r.EdgesPerSec <= 0 {
			return fmt.Errorf("%s: results[%d] incomplete", path, i)
		}
	}
	if a := rep.Approx; a != nil {
		if a.Epsilon <= 0 || a.Epsilon >= 1 || a.Delta <= 0 || a.Delta >= 1 {
			return fmt.Errorf("%s: approx block has (eps,delta) outside (0,1)", path)
		}
		if a.SamplesUsed <= 0 || a.Rounds <= 0 {
			return fmt.Errorf("%s: approx block missing sampling counts", path)
		}
		if a.ExactNs <= 0 || a.ApproxNs <= 0 || a.SpeedupVsExact <= 0 {
			return fmt.Errorf("%s: approx block missing timings", path)
		}
		if got := float64(a.ExactNs) / float64(a.ApproxNs); got/a.SpeedupVsExact > 1.01 || a.SpeedupVsExact/got > 1.01 {
			return fmt.Errorf("%s: approx speedup %.2f inconsistent with timings (%.2f)", path, a.SpeedupVsExact, got)
		}
	}
	return nil
}
