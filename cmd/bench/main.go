// Command bench is the repo's reproducible perf-trajectory harness: it
// runs the betweenness-centrality kernel configurations with fixed seeds
// through testing.Benchmark and writes a machine-readable report
// (BENCH_PR2.json by default) recording kernel, ns/op, edges/sec and
// GOMAXPROCS. Re-running it on the same hardware reproduces the numbers a
// PR quotes; future PRs append their own BENCH_PRn.json and compare.
//
// The configuration matrix crosses the two tentpole knobs so the report
// doubles as an ablation: accumulation (striped vs the pre-PR atomic-CAS
// idiom) × forward sweep (direction-optimizing vs the pre-PR top-down
// reference). "atomic+topdown" is the PR-2 baseline configuration;
// "striped+hybrid" is the shipped default (AccumAuto resolves to striped
// whenever the stripes fit the memory budget).
//
// edges/sec counts NumArcs() once per source per iteration — the same
// convention as BenchmarkCentrality in bench_test.go, so the two report
// comparable throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"graphct/internal/bc"
	"graphct/internal/gen"
)

type result struct {
	Kernel      string  `json:"kernel"`
	NsPerOp     int64   `json:"ns_per_op"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Generator  string   `json:"generator"`
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	RMATScale  int      `json:"rmat_scale"`
	Vertices   int      `json:"vertices"`
	Arcs       int64    `json:"arcs"`
	Samples    int      `json:"samples"`
	Seed       int64    `json:"seed"`
	Results    []result `json:"results"`
}

func main() {
	var (
		scale   = flag.Int("scale", 16, "R-MAT scale (2^scale vertices, paper parameters)")
		samples = flag.Int("samples", 32, "sampled betweenness sources per run")
		seed    = flag.Int64("seed", 1, "generator and sampling seed")
		procs   = flag.Int("procs", 4, "GOMAXPROCS for the runs (acceptance floor is 4)")
		k       = flag.Int("k", 1, "k for the k-betweenness entry (0 skips it)")
		out     = flag.String("out", "BENCH_PR2.json", "output path; - for stdout")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	fmt.Fprintf(os.Stderr, "generating R-MAT scale %d (seed %d)...\n", *scale, *seed)
	g := gen.RMAT(gen.PaperRMAT(*scale, *seed))
	arcs := g.NumArcs()
	rep := report{
		Generator:  fmt.Sprintf("cmd/bench -scale %d -samples %d -seed %d", *scale, *samples, *seed),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		RMATScale:  *scale,
		Vertices:   g.NumVertices(),
		Arcs:       arcs,
		Samples:    *samples,
		Seed:       *seed,
	}

	bcConfigs := []struct {
		name string
		opt  bc.Options
	}{
		// The pre-PR idiom: shared score array behind an atomic float64
		// CAS loop, push-only top-down forward sweeps.
		{"centrality/atomic+topdown (PR-2 baseline)",
			bc.Options{Accumulation: bc.AccumAtomic, Sweep: bc.SweepTopDown}},
		// One tentpole knob at a time.
		{"centrality/striped+topdown",
			bc.Options{Accumulation: bc.AccumStriped, Sweep: bc.SweepTopDown}},
		{"centrality/atomic+hybrid",
			bc.Options{Accumulation: bc.AccumAtomic, Sweep: bc.SweepAuto}},
		// The shipped default (what Options' zero values resolve to).
		{"centrality/striped+hybrid (default)",
			bc.Options{Accumulation: bc.AccumStriped, Sweep: bc.SweepAuto}},
	}
	for _, cfg := range bcConfigs {
		opt := cfg.opt
		opt.Samples = *samples
		opt.Seed = *seed
		rep.Results = append(rep.Results, run(cfg.name, arcs, int64(*samples), func() {
			bc.Centrality(g, opt)
		}))
	}
	if *k > 0 {
		opt := bc.Options{K: *k, Samples: *samples, Seed: *seed}
		rep.Results = append(rep.Results, run(fmt.Sprintf("kcentrality/k=%d", *k), arcs, int64(*samples), func() {
			bc.Centrality(g, opt)
		}))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// run benchmarks fn via testing.Benchmark and converts the timing into the
// report row. edgesTraversed is the per-iteration edge count the
// throughput metric divides by (arcs × sources).
func run(name string, arcs, sources int64, fn func()) result {
	fmt.Fprintf(os.Stderr, "%-45s ", name)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	ns := r.NsPerOp()
	eps := float64(arcs*sources) / (float64(ns) * 1e-9)
	fmt.Fprintf(os.Stderr, "%12d ns/op %14.0f edges/s\n", ns, eps)
	return result{Kernel: name, NsPerOp: ns, EdgesPerSec: eps, Iterations: r.N}
}
