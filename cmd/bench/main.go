// Command bench is the repo's reproducible perf-trajectory harness: it
// runs the betweenness-centrality kernel through testing.Benchmark under
// fixed seeds and writes a machine-readable report (BENCH_PR7.json by
// default) recording kernel, ns/op, edges/sec, adjacency bytes and
// GOMAXPROCS. Re-running it on the same hardware reproduces the numbers
// a PR quotes; each perf PR appends its own BENCH_PRn.json and compares.
//
// The configuration matrix is the memory-layout ablation: each row adds
// one layout optimization on top of the previous, so the report isolates
// what every step buys:
//
//	baseline                 generator vertex order, raw CSR, heap scratch
//	reorder                  relabeled for locality (-reorder), raw CSR
//	reorder+compact          + delta-varint compressed adjacency (forced)
//	reorder+compact+arena    + arena-backed Brandes scratch
//	reorder+arena (default)  what -reorder degree -compact auto serves:
//	                         the auto policy only compacts when the raw
//	                         adjacency exceeds the memory budget, so at
//	                         bench scales the default stack is relabeled
//	                         raw CSR with arena scratch
//
// The forced-compact rows quantify the capacity trade (adjacency bytes
// roughly halve; throughput pays the per-edge varint decode), and the
// aggregate speedup the report headlines is the shipped default against
// the baseline. All rows run the PR-4 kernel defaults (striped
// accumulation, hybrid direction-optimizing sweeps); the ablation varies
// memory layout only. edges/sec counts NumArcs() once per source per
// iteration — the same convention as BenchmarkCentrality in
// bench_test.go, so the two report comparable throughput.
//
// -guard FILE runs only the full configuration and exits nonzero when
// its BC throughput falls below 80% of the committed report's, which is
// the CI bench-smoke job (scaled guard: CI benches a smaller scale than
// the committed scale-16 report, and smaller working sets only run
// faster, so the one-sided 0.8× bound stays meaningful).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"graphct/internal/bc"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

type result struct {
	Kernel          string  `json:"kernel"`
	Layout          string  `json:"layout"`
	NsPerOp         int64   `json:"ns_per_op"`
	EdgesPerSec     float64 `json:"edges_per_sec"`
	Iterations      int     `json:"iterations"`
	AdjBytes        int64   `json:"adj_bytes"`
	MemoryFootprint int64   `json:"memory_footprint"`
}

type report struct {
	Generator        string   `json:"generator"`
	GoMaxProcs       int      `json:"gomaxprocs"`
	NumCPU           int      `json:"num_cpu"`
	GoVersion        string   `json:"go_version"`
	RMATScale        int      `json:"rmat_scale"`
	Vertices         int      `json:"vertices"`
	Arcs             int64    `json:"arcs"`
	Samples          int      `json:"samples"`
	Seed             int64    `json:"seed"`
	Reps             int      `json:"reps"`
	Reorder          string   `json:"reorder"`
	RawAdjBytes      int64    `json:"raw_adj_bytes"`
	CompactAdjBytes  int64    `json:"compact_adj_bytes"`
	CompressionRatio float64  `json:"compression_ratio"`
	AggregateSpeedup float64  `json:"aggregate_speedup"`
	Results          []result `json:"results"`
}

func main() {
	var (
		scale   = flag.Int("scale", 16, "R-MAT scale (2^scale vertices, paper parameters)")
		samples = flag.Int("samples", 32, "sampled betweenness sources per run")
		seed    = flag.Int64("seed", 1, "generator and sampling seed")
		procs   = flag.Int("procs", 4, "GOMAXPROCS for the runs (acceptance floor is 4)")
		k       = flag.Int("k", 1, "k for the k-betweenness rows (0 skips them)")
		reorder = flag.String("reorder", "degree", "permutation for the reordered rows: degree or bfs")
		guard   = flag.String("guard", "", "CI mode: run only the full configuration and fail if BC edges/s drops below 80% of this committed report")
		out     = flag.String("out", "BENCH_PR7.json", "output path; - for stdout")
		only    = flag.String("only", "", "run a single ablation layout (for profiling); skips the JSON report")
		reps    = flag.Int("reps", 3, "benchmark repetitions per row; the fastest is reported (noise floor)")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	)
	flag.Parse()
	// NumCPU is recorded before the GOMAXPROCS override so the report
	// states the machine's real core count next to the (possibly
	// oversubscribed) worker count the numbers were taken at.
	numCPU := runtime.NumCPU()
	runtime.GOMAXPROCS(*procs)
	if *reps > 0 {
		benchReps = *reps
	}

	kind, err := graph.ParseReorder(*reorder)
	if err != nil || kind == graph.ReorderNone {
		fmt.Fprintf(os.Stderr, "bench: -reorder must be degree or bfs\n")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generating R-MAT scale %d (seed %d)...\n", *scale, *seed)
	raw := gen.RMAT(gen.PaperRMAT(*scale, *seed))
	arcs := raw.NumArcs()

	reordered, _, err := graph.Layout{Reorder: kind, Compact: graph.CompactOff}.Apply(raw)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	compact := reordered.Compact()

	rep := report{
		Generator:        fmt.Sprintf("cmd/bench -scale %d -samples %d -seed %d -reorder %s", *scale, *samples, *seed, kind),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           numCPU,
		GoVersion:        runtime.Version(),
		RMATScale:        *scale,
		Vertices:         raw.NumVertices(),
		Arcs:             arcs,
		Samples:          *samples,
		Seed:             *seed,
		Reps:             benchReps,
		Reorder:          kind.String(),
		RawAdjBytes:      raw.AdjBytes(),
		CompactAdjBytes:  compact.AdjBytes(),
		CompressionRatio: float64(raw.AdjBytes()) / float64(compact.AdjBytes()),
	}

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	steps := []struct {
		layout  string
		g       *graph.Graph
		scratch bc.Scratch
	}{
		{"baseline", raw, bc.ScratchHeap},
		{"reorder", reordered, bc.ScratchHeap},
		// Forced compression quantifies the capacity trade: adjacency bytes
		// roughly halve, throughput pays the per-edge decode. The auto
		// policy takes this trade only when the raw adjacency exceeds the
		// memory budget, which is why the shipped default below stays raw
		// at bench scales.
		{"reorder+compact", compact, bc.ScratchHeap},
		{"reorder+compact+arena", compact, bc.ScratchAuto},
		// What -reorder degree -compact auto actually serves at this
		// working-set size: relabeled raw CSR with arena scratch.
		{"reorder+arena (default)", reordered, bc.ScratchAuto},
	}
	if *guard != "" {
		steps = steps[len(steps)-1:] // full configuration only
	} else if *only != "" {
		kept := steps[:0]
		for _, st := range steps {
			if st.layout == *only {
				kept = append(kept, st)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "bench: -only: unknown layout %q\n", *only)
			os.Exit(2)
		}
		steps = kept
	}
	for _, st := range steps {
		g, scratch := st.g, st.scratch
		opt := bc.Options{Samples: *samples, Seed: *seed, Scratch: scratch}
		rep.Results = append(rep.Results, run("centrality", st.layout, g, arcs, int64(*samples), func() {
			bc.Centrality(g, opt)
		}))
	}
	if *guard != "" {
		runGuard(*guard, rep.Results[len(rep.Results)-1])
		return
	}
	if *only != "" {
		return // per-run lines already printed; no report for partial matrices
	}
	rep.AggregateSpeedup = rep.Results[len(rep.Results)-1].EdgesPerSec / rep.Results[0].EdgesPerSec
	if *k > 0 {
		// k-betweenness is where scratch churn dominated pre-arena; bench
		// it at both ablation endpoints so the GC-pressure claim is
		// auditable.
		for _, st := range []struct {
			layout  string
			g       *graph.Graph
			scratch bc.Scratch
		}{
			{"baseline", raw, bc.ScratchHeap},
			{"reorder+arena (default)", reordered, bc.ScratchAuto},
		} {
			g := st.g
			opt := bc.Options{K: *k, Samples: *samples, Seed: *seed, Scratch: st.scratch}
			rep.Results = append(rep.Results, run(fmt.Sprintf("kcentrality/k=%d", *k), st.layout, g, arcs, int64(*samples), func() {
				bc.Centrality(g, opt)
			}))
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	table := os.Stdout
	if *out == "-" {
		os.Stdout.Write(enc)
		table = os.Stderr
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	printTable(table, &rep)
}

// printTable renders the ablation as a human-readable stdout table; the
// JSON report stays the machine-readable artifact.
func printTable(w *os.File, rep *report) {
	fmt.Fprintf(w, "\nmemory-layout ablation: R-MAT scale %d, %d arcs, %d samples, GOMAXPROCS=%d\n\n",
		rep.RMATScale, rep.Arcs, rep.Samples, rep.GoMaxProcs)
	fmt.Fprintf(w, "%-22s %-22s %14s %14s %12s %8s\n", "kernel", "layout", "ns/op", "edges/s", "adj bytes", "speedup")
	base := make(map[string]float64)
	for _, r := range rep.Results {
		if r.Layout == "baseline" {
			base[r.Kernel] = r.EdgesPerSec
		}
		speedup := "-"
		if b := base[r.Kernel]; b > 0 {
			speedup = fmt.Sprintf("%.2fx", r.EdgesPerSec/b)
		}
		fmt.Fprintf(w, "%-22s %-22s %14d %14.0f %12d %8s\n",
			r.Kernel, r.Layout, r.NsPerOp, r.EdgesPerSec, r.AdjBytes, speedup)
	}
	fmt.Fprintf(w, "\nadjacency compression: %d -> %d bytes (%.2fx)\n",
		rep.RawAdjBytes, rep.CompactAdjBytes, rep.CompressionRatio)
	if rep.AggregateSpeedup > 0 {
		fmt.Fprintf(w, "aggregate BC speedup (default vs baseline): %.2fx\n", rep.AggregateSpeedup)
	}
}

// runGuard compares the just-measured full-configuration BC throughput
// against the committed report and exits nonzero on a >20% regression.
func runGuard(path string, measured result) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: -guard:", err)
		os.Exit(1)
	}
	var committed report
	if err := json.Unmarshal(data, &committed); err != nil {
		fmt.Fprintln(os.Stderr, "bench: -guard:", err)
		os.Exit(1)
	}
	var want float64
	for _, r := range committed.Results {
		if strings.HasPrefix(r.Kernel, "centrality") && strings.HasPrefix(r.Layout, "reorder+arena") {
			want = r.EdgesPerSec
		}
	}
	if want <= 0 {
		fmt.Fprintf(os.Stderr, "bench: -guard: no full-configuration centrality row in %s\n", path)
		os.Exit(1)
	}
	floor := 0.8 * want
	fmt.Fprintf(os.Stderr, "guard: measured %.0f edges/s, committed %.0f, floor %.0f\n",
		measured.EdgesPerSec, want, floor)
	if measured.EdgesPerSec < floor {
		fmt.Fprintf(os.Stderr, "guard: FAIL — BC throughput regressed more than 20%%\n")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "guard: ok")
}

// run benchmarks fn via testing.Benchmark and converts the timing into
// the report row. edgesTraversed is arcs × sources per iteration — the
// throughput denominator. The row records the fastest of benchReps
// repetitions: scheduler and frequency noise on shared machines only ever
// slows a run down, so the minimum is the stable estimator and repeated
// invocations agree far better than single-shot timings.
func run(kernel, layout string, g *graph.Graph, arcs, sources int64, fn func()) result {
	fmt.Fprintf(os.Stderr, "%-14s %-22s ", kernel, layout)
	var ns int64
	iters := 0
	for rep := 0; rep < benchReps; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		if ns == 0 || r.NsPerOp() < ns {
			ns = r.NsPerOp()
			iters = r.N
		}
	}
	eps := float64(arcs*sources) / (float64(ns) * 1e-9)
	fmt.Fprintf(os.Stderr, "%12d ns/op %14.0f edges/s\n", ns, eps)
	return result{
		Kernel: kernel, Layout: layout, NsPerOp: ns, EdgesPerSec: eps,
		Iterations: iters, AdjBytes: g.AdjBytes(), MemoryFootprint: g.MemoryFootprint(),
	}
}

// benchReps is the -reps flag: repetitions per row, fastest reported.
var benchReps = 1
