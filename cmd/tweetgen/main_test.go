package main

import (
	"reflect"
	"testing"

	"graphct/internal/tweets"
)

// TestPlanBatchesDeterministic pins the -stream reproducibility contract:
// two replays of the same corpus with the same seed plan bit-identical
// batch sequences — same boundaries, same batch IDs, same updates — so
// load runs and soak tests replay exactly, and a re-run against a daemon
// that already applied a prefix is answered from its idempotency window.
func TestPlanBatchesDeterministic(t *testing.T) {
	gen := func(seed int64) (int, []plannedBatch) {
		return planBatches(tweets.Generate(tweets.H1N1Corpus(0.05, seed)), 128, seed)
	}
	n1, plan1 := gen(42)
	n2, plan2 := gen(42)
	if n1 == 0 || len(plan1) == 0 {
		t.Fatalf("empty plan: %d vertices, %d batches", n1, len(plan1))
	}
	if n1 != n2 || len(plan1) != len(plan2) {
		t.Fatalf("same seed, different shape: (%d, %d) vs (%d, %d)", n1, len(plan1), n2, len(plan2))
	}
	for i := range plan1 {
		if plan1[i].ID != plan2[i].ID {
			t.Fatalf("batch %d: ID %q vs %q", i, plan1[i].ID, plan2[i].ID)
		}
		if !reflect.DeepEqual(plan1[i].Updates, plan2[i].Updates) {
			t.Fatalf("batch %d (%s): updates differ between identically seeded runs", i, plan1[i].ID)
		}
	}

	// A different seed names a different run: batch IDs must not collide,
	// or the server's idempotency window would wrongly dedup a new run's
	// batches against an old one's.
	_, plan3 := gen(43)
	if len(plan3) > 0 && plan3[0].ID == plan1[0].ID {
		t.Fatalf("different seeds share batch ID %q", plan3[0].ID)
	}
}

// TestPlanBatchesBoundaries checks the plan covers every mention-graph
// update exactly once in arrival order, whatever the batch size.
func TestPlanBatchesBoundaries(t *testing.T) {
	ts := tweets.Generate(tweets.H1N1Corpus(0.05, 7))
	_, whole := planBatches(ts, 1<<30, 7)
	var total int
	for _, pb := range whole {
		total += len(pb.Updates)
	}
	for _, size := range []int{1, 17, 128} {
		_, plan := planBatches(ts, size, 7)
		got := 0
		for i, pb := range plan {
			if len(pb.Updates) == 0 || (len(pb.Updates) > size) {
				t.Fatalf("size %d: batch %d has %d updates", size, i, len(pb.Updates))
			}
			got += len(pb.Updates)
		}
		if got != total {
			t.Fatalf("size %d: planned %d updates, corpus has %d", size, got, total)
		}
	}
}
