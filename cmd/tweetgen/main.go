// Command tweetgen emits a synthetic Twitter stream (the Spinn3r-harvest
// substitute) or the DIMACS mention graph built from it, or replays the
// stream as live updates against a running graphctd.
//
// Usage:
//
//	tweetgen -preset h1n1 -scale 0.25 -seed 1            # tweets to stdout
//	tweetgen -preset atlflood -format dimacs > graph.txt # mention graph
//	tweetgen -users 5000 -tweets 8000 -topic storm       # custom corpus
//	tweetgen -preset h1n1 -stream http://localhost:8423 -name h1n1
//
// In -stream mode the corpus's mention interactions are sent in arrival
// order to graphctd's ingest endpoint in timestamped batches, creating
// the target live graph first. The daemon maintains clustering
// coefficients incrementally and publishes epoch snapshots as the batches
// accumulate, so kernels can be queried while the replay runs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"os"
	"time"

	"graphct/internal/dimacs"
	"graphct/internal/stream"
	"graphct/internal/tweets"
)

func main() {
	preset := flag.String("preset", "", "corpus preset: h1n1, atlflood, sept1 (empty = custom)")
	scale := flag.Float64("scale", 0.25, "preset size multiplier (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "tweets", "output: tweets | dimacs | stats")
	users := flag.Int("users", 1000, "custom corpus: user pool size")
	hubs := flag.Int("hubs", 10, "custom corpus: broadcast hubs")
	ntweets := flag.Int("tweets", 2000, "custom corpus: messages")
	topic := flag.String("topic", "topic", "custom corpus: keyword/hashtag")
	nospam := flag.Bool("nospam", false, "strip spam from the stream (the paper's non-spam harvests)")
	streamURL := flag.String("stream", "", "replay the corpus against a graphctd base URL (e.g. http://localhost:8423)")
	name := flag.String("name", "tweets", "stream mode: live graph name to create and fill")
	batchSize := flag.Int("batch", 512, "stream mode: updates per ingest batch")
	useJSON := flag.Bool("json", false, "stream mode: send JSON batches instead of the binary framing")
	flag.Parse()

	var opt tweets.CorpusOptions
	switch *preset {
	case "h1n1":
		opt = tweets.H1N1Corpus(*scale, *seed)
	case "atlflood":
		opt = tweets.AtlFloodCorpus(*scale, *seed)
	case "sept1":
		opt = tweets.Sept1Corpus(*scale, *seed)
	case "":
		opt = tweets.CorpusOptions{
			Seed: *seed, Users: *users, Hubs: *hubs, Tweets: *ntweets, Topic: *topic,
			RetweetFrac: 0.4, ConvFrac: 0.12, SelfFrac: 0.03, DeepTreeProb: 0.25,
			ConvGroups: *users/10 + 1, ConvGroupSize: 3, WeekLo: 36, WeekHi: 39,
		}
	default:
		fatal(fmt.Sprintf("unknown preset %q", *preset))
	}

	ts := tweets.Generate(opt)
	if *nospam {
		ts = tweets.FilterSpam(ts, 0)
	}
	if *streamURL != "" {
		if err := replay(*streamURL, *name, ts, *batchSize, !*useJSON); err != nil {
			fatal(err)
		}
		return
	}
	switch *format {
	case "tweets":
		w := bufio.NewWriter(os.Stdout)
		for _, t := range ts {
			fmt.Fprintf(w, "%d\tweek%d\t@%s\t%s\n", t.ID, t.Week, t.Author, t.Text)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "dimacs":
		ug := tweets.Build(ts)
		if err := dimacs.Write(os.Stdout, ug.Graph.Undirected()); err != nil {
			fatal(err)
		}
	case "stats":
		ug := tweets.Build(ts)
		s := ug.Stats
		fmt.Printf("tweets %d\nwith-mentions %d\nusers %d\nunique-interactions %d\nself-references %d\nretweets %d\n",
			s.Tweets, s.TweetsWithMentions, s.Users, s.UniqueInteractions, s.SelfReferences, s.Retweets)
	default:
		fatal(fmt.Sprintf("unknown format %q", *format))
	}
}

// replay drives a live graphctd ingest session: one intern pass sizes the
// user universe (ingest validates vertex ids against the live graph's
// fixed vertex count, so the graph must be created full-size up front),
// then the mention interactions stream to the ingest endpoint in arrival
// order. 429 responses — the ingest queue's backpressure — back off and
// retry rather than dropping updates.
func replay(base, name string, ts []tweets.Tweet, batchSize int, binary bool) error {
	ug := tweets.Build(ts)
	var ups []stream.Update
	for _, t := range ts {
		author, _ := ug.Lookup(t.Author)
		for _, m := range tweets.Mentions(t.Text) {
			target, _ := ug.Lookup(m)
			if target == author {
				continue
			}
			ups = append(ups, stream.Update{U: author, V: target, Time: t.ID})
		}
	}
	n := ug.Graph.NumVertices()
	if n == 0 {
		return fmt.Errorf("corpus has no users to stream")
	}

	body, _ := json.Marshal(map[string]any{"name": name, "format": "live", "vertices": n})
	resp, err := http.Post(base+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if err := drain(resp, http.StatusCreated); err != nil {
		return fmt.Errorf("create live graph %q: %w", name, err)
	}

	// Batch IDs make retries idempotent: the run ID is unique per replay
	// (so a re-run is not deduped against a previous one) and the batch
	// offset is stable within it, so a batch retried after a 5xx — which
	// the server may or may not have applied before failing — is answered
	// from the server's idempotency window instead of double-applying.
	runID := fmt.Sprintf("tweetgen-%d-%d", os.Getpid(), time.Now().UnixNano())
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	start := time.Now()
	sent, batches, snapshots := 0, 0, 0
	for lo := 0; lo < len(ups); lo += batchSize {
		hi := lo + batchSize
		if hi > len(ups) {
			hi = len(ups)
		}
		res, err := postBatch(base, name, fmt.Sprintf("%s/%d", runID, lo), ups[lo:hi], binary, rng)
		if err != nil {
			return err
		}
		sent += res.Accepted
		batches++
		if res.Snapshotted {
			snapshots++
		}
	}
	// Flush so every streamed interaction is visible to the next kernel.
	// The forced snapshot retries like a batch: under injected faults the
	// daemon may defer publication with a 503.
	if err := withRetry(rng, func() (int, error) {
		resp, err := http.Post(base+"/graphs/"+name+"/snapshot", "application/json", nil)
		if err != nil {
			return 0, err
		}
		code := resp.StatusCode
		if err := drain(resp, http.StatusOK); err != nil && !retryableStatus(code) {
			return code, fmt.Errorf("snapshot %q: %w", name, err)
		}
		return code, nil
	}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "tweetgen: streamed %d updates in %d batches (%d snapshots) in %v (%.0f updates/s)\n",
		sent, batches, snapshots, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds())
	return nil
}

type ingestReply struct {
	Accepted    int    `json:"accepted"`
	Edges       int64  `json:"edges"`
	Epoch       uint64 `json:"epoch"`
	Snapshotted bool   `json:"snapshotted"`
}

// retryableStatus reports whether a response warrants a retry: 429 is
// backpressure, 5xx is a transient server failure (the batch ID makes
// the retry idempotent either way).
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// maxAttempts bounds retries of server failures; backpressure (429)
// retries indefinitely — the server is healthy, just busy.
const maxAttempts = 10

// withRetry runs send until it returns a non-retryable status, applying
// jittered exponential backoff (10ms doubling to a 1s cap, ±50% jitter
// so synchronized clients do not re-converge on the same instant).
func withRetry(rng *rand.Rand, send func() (int, error)) error {
	backoff := 10 * time.Millisecond
	for attempt := 1; ; attempt++ {
		code, err := send()
		if err != nil {
			return err
		}
		if !retryableStatus(code) {
			return nil
		}
		if code >= 500 && attempt >= maxAttempts {
			return fmt.Errorf("giving up after %d attempts (last status %d)", attempt, code)
		}
		jitter := 0.5 + rng.Float64() // uniform in [0.5, 1.5)
		time.Sleep(time.Duration(float64(backoff) * jitter))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// postBatch sends one batch under a client-assigned batch ID, retrying
// 429 (backpressure) and 5xx (server failure) with jittered exponential
// backoff. The ID lets the server dedupe a retry of a batch it actually
// applied before the failure, so retries never double-apply.
func postBatch(base, name, batchID string, batch []stream.Update, binary bool, rng *rand.Rand) (ingestReply, error) {
	var buf bytes.Buffer
	contentType := "application/json"
	if binary {
		contentType = stream.WireContentType
		if err := stream.EncodeUpdates(&buf, batch); err != nil {
			return ingestReply{}, err
		}
	} else {
		type ju struct {
			U    int32 `json:"u"`
			V    int32 `json:"v"`
			Time int64 `json:"time,omitempty"`
			Del  bool  `json:"del,omitempty"`
		}
		out := make([]ju, len(batch))
		for i, up := range batch {
			out[i] = ju{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
		}
		if err := json.NewEncoder(&buf).Encode(out); err != nil {
			return ingestReply{}, err
		}
	}
	url := base + "/graphs/" + name + "/ingest?batch_id=" + neturl.QueryEscape(batchID)
	var rep ingestReply
	err := withRetry(rng, func() (int, error) {
		resp, err := http.Post(url, contentType, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			code := resp.StatusCode
			err := drain(resp, http.StatusOK)
			if retryableStatus(code) {
				return code, nil
			}
			return code, fmt.Errorf("ingest: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		drainBody(resp)
		return http.StatusOK, err
	})
	return rep, err
}

func drain(resp *http.Response, want int) error {
	defer drainBody(resp)
	if resp.StatusCode == want {
		return nil
	}
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "tweetgen:", v)
	os.Exit(1)
}
