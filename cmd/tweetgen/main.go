// Command tweetgen emits a synthetic Twitter stream (the Spinn3r-harvest
// substitute) or the DIMACS mention graph built from it, or replays the
// stream as live updates against a running graphctd.
//
// Usage:
//
//	tweetgen -preset h1n1 -scale 0.25 -seed 1            # tweets to stdout
//	tweetgen -preset atlflood -format dimacs > graph.txt # mention graph
//	tweetgen -users 5000 -tweets 8000 -topic storm       # custom corpus
//	tweetgen -preset h1n1 -stream http://localhost:8423 -name h1n1
//
// In -stream mode the corpus's mention interactions are sent in arrival
// order to graphctd's ingest endpoint in timestamped batches, creating
// the target live graph first. The daemon maintains clustering
// coefficients incrementally and publishes epoch snapshots as the batches
// accumulate, so kernels can be queried while the replay runs. The whole
// session is deterministic from -seed — batch boundaries, batch IDs and
// even retry jitter — so two runs with the same seed emit identical
// batches and soak/load runs reproduce.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"graphct/internal/dimacs"
	"graphct/internal/load"
	"graphct/internal/stream"
	"graphct/internal/tweets"
)

func main() {
	preset := flag.String("preset", "", "corpus preset: h1n1, atlflood, sept1 (empty = custom)")
	scale := flag.Float64("scale", 0.25, "preset size multiplier (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "random seed (drives the corpus and, in -stream mode, the batch plan: same seed, identical batches)")
	format := flag.String("format", "tweets", "output: tweets | dimacs | stats")
	users := flag.Int("users", 1000, "custom corpus: user pool size")
	hubs := flag.Int("hubs", 10, "custom corpus: broadcast hubs")
	ntweets := flag.Int("tweets", 2000, "custom corpus: messages")
	topic := flag.String("topic", "topic", "custom corpus: keyword/hashtag")
	nospam := flag.Bool("nospam", false, "strip spam from the stream (the paper's non-spam harvests)")
	streamURL := flag.String("stream", "", "replay the corpus against a graphctd base URL (e.g. http://localhost:8423)")
	name := flag.String("name", "tweets", "stream mode: live graph name to create and fill")
	batchSize := flag.Int("batch", 512, "stream mode: updates per ingest batch")
	useJSON := flag.Bool("json", false, "stream mode: send JSON batches instead of the binary framing")
	flag.Parse()

	var opt tweets.CorpusOptions
	switch *preset {
	case "h1n1":
		opt = tweets.H1N1Corpus(*scale, *seed)
	case "atlflood":
		opt = tweets.AtlFloodCorpus(*scale, *seed)
	case "sept1":
		opt = tweets.Sept1Corpus(*scale, *seed)
	case "":
		opt = tweets.CorpusOptions{
			Seed: *seed, Users: *users, Hubs: *hubs, Tweets: *ntweets, Topic: *topic,
			RetweetFrac: 0.4, ConvFrac: 0.12, SelfFrac: 0.03, DeepTreeProb: 0.25,
			ConvGroups: *users/10 + 1, ConvGroupSize: 3, WeekLo: 36, WeekHi: 39,
		}
	default:
		fatal(fmt.Sprintf("unknown preset %q", *preset))
	}

	ts := tweets.Generate(opt)
	if *nospam {
		ts = tweets.FilterSpam(ts, 0)
	}
	if *streamURL != "" {
		if err := replay(*streamURL, *name, ts, *batchSize, !*useJSON, *seed); err != nil {
			fatal(err)
		}
		return
	}
	switch *format {
	case "tweets":
		w := bufio.NewWriter(os.Stdout)
		for _, t := range ts {
			fmt.Fprintf(w, "%d\tweek%d\t@%s\t%s\n", t.ID, t.Week, t.Author, t.Text)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "dimacs":
		ug := tweets.Build(ts)
		if err := dimacs.Write(os.Stdout, ug.Graph.Undirected()); err != nil {
			fatal(err)
		}
	case "stats":
		ug := tweets.Build(ts)
		s := ug.Stats
		fmt.Printf("tweets %d\nwith-mentions %d\nusers %d\nunique-interactions %d\nself-references %d\nretweets %d\n",
			s.Tweets, s.TweetsWithMentions, s.Users, s.UniqueInteractions, s.SelfReferences, s.Retweets)
	default:
		fatal(fmt.Sprintf("unknown format %q", *format))
	}
}

// plannedBatch is one ingest request of a replay: a stable batch ID and
// the updates it carries.
type plannedBatch struct {
	ID      string
	Updates []stream.Update
}

// planBatches turns a corpus into the exact sequence of ingest batches a
// replay will send. The plan is a pure function of (corpus, batchSize,
// seed): batch IDs are seed-derived and offset-stable, so two replays
// with the same seed emit bit-identical batches — which is what makes
// load runs and the soak tests reproducible, and means a re-run against a
// daemon that already applied some batches is answered from its
// idempotency window instead of double-applying.
func planBatches(ts []tweets.Tweet, batchSize int, seed int64) (vertices int, batches []plannedBatch) {
	ug := tweets.Build(ts)
	var ups []stream.Update
	for _, t := range ts {
		author, _ := ug.Lookup(t.Author)
		for _, m := range tweets.Mentions(t.Text) {
			target, _ := ug.Lookup(m)
			if target == author {
				continue
			}
			ups = append(ups, stream.Update{U: author, V: target, Time: t.ID})
		}
	}
	runID := fmt.Sprintf("tweetgen-%d", seed)
	for lo := 0; lo < len(ups); lo += batchSize {
		hi := lo + batchSize
		if hi > len(ups) {
			hi = len(ups)
		}
		batches = append(batches, plannedBatch{
			ID:      fmt.Sprintf("%s/%d", runID, lo),
			Updates: ups[lo:hi],
		})
	}
	return ug.Graph.NumVertices(), batches
}

// replay drives a live graphctd ingest session: one intern pass sizes the
// user universe (ingest validates vertex ids against the live graph's
// fixed vertex count, so the graph must be created full-size up front),
// then the mention interactions stream to the ingest endpoint in arrival
// order. 429 responses — the ingest queue's backpressure — back off and
// retry rather than dropping updates. Everything about the session,
// batch boundaries and IDs included, is deterministic from -seed.
func replay(base, name string, ts []tweets.Tweet, batchSize int, binary bool, seed int64) error {
	n, plan := planBatches(ts, batchSize, seed)
	if n == 0 {
		return fmt.Errorf("corpus has no users to stream")
	}

	body, _ := json.Marshal(map[string]any{"name": name, "format": "live", "vertices": n})
	resp, err := http.Post(base+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if err := load.Drain(resp, http.StatusCreated); err != nil {
		return fmt.Errorf("create live graph %q: %w", name, err)
	}

	// Only the backoff jitter draws from this RNG, and even it is seeded:
	// a replay's retry schedule is as reproducible as its batches.
	rng := rand.New(rand.NewSource(seed))

	start := time.Now()
	sent, batches, snapshots := 0, 0, 0
	for _, pb := range plan {
		res, err := load.PostBatch(base, name, pb.ID, pb.Updates, binary, rng)
		if err != nil {
			return err
		}
		sent += res.Accepted
		batches++
		if res.Snapshotted {
			snapshots++
		}
	}
	// Flush so every streamed interaction is visible to the next kernel.
	// The forced snapshot retries like a batch: under injected faults the
	// daemon may defer publication with a 503.
	if err := load.WithRetry(rng, func() (int, error) {
		resp, err := http.Post(base+"/graphs/"+name+"/snapshot", "application/json", nil)
		if err != nil {
			return 0, err
		}
		code := resp.StatusCode
		if err := load.Drain(resp, http.StatusOK); err != nil && !load.RetryableStatus(code) {
			return code, fmt.Errorf("snapshot %q: %w", name, err)
		}
		return code, nil
	}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "tweetgen: streamed %d updates in %d batches (%d snapshots) in %v (%.0f updates/s)\n",
		sent, batches, snapshots, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds())
	return nil
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "tweetgen:", v)
	os.Exit(1)
}
