// Command tweetgen emits a synthetic Twitter stream (the Spinn3r-harvest
// substitute) or the DIMACS mention graph built from it.
//
// Usage:
//
//	tweetgen -preset h1n1 -scale 0.25 -seed 1            # tweets to stdout
//	tweetgen -preset atlflood -format dimacs > graph.txt # mention graph
//	tweetgen -users 5000 -tweets 8000 -topic storm       # custom corpus
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"graphct/internal/dimacs"
	"graphct/internal/tweets"
)

func main() {
	preset := flag.String("preset", "", "corpus preset: h1n1, atlflood, sept1 (empty = custom)")
	scale := flag.Float64("scale", 0.25, "preset size multiplier (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "tweets", "output: tweets | dimacs | stats")
	users := flag.Int("users", 1000, "custom corpus: user pool size")
	hubs := flag.Int("hubs", 10, "custom corpus: broadcast hubs")
	ntweets := flag.Int("tweets", 2000, "custom corpus: messages")
	topic := flag.String("topic", "topic", "custom corpus: keyword/hashtag")
	nospam := flag.Bool("nospam", false, "strip spam from the stream (the paper's non-spam harvests)")
	flag.Parse()

	var opt tweets.CorpusOptions
	switch *preset {
	case "h1n1":
		opt = tweets.H1N1Corpus(*scale, *seed)
	case "atlflood":
		opt = tweets.AtlFloodCorpus(*scale, *seed)
	case "sept1":
		opt = tweets.Sept1Corpus(*scale, *seed)
	case "":
		opt = tweets.CorpusOptions{
			Seed: *seed, Users: *users, Hubs: *hubs, Tweets: *ntweets, Topic: *topic,
			RetweetFrac: 0.4, ConvFrac: 0.12, SelfFrac: 0.03, DeepTreeProb: 0.25,
			ConvGroups: *users/10 + 1, ConvGroupSize: 3, WeekLo: 36, WeekHi: 39,
		}
	default:
		fatal(fmt.Sprintf("unknown preset %q", *preset))
	}

	ts := tweets.Generate(opt)
	if *nospam {
		ts = tweets.FilterSpam(ts, 0)
	}
	switch *format {
	case "tweets":
		w := bufio.NewWriter(os.Stdout)
		for _, t := range ts {
			fmt.Fprintf(w, "%d\tweek%d\t@%s\t%s\n", t.ID, t.Week, t.Author, t.Text)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "dimacs":
		ug := tweets.Build(ts)
		if err := dimacs.Write(os.Stdout, ug.Graph.Undirected()); err != nil {
			fatal(err)
		}
	case "stats":
		ug := tweets.Build(ts)
		s := ug.Stats
		fmt.Printf("tweets %d\nwith-mentions %d\nusers %d\nunique-interactions %d\nself-references %d\nretweets %d\n",
			s.Tweets, s.TweetsWithMentions, s.Users, s.UniqueInteractions, s.SelfReferences, s.Retweets)
	default:
		fatal(fmt.Sprintf("unknown format %q", *format))
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "tweetgen:", v)
	os.Exit(1)
}
