// Command loadgen is the mixed-workload SLO harness for graphctd: it
// drives a configurable blend of cheap kernel reads (open-loop at target
// QPS and closed-loop workers), sparse expensive betweenness-centrality
// requests and streaming ingest against a daemon, and records per-class
// p50/p95/p99 latencies, error/429/503 rates and achieved throughput into
// a machine-readable BENCH_LOAD.json. The paper's serving premise —
// interactive social-network analysis while the graph keeps changing —
// lives or dies on exactly this contention, so the harness is how the
// repo measures it and how CI gates on it.
//
// Usage:
//
//	loadgen                                  # self-hosted ablation: lanes off vs on
//	loadgen -base http://localhost:8423 -prep -config lanes_on
//	loadgen -mult 1,2,4 -duration 10s        # saturation curve
//	loadgen -check BENCH_LOAD.json           # schema-validate an existing report
//
// With no -base, loadgen starts an in-process graphctd server on a
// loopback listener, creates and R-MAT-prefills a live graph through the
// public HTTP API, and runs the workload against it — by default twice,
// once with QoS lanes off and once with -cheap-reserved slots on, so one
// invocation produces the lanes ablation the repo commits. With -base it
// drives an external daemon instead (whose lane configuration is whatever
// the daemon was started with; label the row via -config).
//
// Every workload decision is deterministic from -seed: the prefill graph,
// the ingest stream (batch IDs included, so reruns dedupe server-side
// rather than double-apply), and each read class's parameter sequence.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"graphct/internal/gen"
	"graphct/internal/load"
	"graphct/internal/server"
	"graphct/internal/stream"
)

func main() {
	base := flag.String("base", "", "drive an external graphctd at this base URL (empty = self-host an in-process server)")
	graphName := flag.String("graph", "live", "live graph to drive")
	scale := flag.Int("scale", 13, "R-MAT scale of the prefilled live graph (2^scale vertices, 16x edges)")
	prep := flag.Bool("prep", false, "external mode: create and prefill the live graph before driving (self-host always preps)")
	waitReady := flag.Duration("wait-ready", 10*time.Second, "external mode: poll the daemon's /healthz this long before giving up")
	seed := flag.Int64("seed", 1, "seed for the prefill graph, ingest stream and read-parameter sequences")
	duration := flag.Duration("duration", 8*time.Second, "measured window per row")
	warmup := flag.Duration("warmup", 2*time.Second, "ramp time before measurement starts (samples discarded)")

	statsQPS := flag.Float64("stats-qps", 150, "open-loop stats reads per second")
	bfsQPS := flag.Float64("bfs-qps", 60, "open-loop bfs reads per second (random sources defeat the result cache)")
	componentsQPS := flag.Float64("components-qps", 20, "open-loop connected-components reads per second")
	closedWorkers := flag.Int("closed-workers", 2, "closed-loop workers cycling stats/degrees/clustering back-to-back (0 disables)")
	bcQPS := flag.Float64("bc-qps", 2, "open-loop k-betweenness-centrality requests per second (the expensive class)")
	bcK := flag.Int("bc-k", 1, "kcentrality k parameter")
	bcSamples := flag.Int("bc-samples", 256, "kcentrality sample count (the expensiveness dial)")
	ingestQPS := flag.Float64("ingest-qps", 10, "ingest batches per second")
	ingestBatch := flag.Int("ingest-batch", 256, "updates per ingest batch")
	multSpec := flag.String("mult", "1", "comma-separated open-loop rate multipliers; several produce a saturation curve")

	lanes := flag.String("lanes", "ablate", "self-host lane configs to measure: off | on | ablate (both)")
	maxConcurrent := flag.Int("max-concurrent", 2, "self-host: kernels executing at once")
	maxQueued := flag.Int("max-queued", 32, "self-host: kernel queue bound per lane")
	cheapReserved := flag.Int("cheap-reserved", 1, "self-host: slots reserved for cheap kernels in the lanes-on config")
	clientRate := flag.Float64("client-rate", 0, "self-host: per-client kernel rate limit (0 disables)")
	clientName := flag.String("client", "loadgen", "X-Graphct-Client identity prefix (per-class suffixes are appended; empty sends no header)")

	configLabel := flag.String("config", "", "row label for external runs (default \"default\")")
	out := flag.String("out", "BENCH_LOAD.json", "report path")
	appendOut := flag.Bool("append", false, "append rows to an existing report instead of replacing it")
	check := flag.String("check", "", "validate FILE against the report schema and exit (nonzero on malformed)")
	assertCheapP99 := flag.Float64("assert-cheap-p99-ms", 0, "fail unless every cheap class's p99 in every new row is under this bound (0 disables)")
	flag.Parse()

	if *check != "" {
		r, err := load.ReadReport(*check)
		if err == nil {
			err = r.Validate()
		}
		if err != nil {
			fatal(fmt.Errorf("check %s: %w", *check, err))
		}
		fmt.Printf("loadgen: %s: valid (%d rows)\n", *check, len(r.Rows))
		return
	}

	mults, err := parseMults(*multSpec)
	if err != nil {
		fatal(err)
	}

	run := runConfig{
		graph: *graphName, scale: *scale, seed: *seed,
		duration: *duration, warmup: *warmup,
		statsQPS: *statsQPS, bfsQPS: *bfsQPS, componentsQPS: *componentsQPS,
		closedWorkers: *closedWorkers,
		bcQPS:         *bcQPS, bcK: *bcK, bcSamples: *bcSamples,
		ingestQPS: *ingestQPS, ingestBatch: *ingestBatch,
		clientName: *clientName,
	}

	report := &load.Report{
		Generator:  "loadgen " + strings.Join(os.Args[1:], " "),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Target:     "self",
	}
	if *base != "" {
		report.Target = *base
	} else {
		report.Scale = *scale
	}
	if *appendOut {
		if prev, err := load.ReadReport(*out); err == nil {
			report.Rows = prev.Rows
		}
	}
	firstNew := len(report.Rows)

	ctx := context.Background()
	if *base != "" {
		label := *configLabel
		if label == "" {
			label = "default"
		}
		if err := waitHealthy(*base, *waitReady); err != nil {
			fatal(err)
		}
		if *prep {
			if err := prepGraph(*base, run.graph, run.scale, run.seed); err != nil {
				fatal(err)
			}
		}
		for _, m := range mults {
			report.Rows = append(report.Rows, run.measure(ctx, *base, label, m))
		}
	} else {
		var configs []selfConfig
		srvCfg := server.Config{
			MaxConcurrent: *maxConcurrent,
			MaxQueued:     *maxQueued,
			CacheBytes:    64 << 20,
			ClientRate:    *clientRate,
			Seed:          *seed,
			SnapshotEvery: 4096, IngestConcurrent: 2, IngestQueued: 64, MaxBatch: 1 << 20,
			BreakerThreshold: 5, BreakerCooldown: time.Second,
		}
		switch *lanes {
		case "off":
			configs = []selfConfig{{"lanes_off", srvCfg}}
		case "on":
			on := srvCfg
			on.CheapReserved = *cheapReserved
			configs = []selfConfig{{"lanes_on", on}}
		case "ablate":
			on := srvCfg
			on.CheapReserved = *cheapReserved
			configs = []selfConfig{{"lanes_off", srvCfg}, {"lanes_on", on}}
		default:
			fatal(fmt.Errorf("unknown -lanes %q (want off, on or ablate)", *lanes))
		}
		for _, sc := range configs {
			rows, err := run.measureSelf(ctx, sc, mults)
			if err != nil {
				fatal(err)
			}
			report.Rows = append(report.Rows, rows...)
		}
	}

	if err := report.WriteReport(*out); err != nil {
		fatal(err)
	}
	if err := report.Validate(); err != nil {
		fatal(fmt.Errorf("generated report is malformed: %w", err))
	}
	printRows(report.Rows[firstNew:])
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s (%d rows)\n", *out, len(report.Rows))

	if *assertCheapP99 > 0 {
		if err := assertCheap(report.Rows[firstNew:], *assertCheapP99); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: cheap p99 under %.0fms in every new row\n", *assertCheapP99)
	}
}

// runConfig is the workload shape, independent of which daemon runs it.
type runConfig struct {
	graph                           string
	scale                           int
	seed                            int64
	duration, warmup                time.Duration
	statsQPS, bfsQPS, componentsQPS float64
	closedWorkers                   int
	bcQPS                           float64
	bcK, bcSamples                  int
	ingestQPS                       float64
	ingestBatch                     int
	clientName                      string
}

type selfConfig struct {
	label string
	cfg   server.Config
}

// cheapClasses are the classes the -assert-cheap-p99-ms SLO covers.
var cheapClasses = map[string]bool{"stats": true, "bfs": true, "components": true, "closed_cheap": true}

// classes builds the per-row workload. Each row gets fresh Ops (so
// sequence counters restart) and a row-unique ingest run ID (so batch IDs
// never collide with a previous row's and dedup cannot eat the stream).
func (rc runConfig) classes(base, label string, mult float64) []load.Class {
	n := 1 << uint(rc.scale)
	target := func(class string) load.Target {
		t := load.Target{Base: base, Graph: rc.graph}
		if rc.clientName != "" {
			t.Client = rc.clientName + "-" + class
		}
		return t
	}
	var cs []load.Class
	if rc.statsQPS > 0 {
		cs = append(cs, load.Class{Name: "stats", QPS: rc.statsQPS * mult,
			Do: target("stats").Kernel("stats", nil)})
	}
	if rc.bfsQPS > 0 {
		rng := rand.New(rand.NewSource(rc.seed + 101))
		cs = append(cs, load.Class{Name: "bfs", QPS: rc.bfsQPS * mult,
			Do: target("bfs").Kernel("bfs", func() string {
				return "src=" + strconv.Itoa(rng.Intn(n)) + "&depth=4"
			})})
	}
	if rc.componentsQPS > 0 {
		cs = append(cs, load.Class{Name: "components", QPS: rc.componentsQPS * mult,
			Do: target("components").Kernel("components", nil)})
	}
	if rc.closedWorkers > 0 {
		t := target("closed")
		ops := []load.Op{
			t.Kernel("stats", nil),
			t.Kernel("degrees", nil),
			t.Kernel("clustering", nil),
		}
		var seq atomic.Int64
		cs = append(cs, load.Class{Name: "closed_cheap", Workers: rc.closedWorkers,
			Do: func(ctx context.Context) (int, error) {
				i := seq.Add(1) - 1
				return ops[i%int64(len(ops))](ctx)
			}})
	}
	if rc.bcQPS > 0 {
		var seq atomic.Int64
		cs = append(cs, load.Class{Name: "bc", QPS: rc.bcQPS * mult,
			Do: target("bc").Kernel("kcentrality", func() string {
				// Vary top so successive requests miss the result cache and
				// actually run the kernel; top barely changes the cost.
				return fmt.Sprintf("k=%d&samples=%d&top=%d", rc.bcK, rc.bcSamples, 10+seq.Add(1)%8)
			})})
	}
	if rc.ingestQPS > 0 {
		runID := fmt.Sprintf("loadgen-%d-%s-m%g", rc.seed, label, mult)
		cs = append(cs, load.Class{Name: "ingest", QPS: rc.ingestQPS * mult,
			Do: target("ingest").Ingest(runID, n, rc.ingestBatch, rc.seed)})
	}
	return cs
}

// measure runs one row against an already-prepared daemon.
func (rc runConfig) measure(ctx context.Context, base, label string, mult float64) load.Row {
	fmt.Fprintf(os.Stderr, "loadgen: %s x%g: %v warmup + %v measured against %s\n",
		label, mult, rc.warmup, rc.duration, base)
	reports := load.Run(ctx, rc.classes(base, label, mult), load.Options{
		Duration: rc.duration, Warmup: rc.warmup,
	})
	return load.Row{
		Config:      label,
		Multiplier:  mult,
		DurationSec: rc.duration.Seconds(),
		WarmupSec:   rc.warmup.Seconds(),
		Classes:     reports,
	}
}

// measureSelf boots an in-process server with cfg, preps the live graph
// through its HTTP API, runs every multiplier, and tears the server down.
func (rc runConfig) measureSelf(ctx context.Context, sc selfConfig, mults []float64) ([]load.Row, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.NewRegistry(), sc.cfg)
	httpSrv := &http.Server{Handler: srv}
	done := make(chan struct{})
	go func() { _ = httpSrv.Serve(ln); close(done) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		<-done
	}()

	if err := prepGraph(base, rc.graph, rc.scale, rc.seed); err != nil {
		return nil, err
	}
	var rows []load.Row
	for _, m := range mults {
		rows = append(rows, rc.measure(ctx, base, sc.label, m))
	}
	return rows, nil
}

// prepGraph creates the live graph (tolerating one that already exists)
// and prefills it with the seed-deterministic R-MAT edge list, then
// force-publishes an epoch so kernels have a graph to read.
func prepGraph(base, name string, scale int, seed int64) error {
	n := 1 << uint(scale)
	rng := rand.New(rand.NewSource(seed))
	resp, err := http.Post(base+"/graphs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q,"format":"live","vertices":%d}`, name, n)))
	if err != nil {
		return err
	}
	if err := load.Drain(resp, http.StatusCreated); err != nil {
		// A daemon that already has the graph (restarted loadgen, warm
		// daemon) is fine; anything else is fatal.
		if !graphExists(base, name) {
			return fmt.Errorf("create live graph %q: %w", name, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: live graph %q already exists; prefilling anyway\n", name)
	}

	edges := gen.RMATEdges(gen.PaperRMAT(scale, seed))
	const batch = 8192
	start := time.Now()
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		ups := make([]stream.Update, 0, hi-lo)
		for i, e := range edges[lo:hi] {
			if e.U == e.V {
				continue
			}
			ups = append(ups, stream.Update{U: e.U, V: e.V, Time: int64(lo + i)})
		}
		id := fmt.Sprintf("loadgen-prefill-%d/%d", seed, lo)
		if _, err := load.PostBatch(base, name, id, ups, true, rng); err != nil {
			return fmt.Errorf("prefill: %w", err)
		}
	}
	if err := load.WithRetry(rng, func() (int, error) {
		resp, err := http.Post(base+"/graphs/"+name+"/snapshot", "application/json", nil)
		if err != nil {
			return 0, err
		}
		code := resp.StatusCode
		if err := load.Drain(resp, http.StatusOK); err != nil && !load.RetryableStatus(code) {
			return code, fmt.Errorf("snapshot: %w", err)
		}
		return code, nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: prefilled %q with %d R-MAT edges (scale %d) in %v\n",
		name, len(edges), scale, time.Since(start).Round(time.Millisecond))
	return nil
}

// waitHealthy polls /healthz until the daemon answers, so the smoke
// script can start graphctd and loadgen back-to-back without a sleep.
func waitHealthy(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			load.DrainBody(resp)
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %v (last: %v)", base, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func graphExists(base, name string) bool {
	resp, err := http.Get(base + "/graphs/" + name + "/epochs")
	if err != nil {
		return false
	}
	load.DrainBody(resp)
	return resp.StatusCode == http.StatusOK
}

func parseMults(spec string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		m, err := strconv.ParseFloat(f, 64)
		if err != nil || m <= 0 {
			return nil, fmt.Errorf("bad -mult element %q", f)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mult lists no multipliers")
	}
	return out, nil
}

// assertCheap enforces the CI SLO: every cheap class that measured
// anything stays under the p99 bound, in every newly produced row.
func assertCheap(rows []load.Row, boundMs float64) error {
	for _, row := range rows {
		for _, c := range row.Classes {
			if !cheapClasses[c.Name] || c.Requests == 0 {
				continue
			}
			if c.P99Ms > boundMs {
				return fmt.Errorf("%s x%g: cheap class %s p99 %.1fms exceeds bound %.0fms",
					row.Config, row.Multiplier, c.Name, c.P99Ms, boundMs)
			}
		}
	}
	return nil
}

func printRows(rows []load.Row) {
	w := os.Stderr
	fmt.Fprintf(w, "%-12s %5s  %-12s %-6s %8s %9s %7s %7s %9s %9s %9s\n",
		"config", "mult", "class", "mode", "reqs", "qps", "ok%", "429%", "p50ms", "p95ms", "p99ms")
	for _, row := range rows {
		for _, c := range row.Classes {
			fmt.Fprintf(w, "%-12s %5g  %-12s %-6s %8d %9.1f %6.1f%% %6.1f%% %9.2f %9.2f %9.2f\n",
				row.Config, row.Multiplier, c.Name, c.Mode, c.Requests, c.AchievedQPS,
				100*c.Rate("200"), 100*c.Rate("429"), c.P50Ms, c.P95Ms, c.P99Ms)
		}
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "loadgen:", v)
	os.Exit(1)
}
