// Command graphct runs GraphCT analysis scripts: line-oriented commands
// over one in-memory graph, in the style of the paper's scripting
// interface.
//
// Usage:
//
//	graphct [-seed N] SCRIPT.gct
//	graphct [-seed N] -e 'read dimacs g.txt' -e 'print degrees'
//
// Script commands:
//
//	read dimacs FILE | read edgelist FILE | read binary FILE
//	print diameter [PERCENT] | print degrees | print components
//	save graph | restore graph
//	extract component N [=> comp.bin]
//	kcentrality K SAMPLES [=> scores.txt]
//	kcores K
//	clustering [=> coef.txt]
//	stats | components | undirected | reciprocal | bfs SRC DEPTH
//	sssp SRC [=> dist.txt]
//	compare FILE1 FILE2 TOP_PERCENT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphct/internal/script"
)

type lines []string

func (l *lines) String() string     { return strings.Join(*l, "; ") }
func (l *lines) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	seed := flag.Int64("seed", 1, "random seed for sampling kernels")
	var exprs lines
	flag.Var(&exprs, "e", "execute one script line (repeatable)")
	flag.Parse()

	in := script.New(os.Stdout, "")
	in.SetSeed(*seed)

	if len(exprs) > 0 {
		if flag.NArg() != 0 {
			fatal("cannot mix -e lines with a script file")
		}
		if err := in.Run(strings.NewReader(strings.Join(exprs, "\n"))); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: graphct [-seed N] SCRIPT | graphct -e LINE [-e LINE...]")
		os.Exit(2)
	}
	if err := in.RunFile(flag.Arg(0)); err != nil {
		fatal(err)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "graphct:", v)
	os.Exit(1)
}
