// Command graphct runs GraphCT analysis scripts: line-oriented commands
// over one in-memory graph, in the style of the paper's scripting
// interface.
//
// Usage:
//
//	graphct [-seed N] SCRIPT.gct
//	graphct [-seed N] -e 'read dimacs g.txt' -e 'print degrees'
//
// Script commands:
//
//	read dimacs FILE | read edgelist FILE | read binary FILE | read snapshot FILE
//	print diameter [PERCENT] | print degrees | print components
//	save graph | save snapshot FILE | restore graph
//	extract component N [=> comp.bin]
//	kcentrality K SAMPLES [=> scores.txt]
//	kcores K
//	clustering [=> coef.txt]
//	stats | components | undirected | reciprocal | bfs SRC DEPTH
//	sssp SRC [=> dist.txt]
//	compare FILE1 FILE2 TOP_PERCENT
//	connect URL | graphs | fetch NAME | disconnect
//
// "read snapshot" and "save snapshot" use graphctd's durable snapshot
// format, so scripts can pick up a graph from — or hand one to — a
// daemon data directory. "connect" targets a running graphctd daemon or
// router instead (the URL is environment-expanded, so scripts can say
// "connect $GRAPHCT_URL"); "graphs" lists what it serves and
// "fetch NAME" pulls a graph's newest durable snapshot down as the
// current graph for local analysis.
//
// Script errors are reported with the file and line of the failing
// command. Exit codes distinguish failure classes: 2 for parse/usage
// errors (of the command line or a script command), 1 for runtime
// failures of well-formed commands (missing graph files, kernel errors).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"graphct/internal/script"
)

// Exit codes: parse/usage errors and kernel/runtime failures are
// distinct so driving processes (the paper's "external monitoring
// process") can tell a broken script from a failed analysis.
const (
	exitOK      = 0
	exitRuntime = 1 // well-formed command failed (I/O, kernel)
	exitParse   = 2 // flag misuse or script parse/usage error
)

type lines []string

func (l *lines) String() string     { return strings.Join(*l, "; ") }
func (l *lines) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphct", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "random seed for sampling kernels")
	var exprs lines
	fs.Var(&exprs, "e", "execute one script line (repeatable)")
	if err := fs.Parse(args); err != nil {
		return exitParse
	}

	in := script.New(stdout, "")
	in.SetSeed(*seed)

	if len(exprs) > 0 {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "graphct: cannot mix -e lines with a script file")
			return exitParse
		}
		return report(stderr, in.Run(strings.NewReader(strings.Join(exprs, "\n"))))
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: graphct [-seed N] SCRIPT | graphct -e LINE [-e LINE...]")
		return exitParse
	}
	return report(stderr, in.RunFile(fs.Arg(0)))
}

// report prints err (already carrying file:line provenance from the
// interpreter) and maps it to an exit code.
func report(stderr io.Writer, err error) int {
	if err == nil {
		return exitOK
	}
	fmt.Fprintln(stderr, "graphct:", err)
	var se *script.Error
	if errors.As(err, &se) && se.Parse {
		return exitParse
	}
	return exitRuntime
}
