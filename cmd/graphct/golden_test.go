package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/graphct -run TestGoldenScripts -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenScripts runs every script under testdata/scripts through the
// real CLI entry point with a pinned seed and compares the full stdout
// byte-for-byte against its golden file. These are the end-to-end
// regression net for the analyst workflow: read, census, extraction,
// sampled centrality, kernels — any behavioral drift in output shows up
// as a diff here.
func TestGoldenScripts(t *testing.T) {
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.gct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no scripts under testdata/scripts")
	}
	for _, script := range scripts {
		name := strings.TrimSuffix(filepath.Base(script), ".gct")
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run([]string{"-seed", "7", script}, &out, &errOut); code != exitOK {
				t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
			}
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("output drifted from %s\n--- got ---\n%s--- want ---\n%s(re-bless with -update if intentional)",
					golden, out.String(), want)
			}
		})
	}
}
