package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from the current output:
//
//	go test ./cmd/graphct -run TestGoldenScripts -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGoldenScripts runs every script under testdata/scripts through the
// real CLI entry point with a pinned seed and compares the full stdout
// byte-for-byte against its golden file. These are the end-to-end
// regression net for the analyst workflow: read, census, extraction,
// sampled centrality, kernels — any behavioral drift in output shows up
// as a diff here.
func TestGoldenScripts(t *testing.T) {
	// Scripts run from a staged copy of testdata so commands that write
	// files (save snapshot) never dirty the checkout; goldens are still
	// read from — and with -update, re-blessed into — the real
	// testdata/golden directory.
	stage := stageTestdata(t)
	scripts, err := filepath.Glob(filepath.Join(stage, "scripts", "*.gct"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no scripts under testdata/scripts")
	}
	for _, script := range scripts {
		name := strings.TrimSuffix(filepath.Base(script), ".gct")
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run([]string{"-seed", "7", script}, &out, &errOut); code != exitOK {
				t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
			}
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("output drifted from %s\n--- got ---\n%s--- want ---\n%s(re-bless with -update if intentional)",
					golden, out.String(), want)
			}
		})
	}
}

// stageTestdata copies testdata/scripts and the shared input graph into a
// temp directory, preserving the relative layout scripts assume
// (../g.dimacs from the scripts directory).
func stageTestdata(t *testing.T) string {
	t.Helper()
	stage := t.TempDir()
	if err := os.Mkdir(filepath.Join(stage, "scripts"), 0o755); err != nil {
		t.Fatal(err)
	}
	copyFile := func(src, dst string) {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile(filepath.Join("testdata", "g.dimacs"), filepath.Join(stage, "g.dimacs"))
	scripts, err := filepath.Glob(filepath.Join("testdata", "scripts", "*.gct"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scripts {
		copyFile(s, filepath.Join(stage, "scripts", filepath.Base(s)))
	}
	return stage
}
