package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphct/internal/dimacs"
	"graphct/internal/gen"
)

func writeGraph(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "g.dimacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.Write(f, gen.Complete(4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeScript(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "test.gct")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScriptOK(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, dir)
	script := writeScript(t, dir, "read dimacs g.dimacs\nprint degrees\n")
	var out, errOut bytes.Buffer
	if code := run([]string{script}, &out, &errOut); code != exitOK {
		t.Fatalf("exit %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "degrees:") {
		t.Fatalf("missing kernel output: %s", out.String())
	}
}

// TestParseErrorProvenanceAndCode checks a malformed script command
// reports file:line and exits with the parse code.
func TestParseErrorProvenanceAndCode(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, dir)
	script := writeScript(t, dir, "read dimacs g.dimacs\nfrobnicate 7\n")
	var out, errOut bytes.Buffer
	if code := run([]string{script}, &out, &errOut); code != exitParse {
		t.Fatalf("exit %d, want %d (parse)", code, exitParse)
	}
	if msg := errOut.String(); !strings.Contains(msg, script+":2:") || !strings.Contains(msg, "unknown command") {
		t.Fatalf("stderr lacks file:line provenance: %s", msg)
	}
}

// TestRuntimeErrorCode checks a well-formed command that fails (missing
// graph file) exits with the runtime code, distinct from parse errors.
func TestRuntimeErrorCode(t *testing.T) {
	dir := t.TempDir()
	script := writeScript(t, dir, "read dimacs missing.dimacs\n")
	var out, errOut bytes.Buffer
	if code := run([]string{script}, &out, &errOut); code != exitRuntime {
		t.Fatalf("exit %d, want %d (runtime)", code, exitRuntime)
	}
	if msg := errOut.String(); !strings.Contains(msg, script+":1:") {
		t.Fatalf("stderr lacks file:line provenance: %s", msg)
	}
}

func TestInlineExprErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-e", "components"}, &out, &errOut); code != exitParse {
		t.Fatalf("kernel before read: exit %d, want %d", code, exitParse)
	}
	if !strings.Contains(errOut.String(), "script line 1") {
		t.Fatalf("stderr lacks line provenance: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-e", "print degrees", "extra.gct"}, &out, &errOut); code != exitParse {
		t.Fatalf("mixing -e with file: exit %d, want %d", code, exitParse)
	}
	errOut.Reset()
	if code := run([]string{}, &out, &errOut); code != exitParse {
		t.Fatalf("no args: exit %d, want %d", code, exitParse)
	}
}
