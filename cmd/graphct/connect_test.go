package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphct/internal/server"
)

// TestGoldenConnect runs the connect workflow end to end: a real durable
// daemon is stood up in-process, seeded with a deterministic live graph,
// and the CLI targets it through $GRAPHCT_URL — connect, list, fetch the
// shipped snapshot, then analyze it locally. Output is golden-compared
// like every other script; -update re-blesses it.
func TestGoldenConnect(t *testing.T) {
	srv := server.New(server.NewRegistry(), server.Config{
		DataDir:       t.TempDir(),
		SnapshotEvery: -1, // publish (and persist) after every batch
	})
	if _, err := srv.AddLive("g", 6); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A two-component shape: a path over 0..4 with one chord, vertex 5
	// isolated. Everything the script prints derives from this.
	updates := `[{"u":0,"v":1,"time":1},{"u":1,"v":2,"time":2},{"u":2,"v":3,"time":3},{"u":0,"v":2,"time":4},{"u":3,"v":4,"time":5}]`
	resp, err := http.Post(ts.URL+"/graphs/g/ingest?batch_id=seed", "application/json", strings.NewReader(updates))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest: HTTP %d", resp.StatusCode)
	}
	t.Setenv("GRAPHCT_URL", ts.URL)

	var out, errOut bytes.Buffer
	script := filepath.Join("testdata", "connect", "connect.gct")
	if code := run([]string{"-seed", "7", script}, &out, &errOut); code != exitOK {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "golden", "connect.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output drifted from %s\n--- got ---\n%s--- want ---\n%s(re-bless with -update if intentional)",
			golden, out.String(), want)
	}
}
