package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"graphct/internal/blob"
	"graphct/internal/cluster"
	"graphct/internal/graph"
	"graphct/internal/stream"
)

// TestCrashRecovery is the acceptance scenario end to end, against the
// real binary: stream batches into a durable graphctd, SIGKILL it with a
// batch in flight, restart it over the same data directory, retry the
// unacked tail, and require the recovered graph to be bit-identical —
// adjacency, edge count, triangle counts — to an uninterrupted replay of
// the same batch sequence through internal/stream.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemons; skipped in -short")
	}
	const (
		vertices  = 200
		batches   = 30
		perBatch  = 25
		killAfter = 18 // acked batches before the SIGKILL
	)
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr
	args := []string{
		"-addr", addr,
		"-data-dir", dataDir,
		"-graph", "live=live:" + strconv.Itoa(vertices),
		"-snapshot-every", "150",
	}

	workload := crashBatches(42, vertices, batches, perBatch)

	daemon := startDaemon(t, bin, args)
	waitReady(t, base)

	epochs := []uint64{}
	trackEpoch := func(resp *http.Response) {
		if h := resp.Header.Get("X-Graphct-Epoch"); h != "" {
			if e, err := strconv.ParseUint(h, 10, 64); err == nil {
				epochs = append(epochs, e)
			}
		}
	}
	for b := 0; b < killAfter; b++ {
		resp := postBatch(t, base, b, workload[b])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: HTTP %d", b, resp.StatusCode)
		}
		trackEpoch(resp)
		resp.Body.Close()
	}

	// Fire the next batch and SIGKILL the daemon while it is in flight:
	// the batch may or may not have been applied and logged — exactly the
	// ambiguity a crashed client faces. The retry after restart must be
	// correct either way (WAL replay + idempotency window).
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		resp, err := http.Post(ingestURL(base, killAfter), "application/json",
			bytes.NewReader(encodeBatch(t, workload[killAfter])))
		if err == nil {
			resp.Body.Close()
		}
	}()
	_ = daemon.Process.Kill() // SIGKILL: no shutdown path runs
	<-inflight
	_ = daemon.Wait()

	// Restart over the same data directory and resend everything the
	// client never saw acked, with the same batch ids.
	daemon2 := startDaemon(t, bin, args)
	waitReady(t, base)
	for b := killAfter; b < batches; b++ {
		resp := postBatch(t, base, b, workload[b])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d after restart: HTTP %d", b, resp.StatusCode)
		}
		trackEpoch(resp)
		resp.Body.Close()
	}
	// Flush, so the final state is published and durable.
	resp, err := http.Post(base+"/graphs/live/snapshot", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("final snapshot: %v / %v", err, resp)
	}
	resp.Body.Close()

	// Reference: one uninterrupted replay of the same 30 batches.
	clean := stream.New(vertices)
	for _, batch := range workload {
		if _, err := clean.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	wantGraph := clean.Snapshot()

	// The serving surface agrees with the reference…
	var stats struct {
		Edges    int64   `json:"edges"`
		Vertices int     `json:"vertices"`
		Global   float64 `json:"global_clustering"`
	}
	getJSON(t, base+"/graphs/live/stats", &stats)
	if stats.Edges != wantGraph.NumEdges() || stats.Vertices != vertices {
		t.Fatalf("served %d edges / %d vertices, clean replay has %d / %d",
			stats.Edges, stats.Vertices, wantGraph.NumEdges(), vertices)
	}
	var cc struct {
		Global float64 `json:"global_clustering"`
	}
	getJSON(t, base+"/graphs/live/clustering", &cc)
	if want := cluster.Global(wantGraph); cc.Global != want {
		t.Fatalf("served clustering %v, clean replay %v", cc.Global, want)
	}

	// …and so do the durable bytes: the newest on-disk snapshot is
	// bit-identical to the reference adjacency.
	snapPath := newestSnapshot(t, filepath.Join(dataDir, "blobs", "live"))
	snap, err := blob.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("read durable snapshot %s: %v", snapPath, err)
	}
	graphsEqual(t, snap.Graph, wantGraph)

	// Epochs observed by the client never went backwards, across the kill.
	for i := 1; i < len(epochs); i++ {
		if epochs[i] < epochs[i-1] {
			t.Fatalf("epoch went backwards across restart: %d after %d", epochs[i], epochs[i-1])
		}
	}

	// The recovery metrics say what happened.
	var metrics struct {
		RecoveredGraphs  int64 `json:"recovered_graphs"`
		RecoveredBatches int64 `json:"recovered_batches"`
		RecoveryMs       int64 `json:"recovery_ms"`
	}
	getJSON(t, base+"/metrics", &metrics)
	if metrics.RecoveredGraphs != 1 {
		t.Fatalf("recovered_graphs = %d, want 1", metrics.RecoveredGraphs)
	}

	_ = daemon2.Process.Kill()
	_ = daemon2.Wait()
}

// crashBatches mirrors the server soak generator: a deterministic seeded
// workload of inserts and deletes.
func crashBatches(seed int64, n, batches, perBatch int) [][]stream.Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]stream.Update, batches)
	for b := range out {
		batch := make([]stream.Update, perBatch)
		for i := range batch {
			batch[i] = stream.Update{
				U:    int32(rng.Intn(n)),
				V:    int32(rng.Intn(n)),
				Time: int64(b*perBatch + i),
				Del:  rng.Intn(5) == 0,
			}
		}
		out[b] = batch
	}
	return out
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "graphctd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon not ready in time (last err %v)", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func ingestURL(base string, b int) string {
	return fmt.Sprintf("%s/graphs/live/ingest?batch_id=crash-%d", base, b)
}

func encodeBatch(t *testing.T, batch []stream.Update) []byte {
	t.Helper()
	type ju struct {
		U    int32 `json:"u"`
		V    int32 `json:"v"`
		Time int64 `json:"time,omitempty"`
		Del  bool  `json:"del,omitempty"`
	}
	out := make([]ju, len(batch))
	for i, up := range batch {
		out[i] = ju{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postBatch(t *testing.T, base string, b int, batch []stream.Update) *http.Response {
	t.Helper()
	resp, err := http.Post(ingestURL(base, b), "application/json", bytes.NewReader(encodeBatch(t, batch)))
	if err != nil {
		t.Fatalf("batch %d: %v", b, err)
	}
	return resp
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// newestSnapshot returns the lexicographically last .snap under dir —
// zero-padded epoch keys make that the newest.
func newestSnapshot(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read snapshot dir: %v", err)
	}
	last := ""
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snap" {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatalf("no durable snapshots under %s", dir)
	}
	return filepath.Join(dir, last)
}

func graphsEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape: got %d vertices / %d edges, want %d / %d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := int32(0); int(v) < want.NumVertices(); v++ {
		g, w := got.Neighbors(v), want.Neighbors(v)
		if len(g) != len(w) {
			t.Fatalf("vertex %d: got %d neighbors, want %d", v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("vertex %d neighbor %d: got %d, want %d", v, i, g[i], w[i])
			}
		}
	}
}
