// Command graphctd is GraphCT's long-running analysis daemon: it holds a
// registry of named in-memory CSR graphs and serves the toolkit's kernels
// as HTTP JSON endpoints, amortizing one expensive ingest across many
// clients and many kernel invocations. The serving path caches results,
// coalesces identical concurrent requests and applies admission control;
// see internal/server.
//
// Usage:
//
//	graphctd [-addr :8423] [-graph NAME=FORMAT:PATH]... [flags]
//
// Endpoints:
//
//	GET    /healthz
//	GET    /readyz
//	GET    /metrics
//	GET    /debug/failpoints           (requires -debug)
//	POST   /debug/failpoints           {"arm":"spec"} | {"disarm":"name"} |
//	                                   {"disarm_all":true} | {"seed":N}
//	GET    /graphs
//	POST   /graphs                     {"name","format","path","directed"}
//	                                   or {"name","format":"live","vertices":N}
//	DELETE /graphs/{name}
//	POST   /graphs/{name}/extract      {"component":N,"as":"newname"}
//	POST   /graphs/{name}/ingest       JSON [{"u","v","time","del"}] or the
//	                                   binary framing (see internal/stream)
//	POST   /graphs/{name}/snapshot     force-publish a live graph's epoch
//	GET    /graphs/{name}/epochs       current + retained durable epochs
//	GET    /graphs/{name}/snapshot     newest durable snapshot, raw GCTS
//	                                   (the replication bootstrap feed)
//	GET    /graphs/{name}/wal?from=E   log segment based at epoch E, raw
//	                                   (the replication tail feed)
//	GET    /graphs/{name}/components
//	GET    /graphs/{name}/stats
//	GET    /graphs/{name}/degrees
//	GET    /graphs/{name}/clustering
//	GET    /graphs/{name}/diameter
//	GET    /graphs/{name}/kcores?k=K
//	GET    /graphs/{name}/kcentrality?k=K&samples=S&top=N
//	GET    /graphs/{name}/bfs?src=V&depth=D
//	GET    /graphs/{name}/sssp?src=V
//
// Kernel endpoints accept ?timeout_ms=N for a per-request deadline. Live
// graphs (created with format "live", or preloaded via
// -graph NAME=live:VERTICES) accept batched edge updates on their ingest
// endpoint; every -snapshot-every effective mutations the daemon publishes
// a new immutable epoch that subsequent kernel requests resolve, while
// requests already in flight keep their old epoch's view.
//
// Durability: with -data-dir set, every published epoch of a live graph is
// committed to a blob store under the directory and every applied ingest
// batch is appended to a write-ahead log between epochs; a restarted
// daemon warm-restarts each live graph from its newest snapshot plus the
// log tail (acked batches survive kill -9), reporting "recovering" on
// /readyz meanwhile. -retain-epochs bounds the snapshot history, which
// kernel endpoints can address with ?epoch=E for point-in-time reads.
//
// QoS: -cheap-reserved N enables priority lanes in the kernel admission
// pool — cheap kernels (stats, degrees, components, clustering, kcores,
// bfs, sssp) keep N reserved slots that expensive kernels (kcentrality,
// diameter) can never occupy, and each class queues separately, so cheap
// reads never wait behind a centrality run; every kernel response names
// its lane in X-Graphct-Class. -client-rate R [-client-burst B] adds
// per-client token-bucket rate limiting keyed on the X-Graphct-Client
// request header (429 + Retry-After when a bucket drains), and
// -cache-max-entry bounds cost-aware cache admission so one giant result
// cannot evict hundreds of cheap entries.
//
// Failure handling: kernel panics are isolated per request (500 +
// kernel_panics metric, the daemon keeps serving); a (graph, kernel)
// pair that fails -breaker-threshold times in a row trips a circuit
// breaker (503 until a half-open probe succeeds); kernel requests may
// opt into degraded serving with ?stale=allow, which answers a 429/503
// rejection from the last computed result with X-Graphct-Stale naming
// its epoch; ingest requests may carry ?batch_id=ID, and retried IDs are
// answered from an idempotency window instead of double-applying.
// GRAPHCT_FAILPOINTS (and, with -debug, POST /debug/failpoints) arms
// fault injection; see internal/failpoint. On SIGINT/SIGTERM the daemon
// stops accepting connections and drains in-flight kernels before
// exiting.
//
// Topology: one binary serves three roles. The default is a standalone
// worker. -follow URL turns a worker into a follower that bootstraps
// every live graph from the leader's newest snapshot and tails its
// write-ahead log, serving reads at the leader's own epoch numbers.
// -mode router -workers "LEADER|REPLICA,...," runs a coordinator that
// owns no graphs: a consistent-hash ring over graph names sends writes to
// the owning shard's leader and fans kernel reads across the shard's
// members, honoring X-Graphct-Min-Epoch read-your-epoch floors and
// answering 503 with X-Graphct-Degraded when a shard is down. See
// DESIGN.md §12.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"graphct/internal/failpoint"
	"graphct/internal/graph"
	"graphct/internal/server"
)

type graphFlags []string

func (g *graphFlags) String() string     { return strings.Join(*g, ", ") }
func (g *graphFlags) Set(s string) error { *g = append(*g, s); return nil }

func main() {
	addr := flag.String("addr", ":8423", "listen address")
	mode := flag.String("mode", "server", "role: server (owns graphs) or router (coordinates -workers shards)")
	workers := flag.String("workers", "", "router mode topology: comma-separated shards, each LEADER_URL|REPLICA_URL|... (first member is the leader)")
	follow := flag.String("follow", "", "replicate every live graph from this leader daemon's URL (worker mode)")
	followInterval := flag.Duration("follow-interval", 200*time.Millisecond, "poll interval of the -follow replication tailer")
	maxConcurrent := flag.Int("max-concurrent", 2, "kernels executing at once")
	maxQueued := flag.Int("max-queued", 16, "kernel requests waiting for a slot before 429 (per lane with -cheap-reserved)")
	cheapReserved := flag.Int("cheap-reserved", 0, "QoS lanes: kernel slots reserved for cheap-class requests so stats never queue behind centrality (0 disables lanes)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache bound in bytes (<0 disables)")
	cacheMaxEntry := flag.Int64("cache-max-entry", 0, "cost-aware cache admission: results larger than this are never cached (0 = cache-bytes/8, <0 unbounded)")
	clientRate := flag.Float64("client-rate", 0, "per-client kernel requests/s keyed on X-Graphct-Client; excess gets 429 + Retry-After (0 disables)")
	clientBurst := flag.Int("client-burst", 0, "per-client token-bucket burst capacity (0 = 2x -client-rate)")
	timeout := flag.Duration("timeout", 0, "default per-request kernel deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight kernels")
	seed := flag.Int64("seed", 1, "random seed for sampling kernels")
	directed := flag.Bool("directed", false, "load -graph files as directed")
	snapshotEvery := flag.Int64("snapshot-every", 4096, "publish a live-graph epoch every N effective mutations (<0 = every batch)")
	ingestConcurrent := flag.Int("ingest-concurrent", 2, "ingest batches applying at once")
	ingestQueued := flag.Int("ingest-queue", 64, "ingest batches waiting for a slot before 429")
	maxBatch := flag.Int("max-batch", 1<<20, "updates accepted per ingest request")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive kernel failures tripping a (graph,kernel) circuit breaker (<0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "how long a tripped breaker stays open before half-opening")
	debug := flag.Bool("debug", false, "expose the POST /debug/failpoints fault-injection endpoint")
	dataDir := flag.String("data-dir", "", "durability root: live graphs persist snapshots and a write-ahead batch log here and warm-restart on boot (empty = in-memory only)")
	retainEpochs := flag.Int("retain-epochs", 3, "durable snapshot epochs kept per live graph (also serve ?epoch=E point-in-time reads)")
	reorder := flag.String("reorder", "none", "relabel loaded graphs for cache locality: degree, bfs or none (vertex ids in the API stay the file's; live graphs are never relabeled)")
	compact := flag.String("compact", "auto", "delta-varint compress loaded adjacency: auto (budget heuristic), on or off (live and weighted graphs stay raw)")
	var graphs graphFlags
	flag.Var(&graphs, "graph", "preload NAME=FORMAT:PATH (formats: dimacs, edgelist, binary) or NAME=live:VERTICES (repeatable)")
	flag.Parse()

	layout := graph.Layout{}
	var err error
	if layout.Reorder, err = graph.ParseReorder(*reorder); err != nil {
		log.Fatalf("graphctd: -reorder: %v", err)
	}
	if layout.Compact, err = graph.ParseCompactPolicy(*compact); err != nil {
		log.Fatalf("graphctd: -compact: %v", err)
	}

	// GRAPHCT_FAILPOINTS arms fault injection before any request is
	// served; see internal/failpoint for the spec grammar. The armed
	// catalogue is logged so a chaos run is auditable.
	if spec := os.Getenv("GRAPHCT_FAILPOINTS"); spec != "" {
		if err := failpoint.Default.ArmAll(spec); err != nil {
			log.Fatalf("graphctd: GRAPHCT_FAILPOINTS: %v", err)
		}
		for _, st := range failpoint.Default.List() {
			log.Printf("failpoint armed: %s=%s", st.Name, st.Spec)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "router":
		// A router owns no graphs: reject worker-only flags loudly rather
		// than silently ignoring a -data-dir the operator expected to fill.
		if *workers == "" {
			log.Fatalf("graphctd: -mode router requires -workers")
		}
		if len(graphs) > 0 || *dataDir != "" || *follow != "" {
			log.Fatalf("graphctd: -graph, -data-dir and -follow are worker flags; a router owns no graphs")
		}
		shards, err := server.ParseShards(*workers)
		if err != nil {
			log.Fatalf("graphctd: -workers: %v", err)
		}
		rt := server.NewRouter(shards)
		httpSrv := &http.Server{Addr: *addr, Handler: rt}
		members := 0
		for _, sh := range shards {
			members += len(sh.Members)
		}
		log.Printf("graphctd routing on %s (%d shards, %d members)", *addr, len(shards), members)
		serveUntilSignal(ctx, httpSrv, *drain)
		return
	case "server":
	default:
		log.Fatalf("graphctd: unknown -mode %q (want server or router)", *mode)
	}
	if *workers != "" {
		log.Fatalf("graphctd: -workers requires -mode router")
	}

	reg := server.NewRegistry()
	reg.Layout = layout
	srv := server.New(reg, server.Config{
		MaxConcurrent:    *maxConcurrent,
		MaxQueued:        *maxQueued,
		CheapReserved:    *cheapReserved,
		CacheBytes:       *cacheBytes,
		CacheMaxEntry:    *cacheMaxEntry,
		ClientRate:       *clientRate,
		ClientBurst:      *clientBurst,
		DefaultTimeout:   *timeout,
		Seed:             *seed,
		IngestConcurrent: *ingestConcurrent,
		IngestQueued:     *ingestQueued,
		SnapshotEvery:    *snapshotEvery,
		MaxBatch:         *maxBatch,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Debug:            *debug,
		DataDir:          *dataDir,
		RetainEpochs:     *retainEpochs,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Bind immediately and preload in the background: /healthz answers
	// from the first instant while /readyz stays 503 until every -graph
	// has parsed, so load balancers hold traffic during multi-GiB loads.
	srv.SetReady(false)
	go func() {
		// Warm restart before preloads: every live graph with durable
		// state in -data-dir is rebuilt from its newest snapshot plus the
		// write-ahead log tail. /readyz reports "recovering" meanwhile.
		if *dataDir != "" {
			srv.SetRecovering(true)
			start := time.Now()
			n, err := srv.RecoverAll()
			srv.SetRecovering(false)
			if err != nil {
				log.Printf("graphctd: recovery: %v", err)
			}
			if n > 0 {
				log.Printf("recovered %d live graph(s) from %s in %v",
					n, *dataDir, time.Since(start).Round(time.Millisecond))
			}
		}
		for _, spec := range graphs {
			name, rest, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("graphctd: bad -graph %q (want NAME=FORMAT:PATH)", spec)
			}
			format, path, ok := strings.Cut(rest, ":")
			if !ok {
				log.Fatalf("graphctd: bad -graph %q (want NAME=FORMAT:PATH)", spec)
			}
			start := time.Now()
			if format == "live" {
				n, err := strconv.Atoi(path)
				if err != nil {
					log.Fatalf("graphctd: bad -graph %q (want NAME=live:VERTICES)", spec)
				}
				// A recovered graph under the same name wins: the preload
				// flag declares the graph should exist, recovery already
				// restored its contents.
				if _, ok := reg.Get(name); ok {
					log.Printf("live graph %q already recovered; keeping durable state", name)
					continue
				}
				if _, err := srv.AddLive(name, n); err != nil {
					log.Fatalf("graphctd: %v", err)
				}
				log.Printf("created live graph %q over %d vertices", name, n)
				continue
			}
			e, err := reg.Load(name, format, path, *directed)
			if err != nil {
				log.Fatalf("graphctd: %v", err)
			}
			log.Printf("loaded %q: %d vertices, %d edges in %v",
				name, e.Graph.NumVertices(), e.Graph.NumEdges(), time.Since(start).Round(time.Millisecond))
		}
		srv.SetReady(true)
		log.Printf("graphctd ready (%d graphs)", len(reg.List()))
	}()
	if *follow != "" {
		f := server.NewFollower(srv, *follow, *followInterval)
		go f.Run(ctx)
		log.Printf("graphctd following %s (poll %v)", *follow, *followInterval)
	}
	log.Printf("graphctd listening on %s (%d graphs preloading)", *addr, len(graphs))
	serveUntilSignal(ctx, httpSrv, *drain)
}

// serveUntilSignal runs httpSrv until ctx is cancelled (SIGINT/SIGTERM),
// then stops accepting connections and drains in-flight requests within
// the drain budget. Both roles share this lifecycle.
func serveUntilSignal(ctx context.Context, httpSrv *http.Server, drain time.Duration) {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("graphctd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("graphctd: draining (budget %v)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "graphctd: forced shutdown: %v\n", err)
		os.Exit(1)
	}
	log.Printf("graphctd: drained cleanly")
}
