// Command experiments regenerates the paper's tables and figures from the
// synthetic substrates and prints them as text tables.
//
// Usage:
//
//	experiments                      # run everything at the default scale
//	experiments -exp fig4 -runs 10   # one experiment
//	experiments -scale 1.0           # paper-sized corpora (slow, big RAM)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphct/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all | "+strings.Join(experiments.Names, " | "))
	scale := flag.Float64("scale", 0, "corpus scale (default from built-in config; 1.0 = paper size)")
	septScale := flag.Float64("sept-scale", 0, "extra scale for the large 1-Sept corpus")
	runs := flag.Int("runs", 0, "realizations for sampled experiments (paper: 10)")
	seed := flag.Int64("seed", 1, "random seed")
	rmat := flag.String("rmat", "", "comma-separated R-MAT scales for fig6, e.g. 10,12,14,16,18")
	csvDir := flag.String("csv", "", "also write each experiment's data series as CSV into this directory")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Out = os.Stdout
	cfg.Seed = *seed
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *septScale > 0 {
		cfg.SeptScale = *septScale
	}
	if *runs > 0 {
		cfg.Realizations = *runs
	}
	if *rmat != "" {
		var scales []int
		for _, f := range strings.Split(*rmat, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 || v > 30 {
				fmt.Fprintf(os.Stderr, "experiments: bad rmat scale %q\n", f)
				os.Exit(2)
			}
			scales = append(scales, v)
		}
		cfg.RMATScales = scales
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names
	}
	for _, name := range names {
		if err := experiments.Run(name, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		fmt.Println()
		if *csvDir != "" {
			quiet := cfg
			quiet.Out = nil
			if err := experiments.WriteCSV(name, quiet, *csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: csv:", err)
				os.Exit(2)
			}
		}
	}
}
