// Package cluster computes per-vertex clustering coefficients, one of
// GraphCT's top-level kernels. Triangle counting intersects sorted
// adjacency lists in parallel over vertices; the heavy-tailed degree
// distribution of social graphs is balanced by the dynamic chunking of the
// parallel runtime.
package cluster

import (
	"graphct/internal/graph"
	"graphct/internal/par"
)

// Triangles returns tri[v], the number of triangles incident on v.
// Directed graphs are projected to undirected first; self loops never form
// triangles.
func Triangles(g *graph.Graph) []int64 {
	if g.Directed() {
		g = g.Undirected()
	}
	n := g.NumVertices()
	tri := make([]int64, n)
	par.ForChunked(n, 64, func(lo, hi int) {
		// Two decode buffers per chunk: the intersection walks v's and w's
		// rows simultaneously, so they cannot share one.
		var vbuf, wbuf []int32
		for v := lo; v < hi; v++ {
			nv := g.NeighborsInto(&vbuf, int32(v))
			var count int64
			for _, w := range nv {
				if w == int32(v) {
					continue
				}
				count += intersectCount(nv, g.NeighborsInto(&wbuf, w), int32(v), w)
			}
			// Each triangle {v,a,b} is found twice from v (via a and b).
			tri[v] = count / 2
		}
	})
	return tri
}

// intersectCount counts common neighbors of v and w, excluding v and w
// themselves, by merging the two sorted lists.
func intersectCount(a, b []int32, v, w int32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] != v && a[i] != w {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// Coefficients returns the local clustering coefficient of every vertex:
// the fraction of a vertex's neighbor pairs that are themselves connected.
// Vertices of degree < 2 get coefficient 0.
func Coefficients(g *graph.Graph) []float64 {
	if g.Directed() {
		g = g.Undirected()
	}
	tri := Triangles(g)
	n := g.NumVertices()
	coef := make([]float64, n)
	par.For(n, func(v int) {
		d := int64(0)
		for _, w := range g.Neighbors(int32(v)) {
			if w != int32(v) {
				d++
			}
		}
		if d >= 2 {
			coef[v] = 2 * float64(tri[v]) / float64(d*(d-1))
		}
	})
	return coef
}

// Global returns the global clustering coefficient (transitivity):
// 3 x triangles / wedges.
func Global(g *graph.Graph) float64 {
	if g.Directed() {
		g = g.Undirected()
	}
	tri := Triangles(g)
	n := g.NumVertices()
	var closed, wedges int64
	for v := 0; v < n; v++ {
		closed += tri[v]
		d := int64(0)
		for _, w := range g.Neighbors(int32(v)) {
			if w != int32(v) {
				d++
			}
		}
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return float64(closed) / float64(wedges)
}

// TotalTriangles returns the number of distinct triangles in g.
func TotalTriangles(g *graph.Graph) int64 {
	var sum int64
	for _, t := range Triangles(g) {
		sum += t
	}
	return sum / 3
}
