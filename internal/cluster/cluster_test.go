package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestTrianglesComplete(t *testing.T) {
	tri := Triangles(gen.Complete(5))
	for v, c := range tri {
		if c != 6 { // C(4,2) triangles per vertex in K5
			t.Fatalf("K5 tri[%d] = %d, want 6", v, c)
		}
	}
	if TotalTriangles(gen.Complete(5)) != 10 {
		t.Fatal("K5 has 10 triangles")
	}
}

func TestTrianglesTreeZero(t *testing.T) {
	for _, c := range Triangles(gen.BinaryTree(31)) {
		if c != 0 {
			t.Fatal("trees have no triangles")
		}
	}
	if Global(gen.BinaryTree(31)) != 0 {
		t.Fatal("tree transitivity != 0")
	}
}

func TestCoefficientsTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 with tail 2-3.
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}}, graph.Options{})
	coef := Coefficients(g)
	want := []float64{1, 1, 1.0 / 3, 0}
	for v, w := range want {
		if math.Abs(coef[v]-w) > 1e-12 {
			t.Fatalf("coef = %v, want %v", coef, want)
		}
	}
}

func TestCoefficientsComplete(t *testing.T) {
	for _, c := range Coefficients(gen.Complete(7)) {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("K7 coefficient = %v, want 1", c)
		}
	}
	if g := Global(gen.Complete(7)); math.Abs(g-1) > 1e-12 {
		t.Fatalf("K7 transitivity = %v", g)
	}
}

func TestGlobalEmptyAndTiny(t *testing.T) {
	if Global(graph.Empty(5, false)) != 0 {
		t.Fatal("empty graph transitivity != 0")
	}
	if Global(gen.Path(2)) != 0 {
		t.Fatal("single-edge transitivity != 0")
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}},
		graph.Options{KeepSelfLoops: true})
	tri := Triangles(g)
	if tri[0] != 1 || tri[1] != 1 || tri[2] != 1 {
		t.Fatalf("tri with self loop = %v, want all 1", tri)
	}
	coef := Coefficients(g)
	if math.Abs(coef[0]-1) > 1e-12 {
		t.Fatalf("coef[0] = %v, want 1 (loop ignored)", coef[0])
	}
}

func TestDirectedProjection(t *testing.T) {
	d, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, graph.Options{Directed: true})
	tri := Triangles(d)
	if tri[0] != 1 {
		t.Fatalf("directed triangle projected tri = %v", tri)
	}
}

// Brute-force triangle reference.
func bruteTriangles(g *graph.Graph) []int64 {
	n := g.NumVertices()
	tri := make([]int64, n)
	for a := int32(0); a < int32(n); a++ {
		for b := a + 1; b < int32(n); b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < int32(n); c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					tri[a]++
					tri[b]++
					tri[c]++
				}
			}
		}
	}
	return tri
}

func TestPropertyTrianglesMatchBrute(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 120, seed)
		want := bruteTriangles(g)
		got := Triangles(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: coefficients lie in [0,1] and transitivity in [0,1].
func TestPropertyCoefficientRange(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.PreferentialAttachment(80, 3, seed)
		for _, c := range Coefficients(g) {
			if c < 0 || c > 1 {
				return false
			}
		}
		gc := Global(g)
		return gc >= 0 && gc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrianglesRMAT12(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(12, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Triangles(g)
	}
}
