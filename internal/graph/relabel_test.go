package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// star plus a tail: 0 is the hub (degree 4), 4-5-6 a path off vertex 4.
func relabelTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(7, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}, {5, 6}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	g, err := FromEdges(n, edges, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDegreePermHubsFirst(t *testing.T) {
	g := relabelTestGraph(t)
	perm := DegreePerm(g)
	if err := checkPerm(perm, g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 {
		t.Fatalf("hub got id %d, want 0", perm[0])
	}
	// Ranks must be sorted by descending degree, ties by original id.
	inv := InversePerm(perm)
	for rank := 1; rank < len(inv); rank++ {
		dPrev, dCur := g.Degree(inv[rank-1]), g.Degree(inv[rank])
		if dPrev < dCur {
			t.Fatalf("rank %d degree %d after degree %d", rank, dCur, dPrev)
		}
		if dPrev == dCur && inv[rank-1] > inv[rank] {
			t.Fatalf("tie at rank %d broken against original id order", rank)
		}
	}
}

func TestBFSPermLevelContiguityAndCoverage(t *testing.T) {
	// Two components: a path 0-1-2-3 and a triangle 4-5-6.
	g, err := FromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := BFSPerm(g)
	if err := checkPerm(perm, 7); err != nil {
		t.Fatal(err)
	}
	// Every vertex of the first-seeded component must be numbered before
	// any vertex of the other: a BFS exhausts a component before reseeding.
	pathMax := perm[0]
	for _, v := range []int32{1, 2, 3} {
		if perm[v] > pathMax {
			pathMax = perm[v]
		}
	}
	triMin := perm[4]
	for _, v := range []int32{5, 6} {
		if perm[v] < triMin {
			triMin = perm[v]
		}
	}
	if !(pathMax == 3 && triMin == 4) && !(triMin == 0 && pathMax == 6) {
		t.Fatalf("components interleaved: perm=%v", perm)
	}
}

func TestBFSPermCoversRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := randomGraph(t, 100, 150, seed) // sparse: isolated vertices likely
		if err := checkPerm(BFSPerm(g), g.NumVertices()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checkPerm(DegreePerm(g), g.NumVertices()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestInversePermRoundTrip(t *testing.T) {
	perm := []int32{2, 0, 3, 1}
	inv := InversePerm(perm)
	for v, p := range perm {
		if inv[p] != int32(v) {
			t.Fatalf("inv[perm[%d]] = %d", v, inv[p])
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := relabelTestGraph(t)
	perm := DegreePerm(g)
	rg, inv, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatalf("relabeled graph invalid: %v", err)
	}
	if rg.NumVertices() != g.NumVertices() || rg.NumArcs() != g.NumArcs() {
		t.Fatalf("size changed: %v vs %v", rg, g)
	}
	// Neighborhoods must map through the permutation exactly.
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		want := append([]int32(nil), g.Neighbors(v)...)
		for i := range want {
			want[i] = perm[want[i]]
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := rg.Neighbors(perm[v])
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %v vs %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: %v vs %v", v, got, want)
			}
		}
		if inv[perm[v]] != v {
			t.Fatalf("returned inverse wrong at %d", v)
		}
	}
}

func TestRelabelWeightedKeepsAlignment(t *testing.T) {
	// Distinct weights make misalignment visible.
	g, err := FromWeightedEdges(4, []WeightedEdge{{0, 1, 10}, {0, 2, 20}, {0, 3, 30}, {2, 3, 40}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := []int32{3, 2, 1, 0} // full reversal
	rg, _, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	weightOf := func(g *Graph, u, v int32) int32 {
		for i, w := range g.Neighbors(u) {
			if w == v {
				return g.Weights(u)[i]
			}
		}
		t.Fatalf("edge %d-%d missing", u, v)
		return 0
	}
	for _, e := range []WeightedEdge{{0, 1, 10}, {0, 2, 20}, {0, 3, 30}, {2, 3, 40}} {
		if got := weightOf(rg, perm[e.U], perm[e.V]); got != e.W {
			t.Fatalf("edge %d-%d weight %d, want %d", e.U, e.V, got, e.W)
		}
	}
}

func TestRelabelRejectsBadInput(t *testing.T) {
	g := relabelTestGraph(t)
	if _, _, err := g.Relabel([]int32{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, _, err := g.Relabel([]int32{0, 0, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("duplicate target accepted")
	}
	if _, _, err := g.Relabel([]int32{0, 1, 2, 3, 4, 5, 7}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, _, err := g.Compact().Relabel(DegreePerm(g)); err == nil {
		t.Fatal("relabel of a compact graph accepted")
	}
}

func TestLayoutApplyPolicies(t *testing.T) {
	g := relabelTestGraph(t)

	// Auto with the default budget: a tiny graph stays raw.
	lg, inv, err := Layout{Reorder: ReorderDegree}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Compacted() {
		t.Fatal("tiny graph compacted under the default budget")
	}
	if inv == nil {
		t.Fatal("reordering returned no inverse permutation")
	}

	// Auto with a one-byte budget must compact; CompactOff must not.
	lg, _, err = Layout{Compact: CompactAuto, CompactBudget: 1}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Compacted() {
		t.Fatal("budget-exceeding graph stayed raw under CompactAuto")
	}
	lg, inv, err = Layout{Compact: CompactOff, CompactBudget: 1}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Compacted() || inv != nil {
		t.Fatal("CompactOff with no reorder must be a no-op")
	}

	// CompactOn forces compression; weighted graphs are exempt.
	lg, _, err = Layout{Compact: CompactOn}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !lg.Compacted() {
		t.Fatal("CompactOn left the graph raw")
	}
	wg, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 5}, {1, 2, 6}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lg, _, err = Layout{Compact: CompactOn}.Apply(wg)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Compacted() {
		t.Fatal("weighted graph compacted")
	}

	// Reordering an already-compact graph is a configuration error.
	if _, _, err := (Layout{Reorder: ReorderBFS}).Apply(g.Compact()); err == nil {
		t.Fatal("layout reorder of a compact graph accepted")
	}
}

func TestParseFlags(t *testing.T) {
	reorders := map[string]ReorderKind{"": ReorderNone, "none": ReorderNone, "degree": ReorderDegree, "bfs": ReorderBFS}
	for s, want := range reorders {
		got, err := ParseReorder(s)
		if err != nil || got != want {
			t.Fatalf("ParseReorder(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseReorder("hilbert"); err == nil {
		t.Fatal("unknown reorder accepted")
	}
	policies := map[string]CompactPolicy{"": CompactAuto, "auto": CompactAuto, "on": CompactOn, "off": CompactOff}
	for s, want := range policies {
		got, err := ParseCompactPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseCompactPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCompactPolicy("zstd"); err == nil {
		t.Fatal("unknown compact policy accepted")
	}
}
