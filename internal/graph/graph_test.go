package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 2-0, 2-3
func testEdges() []Edge {
	return []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
}

func mustUndirected(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesUndirectedBasics(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumArcs() != 8 {
		t.Fatalf("NumArcs = %d, want 8", g.NumArcs())
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, d := range wantDeg {
		if g.Degree(int32(v)) != d {
			t.Errorf("deg(%d) = %d, want %d", v, g.Degree(int32(v)), d)
		}
	}
	if !g.HasEdge(3, 2) || !g.HasEdge(2, 3) {
		t.Error("symmetrized edge 2-3 missing")
	}
	if g.HasEdge(0, 3) {
		t.Error("phantom edge 0-3")
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumArcs() != 3 {
		t.Fatalf("directed edges = %d arcs = %d, want 3,3", g.NumEdges(), g.NumArcs())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed arcs wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDedup(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 0}, {0, 1}, {0, 1}}
	g := mustUndirected(t, 2, edges)
	if g.NumEdges() != 1 {
		t.Fatalf("dedup kept %d edges, want 1", g.NumEdges())
	}
	multi, err := FromEdges(2, []Edge{{0, 1}, {1, 0}, {0, 1}}, Options{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if multi.NumArcs() != 6 {
		t.Fatalf("multigraph arcs = %d, want 6", multi.NumArcs())
	}
}

func TestFromEdgesSelfLoops(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}}
	g := mustUndirected(t, 2, edges)
	if g.HasEdge(0, 0) {
		t.Error("self loop not dropped by default")
	}
	kept, err := FromEdges(2, []Edge{{0, 0}, {0, 1}}, Options{KeepSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if !kept.HasEdge(0, 0) {
		t.Error("self loop dropped despite KeepSelfLoops")
	}
	if kept.NumEdges() != 2 {
		t.Fatalf("edges with loop = %d, want 2", kept.NumEdges())
	}
	if err := kept.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}, Options{}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}, Options{}); err == nil {
		t.Fatal("expected negative-vertex error")
	}
	if _, err := FromEdges(-1, nil, Options{}); err == nil {
		t.Fatal("expected negative-count error")
	}
}

func TestFromEdgesIsolatedVertices(t *testing.T) {
	g := mustUndirected(t, 10, []Edge{{0, 1}})
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
	for v := 2; v < 10; v++ {
		if g.Degree(int32(v)) != 0 {
			t.Errorf("isolated vertex %d has degree %d", v, g.Degree(int32(v)))
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Empty(5, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.NumVertices() != 5 {
		t.Fatal("empty graph wrong shape")
	}
	zero := Empty(0, true)
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	for i := 0; i < 2000; i++ {
		edges = append(edges, Edge{int32(rng.Intn(100)), int32(rng.Intn(100))})
	}
	g := mustUndirected(t, 100, edges)
	for v := 0; v < 100; v++ {
		nbr := g.Neighbors(int32(v))
		for i := 1; i < len(nbr); i++ {
			if nbr[i-1] >= nbr[i] {
				t.Fatalf("vertex %d adjacency unsorted or duplicated: %v", v, nbr)
			}
		}
	}
}

func TestFromWeightedEdges(t *testing.T) {
	g, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 5}, {1, 2, 7}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph not weighted")
	}
	nbr, wts := g.Neighbors(1), g.Weights(1)
	if len(nbr) != 2 || len(wts) != 2 {
		t.Fatalf("vertex 1 nbr=%v wts=%v", nbr, wts)
	}
	for i, w := range nbr {
		want := int32(5)
		if w == 2 {
			want = 7
		}
		if wts[i] != want {
			t.Errorf("weight of 1-%d = %d, want %d", w, wts[i], want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromWeightedEdgesDirectedDedup(t *testing.T) {
	g, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, 3}, {0, 1, 9}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 {
		t.Fatalf("arcs = %d, want 1 after dedup", g.NumArcs())
	}
	if g.Weights(0)[0] != 3 {
		t.Fatalf("dedup kept weight %d, want first weight 3", g.Weights(0)[0])
	}
}

func TestFromWeightedEdgesErrors(t *testing.T) {
	if _, err := FromWeightedEdges(1, []WeightedEdge{{0, 1, 1}}, Options{}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestUnweightedWeightsNil(t *testing.T) {
	g := mustUndirected(t, 2, []Edge{{0, 1}})
	if g.Weights(0) != nil || g.Weighted() {
		t.Fatal("unweighted graph returned weights")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		mut  func(g *Graph)
	}{
		{"unsorted", func(g *Graph) { g.adj[0], g.adj[1] = g.adj[1], g.adj[0] }},
		{"range", func(g *Graph) { g.adj[0] = 99 }},
		{"monotone", func(g *Graph) { g.rowPtr[1] = g.rowPtr[2] + 1 }},
		{"tail", func(g *Graph) { g.rowPtr[len(g.rowPtr)-1]-- }},
		{"origin", func(g *Graph) { g.rowPtr[0] = 1 }},
	}
	for _, tc := range cases {
		g := mustUndirected(t, 4, testEdges())
		tc.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func TestValidateAsymmetry(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	// Break symmetry: retarget one arc.
	g.adj[0] = 3
	if g.Validate() == nil {
		t.Fatal("asymmetric undirected graph passed validation")
	}
}

func TestFromCSR(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	g2, err := FromCSR(g.RowPtr(), g.AdjArray(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("FromCSR changed edge count")
	}
	if _, err := FromCSR([]int64{1, 2}, []int32{0, 0}, nil, true); err == nil {
		t.Fatal("bad CSR accepted")
	}
}

func TestMaxDegree(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if Empty(3, false).MaxDegree() != 0 {
		t.Fatal("empty MaxDegree != 0")
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	// rowPtr: 5*8, adj: 8*4 arcs.
	if got := g.MemoryFootprint(); got != 5*8+8*4 {
		t.Fatalf("footprint = %d", got)
	}
	w, _ := FromWeightedEdges(2, []WeightedEdge{{U: 0, V: 1, W: 1}}, Options{})
	if got := w.MemoryFootprint(); got != 3*8+2*4+2*4 {
		t.Fatalf("weighted footprint = %d", got)
	}
}

func TestStringer(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	if got := g.String(); got != "undirected graph: 4 vertices, 4 edges" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: ingest of a random edge list always yields a graph passing
// Validate, with NumArcs <= 2*len(edges).
func TestPropertyRandomIngestValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%50) + 2
		m := int(sz) * 3
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g, err := FromEdges(n, edges, Options{})
		if err != nil || g.Validate() != nil {
			return false
		}
		return g.NumArcs() <= 2*int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: undirected degree sum equals arc count.
func TestPropertyHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		edges := make([]Edge, 200)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g, err := FromEdges(n, edges, Options{})
		if err != nil {
			return false
		}
		var degSum int64
		for v := 0; v < n; v++ {
			degSum += int64(g.Degree(int32(v)))
		}
		return degSum == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
