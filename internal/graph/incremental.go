package graph

import (
	"fmt"
	"sort"

	"graphct/internal/par"
)

// IncrementalCSR materializes an undirected CSR graph from a dynamic
// adjacency structure, reusing the previous snapshot's contents for
// vertices that have not changed since it was taken.
//
// deg[v] must be the current degree of every vertex. For vertices with
// dirty[v] == false the adjacency run is copied verbatim from prev (their
// degree must be unchanged); dirty vertices are filled by fill(v, dst),
// which writes exactly deg[v] neighbor ids into dst in any order — the
// builder sorts them. A nil prev (or nil dirty) rebuilds every vertex.
//
// The previous snapshot's arrays are never written: prior epochs stay
// immutable because in-flight readers (kernel requests resolved against an
// older registry entry) may still be traversing them. "Incremental" here
// means the per-vertex sorting and set iteration — the expensive part of
// materialization — is paid only for vertices an update actually touched;
// clean runs are block copies.
func IncrementalCSR(prev *Graph, n int, deg []int64, dirty []bool, fill func(v int32, dst []int32)) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(deg) != n {
		return nil, fmt.Errorf("graph: %d degrees for %d vertices", len(deg), n)
	}
	reuse := prev != nil && dirty != nil && prev.NumVertices() == n
	rowPtr := make([]int64, n+1)
	var sum int64
	for v := 0; v < n; v++ {
		if deg[v] < 0 {
			return nil, fmt.Errorf("graph: negative degree %d at vertex %d", deg[v], v)
		}
		if reuse && !dirty[v] && deg[v] != int64(prev.Degree(int32(v))) {
			return nil, fmt.Errorf("graph: clean vertex %d changed degree %d -> %d", v, prev.Degree(int32(v)), deg[v])
		}
		rowPtr[v] = sum
		sum += deg[v]
	}
	rowPtr[n] = sum
	adj := make([]int32, sum)
	par.For(n, func(v int) {
		dst := adj[rowPtr[v]:rowPtr[v+1]]
		if reuse && !dirty[v] {
			copy(dst, prev.Neighbors(int32(v)))
			return
		}
		fill(int32(v), dst)
		if len(dst) > 1 {
			sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
		}
	})
	return &Graph{rowPtr: rowPtr, adj: adj, directed: false}, nil
}
