package graph

import (
	"graphct/internal/par"
)

// compactAdj stores the adjacency lists as one delta-varint byte stream
// (see varint.go): offs[v]..offs[v+1] delimit vertex v's encoded row. The
// element counts stay in the graph's rowPtr, so Degree and NumArcs are
// unchanged; only the neighbor ids themselves are compressed.
type compactAdj struct {
	offs []int64 // len n+1; byte offsets into data
	data []byte  // concatenated encoded rows plus compactPad tail bytes
}

// compactPad is the number of bytes appended after the last encoded row.
// The branchless decode loops always load the byte after the current one
// and mask it away for one-byte gaps; the pad keeps that load in bounds
// for a one-byte varint ending the stream.
const compactPad = 1

// Compacted reports whether the adjacency is stored delta-varint
// compressed. Kernels use it to pick their decoding hot loop; Neighbors
// still works on a compacted graph but allocates per call.
func (g *Graph) Compacted() bool { return g.compact != nil }

// Compact returns a graph identical to g whose adjacency is stored as
// delta-encoded varints — typically 2-4× smaller on R-MAT and reordered
// social graphs, where sorted rows have small gaps. The rowPtr (and the
// degree/arc bookkeeping it carries) is shared with g; only the neighbor
// storage changes, so every kernel produces bit-identical output on the
// compact graph (the equivalence tests pin this).
//
// Weighted graphs are returned unchanged: weights are accessed by CSR slot
// and would defeat the byte-offset indexing. Already-compact graphs are
// returned as is.
func (g *Graph) Compact() *Graph {
	if g.compact != nil || g.weights != nil {
		return g
	}
	n := g.NumVertices()
	// Sizing pass: exact encoded length per row, then a prefix sum, then a
	// parallel fill — the same scatter shape as CSR ingest.
	lens := make([]int64, n)
	par.For(n, func(v int) {
		l, err := adjacencyLen(g.adj[g.rowPtr[v]:g.rowPtr[v+1]])
		if err != nil {
			// Unreachable for a valid CSR graph: rows are sorted and ids
			// non-negative by construction (Validate enforces both).
			panic("graph: compact: " + err.Error())
		}
		lens[v] = int64(l)
	})
	offs := make([]int64, n+1)
	var sum int64
	for v := 0; v < n; v++ {
		offs[v] = sum
		sum += lens[v]
	}
	offs[n] = sum
	data := make([]byte, sum+compactPad)
	par.For(n, func(v int) {
		row := g.adj[g.rowPtr[v]:g.rowPtr[v+1]]
		// Append into the presized window; the sizing pass fixed its length.
		_, _ = AppendAdjacency(data[offs[v]:offs[v]:offs[v+1]], row)
	})
	return &Graph{
		rowPtr:   g.rowPtr,
		adj:      nil,
		directed: g.directed,
		compact:  &compactAdj{offs: offs, data: data},
	}
}

// Decompress returns g with its adjacency restored to the raw int32 CSR
// array (g itself when already raw).
func (g *Graph) Decompress() *Graph {
	if g.compact == nil {
		return g
	}
	return &Graph{
		rowPtr:   g.rowPtr,
		adj:      g.decompressAdj(),
		directed: g.directed,
	}
}

// decompressAdj materializes the full raw adjacency array of a compact
// graph. Serialization (AdjArray) uses it so on-disk formats stay raw CSR.
func (g *Graph) decompressAdj() []int32 {
	adj := make([]int32, g.rowPtr[g.NumVertices()])
	par.For(g.NumVertices(), func(v int) {
		g.appendRow(adj[g.rowPtr[v]:g.rowPtr[v]:g.rowPtr[v+1]], int32(v))
	})
	return adj
}

// appendRow decodes vertex v's compact row into dst (trusted fast path:
// the bytes were produced by AppendAdjacency, so no validation is needed).
// One- and two-byte gaps — the overwhelming majority on social graphs —
// decode through one branchless sequence: both bytes are loaded
// unconditionally (compactPad keeps the second load in bounds at the end
// of the stream) and the high bit of the first selects the width via a
// mask, so rows mixing one- and two-byte gaps pay no branch mispredicts.
func (g *Graph) appendRow(dst []int32, v int32) []int32 {
	c := g.compact
	data := c.data
	pos := int(c.offs[v])
	deg := int(g.rowPtr[v+1] - g.rowPtr[v])
	base := len(dst)
	if cap(dst) < base+deg {
		grown := make([]int32, base+deg)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:base+deg]
	}
	out := dst[base:]
	prev := int32(0)
	for i := range out {
		b := uint32(data[pos])
		b2 := uint32(data[pos+1])
		if b&b2&0x80 != 0 { // ≥3-byte gap: rare slow path
			d, n := decodeUvarint32(data[pos:])
			prev += int32(d)
			pos += n
			out[i] = prev
			continue
		}
		two := b >> 7 // 0 or 1; -two is the all-ones mask iff two bytes
		prev += int32((b & 0x7f) | (b2&0x7f)<<7&-two)
		pos += int(1 + two)
		out[i] = prev
	}
	return dst
}

// NeighborsInto returns vertex v's adjacency row. For a raw graph it is
// the aliased CSR subslice — same cost as Neighbors, buf untouched. For a
// compact graph the row is decoded into *buf, which is grown as needed and
// reused across calls, so a kernel sweeping many rows decodes without
// allocating after the first row. The returned slice is only valid until
// the next call with the same buf.
func (g *Graph) NeighborsInto(buf *[]int32, v int32) []int32 {
	if g.compact == nil {
		return g.adj[g.rowPtr[v]:g.rowPtr[v+1]]
	}
	*buf = g.appendRow((*buf)[:0], v)
	return *buf
}

// NeighborIter is a zero-allocation cursor over one vertex's adjacency
// row, decoding delta-varints inline for compact graphs and walking the
// CSR slice for raw ones. It is the hot-sweep access path for kernels that
// cannot carry a decode buffer (fine-grained parallel loops where a shared
// buffer would race).
type NeighborIter struct {
	raw  []int32 // raw path; nil for compact graphs
	data []byte  // compact path: the row's encoded bytes
	pos  int     // cursor into raw or data
	rem  int     // neighbors left
	prev int32   // running delta sum
}

// NeighborIter returns a cursor over v's neighbors in ascending order.
func (g *Graph) NeighborIter(v int32) NeighborIter {
	deg := int(g.rowPtr[v+1] - g.rowPtr[v])
	if g.compact == nil {
		return NeighborIter{raw: g.adj[g.rowPtr[v]:g.rowPtr[v+1]], rem: deg}
	}
	c := g.compact
	// The slice runs one byte past the row so the branchless two-byte load
	// in Next stays in bounds (the overhang is the next row's first byte or
	// the stream pad, and is masked away for one-byte gaps).
	return NeighborIter{data: c.data[c.offs[v] : c.offs[v+1]+1], rem: deg}
}

// Next returns the next neighbor id; ok is false when the row is
// exhausted. Like appendRow, one- and two-byte gaps decode through one
// branchless width-masked sequence — the per-edge cost the hot sweeps pay.
func (it *NeighborIter) Next() (v int32, ok bool) {
	if it.rem == 0 {
		return 0, false
	}
	it.rem--
	if it.raw != nil {
		v = it.raw[it.pos]
		it.pos++
		return v, true
	}
	data, pos := it.data, it.pos
	b := uint32(data[pos])
	b2 := uint32(data[pos+1])
	if b&b2&0x80 != 0 { // ≥3-byte gap: rare slow path
		d, n := decodeUvarint32(data[pos:])
		it.prev += int32(d)
		it.pos = pos + n
		return it.prev, true
	}
	two := b >> 7
	it.prev += int32((b & 0x7f) | (b2&0x7f)<<7&-two)
	it.pos = pos + int(1+two)
	return it.prev, true
}
