package graph

import (
	"math"
	"testing"
)

// assertSameRows checks that every row of a and b decodes identically
// through all three access paths.
func assertSameRows(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	var buf []int32
	for v := int32(0); int(v) < a.NumVertices(); v++ {
		want := a.Neighbors(v)
		if got := b.Neighbors(v); !equalInt32(got, want) {
			t.Fatalf("Neighbors(%d): %v vs %v", v, got, want)
		}
		if got := b.NeighborsInto(&buf, v); !equalInt32(got, want) {
			t.Fatalf("NeighborsInto(%d): %v vs %v", v, got, want)
		}
		it := b.NeighborIter(v)
		for i, w := range want {
			got, ok := it.Next()
			if !ok || got != w {
				t.Fatalf("NeighborIter(%d)[%d] = %d,%v want %d", v, i, got, ok, w)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("NeighborIter(%d) overruns the row", v)
		}
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompactRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := randomGraph(t, 200, 600, seed)
		c := g.Compact()
		if !c.Compacted() || g.Compacted() {
			t.Fatal("Compacted flags wrong")
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: compact graph invalid: %v", seed, err)
		}
		assertSameRows(t, g, c)
		// Decompress restores the raw arrays; AdjArray materializes them
		// without mutating the compact graph.
		d := c.Decompress()
		if d.Compacted() {
			t.Fatal("Decompress left graph compact")
		}
		assertSameRows(t, g, d)
		if !equalInt32(c.AdjArray(), g.AdjArray()) {
			t.Fatal("AdjArray of compact graph differs")
		}
		if c.AdjBytes() >= g.AdjBytes() {
			t.Fatalf("seed %d: no compression (%d >= %d)", seed, c.AdjBytes(), g.AdjBytes())
		}
		if c.MemoryFootprint() >= g.MemoryFootprint() {
			t.Fatal("compact footprint not smaller")
		}
	}
}

func TestCompactIdempotentAndWeightedExempt(t *testing.T) {
	g := randomGraph(t, 50, 100, 1)
	c := g.Compact()
	if c.Compact() != c {
		t.Fatal("compacting a compact graph must return it unchanged")
	}
	wg, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 5}, {1, 2, 6}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wg.Compact() != wg {
		t.Fatal("weighted graph must be returned raw")
	}
	if wg.Decompress() != wg {
		t.Fatal("decompressing a raw graph must return it unchanged")
	}
}

// TestCompactWideGaps exercises the multi-byte varint paths: neighbor ids
// spread across a large id space produce 2-5 byte gaps, including the
// >=3-byte slow path the branchless decoders punt to.
func TestCompactWideGaps(t *testing.T) {
	const n = 1 << 22 // ids up to ~4M: gaps need up to 3 bytes
	edges := []Edge{
		{0, 1},            // 1-byte gap
		{0, 1000},         // 2-byte gap
		{0, 300000},       // 3-byte gap
		{0, n - 1},        // 3-byte gap from 300000
		{5, n - 1},        // single huge first-gap row
		{n - 2, n - 1},    // near the end of the id space
		{100000, 2000000}, // interior wide gap
	}
	g, err := FromEdges(n, edges, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Compact()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, g, c)
}

func TestCompactEmptyAndSingleRows(t *testing.T) {
	// Mostly isolated vertices and an empty graph: offs/pad bookkeeping
	// must hold when rows are empty.
	g, err := FromEdges(10, []Edge{{3, 7}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Compact()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, g, c)

	empty, err := FromEdges(4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce := empty.Compact()
	if err := ce.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, empty, ce)
}

func TestKernelsSeeCompactPad(t *testing.T) {
	// The last encoded row must decode correctly even though its final
	// varint abuts the stream pad — the case the pad byte exists for.
	g, err := FromEdges(3, []Edge{{2, 1}, {2, 0}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Compact()
	if got := c.Neighbors(2); !equalInt32(got, []int32{0, 1}) {
		t.Fatalf("last row = %v", got)
	}
	if int64(len(c.compact.data)) != c.compact.offs[3]+compactPad {
		t.Fatalf("pad missing: %d data bytes, offs end %d", len(c.compact.data), c.compact.offs[3])
	}
}

func TestDecodeAdjacencyHostileInput(t *testing.T) {
	dst := make([]int32, 8)
	cases := []struct {
		name string
		data []byte
		deg  int
	}{
		{"truncated varint", []byte{0x80}, 1},
		{"empty data nonzero degree", nil, 1},
		{"overlong varint", []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 1},
		{"gap overflows uint32", []byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 1},
		{"cumulative sum leaves int32", []byte{0xff, 0xff, 0xff, 0xff, 0x07, 0xff, 0xff, 0xff, 0xff, 0x07}, 2},
		{"negative degree", []byte{0x01}, -1},
	}
	for _, c := range cases {
		if _, err := DecodeAdjacency(c.data, c.deg, dst); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := DecodeAdjacency([]byte{0x01, 0x01}, 2, make([]int32, 1)); err == nil {
		t.Error("undersized buffer accepted")
	}
}

func TestAppendAdjacencyRejectsInvalidRows(t *testing.T) {
	if _, err := AppendAdjacency(nil, []int32{3, 2}); err == nil {
		t.Error("unsorted row accepted")
	}
	if _, err := AppendAdjacency(nil, []int32{-1, 2}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := adjacencyLen([]int32{5, 4}); err == nil {
		t.Error("adjacencyLen accepted unsorted row")
	}
	// Ids up to MaxInt32 are encodable and round-trip.
	row := []int32{0, 1, math.MaxInt32}
	enc, err := AppendAdjacency(nil, row)
	if err != nil {
		t.Fatal(err)
	}
	wantLen, err := adjacencyLen(row)
	if err != nil || wantLen != len(enc) {
		t.Fatalf("adjacencyLen = %d,%v want %d", wantLen, err, len(enc))
	}
	got := make([]int32, 3)
	if _, err := DecodeAdjacency(enc, 3, got); err != nil {
		t.Fatal(err)
	}
	if !equalInt32(got, row) {
		t.Fatalf("round trip %v -> %v", row, got)
	}
}
