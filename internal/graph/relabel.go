package graph

import (
	"fmt"
	"sort"

	"graphct/internal/par"
)

// Vertex reordering for cache locality. Kernel sweeps over a CSR graph
// make one random access into per-vertex state (dist, sigma, colors, ...)
// per arc; with Twitter-shaped degree skew, most arcs point at a small set
// of hubs. Renaming vertices so hot vertices get dense low ids concentrates
// those random accesses into a few pages that stay cached — the
// NetworKit/SNAP algorithm-engineering observation that layout buys more
// than micro-tuning the sweeps. Permutations here use the convention
// perm[old] = new; Relabel also returns the inverse (inv[new] = old) so
// results computed on the relabeled graph map back to original ids.

// DegreePerm returns the degree-descending permutation: the highest-degree
// vertex becomes id 0, ties broken by original id for determinism. On
// scale-free graphs this packs the hubs — the destinations of most arcs —
// into the first cache lines of every per-vertex array.
func DegreePerm(g *Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]int32, n)
	for rank, v := range order {
		perm[v] = int32(rank)
	}
	return perm
}

// BFSPerm returns a Cuthill–McKee-style frontier ordering: starting from a
// minimum-degree seed, vertices are numbered in BFS visitation order with
// each frontier's neighbors enqueued in ascending degree. Vertices of a
// BFS level get contiguous ids, so level-synchronous sweeps touch
// contiguous state, and every unreached component is seeded in turn (by
// its minimum-degree vertex), so the permutation always covers the graph.
// Directed graphs are traversed along out-arcs.
func BFSPerm(g *Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	for v := range perm {
		perm[v] = -1
	}
	// Seeds in ascending degree (ties by id): the classic CM heuristic of
	// starting from a peripheral low-degree vertex, reused per component.
	seeds := make([]int32, n)
	for v := range seeds {
		seeds[v] = int32(v)
	}
	sort.SliceStable(seeds, func(i, j int) bool {
		di, dj := g.Degree(seeds[i]), g.Degree(seeds[j])
		if di != dj {
			return di < dj
		}
		return seeds[i] < seeds[j]
	})
	next := int32(0)
	queue := make([]int32, 0, n)
	var row []int32
	for _, s := range seeds {
		if perm[s] != -1 {
			continue
		}
		perm[s] = next
		next++
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			// Collect unvisited neighbors, then append in ascending
			// degree so the next level is itself locality-ordered.
			row = row[:0]
			for it := g.NeighborIter(u); ; {
				w, ok := it.Next()
				if !ok {
					break
				}
				if perm[w] == -1 {
					perm[w] = -2 // claimed, id assigned below
					row = append(row, w)
				}
			}
			sort.SliceStable(row, func(i, j int) bool {
				di, dj := g.Degree(row[i]), g.Degree(row[j])
				if di != dj {
					return di < dj
				}
				return row[i] < row[j]
			})
			for _, w := range row {
				perm[w] = next
				next++
				queue = append(queue, w)
			}
		}
	}
	return perm
}

// InversePerm returns inv with inv[perm[v]] = v.
func InversePerm(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for v, p := range perm {
		inv[p] = int32(v)
	}
	return inv
}

// checkPerm validates that perm is a permutation of [0, n).
func checkPerm(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("graph: permutation over %d vertices for a graph with %d", len(perm), n)
	}
	seen := make([]bool, n)
	for v, p := range perm {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("graph: perm[%d] = %d out of range [0,%d)", v, p, n)
		}
		if seen[p] {
			return fmt.Errorf("graph: perm maps two vertices to %d", p)
		}
		seen[p] = true
	}
	return nil
}

// Relabel returns g with every vertex id v renamed to perm[v], plus the
// inverse permutation (inv[new] = old) for mapping results back to the
// original ids. Adjacency rows are re-sorted under the new names and
// weights follow their arcs, so the result is a valid CSR graph whose
// kernels compute the same function as g up to the renaming — the
// permutation-equivalence property tests quantify this for every kernel.
// The receiver must be raw (relabel before Compact; Layout.Apply orders
// the two correctly).
func (g *Graph) Relabel(perm []int32) (*Graph, []int32, error) {
	if g.compact != nil {
		return nil, nil, fmt.Errorf("graph: relabel of a compacted graph (relabel first, then Compact)")
	}
	n := g.NumVertices()
	if err := checkPerm(perm, n); err != nil {
		return nil, nil, err
	}
	inv := InversePerm(perm)
	rowPtr := make([]int64, n+1)
	var sum int64
	for nv := 0; nv < n; nv++ {
		rowPtr[nv] = sum
		sum += int64(g.Degree(inv[nv]))
	}
	rowPtr[n] = sum
	adj := make([]int32, sum)
	var wts []int32
	if g.weights != nil {
		wts = make([]int32, sum)
	}
	par.For(n, func(nv int) {
		old := inv[nv]
		src := g.adj[g.rowPtr[old]:g.rowPtr[old+1]]
		dst := adj[rowPtr[nv]:rowPtr[nv+1]]
		for i, w := range src {
			dst[i] = perm[w]
		}
		if wts == nil {
			sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
			return
		}
		// Weighted rows sort ids and weights together so Weights(v) stays
		// aligned with Neighbors(v).
		sw := g.weights[g.rowPtr[old]:g.rowPtr[old+1]]
		dw := wts[rowPtr[nv]:rowPtr[nv+1]]
		idx := make([]int, len(dst))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return dst[idx[i]] < dst[idx[j]] })
		sorted := make([]int32, len(dst))
		sortedW := make([]int32, len(dst))
		for i, k := range idx {
			sorted[i] = dst[k]
			sortedW[i] = sw[k]
		}
		copy(dst, sorted)
		copy(dw, sortedW)
	})
	return &Graph{rowPtr: rowPtr, adj: adj, weights: wts, directed: g.directed}, inv, nil
}
