package graph

import "fmt"

// Layout bundles the memory-layout choices made at graph load time:
// which vertex reordering to apply and whether to delta-varint compress
// the adjacency. It is the single knob cmd/graphctd, cmd/bench and the
// script runtime expose, so the heuristics live here rather than in each
// front end.

// ReorderKind selects a vertex relabeling strategy.
type ReorderKind int

const (
	// ReorderNone keeps ingest order.
	ReorderNone ReorderKind = iota
	// ReorderDegree relabels degree-descending (hubs first) — the default
	// win on scale-free graphs, see DegreePerm.
	ReorderDegree
	// ReorderBFS relabels in Cuthill–McKee-style frontier order, see
	// BFSPerm.
	ReorderBFS
)

func (k ReorderKind) String() string {
	switch k {
	case ReorderDegree:
		return "degree"
	case ReorderBFS:
		return "bfs"
	default:
		return "none"
	}
}

// ParseReorder parses a -reorder flag value.
func ParseReorder(s string) (ReorderKind, error) {
	switch s {
	case "", "none":
		return ReorderNone, nil
	case "degree":
		return ReorderDegree, nil
	case "bfs":
		return ReorderBFS, nil
	}
	return ReorderNone, fmt.Errorf("graph: unknown reorder %q (want degree, bfs or none)", s)
}

// CompactPolicy selects when the adjacency is stored delta-varint
// compressed.
type CompactPolicy int

const (
	// CompactAuto compacts when the raw neighbor storage exceeds the
	// layout's byte budget — small graphs keep the faster raw sweeps, big
	// ones trade decode cycles for a working set that fits closer to the
	// cache.
	CompactAuto CompactPolicy = iota
	// CompactOff never compresses.
	CompactOff
	// CompactOn always compresses (unweighted graphs only; weighted
	// graphs are indexed by CSR slot and stay raw).
	CompactOn
)

func (p CompactPolicy) String() string {
	switch p {
	case CompactOn:
		return "on"
	case CompactOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseCompactPolicy parses a -compact flag value.
func ParseCompactPolicy(s string) (CompactPolicy, error) {
	switch s {
	case "", "auto":
		return CompactAuto, nil
	case "on", "true":
		return CompactOn, nil
	case "off", "false":
		return CompactOff, nil
	}
	return CompactAuto, fmt.Errorf("graph: unknown compact policy %q (want auto, on or off)", s)
}

// DefaultCompactBudget is the CompactAuto threshold on raw adjacency bytes:
// graphs whose neighbor ids alone outgrow this get compressed. 256 MiB
// mirrors bc.StripeBudget — both guard the same "working set past cache
// and heading for swap" regime on one analysis machine.
const DefaultCompactBudget = 256 << 20

// Layout is a load-time memory-layout configuration.
type Layout struct {
	Reorder ReorderKind
	Compact CompactPolicy
	// CompactBudget overrides DefaultCompactBudget when > 0 (CompactAuto
	// only).
	CompactBudget int64
}

// shouldCompact applies the policy to one graph.
func (l Layout) shouldCompact(g *Graph) bool {
	if g.Weighted() || g.Compacted() {
		return false
	}
	switch l.Compact {
	case CompactOn:
		return true
	case CompactOff:
		return false
	}
	budget := l.CompactBudget
	if budget <= 0 {
		budget = DefaultCompactBudget
	}
	return g.AdjBytes() > budget
}

// Apply relabels and/or compacts g per the layout. It returns the laid-out
// graph and the inverse permutation mapping its vertex ids back to g's
// (nil when no reordering was applied, meaning ids are unchanged). Reorder
// always runs before Compact: sorted rows of a locality-ordered graph have
// the smallest gaps, so the varints compress best in that order.
func (l Layout) Apply(g *Graph) (*Graph, []int32, error) {
	var inv []int32
	switch l.Reorder {
	case ReorderDegree, ReorderBFS:
		if g.Compacted() {
			return nil, nil, fmt.Errorf("graph: layout reorder of an already-compact graph")
		}
		var perm []int32
		if l.Reorder == ReorderDegree {
			perm = DegreePerm(g)
		} else {
			perm = BFSPerm(g)
		}
		var err error
		g, inv, err = g.Relabel(perm)
		if err != nil {
			return nil, nil, err
		}
	}
	if l.shouldCompact(g) {
		g = g.Compact()
	}
	return g, inv, nil
}
