package graph

import (
	"fmt"
	"math"
)

// Delta-varint adjacency coding. A sorted neighbor row [v0, v1, ..., vk]
// is stored as the unsigned varints of its gaps: v0, v1-v0, v2-v1, ...
// Sorted rows of a graph with n vertices have gaps that are usually tiny —
// after a locality reordering most neighbors of a vertex are near each
// other — so the common gap fits one byte instead of the four an int32
// costs, shrinking the adjacency working set 2-4× on R-MAT graphs.
//
// The codec is the trust boundary of the compact representation: encoding
// rejects rows that are not sorted (a negative gap has no unsigned
// encoding), and decoding rejects truncated varints, varint values that
// overflow, and cumulative sums that leave int32 — so hostile bytes can
// never decode into a row the CSR invariants rule out. FuzzVarintAdjacency
// pins both directions.

// maxUvarint32Len is the longest encoding of a 32-bit unsigned varint.
const maxUvarint32Len = 5

// appendUvarint32 appends the canonical little-endian base-128 varint of u.
func appendUvarint32(dst []byte, u uint32) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// uvarint32Len returns the encoded length of u without encoding it.
func uvarint32Len(u uint32) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// decodeUvarint32 decodes one unsigned varint from data. It returns the
// value and the number of bytes consumed; n == 0 means the varint was
// truncated or overflowed 32 bits (including non-canonical encodings that
// pad past the 5-byte maximum).
func decodeUvarint32(data []byte) (v uint32, n int) {
	var x uint64
	var shift uint
	for i := 0; i < len(data) && i < maxUvarint32Len; i++ {
		b := data[i]
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			if x > math.MaxUint32 {
				return 0, 0
			}
			return uint32(x), i + 1
		}
		shift += 7
	}
	return 0, 0
}

// AppendAdjacency appends the delta-varint encoding of one sorted neighbor
// row to dst and returns the extended slice. Rows must be non-decreasing
// with non-negative ids — the invariant CSR adjacency already holds — and
// anything else is rejected rather than silently encoded into a row the
// decoder would misread.
func AppendAdjacency(dst []byte, row []int32) ([]byte, error) {
	prev := int32(0)
	for i, v := range row {
		if v < 0 {
			return nil, fmt.Errorf("graph: negative neighbor %d at index %d", v, i)
		}
		if v < prev {
			return nil, fmt.Errorf("graph: unsorted neighbor row (%d after %d at index %d)", v, prev, i)
		}
		dst = appendUvarint32(dst, uint32(v-prev))
		prev = v
	}
	return dst, nil
}

// adjacencyLen returns the exact encoded byte length of a sorted row
// without encoding it (the sizing pass of the parallel compactor). Rows
// that AppendAdjacency would reject return an error.
func adjacencyLen(row []int32) (int, error) {
	prev := int32(0)
	n := 0
	for i, v := range row {
		if v < 0 || v < prev {
			return 0, fmt.Errorf("graph: unencodable neighbor row at index %d", i)
		}
		n += uvarint32Len(uint32(v - prev))
		prev = v
	}
	return n, nil
}

// DecodeAdjacency decodes deg delta-varint neighbor ids from data into
// dst (which must have room for deg values), returning the number of bytes
// consumed. It never panics on hostile input: truncated varints, gaps that
// overflow 32 bits and cumulative ids that leave the int32 range all come
// back as errors, so every successfully decoded row is a valid
// non-decreasing CSR row.
func DecodeAdjacency(data []byte, deg int, dst []int32) (int, error) {
	if deg < 0 {
		return 0, fmt.Errorf("graph: negative degree %d", deg)
	}
	if len(dst) < deg {
		return 0, fmt.Errorf("graph: decode buffer holds %d of %d neighbors", len(dst), deg)
	}
	pos := 0
	prev := int64(0)
	for i := 0; i < deg; i++ {
		d, n := decodeUvarint32(data[pos:])
		if n == 0 {
			return 0, fmt.Errorf("graph: truncated or overlong varint at byte %d (neighbor %d of %d)", pos, i, deg)
		}
		pos += n
		prev += int64(d)
		if prev > math.MaxInt32 {
			return 0, fmt.Errorf("graph: neighbor %d overflows int32 (cumulative %d)", i, prev)
		}
		dst[i] = int32(prev)
	}
	return pos, nil
}
