package graph

import "graphct/internal/par"

// Undirected returns the undirected view of g: every arc u->v becomes edge
// {u,v}, duplicates merged. The GraphCT utility "convert a directed graph to
// an undirected graph". If g is already undirected it is returned as is.
//
// The view is memoized: the first call symmetrizes and every later call —
// including concurrent ones, which block on the first — returns the same
// *Graph. Symmetrization is O(m log m); callers like the centrality kernels
// and the serving path request the view once per kernel invocation, so
// without the memo a resident directed graph would be re-symmetrized on
// every request.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g
	}
	g.undirectedOnce.Do(func() {
		g.undirectedBuilds.Add(1)
		edges := make([]Edge, 0, g.NumArcs())
		for v := 0; v < g.NumVertices(); v++ {
			for it := g.NeighborIter(int32(v)); ; {
				w, ok := it.Next()
				if !ok {
					break
				}
				edges = append(edges, Edge{int32(v), w})
			}
		}
		g.undirected, _ = FromEdges(g.NumVertices(), edges, Options{KeepSelfLoops: true})
		if g.compact != nil {
			// A compact directed graph gets a compact undirected view, so
			// kernels that symmetrize first keep the small working set.
			g.undirected = g.undirected.Compact()
		}
	})
	return g.undirected
}

// UndirectedBuilds reports how many times this graph has actually been
// symmetrized (0 or 1 once Undirected has memoized). Tests and the server
// use it to assert that concurrent requests share one symmetrization.
func (g *Graph) UndirectedBuilds() int {
	return int(g.undirectedBuilds.Load())
}

// Reverse returns the transpose of a directed graph (in-neighbors become
// out-neighbors). For undirected graphs it returns g.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g
	}
	edges := make([]Edge, 0, g.NumArcs())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(int32(v)) {
			edges = append(edges, Edge{w, int32(v)})
		}
	}
	r, _ := FromEdges(g.NumVertices(), edges, Options{Directed: true, KeepSelfLoops: true, KeepDuplicates: true})
	return r
}

// Induced extracts the subgraph on the vertices with keep[v] == true,
// relabeling vertices densely. It returns the subgraph and origID, where
// origID[new] is the vertex id in g. Edges with either endpoint outside the
// kept set are dropped. This is GraphCT's "extract a subgraph induced by a
// coloring function".
func (g *Graph) Induced(keep []bool) (*Graph, []int32) {
	n := g.NumVertices()
	newID := make([]int32, n)
	origID := make([]int32, 0)
	var m int32
	for v := 0; v < n; v++ {
		if keep[v] {
			newID[v] = m
			origID = append(origID, int32(v))
			m++
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		for _, w := range g.Neighbors(int32(v)) {
			if keep[w] && (g.directed || w >= int32(v)) {
				edges = append(edges, Edge{newID[v], newID[w]})
			}
		}
	}
	sub, _ := FromEdges(int(m), edges, Options{Directed: g.directed, KeepSelfLoops: true})
	return sub, origID
}

// InducedByColor extracts the subgraph of vertices whose color matches c.
func (g *Graph) InducedByColor(colors []int32, c int32) (*Graph, []int32) {
	keep := make([]bool, g.NumVertices())
	par.For(len(keep), func(v int) { keep[v] = colors[v] == c })
	return g.Induced(keep)
}

// ReciprocalCore keeps only mutual arcs of a directed graph — vertex pairs
// that referred to one another — returning the undirected graph of those
// pairs over the same vertex set. This is the paper's subcommunity
// ("conversation") filter; self loops never count as reciprocal.
func (g *Graph) ReciprocalCore() *Graph {
	n := g.NumVertices()
	buckets := make([][]Edge, n)
	par.For(n, func(v int) {
		var out []Edge
		for _, w := range g.Neighbors(int32(v)) {
			if w > int32(v) && g.HasEdge(w, int32(v)) {
				out = append(out, Edge{int32(v), w})
			}
		}
		buckets[v] = out
	})
	var edges []Edge
	for _, b := range buckets {
		edges = append(edges, b...)
	}
	core, _ := FromEdges(n, edges, Options{})
	return core
}

// DropIsolated removes vertices with no incident arcs in either direction,
// returning the compacted graph and the original ids of the survivors.
func (g *Graph) DropIsolated() (*Graph, []int32) {
	keep := make([]bool, g.NumVertices())
	par.For(len(keep), func(v int) { keep[v] = g.Degree(int32(v)) > 0 })
	if g.directed {
		// A vertex mentioned but never mentioning (pure broadcast hub)
		// has out-degree 0 yet is not isolated.
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(int32(v)) {
				keep[w] = true
			}
		}
	}
	return g.Induced(keep)
}
