package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"graphct/internal/par"
)

// Options controls edge-list ingest.
type Options struct {
	// Directed stores arcs as given; otherwise every edge is symmetrized.
	Directed bool
	// KeepDuplicates retains duplicate interactions, producing a
	// multigraph. GraphCT's Twitter pipeline discards duplicates; the
	// flag exists for the dedup ablation.
	KeepDuplicates bool
	// KeepSelfLoops retains u==u arcs ("self-referring vertices"). The
	// default drops them, as the mention-graph builder does.
	KeepSelfLoops bool
}

// FromEdges ingests an edge list into a CSR graph with n vertices. Vertex
// ids must lie in [0, n); n may exceed the largest referenced id to include
// isolated vertices. The input slice may be reordered.
func FromEdges(n int, edges []Edge, opt Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	if !opt.KeepSelfLoops {
		edges = FilterSelfLoops(edges)
	}
	if !opt.KeepDuplicates {
		edges = DedupEdges(edges, !opt.Directed)
	}
	g := scatter(n, edges, nil, opt.Directed)
	return g, nil
}

// FromWeightedEdges ingests a weighted edge list. Duplicate handling keeps
// the first instance of each arc after sorting.
func FromWeightedEdges(n int, edges []WeightedEdge, opt Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	if !opt.KeepSelfLoops {
		out := edges[:0]
		for _, e := range edges {
			if e.U != e.V {
				out = append(out, e)
			}
		}
		edges = out
	}
	if !opt.KeepDuplicates {
		if !opt.Directed {
			for i, e := range edges {
				if e.U > e.V {
					edges[i].U, edges[i].V = e.V, e.U
				}
			}
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		out := edges[:0]
		for i, e := range edges {
			if i == 0 || e.U != edges[i-1].U || e.V != edges[i-1].V {
				out = append(out, e)
			}
		}
		edges = out
	}
	plain := make([]Edge, len(edges))
	weights := make([]int32, len(edges))
	for i, e := range edges {
		plain[i] = Edge{e.U, e.V}
		weights[i] = e.W
	}
	return scatter(n, plain, weights, opt.Directed), nil
}

// scatter builds the CSR arrays from a cleaned edge list: parallel degree
// histogram via atomic fetch-and-add, exclusive prefix sum, parallel
// scatter claiming slots with fetch-and-add, then a parallel per-vertex
// sort. This is the XMT ingest pattern on goroutines.
func scatter(n int, edges []Edge, weights []int32, directed bool) *Graph {
	deg := make([]int64, n)
	par.For(len(edges), func(i int) {
		e := edges[i]
		atomic.AddInt64(&deg[e.U], 1)
		if !directed && e.U != e.V {
			atomic.AddInt64(&deg[e.V], 1)
		}
	})
	rowPtr := make([]int64, n+1)
	var sum int64
	for v := 0; v < n; v++ {
		rowPtr[v] = sum
		sum += deg[v]
	}
	rowPtr[n] = sum
	adj := make([]int32, sum)
	var wts []int32
	if weights != nil {
		wts = make([]int32, sum)
	}
	cursor := make([]int64, n)
	copy(cursor, rowPtr[:n])
	par.For(len(edges), func(i int) {
		e := edges[i]
		slot := atomic.AddInt64(&cursor[e.U], 1) - 1
		adj[slot] = e.V
		if wts != nil {
			wts[slot] = weights[i]
		}
		if !directed && e.U != e.V {
			slot = atomic.AddInt64(&cursor[e.V], 1) - 1
			adj[slot] = e.U
			if wts != nil {
				wts[slot] = weights[i]
			}
		}
	})
	g := &Graph{rowPtr: rowPtr, adj: adj, weights: wts, directed: directed}
	par.For(n, func(v int) {
		lo, hi := rowPtr[v], rowPtr[v+1]
		if hi-lo < 2 {
			return
		}
		if wts == nil {
			s := adj[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return
		}
		a, w := adj[lo:hi], wts[lo:hi]
		idx := make([]int, len(a))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return a[idx[i]] < a[idx[j]] })
		sa := make([]int32, len(a))
		sw := make([]int32, len(a))
		for i, k := range idx {
			sa[i], sw[i] = a[k], w[k]
		}
		copy(a, sa)
		copy(w, sw)
	})
	return g
}

// Empty returns a graph with n vertices and no edges.
func Empty(n int, directed bool) *Graph {
	return &Graph{rowPtr: make([]int64, n+1), adj: nil, directed: directed}
}
