package graph

import (
	"bytes"
	"testing"
)

// FuzzVarintAdjacency drives the delta-varint codec with arbitrary bytes
// and degrees — the trust boundary of the compact representation. Hostile
// input must come back as an error, never a panic or an invalid row; any
// row that does decode must re-encode canonically and round-trip exactly.
func FuzzVarintAdjacency(f *testing.F) {
	// Canonical encodings of small rows, plus the documented failure
	// shapes: truncation, overlong padding, 32-bit overflow, int32
	// cumulative overflow. Mirrored in testdata/fuzz/FuzzVarintAdjacency.
	f.Add([]byte{}, 0)
	f.Add([]byte{0x00, 0x01, 0x01}, 3)                               // 0,1,2
	f.Add([]byte{0xac, 0x02, 0x80, 0x01}, 2)                         // 300, 428
	f.Add([]byte{0x80}, 1)                                           // truncated
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 1)             // overlong
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 1)                   // > uint32
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x07, 0xff, 0xff, 0xff, 0xff, 0x07}, 2) // > int32 sum
	f.Fuzz(func(t *testing.T, data []byte, deg int) {
		if deg < 0 {
			deg = -deg
		}
		deg %= 4096
		dst := make([]int32, deg)
		n, err := DecodeAdjacency(data, deg, dst)
		if err != nil {
			return // rejected input is the correct outcome for most bytes
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		row := dst[:deg]
		prev := int32(0)
		for i, v := range row {
			if v < 0 || v < prev {
				t.Fatalf("decoded invalid row %v at %d", row, i)
			}
			prev = v
		}
		// Re-encode: a decoded row is sorted and non-negative, so the
		// encoder must accept it, size it exactly, and produce bytes that
		// decode back to the same row. The canonical encoding may be
		// shorter than the input (non-minimal varints decode fine) but
		// never longer.
		enc, err := AppendAdjacency(nil, row)
		if err != nil {
			t.Fatalf("re-encode of decoded row %v: %v", row, err)
		}
		if wantLen, err := adjacencyLen(row); err != nil || wantLen != len(enc) {
			t.Fatalf("adjacencyLen = %d,%v; encoded %d bytes", wantLen, err, len(enc))
		}
		if len(enc) > n {
			t.Fatalf("canonical encoding (%d bytes) longer than accepted input (%d)", len(enc), n)
		}
		back := make([]int32, deg)
		m, err := DecodeAdjacency(enc, deg, back)
		if err != nil || m != len(enc) {
			t.Fatalf("canonical re-decode: %d,%v", m, err)
		}
		if !equalInt32(back, row) {
			t.Fatalf("round trip %v -> %v", row, back)
		}
		// The trusted in-graph decoders must agree with the validating
		// one on canonical bytes: build a single-row graph and compare.
		rowPtr := []int64{0, int64(deg)}
		padded := append(append([]byte{}, enc...), make([]byte, compactPad)...)
		g := &Graph{
			rowPtr:   rowPtr,
			directed: true,
			compact:  &compactAdj{offs: []int64{0, int64(len(enc))}, data: padded},
		}
		// Ids may exceed the 1-vertex range; bypass Validate and compare
		// rows directly — appendRow and NeighborIter trust the bytes.
		if got := g.Neighbors(0); !equalInt32(got, row) {
			t.Fatalf("appendRow %v, want %v", got, row)
		}
		it := g.NeighborIter(0)
		var iter []int32
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			iter = append(iter, v)
		}
		if deg == 0 {
			iter = []int32{}
		}
		if !bytes.Equal(int32Bytes(iter), int32Bytes(row)) {
			t.Fatalf("NeighborIter %v, want %v", iter, row)
		}
	})
}

// int32Bytes gives a cheap comparable form for possibly-nil slices.
func int32Bytes(xs []int32) []byte {
	out := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}
