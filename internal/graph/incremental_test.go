package graph

import (
	"math/rand"
	"testing"
)

// dynAdj is a toy dynamic adjacency for exercising the builder directly.
type dynAdj []map[int32]struct{}

func (d dynAdj) deg() []int64 {
	out := make([]int64, len(d))
	for v := range d {
		out[v] = int64(len(d[v]))
	}
	return out
}

func (d dynAdj) fill(v int32, dst []int32) {
	i := 0
	for w := range d[v] {
		dst[i] = w
		i++
	}
}

func (d dynAdj) add(u, v int32) {
	d[u][v] = struct{}{}
	d[v][u] = struct{}{}
}

func newDynAdj(n int) dynAdj {
	d := make(dynAdj, n)
	for i := range d {
		d[i] = make(map[int32]struct{})
	}
	return d
}

func TestIncrementalCSRFullBuild(t *testing.T) {
	d := newDynAdj(4)
	d.add(0, 1)
	d.add(1, 2)
	g, err := IncrementalCSR(nil, 4, d.deg(), nil, d.fill)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Directed() {
		t.Fatalf("edges %d directed %v", g.NumEdges(), g.Directed())
	}
}

func TestIncrementalCSRReusesCleanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 64
	d := newDynAdj(n)
	for i := 0; i < 200; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			d.add(u, v)
		}
	}
	prev, err := IncrementalCSR(nil, n, d.deg(), nil, d.fill)
	if err != nil {
		t.Fatal(err)
	}

	// Touch a few vertices, mark exactly those dirty.
	dirty := make([]bool, n)
	touch := func(u, v int32) { d.add(u, v); dirty[u], dirty[v] = true, true }
	touch(0, 63)
	touch(5, 6)
	next, err := IncrementalCSR(prev, n, d.deg(), dirty, d.fill)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	// The incremental result must equal a from-scratch build...
	full, err := IncrementalCSR(nil, n, d.deg(), nil, d.fill)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < n; v++ {
		a, b := next.Neighbors(v), full.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree(%d) %d != %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d differs", v)
			}
		}
	}
	// ...and the previous snapshot must be untouched (readers may still
	// hold it).
	if err := prev.Validate(); err != nil {
		t.Fatal(err)
	}
	if prev.HasEdge(0, 63) && full.Degree(0) == prev.Degree(0) {
		t.Fatal("previous snapshot mutated")
	}
}

func TestIncrementalCSRErrors(t *testing.T) {
	d := newDynAdj(3)
	d.add(0, 1)
	prev, err := IncrementalCSR(nil, 3, d.deg(), nil, d.fill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IncrementalCSR(nil, -1, nil, nil, d.fill); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := IncrementalCSR(nil, 3, []int64{1}, nil, d.fill); err == nil {
		t.Fatal("short degrees accepted")
	}
	if _, err := IncrementalCSR(nil, 3, []int64{-1, 0, 0}, nil, d.fill); err == nil {
		t.Fatal("negative degree accepted")
	}
	// A clean vertex whose degree changed is a caller bookkeeping bug.
	d.add(1, 2)
	dirty := []bool{false, false, true} // vertex 1 changed but not marked
	if _, err := IncrementalCSR(prev, 3, d.deg(), dirty, d.fill); err == nil {
		t.Fatal("clean-vertex degree change accepted")
	}
}
