package graph_test

// Permutation-equivalence property tests: every kernel must compute the
// same function on a relabeled graph, up to renaming its inputs and
// outputs through the permutation. This is the correctness contract of
// the cache-locality reordering — layout changes kernel speed, never
// kernel answers. Integer results must match exactly; floating-point
// results to 1e-9 relative (adjacency rows re-sort under new names, so
// float summation order legitimately shifts).

import (
	"math"
	"math/rand"
	"testing"

	"graphct/internal/bc"
	"graphct/internal/bfs"
	"graphct/internal/cc"
	"graphct/internal/gen"
	"graphct/internal/graph"
	"graphct/internal/kcore"
	"graphct/internal/sssp"
	"graphct/internal/stats"
)

const relTol = 1e-9

func closeRel(a, b float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= relTol*scale
}

// equivGraph alternates the paper's R-MAT shape with uniform random
// graphs so the property is not an artifact of one degree distribution.
func equivGraph(seed int64) *graph.Graph {
	if seed%2 == 0 {
		return gen.RMAT(gen.PaperRMAT(8, seed)) // 256 vertices, skewed
	}
	return gen.ErdosRenyi(300, 900, seed)
}

func applyReorder(t *testing.T, g *graph.Graph, kind graph.ReorderKind) (*graph.Graph, []int32) {
	t.Helper()
	rg, inv, err := graph.Layout{Reorder: kind, Compact: graph.CompactOff}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if inv == nil {
		t.Fatal("no inverse permutation returned")
	}
	return rg, graph.InversePerm(inv) // perm[old] = new
}

func TestPermutationEquivalence(t *testing.T) {
	kinds := []graph.ReorderKind{graph.ReorderDegree, graph.ReorderBFS}
	for seed := int64(1); seed <= 50; seed++ {
		g := equivGraph(seed)
		n := g.NumVertices()

		// References on the original labels, computed once per seed.
		refBC := bc.Centrality(g, bc.Options{}).Scores
		refBFS := bfs.Search(g, 0)
		refCC := cc.Components(g)
		refCore := kcore.Decompose(g)
		refSSSP, err := sssp.Dijkstra(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		refDeg := stats.Degrees(g)
		refGini := stats.GiniCoefficient(g)

		for _, kind := range kinds {
			rg, perm := applyReorder(t, g, kind)

			// Betweenness: exact run, scores permute (1e-9 rel float).
			got := bc.Centrality(rg, bc.Options{}).Scores
			for old := 0; old < n; old++ {
				if !closeRel(refBC[old], got[perm[old]]) {
					t.Fatalf("seed %d %v: bc[%d] = %g, relabeled %g", seed, kind, old, refBC[old], got[perm[old]])
				}
			}

			// BFS levels from a translated source: exact.
			rbfs := bfs.Search(rg, perm[0])
			if rbfs.Depth != refBFS.Depth || rbfs.NumReached() != refBFS.NumReached() {
				t.Fatalf("seed %d %v: bfs shape %d/%d vs %d/%d", seed, kind,
					rbfs.Depth, rbfs.NumReached(), refBFS.Depth, refBFS.NumReached())
			}
			for old := 0; old < n; old++ {
				if refBFS.Level[old] != rbfs.Level[perm[old]] {
					t.Fatalf("seed %d %v: level[%d] = %d vs %d", seed, kind, old,
						refBFS.Level[old], rbfs.Level[perm[old]])
				}
			}

			// Connected components: same partition (labels are ids, so
			// compare the induced equivalence via a color bijection).
			rcc := cc.Components(rg)
			if rcc.Count != refCC.Count {
				t.Fatalf("seed %d %v: %d components vs %d", seed, kind, rcc.Count, refCC.Count)
			}
			fwd := make(map[int32]int32)
			bwd := make(map[int32]int32)
			for old := 0; old < n; old++ {
				a, b := refCC.Colors[old], rcc.Colors[perm[old]]
				if want, ok := fwd[a]; ok && want != b {
					t.Fatalf("seed %d %v: component of %d split", seed, kind, old)
				}
				if want, ok := bwd[b]; ok && want != a {
					t.Fatalf("seed %d %v: components merged at %d", seed, kind, old)
				}
				fwd[a], bwd[b] = b, a
			}

			// k-core numbers: exact int per vertex.
			rcore := kcore.Decompose(rg)
			for old := 0; old < n; old++ {
				if refCore[old] != rcore[perm[old]] {
					t.Fatalf("seed %d %v: core[%d] = %d vs %d", seed, kind, old,
						refCore[old], rcore[perm[old]])
				}
			}

			// Unweighted shortest paths (unit weights): exact int64.
			rsssp, err := sssp.Dijkstra(rg, perm[0])
			if err != nil {
				t.Fatal(err)
			}
			for old := 0; old < n; old++ {
				if refSSSP.Dist[old] != rsssp.Dist[perm[old]] {
					t.Fatalf("seed %d %v: dist[%d] = %d vs %d", seed, kind, old,
						refSSSP.Dist[old], rsssp.Dist[perm[old]])
				}
			}

			// Degree statistics: the multiset of degrees is invariant.
			rdeg := stats.Degrees(rg)
			if rdeg.N != refDeg.N || rdeg.Min != refDeg.Min || rdeg.Max != refDeg.Max ||
				!closeRel(rdeg.Mean, refDeg.Mean) || !closeRel(rdeg.Variance, refDeg.Variance) {
				t.Fatalf("seed %d %v: degree stats %+v vs %+v", seed, kind, rdeg, refDeg)
			}
			if rgini := stats.GiniCoefficient(rg); !closeRel(rgini, refGini) {
				t.Fatalf("seed %d %v: gini %g vs %g", seed, kind, rgini, refGini)
			}
		}
	}
}

// TestPermutationEquivalenceKBC covers the k-betweenness generalization
// on a subset of seeds (it is the slowest kernel: every vertex is a
// source and each source sweeps k extra path lengths).
func TestPermutationEquivalenceKBC(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := equivGraph(seed)
		n := g.NumVertices()
		for _, k := range []int{1, 2} {
			ref := bc.Centrality(g, bc.Options{K: k}).Scores
			rg, perm := applyReorder(t, g, graph.ReorderDegree)
			got := bc.Centrality(rg, bc.Options{K: k}).Scores
			for old := 0; old < n; old++ {
				if !closeRel(ref[old], got[perm[old]]) {
					t.Fatalf("seed %d k=%d: kbc[%d] = %g, relabeled %g", seed, k, old, ref[old], got[perm[old]])
				}
			}
		}
	}
}

// TestPermutationEquivalenceWeighted pins the weight co-sort in Relabel:
// weighted shortest paths must be invariant under relabeling.
func TestPermutationEquivalenceWeighted(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 120
		edges := make([]graph.WeightedEdge, 360)
		for i := range edges {
			edges[i] = graph.WeightedEdge{
				U: int32(rng.Intn(n)), V: int32(rng.Intn(n)), W: int32(1 + rng.Intn(100)),
			}
		}
		g, err := graph.FromWeightedEdges(n, edges, graph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sssp.Dijkstra(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []graph.ReorderKind{graph.ReorderDegree, graph.ReorderBFS} {
			rg, perm := applyReorder(t, g, kind)
			got, err := sssp.Dijkstra(rg, perm[3])
			if err != nil {
				t.Fatal(err)
			}
			for old := 0; old < n; old++ {
				if ref.Dist[old] != got.Dist[perm[old]] {
					t.Fatalf("seed %d %v: dist[%d] = %d vs %d", seed, kind, old,
						ref.Dist[old], got.Dist[perm[old]])
				}
			}
		}
	}
}

// TestCompactKernelEquivalence pins the compact representation's "same
// function, smaller bytes" contract across kernels: integer results are
// identical and betweenness is bit-identical, because kernels traverse
// identical neighbor sequences either way.
func TestCompactKernelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := equivGraph(seed)
		c := g.Compact()
		n := g.NumVertices()

		raw := bc.Centrality(g, bc.Options{Samples: 32, Seed: seed}).Scores
		comp := bc.Centrality(c, bc.Options{Samples: 32, Seed: seed}).Scores
		for v := 0; v < n; v++ {
			if raw[v] != comp[v] {
				t.Fatalf("seed %d: bc[%d] = %v raw, %v compact", seed, v, raw[v], comp[v])
			}
		}

		rb, cb := bfs.Search(g, 0), bfs.Search(c, 0)
		for v := 0; v < n; v++ {
			if rb.Level[v] != cb.Level[v] {
				t.Fatalf("seed %d: level[%d] differs on compact graph", seed, v)
			}
		}

		rc, ccres := cc.Components(g), cc.Components(c)
		if rc.Count != ccres.Count {
			t.Fatalf("seed %d: component count %d vs %d", seed, rc.Count, ccres.Count)
		}
		for v := 0; v < n; v++ {
			if rc.Colors[v] != ccres.Colors[v] {
				t.Fatalf("seed %d: color[%d] differs on compact graph", seed, v)
			}
		}

		rk, ck := kcore.Decompose(g), kcore.Decompose(c)
		for v := 0; v < n; v++ {
			if rk[v] != ck[v] {
				t.Fatalf("seed %d: core[%d] differs on compact graph", seed, v)
			}
		}
	}
}
