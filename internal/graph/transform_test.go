package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestUndirectedFromDirected(t *testing.T) {
	d, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {1, 2}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	u := d.Undirected()
	if u.Directed() {
		t.Fatal("Undirected() returned directed graph")
	}
	if u.NumEdges() != 2 {
		t.Fatalf("undirected edges = %d, want 2 (0-1 merged)", u.NumEdges())
	}
	if !u.HasEdge(2, 1) {
		t.Fatal("reverse arc missing after symmetrize")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// Idempotent on undirected input.
	if u.Undirected() != u {
		t.Fatal("Undirected() of undirected graph should be identity")
	}
}

func TestReverse(t *testing.T) {
	d, _ := FromEdges(3, []Edge{{0, 1}, {0, 2}, {2, 1}}, Options{Directed: true})
	r := d.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(1, 2) {
		t.Fatal("transpose arcs missing")
	}
	if r.NumArcs() != d.NumArcs() {
		t.Fatalf("transpose arcs = %d, want %d", r.NumArcs(), d.NumArcs())
	}
	u := mustUndirected(t, 2, []Edge{{0, 1}})
	if u.Reverse() != u {
		t.Fatal("Reverse() of undirected graph should be identity")
	}
}

func TestReverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([]Edge, 300)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(50)), int32(rng.Intn(50))}
	}
	d, err := FromEdges(50, edges, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	rr := d.Reverse().Reverse()
	if rr.NumArcs() != d.NumArcs() {
		t.Fatalf("double transpose arcs %d != %d", rr.NumArcs(), d.NumArcs())
	}
	for v := 0; v < 50; v++ {
		a, b := d.Neighbors(int32(v)), rr.Neighbors(int32(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestInduced(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	sub, orig := g.Induced([]bool{true, true, true, false})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle: %v", sub)
	}
	if len(orig) != 3 || orig[0] != 0 || orig[2] != 2 {
		t.Fatalf("origID = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedEmptySelection(t *testing.T) {
	g := mustUndirected(t, 4, testEdges())
	sub, orig := g.Induced(make([]bool, 4))
	if sub.NumVertices() != 0 || len(orig) != 0 {
		t.Fatal("empty selection should give empty graph")
	}
}

func TestInducedDirectedKeepsOrientation(t *testing.T) {
	d, _ := FromEdges(4, []Edge{{0, 1}, {1, 0}, {2, 3}}, Options{Directed: true})
	sub, _ := d.Induced([]bool{true, true, false, false})
	if !sub.Directed() || sub.NumArcs() != 2 {
		t.Fatalf("directed induced: %v", sub)
	}
}

func TestInducedByColor(t *testing.T) {
	g := mustUndirected(t, 5, []Edge{{0, 1}, {2, 3}, {3, 4}})
	colors := []int32{7, 7, 9, 9, 9}
	sub, orig := g.InducedByColor(colors, 9)
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("color-9 subgraph wrong: %v", sub)
	}
	if orig[0] != 2 {
		t.Fatalf("origID = %v", orig)
	}
}

func TestReciprocalCore(t *testing.T) {
	// 0<->1 converse; 2 broadcasts to everyone, only 1 replies to 2.
	d, _ := FromEdges(4, []Edge{
		{0, 1}, {1, 0},
		{2, 0}, {2, 1}, {2, 3},
		{1, 2},
	}, Options{Directed: true})
	core := d.ReciprocalCore()
	if core.Directed() {
		t.Fatal("reciprocal core should be undirected")
	}
	if core.NumEdges() != 2 {
		t.Fatalf("core edges = %d, want 2 (0-1 and 1-2)", core.NumEdges())
	}
	if !core.HasEdge(0, 1) || !core.HasEdge(1, 2) || core.HasEdge(2, 3) {
		t.Fatal("wrong reciprocal pairs")
	}
}

func TestReciprocalCoreIgnoresSelfLoops(t *testing.T) {
	d, _ := FromEdges(2, []Edge{{0, 0}, {0, 1}}, Options{Directed: true, KeepSelfLoops: true})
	core := d.ReciprocalCore()
	if core.NumEdges() != 0 {
		t.Fatalf("self loop counted as reciprocal: %d edges", core.NumEdges())
	}
}

func TestDropIsolatedDirectedKeepsSinks(t *testing.T) {
	// Vertex 1 is only ever mentioned (in-arcs only); vertex 2 is truly
	// isolated.
	d, _ := FromEdges(3, []Edge{{0, 1}}, Options{Directed: true})
	sub, orig := d.DropIsolated()
	if sub.NumVertices() != 2 {
		t.Fatalf("kept %d vertices, want 2 (sink retained)", sub.NumVertices())
	}
	if orig[0] != 0 || orig[1] != 1 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestDropIsolated(t *testing.T) {
	g := mustUndirected(t, 6, []Edge{{1, 4}})
	sub, orig := g.DropIsolated()
	if sub.NumVertices() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("DropIsolated: %v", sub)
	}
	if orig[0] != 1 || orig[1] != 4 {
		t.Fatalf("origID = %v", orig)
	}
}

// Property: the reciprocal core of any directed graph is a subgraph of its
// undirected projection, and every core edge is mutual in the original.
func TestPropertyReciprocalSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		edges := make([]Edge, 150)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		d, err := FromEdges(n, edges, Options{Directed: true})
		if err != nil {
			return false
		}
		core := d.ReciprocalCore()
		for v := 0; v < n; v++ {
			for _, w := range core.Neighbors(int32(v)) {
				if !d.HasEdge(int32(v), w) || !d.HasEdge(w, int32(v)) {
					return false
				}
			}
		}
		return core.NumEdges() <= d.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: an induced subgraph never has more edges than the original and
// all its edges map back to edges of the original.
func TestPropertyInducedEdgesMapBack(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		edges := make([]Edge, 100)
		for i := range edges {
			edges[i] = Edge{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g, err := FromEdges(n, edges, Options{})
		if err != nil {
			return false
		}
		keep := make([]bool, n)
		for v := 0; v < n; v++ {
			keep[v] = mask&(1<<uint(v)) != 0
		}
		sub, orig := g.Induced(keep)
		if sub.NumEdges() > g.NumEdges() {
			return false
		}
		for v := 0; v < sub.NumVertices(); v++ {
			for _, w := range sub.Neighbors(int32(v)) {
				if !g.HasEdge(orig[v], orig[w]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupEdgesLargeRadixPath(t *testing.T) {
	// Exceed the radix threshold and verify against a map-based dedup.
	rng := rand.New(rand.NewSource(4))
	edges := make([]Edge, 40000)
	for i := range edges {
		edges[i] = Edge{U: int32(rng.Intn(300)), V: int32(rng.Intn(300))}
	}
	want := map[Edge]bool{}
	for _, e := range edges {
		want[e.canon()] = true
	}
	out := DedupEdges(edges, true)
	if len(out) != len(want) {
		t.Fatalf("dedup kept %d, want %d", len(out), len(want))
	}
	for i, e := range out {
		if !want[e] {
			t.Fatalf("unexpected edge %v", e)
		}
		if i > 0 && (out[i-1].U > e.U || (out[i-1].U == e.U && out[i-1].V >= e.V)) {
			t.Fatalf("output not strictly sorted at %d", i)
		}
	}
}

func TestDedupEdgesNegativeFallsBack(t *testing.T) {
	// Negative ids (invalid for graphs but legal for the helper) must use
	// the comparison sort and still dedup correctly.
	edges := make([]Edge, 20000)
	for i := range edges {
		edges[i] = Edge{U: int32(i%5) - 2, V: int32(i%7) - 3}
	}
	out := DedupEdges(edges, false)
	if len(out) != 35 {
		t.Fatalf("negative dedup kept %d, want 35", len(out))
	}
}

func TestDedupEdgesHelper(t *testing.T) {
	edges := []Edge{{3, 1}, {1, 3}, {0, 2}, {0, 2}}
	out := DedupEdges(edges, true)
	if len(out) != 2 {
		t.Fatalf("dedup undirected kept %d, want 2", len(out))
	}
	edges = []Edge{{3, 1}, {1, 3}, {1, 3}}
	out = DedupEdges(edges, false)
	if len(out) != 2 {
		t.Fatalf("dedup directed kept %d, want 2", len(out))
	}
}

func TestMaxVertexHelper(t *testing.T) {
	if MaxVertex(nil) != 0 {
		t.Fatal("MaxVertex(nil) != 0")
	}
	if MaxVertex([]Edge{{0, 5}, {3, 2}}) != 6 {
		t.Fatal("MaxVertex wrong")
	}
}

func TestUndirectedMemoized(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {3, 0}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.UndirectedBuilds() != 0 {
		t.Fatalf("symmetrized before any Undirected() call: %d", g.UndirectedBuilds())
	}
	u1 := g.Undirected()
	u2 := g.Undirected()
	if u1 != u2 {
		t.Fatal("Undirected() returned distinct views across calls")
	}
	if g.UndirectedBuilds() != 1 {
		t.Fatalf("builds = %d, want 1", g.UndirectedBuilds())
	}
	if u1.Directed() {
		t.Fatal("undirected view reports directed")
	}
	// The view of an undirected graph is itself, never rebuilt.
	if u1.Undirected() != u1 {
		t.Fatal("Undirected() of an undirected graph is not itself")
	}
}

func TestUndirectedMemoConcurrent(t *testing.T) {
	g, err := FromEdges(100, []Edge{{0, 1}, {5, 9}, {99, 3}, {42, 7}}, Options{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	views := make([]*Graph, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			views[i] = g.Undirected()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if views[i] != views[0] {
			t.Fatal("concurrent Undirected() calls returned distinct views")
		}
	}
	if g.UndirectedBuilds() != 1 {
		t.Fatalf("concurrent calls symmetrized %d times, want 1", g.UndirectedBuilds())
	}
}
