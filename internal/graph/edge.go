package graph

import (
	"sort"

	"graphct/internal/par"
)

// Edge is one directed arc (or one undirected edge, orientation ignored) in
// an edge list awaiting ingest.
type Edge struct {
	U, V int32
}

// WeightedEdge is an Edge with an integer weight, as read from DIMACS input.
type WeightedEdge struct {
	U, V, W int32
}

// canon returns the edge with endpoints ordered (u <= v), the canonical form
// for undirected deduplication.
func (e Edge) canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// DedupEdges sorts the list and removes duplicate arcs in place, returning
// the shortened slice. When undirected is true, (u,v) and (v,u) are treated
// as the same edge ("duplicate user interactions are thrown out"). Self
// loops are kept; callers drop them separately if desired.
//
// Large lists are sorted by packing both endpoints into one uint64 key and
// radix sorting in parallel — the ingest-dominated workloads the paper
// describes spend most of their time here.
func DedupEdges(edges []Edge, undirected bool) []Edge {
	if undirected {
		for i := range edges {
			edges[i] = edges[i].canon()
		}
	}
	const radixThreshold = 1 << 14
	if len(edges) >= radixThreshold && nonNegative(edges) {
		keys := make([]uint64, len(edges))
		for i, e := range edges {
			keys[i] = uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
		}
		par.RadixSortUint64(keys)
		for i, k := range keys {
			edges[i] = Edge{U: int32(k >> 32), V: int32(k & 0xFFFFFFFF)}
		}
	} else {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
	}
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// nonNegative reports whether every endpoint packs order-preserving into
// an unsigned key. Ingest always validates ranges first; the check guards
// direct library callers.
func nonNegative(edges []Edge) bool {
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return false
		}
	}
	return true
}

// FilterSelfLoops removes u==v arcs in place and returns the shortened
// slice.
func FilterSelfLoops(edges []Edge) []Edge {
	out := edges[:0]
	for _, e := range edges {
		if e.U != e.V {
			out = append(out, e)
		}
	}
	return out
}

// MaxVertex returns 1 + the largest vertex id referenced by the edge list,
// i.e. the minimum vertex count that can hold it. Empty lists give 0.
func MaxVertex(edges []Edge) int {
	max := int32(-1)
	for _, e := range edges {
		if e.U > max {
			max = e.U
		}
		if e.V > max {
			max = e.V
		}
	}
	return int(max) + 1
}
