// Package graph provides GraphCT's common graph data structure: a static
// compressed-sparse-row (CSR) graph shared by every analysis kernel. The
// number of vertices and edges is fixed at ingest; kernels never mutate the
// structure, so it is safe for concurrent reads from many goroutines.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is a static graph in compressed sparse row format. For a directed
// graph Adj holds the out-neighbors of each vertex; for an undirected graph
// every edge {u,v} appears in both adjacency lists. Adjacency lists are
// sorted ascending, which kernels exploit (e.g. clustering-coefficient
// intersection).
type Graph struct {
	rowPtr   []int64     // len = NumVertices()+1; rowPtr[v]..rowPtr[v+1] index Adj
	adj      []int32     // concatenated sorted adjacency lists; nil when compact
	weights  []int32     // optional, aligned with adj; nil when unweighted
	compact  *compactAdj // delta-varint adjacency (see compact.go); nil when raw
	directed bool

	// undirectedOnce memoizes Undirected(): a directed graph is
	// symmetrized at most once per Graph lifetime, no matter how many
	// kernels (or concurrent server requests) ask for the undirected
	// view. Graphs are immutable after construction, so the memo can
	// never go stale.
	undirectedOnce   sync.Once
	undirected       *Graph
	undirectedBuilds atomic.Int32
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.rowPtr) - 1 }

// NumArcs returns the number of stored arcs (directed edges). For an
// undirected graph each edge contributes two arcs.
func (g *Graph) NumArcs() int64 { return g.rowPtr[len(g.rowPtr)-1] }

// NumEdges returns the number of logical edges: arcs for a directed graph,
// arcs/2 (plus any self loops counted once) for an undirected graph.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return g.NumArcs()
	}
	var loops int64
	for v := 0; v < g.NumVertices(); v++ {
		for it := g.NeighborIter(int32(v)); ; {
			w, ok := it.Next()
			if !ok {
				break
			}
			if w == int32(v) {
				loops++
			}
		}
	}
	return (g.NumArcs()-loops)/2 + loops
}

// Directed reports whether the graph stores directed arcs.
func (g *Graph) Directed() bool { return g.directed }

// Degree returns the out-degree of v (degree for undirected graphs).
func (g *Graph) Degree(v int32) int {
	return int(g.rowPtr[v+1] - g.rowPtr[v])
}

// Neighbors returns the adjacency slice of v. For a raw graph the slice
// aliases the graph's storage and must not be modified. For a compact graph
// (see Compact) it is decoded into a fresh allocation per call — correct
// everywhere, but hot paths should use NeighborsInto or NeighborIter.
func (g *Graph) Neighbors(v int32) []int32 {
	if g.compact == nil {
		return g.adj[g.rowPtr[v]:g.rowPtr[v+1]]
	}
	deg := g.rowPtr[v+1] - g.rowPtr[v]
	return g.appendRow(make([]int32, 0, deg), v)
}

// Weights returns the edge-weight slice aligned with Neighbors(v), or nil if
// the graph is unweighted.
func (g *Graph) Weights(v int32) []int32 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.rowPtr[v]:g.rowPtr[v+1]]
}

// Weighted reports whether per-edge weights are stored.
func (g *Graph) Weighted() bool { return g.weights != nil }

// HasEdge reports whether the arc u->v is present: binary search on the
// sorted adjacency list of u for raw graphs, an early-exit sequential decode
// for compact ones (the row is sorted, so the scan stops at the first
// neighbor >= v).
func (g *Graph) HasEdge(u, v int32) bool {
	if g.compact == nil {
		nbr := g.adj[g.rowPtr[u]:g.rowPtr[u+1]]
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
		return i < len(nbr) && nbr[i] == v
	}
	for it := g.NeighborIter(u); ; {
		w, ok := it.Next()
		if !ok || w > v {
			return false
		}
		if w == v {
			return true
		}
	}
}

// RowPtr exposes the CSR offset array for serialization. Callers must treat
// it as read-only.
func (g *Graph) RowPtr() []int64 { return g.rowPtr }

// AdjArray exposes the CSR adjacency array for serialization. Callers must
// treat it as read-only. For a compact graph the raw array is materialized
// so on-disk formats stay plain CSR regardless of the in-memory layout.
func (g *Graph) AdjArray() []int32 {
	if g.compact != nil {
		return g.decompressAdj()
	}
	return g.adj
}

// WeightArray exposes the CSR weight array (nil when unweighted) for
// serialization. Callers must treat it as read-only.
func (g *Graph) WeightArray() []int32 { return g.weights }

// FromCSR constructs a Graph directly from CSR arrays, validating them. It
// is used by the binary loader; most callers should use FromEdges.
func FromCSR(rowPtr []int64, adj []int32, weights []int32, directed bool) (*Graph, error) {
	g := &Graph{rowPtr: rowPtr, adj: adj, weights: weights, directed: directed}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Validate checks the CSR invariants: monotone offsets covering adj exactly,
// in-range sorted neighbor ids, aligned weights, and symmetry for undirected
// graphs (spot-checked exhaustively; the structure is small relative to the
// cost of a broken kernel run).
func (g *Graph) Validate() error {
	if len(g.rowPtr) == 0 {
		return fmt.Errorf("graph: empty rowPtr")
	}
	if g.rowPtr[0] != 0 {
		return fmt.Errorf("graph: rowPtr[0] = %d, want 0", g.rowPtr[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.rowPtr[v+1] < g.rowPtr[v] {
			return fmt.Errorf("graph: rowPtr not monotone at vertex %d", v)
		}
	}
	if g.compact == nil {
		if g.rowPtr[n] != int64(len(g.adj)) {
			return fmt.Errorf("graph: rowPtr[n] = %d, want %d", g.rowPtr[n], len(g.adj))
		}
		if g.weights != nil && len(g.weights) != len(g.adj) {
			return fmt.Errorf("graph: %d weights for %d arcs", len(g.weights), len(g.adj))
		}
	} else {
		if len(g.compact.offs) != n+1 {
			return fmt.Errorf("graph: compact offsets cover %d vertices, want %d", len(g.compact.offs)-1, n)
		}
		if g.compact.offs[n] != int64(len(g.compact.data)-compactPad) {
			return fmt.Errorf("graph: compact offs[n] = %d, want %d", g.compact.offs[n], len(g.compact.data)-compactPad)
		}
		if g.weights != nil {
			return fmt.Errorf("graph: compact graph with weights (weighted graphs stay raw)")
		}
	}
	for v := 0; v < n; v++ {
		prev := int32(-1)
		i := 0
		for it := g.NeighborIter(int32(v)); ; i++ {
			w, ok := it.Next()
			if !ok {
				break
			}
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if i > 0 && prev > w {
				return fmt.Errorf("graph: adjacency of vertex %d not sorted", v)
			}
			prev = w
		}
	}
	if !g.directed {
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if !g.HasEdge(w, int32(v)) {
					return fmt.Errorf("graph: undirected edge %d-%d missing reverse arc", v, w)
				}
			}
		}
	}
	return nil
}

// MaxDegree returns the largest degree in the graph (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// MemoryFootprint returns the bytes held by the CSR arrays — the paper
// tracks this closely ("requiring only around 30 MiB of memory in our
// naive storage format"; "at least 7 GiB for the basic graph connectivity
// data" at scale 29).
func (g *Graph) MemoryFootprint() int64 {
	bytes := int64(len(g.rowPtr)) * 8
	bytes += int64(len(g.adj)) * 4
	bytes += int64(len(g.weights)) * 4
	if g.compact != nil {
		bytes += int64(len(g.compact.offs))*8 + int64(len(g.compact.data))
	}
	return bytes
}

// AdjBytes returns the bytes spent on neighbor-id storage alone (the part
// Compact shrinks): 4 per arc raw, the varint stream plus byte offsets when
// compact. cmd/bench reports it so compression claims are auditable.
func (g *Graph) AdjBytes() int64 {
	if g.compact != nil {
		return int64(len(g.compact.offs))*8 + int64(len(g.compact.data))
	}
	return int64(len(g.adj)) * 4
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s graph: %d vertices, %d edges", kind, g.NumVertices(), g.NumEdges())
}
