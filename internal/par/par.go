// Package par provides the fine-grained parallel runtime GraphCT's kernels
// are written against. It substitutes goroutines scheduled over GOMAXPROCS
// workers for the Cray XMT's hardware thread streams: parallel loops are
// dynamically self-scheduled in chunks, and the only synchronization the
// kernels need is atomic fetch-and-add (plus an atomic float64 accumulate),
// mirroring the paper's stated hardware requirements.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunk is the default number of loop iterations a worker claims at a
// time in dynamically scheduled loops. Small enough to balance the skewed
// per-vertex work of scale-free graphs, large enough to amortize the atomic
// fetch-and-add that claims it.
const DefaultChunk = 1024

// maxProcs is overridable for tests that need to pin worker counts.
var maxProcs = func() int { return runtime.GOMAXPROCS(0) }

// Workers returns the number of workers parallel loops fan out to.
func Workers() int {
	n := maxProcs()
	if n < 1 {
		return 1
	}
	return n
}

// For runs body(i) for every i in [0, n) across Workers() goroutines using
// dynamic self-scheduling with DefaultChunk-sized claims. It returns after
// all iterations complete. A zero or negative n is a no-op.
func For(n int, body func(i int)) {
	ForChunked(n, DefaultChunk, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked runs body(lo, hi) over contiguous chunks covering [0, n).
// Chunks are claimed with an atomic fetch-and-add so workers that draw
// heavy chunks (high-degree vertices) do not stall the rest — the software
// analogue of XMT stream remapping. chunk <= 0 uses DefaultChunk.
func ForChunked(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	workers := Workers()
	if workers == 1 || n <= chunk {
		body(0, n)
		return
	}
	if max := (n + workers - 1) / workers; chunk > max {
		chunk = max
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForGuided runs body(lo, hi) over contiguous chunks covering [0, n) using
// guided (decaying-chunk) self-scheduling: each claim takes a fixed share of
// the iterations still remaining (remaining / 2·workers), never less than
// minChunk. Early claims are large, amortizing the claiming atomic; late
// claims shrink so a worker that drew a run of heavy iterations (hub
// vertices) cannot strand a large tail behind it. minChunk <= 0 uses 64.
//
// The chunk size is computed from a racy read of the cursor; a stale read
// only makes a claim slightly larger or smaller than the ideal share, never
// incorrect, so no extra synchronization is needed.
func ForGuided(n, minChunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk <= 0 {
		minChunk = 64
	}
	workers := Workers()
	if workers == 1 || n <= minChunk {
		body(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				remaining := n - int(next.Load())
				if remaining <= 0 {
					return
				}
				chunk := remaining / (2 * workers)
				if chunk < minChunk {
					chunk = minChunk
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForEachWorker runs body(worker, workers) once per worker goroutine. It is
// the escape hatch for kernels that keep per-worker scratch (e.g. frontier
// buffers) and partition work themselves.
func ForEachWorker(body func(worker, workers int)) {
	workers := Workers()
	if workers == 1 {
		body(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w, workers)
		}(w)
	}
	wg.Wait()
}
