package par

import (
	"math"
	"sync/atomic"
)

// AddFloat64 atomically adds delta to *addr using a compare-and-swap loop on
// the float's bit pattern. The Cray XMT provides int fetch-and-add in
// hardware; GraphCT accumulates real-valued centrality scores, so this is
// the one extra primitive the kernels need.
func AddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, new) {
			return
		}
	}
}

// LoadFloat64 atomically loads the float64 stored in *addr by AddFloat64 /
// StoreFloat64.
func LoadFloat64(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// StoreFloat64 atomically stores v into *addr.
func StoreFloat64(addr *uint64, v float64) {
	atomic.StoreUint64(addr, math.Float64bits(v))
}

// MinInt32 atomically lowers *addr to v if v is smaller, returning true when
// the store happened. It is the hooking primitive of the connected-components
// kernel ("absorb higher labeled colors into lower labeled neighbors").
func MinInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// MaxInt32 atomically raises *addr to v if v is larger, returning true when
// the store happened.
func MaxInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// CASInt32 wraps atomic.CompareAndSwapInt32 for symmetry with the helpers
// above; BFS uses it to claim unvisited vertices exactly once.
func CASInt32(addr *int32, old, new int32) bool {
	return atomic.CompareAndSwapInt32(addr, old, new)
}
