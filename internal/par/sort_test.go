package par

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRadixSortSmall(t *testing.T) {
	cases := [][]uint64{
		nil,
		{},
		{5},
		{2, 1},
		{3, 3, 3},
		{9, 1, 8, 2, 7, 3},
		{0, ^uint64(0), 1 << 63, 1},
	}
	for _, c := range cases {
		got := append([]uint64(nil), c...)
		RadixSortUint64(got)
		want := append([]uint64(nil), c...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sort(%v) = %v, want %v", c, got, want)
			}
		}
	}
}

func TestRadixSortLargeMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]uint64, 200000)
	for i := range a {
		a[i] = rng.Uint64()
	}
	want := append([]uint64(nil), a...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSortUint64(a)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRadixSortParallelPinned(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 4 }
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, 100000)
	for i := range a {
		a[i] = rng.Uint64() >> uint(rng.Intn(60)) // skewed digits
	}
	want := append([]uint64(nil), a...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSortUint64(a)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}

func TestPropertyRadixSorted(t *testing.T) {
	f := func(xs []uint64) bool {
		a := append([]uint64(nil), xs...)
		RadixSortUint64(a)
		if len(a) != len(xs) {
			return false
		}
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				return false
			}
		}
		// Same multiset: compare against stdlib sort.
		want := append([]uint64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if a[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRadixVsStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]uint64, 1<<20)
	for i := range base {
		base[i] = rng.Uint64()
	}
	b.Run("radix", func(b *testing.B) {
		a := make([]uint64, len(base))
		for i := 0; i < b.N; i++ {
			copy(a, base)
			RadixSortUint64(a)
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		a := make([]uint64, len(base))
		for i := 0; i < b.N; i++ {
			copy(a, base)
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		}
	})
}
