package par

import "sync"

// Number covers the numeric element types the reductions operate on.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// ReduceSum returns the sum of f(i) over [0, n), computed in parallel with
// per-worker partial sums merged once at the end (no atomics on the hot
// path).
func ReduceSum[T Number](n int, f func(i int) T) T {
	return reduce(n, f, func(a, b T) T { return a + b }, 0)
}

// ReduceMax returns the maximum of f(i) over [0, n) and the identity value
// id when n <= 0.
func ReduceMax[T Number](n int, f func(i int) T, id T) T {
	return reduce(n, f, func(a, b T) T {
		if a >= b {
			return a
		}
		return b
	}, id)
}

// ReduceMin returns the minimum of f(i) over [0, n) and the identity value
// id when n <= 0.
func ReduceMin[T Number](n int, f func(i int) T, id T) T {
	return reduce(n, f, func(a, b T) T {
		if a <= b {
			return a
		}
		return b
	}, id)
}

func reduce[T Number](n int, f func(i int) T, combine func(a, b T) T, id T) T {
	if n <= 0 {
		return id
	}
	workers := Workers()
	if workers == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = combine(acc, f(i))
		}
		return acc
	}
	partial := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			acc := id
			for i := lo; i < hi; i++ {
				acc = combine(acc, f(i))
			}
			partial[w] = acc
		}(w)
	}
	wg.Wait()
	acc := id
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// Count returns the number of i in [0, n) for which pred(i) holds.
func Count(n int, pred func(i int) bool) int64 {
	return ReduceSum(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}
