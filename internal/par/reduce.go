package par

import "sync"

// Number covers the numeric element types the reductions operate on.
type Number interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64 | ~float64
}

// ReduceSum returns the sum of f(i) over [0, n), computed in parallel with
// per-worker partial sums merged once at the end (no atomics on the hot
// path).
func ReduceSum[T Number](n int, f func(i int) T) T {
	return reduce(n, f, func(a, b T) T { return a + b }, 0)
}

// ReduceMax returns the maximum of f(i) over [0, n) and the identity value
// id when n <= 0.
func ReduceMax[T Number](n int, f func(i int) T, id T) T {
	return reduce(n, f, func(a, b T) T {
		if a >= b {
			return a
		}
		return b
	}, id)
}

// ReduceMin returns the minimum of f(i) over [0, n) and the identity value
// id when n <= 0.
func ReduceMin[T Number](n int, f func(i int) T, id T) T {
	return reduce(n, f, func(a, b T) T {
		if a <= b {
			return a
		}
		return b
	}, id)
}

func reduce[T Number](n int, f func(i int) T, combine func(a, b T) T, id T) T {
	if n <= 0 {
		return id
	}
	workers := Workers()
	if workers == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = combine(acc, f(i))
		}
		return acc
	}
	partial := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			acc := id
			for i := lo; i < hi; i++ {
				acc = combine(acc, f(i))
			}
			partial[w] = acc
		}(w)
	}
	wg.Wait()
	acc := id
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// FoldSlices folds the stripe slices elementwise into dst with op, using a
// parallel tree reduction: stripes are combined pairwise in log₂(len)
// rounds, each round a single parallel loop in which every worker owns a
// contiguous index range across all pairs (sequential streams through each
// stripe, no sharing). The stripes are scratch — their contents are
// consumed by the fold. Every stripe must have len(dst). This is the merge
// step of striped kernels: each worker accumulates privately, then one
// fold replaces the millions of contended atomic adds a shared array would
// have cost.
func FoldSlices[T Number](dst []T, stripes [][]T, op func(a, b T) T) {
	n := len(dst)
	for _, s := range stripes {
		if len(s) != n {
			panic("par: FoldSlices stripe length mismatch")
		}
	}
	m := len(stripes)
	for m > 1 {
		h := (m + 1) / 2
		ForChunked(n, 0, func(lo, hi int) {
			for i := 0; i+h < m; i++ {
				a, b := stripes[i], stripes[i+h]
				for j := lo; j < hi; j++ {
					a[j] = op(a[j], b[j])
				}
			}
		})
		m = h
	}
	if m == 1 {
		s := stripes[0]
		ForChunked(n, 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				dst[j] = op(dst[j], s[j])
			}
		})
	}
}

// SumSlices adds the stripe slices elementwise into dst (tree reduction;
// see FoldSlices — stripes are consumed).
func SumSlices[T Number](dst []T, stripes [][]T) {
	FoldSlices(dst, stripes, func(a, b T) T { return a + b })
}

// Count returns the number of i in [0, n) for which pred(i) holds.
func Count(n int, pred func(i int) bool) int64 {
	return ReduceSum(n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}
