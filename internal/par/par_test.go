package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 10000
	hits := make([]int32, n)
	For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, h)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("body called for empty ranges")
	}
}

func TestForSingleIteration(t *testing.T) {
	var sum int64
	For(1, func(i int) { atomic.AddInt64(&sum, int64(i)+7) })
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
}

func TestForChunkedCoversRangeExactly(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 1000, 4096, 99999} {
		for _, chunk := range []int{1, 7, 64, 1024, 1 << 20} {
			var covered atomic.Int64
			ForChunked(n, chunk, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				covered.Add(int64(hi - lo))
			})
			if covered.Load() != int64(n) {
				t.Fatalf("n=%d chunk=%d covered %d iterations", n, chunk, covered.Load())
			}
		}
	}
}

func TestForChunkedDefaultChunk(t *testing.T) {
	var total atomic.Int64
	ForChunked(5000, 0, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 5000 {
		t.Fatalf("covered %d, want 5000", total.Load())
	}
}

func TestForEachWorkerRunsEachWorkerOnce(t *testing.T) {
	seen := make([]int32, Workers())
	ForEachWorker(func(w, workers int) {
		if workers != Workers() {
			t.Errorf("workers = %d, want %d", workers, Workers())
		}
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestWorkersPinned(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 3 }
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	maxProcs = func() int { return 0 }
	if Workers() != 1 {
		t.Fatalf("Workers() with 0 procs = %d, want 1", Workers())
	}
}

func TestForParallelWithPinnedWorkers(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 4 }
	const n = 50000
	var sum atomic.Int64
	For(n, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * (n - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForChunkedParallelWithPinnedWorkers(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 4 }
	for _, n := range []int{1, 100, 5000, 99991} {
		var covered atomic.Int64
		ForChunked(n, 64, func(lo, hi int) { covered.Add(int64(hi - lo)) })
		if covered.Load() != int64(n) {
			t.Fatalf("n=%d covered %d", n, covered.Load())
		}
	}
	// Chunk larger than fair share is clamped so all workers participate.
	var covered atomic.Int64
	ForChunked(1000, 1<<20, func(lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != 1000 {
		t.Fatalf("clamped chunk covered %d", covered.Load())
	}
}

func TestForEachWorkerParallelWithPinnedWorkers(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 4 }
	seen := make([]int32, 4)
	ForEachWorker(func(w, workers int) {
		if workers != 4 {
			t.Errorf("workers = %d", workers)
		}
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestReduceParallelWithPinnedWorkers(t *testing.T) {
	old := maxProcs
	defer func() { maxProcs = old }()
	maxProcs = func() int { return 4 }
	const n = 12345
	sum := ReduceSum(n, func(i int) int64 { return int64(i) })
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("parallel sum = %d, want %d", sum, want)
	}
	max := ReduceMax(n, func(i int) int64 { return int64(i % 997) }, -1)
	if max != 996 {
		t.Fatalf("parallel max = %d", max)
	}
	min := ReduceMin(n, func(i int) int64 { return int64(i%997) - 5 }, 1<<62)
	if min != -5 {
		t.Fatalf("parallel min = %d", min)
	}
}

func TestAddFloat64Concurrent(t *testing.T) {
	var acc uint64
	For(100000, func(i int) { AddFloat64(&acc, 0.5) })
	if got := LoadFloat64(&acc); got != 50000 {
		t.Fatalf("accumulated %v, want 50000", got)
	}
}

func TestStoreLoadFloat64(t *testing.T) {
	var acc uint64
	StoreFloat64(&acc, 3.25)
	if got := LoadFloat64(&acc); got != 3.25 {
		t.Fatalf("LoadFloat64 = %v, want 3.25", got)
	}
}

func TestMinInt32(t *testing.T) {
	v := int32(10)
	if !MinInt32(&v, 3) || v != 3 {
		t.Fatalf("MinInt32 lower: v=%d", v)
	}
	if MinInt32(&v, 5) || v != 3 {
		t.Fatalf("MinInt32 should not raise: v=%d", v)
	}
	if MinInt32(&v, 3) {
		t.Fatal("MinInt32 equal value should report false")
	}
}

func TestMaxInt32(t *testing.T) {
	v := int32(10)
	if !MaxInt32(&v, 30) || v != 30 {
		t.Fatalf("MaxInt32 raise: v=%d", v)
	}
	if MaxInt32(&v, 5) || v != 30 {
		t.Fatalf("MaxInt32 should not lower: v=%d", v)
	}
}

func TestMinInt32ConcurrentConverges(t *testing.T) {
	v := int32(1 << 30)
	For(10000, func(i int) { MinInt32(&v, int32(i)) })
	if v != 0 {
		t.Fatalf("concurrent min = %d, want 0", v)
	}
}

func TestCASInt32(t *testing.T) {
	v := int32(-1)
	if !CASInt32(&v, -1, 7) {
		t.Fatal("CAS from -1 failed")
	}
	if CASInt32(&v, -1, 9) {
		t.Fatal("CAS from stale value succeeded")
	}
	if v != 7 {
		t.Fatalf("v = %d, want 7", v)
	}
}

func TestReduceSumMatchesSequential(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n % 5000)
		want := int64(0)
		for i := 0; i < m; i++ {
			want += int64(i * i)
		}
		got := ReduceSum(m, func(i int) int64 { return int64(i * i) })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumFloat(t *testing.T) {
	got := ReduceSum(1000, func(i int) float64 { return 0.25 })
	if got != 250 {
		t.Fatalf("float sum = %v, want 250", got)
	}
}

func TestReduceMaxMin(t *testing.T) {
	vals := []int64{5, -2, 17, 3, 17, -9, 0}
	max := ReduceMax(len(vals), func(i int) int64 { return vals[i] }, -1<<62)
	min := ReduceMin(len(vals), func(i int) int64 { return vals[i] }, 1<<62)
	if max != 17 || min != -9 {
		t.Fatalf("max=%d min=%d, want 17,-9", max, min)
	}
}

func TestReduceEmptyReturnsIdentity(t *testing.T) {
	if got := ReduceMax(0, func(int) int64 { return 99 }, -7); got != -7 {
		t.Fatalf("empty max = %d, want identity -7", got)
	}
	if got := ReduceSum(0, func(int) int64 { return 99 }); got != 0 {
		t.Fatalf("empty sum = %d, want 0", got)
	}
}

func TestCount(t *testing.T) {
	got := Count(100, func(i int) bool { return i%3 == 0 })
	if got != 34 {
		t.Fatalf("count = %d, want 34", got)
	}
}

func TestGroupRunsAllTasks(t *testing.T) {
	g := NewGroup(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak atomic.Int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak.Load(), limit)
	}
}

func TestGroupReportsError(t *testing.T) {
	g := NewGroup(0)
	boom := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return boom })
	g.Go(func() error { return nil })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want boom", err)
	}
}

func TestForEachWorkerPartitionExample(t *testing.T) {
	const n = 1009
	data := make([]int32, n)
	ForEachWorker(func(w, workers int) {
		for i := w; i < n; i += workers {
			atomic.AddInt32(&data[i], 1)
		}
	})
	for i, v := range data {
		if v != 1 {
			t.Fatalf("index %d hit %d times", i, v)
		}
	}
}

func TestForGuidedCoversAllIterations(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1009, 100000} {
		data := make([]int32, n)
		ForGuided(n, 0, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&data[i], 1)
			}
		})
		for i, v := range data {
			if v != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, v)
			}
		}
	}
}

func TestForGuidedRespectsMinChunk(t *testing.T) {
	const n, minChunk = 10000, 256
	var small atomic.Int32
	ForGuided(n, minChunk, func(lo, hi int) {
		// Only the final chunk (clipped at n) may be under minChunk.
		if hi-lo < minChunk && hi != n {
			small.Add(1)
		}
	})
	if small.Load() != 0 {
		t.Fatalf("%d interior chunks under minChunk", small.Load())
	}
}

func TestFoldSlicesTreeReduction(t *testing.T) {
	const n = 5000
	for stripes := 0; stripes <= 9; stripes++ {
		dst := make([]float64, n)
		srcs := make([][]float64, stripes)
		for i := range srcs {
			srcs[i] = make([]float64, n)
			for j := range srcs[i] {
				srcs[i][j] = float64(i + 1)
			}
		}
		// Σ_{i=1..stripes} i, at every index.
		want := float64(stripes*(stripes+1)) / 2
		SumSlices(dst, srcs)
		for j := 0; j < n; j++ {
			if dst[j] != want {
				t.Fatalf("stripes=%d dst[%d] = %v, want %v", stripes, j, dst[j], want)
			}
		}
	}
}

func TestFoldSlicesCustomOp(t *testing.T) {
	dst := []int64{10, 0, 7}
	srcs := [][]int64{{1, 5, 2}, {4, 3, 9}}
	FoldSlices(dst, srcs, func(a, b int64) int64 {
		if a >= b {
			return a
		}
		return b
	})
	want := []int64{10, 5, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestFoldSlicesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched stripe length")
		}
	}()
	SumSlices(make([]float64, 4), [][]float64{make([]float64, 3)})
}
