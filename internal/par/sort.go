package par

import "sync"

// RadixSortUint64 sorts a in place (ascending) with a parallel
// least-significant-digit radix sort: per-worker digit histograms, a
// global (digit, worker) prefix sum, and a stable parallel scatter per
// 11-bit pass. Graph ingest packs edge endpoints into uint64 keys and
// sorts millions of them per load, which is why this isn't sort.Slice.
func RadixSortUint64(a []uint64) {
	const (
		bits    = 11
		buckets = 1 << bits
		mask    = buckets - 1
		passes  = (64 + bits - 1) / bits
	)
	n := len(a)
	if n < 2 {
		return
	}
	workers := Workers()
	if n < 1<<12 || workers == 1 {
		insertionless(a)
		return
	}
	buf := make([]uint64, n)
	hist := make([][]int64, workers)
	for w := range hist {
		hist[w] = make([]int64, buckets)
	}
	src, dst := a, buf
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * bits)
		// Phase 1: per-worker histograms over contiguous chunks.
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				h := hist[w]
				for i := range h {
					h[i] = 0
				}
				lo, hi := w*n/workers, (w+1)*n/workers
				for _, v := range src[lo:hi] {
					h[(v>>shift)&mask]++
				}
			}(w)
		}
		wg.Wait()
		// Phase 2: exclusive prefix over (digit, worker) so each worker
		// owns a stable output range per digit.
		var sum int64
		for d := 0; d < buckets; d++ {
			for w := 0; w < workers; w++ {
				c := hist[w][d]
				hist[w][d] = sum
				sum += c
			}
		}
		// Phase 3: stable parallel scatter.
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				h := hist[w]
				lo, hi := w*n/workers, (w+1)*n/workers
				for _, v := range src[lo:hi] {
					d := (v >> shift) & mask
					dst[h[d]] = v
					h[d]++
				}
			}(w)
		}
		wg.Wait()
		src, dst = dst, src
	}
	// passes is even for 64/11 -> 6 passes: src points back at a. If the
	// pass count were odd the result would sit in buf; copy defensively.
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// insertionless is the small-input fallback: a simple binary-insertion-free
// LSD radix using one buffer, sequential.
func insertionless(a []uint64) {
	const bits = 8
	const buckets = 1 << bits
	buf := make([]uint64, len(a))
	src, dst := a, buf
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * bits)
		var count [buckets]int
		for _, v := range src {
			count[(v>>shift)&(buckets-1)]++
		}
		sum := 0
		for d := 0; d < buckets; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & (buckets - 1)
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
