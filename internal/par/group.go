package par

import "sync"

// Group runs tasks with bounded concurrency and collects the first error.
// GraphCT's coarse level of parallelism — independent betweenness searches
// from many source vertices — runs S sources through a Group whose limit
// bounds the O(S·(m+n)) working memory, matching the paper's memory model.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// NewGroup returns a Group allowing at most limit concurrent tasks.
// limit <= 0 means Workers().
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = Workers()
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules task, blocking while the concurrency limit is saturated.
func (g *Group) Go(task func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := task(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every scheduled task finished and returns the first
// error any task produced.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
