package script

import (
	"strconv"
	"strings"

	"graphct/internal/bc"
)

// Command is one parsed script line: the lower-cased command word, its
// raw argument fields and the "=> file" redirect target (empty when
// absent). Blank and comment lines parse to the zero Command.
type Command struct {
	Name     string
	Args     []string
	Redirect string
}

// ParseLine is the static half of script interpretation: it splits a line
// into command, arguments and redirect, and validates everything knowable
// without a loaded graph — command existence, arity, argument syntax and
// static ranges. Graph-dependent checks (a BFS source within the loaded
// vertex count, a component rank that exists) stay with execution.
//
// Every error ParseLine returns is parse-class, and ParseLine never
// panics on arbitrary input — the property FuzzScriptParse enforces.
func ParseLine(line string) (Command, error) {
	redirect := ""
	hasRedirect := false
	if idx := strings.Index(line, "=>"); idx >= 0 {
		hasRedirect = true
		redirect = strings.TrimSpace(line[idx+2:])
		line = line[:idx]
	}
	fields := strings.Fields(line)
	if len(fields) > 0 && strings.HasPrefix(fields[0], "#") {
		return Command{}, nil
	}
	if hasRedirect && redirect == "" {
		return Command{}, parseErrf("missing file after \"=>\"")
	}
	if len(fields) == 0 {
		if hasRedirect {
			return Command{}, parseErrf("\"=>\" redirect without a command")
		}
		return Command{}, nil
	}
	cmd := Command{Name: strings.ToLower(fields[0]), Args: fields[1:], Redirect: redirect}
	check, ok := staticChecks[cmd.Name]
	if !ok {
		return Command{}, parseErrf("unknown command %q", cmd.Name)
	}
	if check != nil {
		if err := check(cmd.Args); err != nil {
			return Command{}, err
		}
	}
	return cmd, nil
}

// staticChecks maps every command to its graph-independent argument
// validation; a nil check accepts any arguments. The map doubles as the
// command registry — membership decides "unknown command".
var staticChecks = map[string]func(args []string) error{
	"read": func(args []string) error {
		if len(args) != 2 {
			return parseErrf("usage: read dimacs|binary|snapshot FILE")
		}
		switch strings.ToLower(args[0]) {
		case "dimacs", "edgelist", "binary", "snapshot":
			return nil
		}
		return parseErrf("unknown graph format %q", strings.ToLower(args[0]))
	},
	"print": func(args []string) error {
		if len(args) == 0 {
			return parseErrf("usage: print diameter|degrees|components [...]")
		}
		switch strings.ToLower(args[0]) {
		case "diameter":
			if len(args) >= 2 {
				pct, err := strconv.Atoi(args[1])
				if err != nil || pct <= 0 || pct > 100 {
					return parseErrf("bad diameter sample percent %q", args[1])
				}
			}
			return nil
		case "degrees", "components":
			return nil
		}
		return parseErrf("unknown print target %q", args[0])
	},
	"save": func(args []string) error {
		switch {
		case len(args) == 1 && strings.ToLower(args[0]) == "graph":
			return nil
		case len(args) == 2 && strings.ToLower(args[0]) == "snapshot":
			return nil
		}
		return parseErrf("usage: save graph | save snapshot FILE")
	},
	"restore": func(args []string) error {
		if len(args) != 1 || strings.ToLower(args[0]) != "graph" {
			return parseErrf("usage: restore graph")
		}
		return nil
	},
	"extract": func(args []string) error {
		if len(args) != 2 || strings.ToLower(args[0]) != "component" {
			return parseErrf("usage: extract component N [=> file.bin]")
		}
		if _, err := strconv.Atoi(args[1]); err != nil {
			return parseErrf("bad component rank %q", args[1])
		}
		return nil
	},
	"kcentrality": func(args []string) error {
		if len(args) < 2 || len(args) > 4 {
			return parseErrf(kcentralityUsage)
		}
		k, err := strconv.Atoi(args[0])
		if err != nil || k < 0 || k > bc.MaxK {
			return parseErrf("bad k %q (supported range 0..%d)", args[0], bc.MaxK)
		}
		samples, err := strconv.Atoi(args[1])
		if err != nil {
			return parseErrf("bad sample count %q", args[1])
		}
		eps, _, err := parseAdaptiveArgs(args[2:])
		if err != nil {
			return err
		}
		if eps > 0 && (k != 0 || samples != 0) {
			return parseErrf("adaptive kcentrality needs k=0 and samples=0 (eps sizes its own sample count)")
		}
		return nil
	},
	"components": nil,
	"kcores": func(args []string) error {
		if len(args) != 1 {
			return parseErrf("usage: kcores K")
		}
		if k, err := strconv.Atoi(args[0]); err != nil || k < 0 {
			return parseErrf("bad core level %q", args[0])
		}
		return nil
	},
	"clustering": nil,
	"undirected": nil,
	"reciprocal": nil,
	"reorder": func(args []string) error {
		if len(args) != 1 {
			return parseErrf("usage: reorder degree|bfs")
		}
		switch strings.ToLower(args[0]) {
		case "degree", "bfs":
			return nil
		}
		return parseErrf("unknown reorder %q (want degree or bfs)", args[0])
	},
	"bfs": func(args []string) error {
		if len(args) != 2 {
			return parseErrf("usage: bfs SOURCE DEPTH")
		}
		if src, err := strconv.Atoi(args[0]); err != nil || src < 0 {
			return parseErrf("bad source %q", args[0])
		}
		if _, err := strconv.Atoi(args[1]); err != nil {
			return parseErrf("bad depth %q", args[1])
		}
		return nil
	},
	"compare": func(args []string) error {
		if len(args) != 3 {
			return parseErrf("usage: compare FILE1 FILE2 TOP_PERCENT")
		}
		if pct, err := strconv.ParseFloat(args[2], 64); err != nil || pct <= 0 || pct > 100 {
			return parseErrf("bad top percent %q", args[2])
		}
		return nil
	},
	"stats": nil,
	"connect": func(args []string) error {
		if len(args) != 1 {
			return parseErrf("usage: connect URL")
		}
		return nil
	},
	"disconnect": func(args []string) error {
		if len(args) != 0 {
			return parseErrf("usage: disconnect")
		}
		return nil
	},
	"graphs": func(args []string) error {
		if len(args) != 0 {
			return parseErrf("usage: graphs")
		}
		return nil
	},
	"fetch": func(args []string) error {
		if len(args) != 1 {
			return parseErrf("usage: fetch NAME")
		}
		return nil
	},
	"sssp": func(args []string) error {
		if len(args) != 1 {
			return parseErrf("usage: sssp SOURCE [=> dist.txt]")
		}
		if src, err := strconv.Atoi(args[0]); err != nil || src < 0 {
			return parseErrf("bad source %q", args[0])
		}
		return nil
	},
}
