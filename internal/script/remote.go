package script

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"graphct/internal/api"
	"graphct/internal/blob"
	"graphct/internal/core"
)

// Remote commands: "connect URL" points the interpreter at a running
// graphctd daemon or router, after which "graphs" lists what it serves and
// "fetch NAME" pulls a graph's newest durable snapshot into the
// interpreter as the current graph — every local kernel command then runs
// on the cluster's data. The URL is environment-expanded, so scripts stay
// portable across deployments ("connect $GRAPHCT_URL"). "disconnect"
// drops the connection; local file commands work the same either way.

// remote is one daemon connection.
type remote struct {
	base   string
	client *http.Client
}

// remoteGraphInfo mirrors the daemon's GET /graphs entries (the wire
// contract's JSON shape; see internal/server).
type remoteGraphInfo struct {
	Name     string `json:"name"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Directed bool   `json:"directed"`
	Live     bool   `json:"live"`
}

// get issues one GET against the connected daemon and returns the body of
// a 200, decoding the daemon's error shape otherwise.
func (rc *remote) get(path string) ([]byte, error) {
	resp, err := rc.client.Get(rc.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, api.DecodeError(body))
	}
	return body, nil
}

// graphs lists the daemon's graphs, sorted by name.
func (rc *remote) graphs() ([]remoteGraphInfo, error) {
	body, err := rc.get("/graphs")
	if err != nil {
		return nil, err
	}
	var infos []remoteGraphInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, fmt.Errorf("decode graph listing: %w", err)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// cmdConnect validates and probes the target before committing to it, so
// a typo fails the connect line, not a later fetch.
func (in *Interp) cmdConnect(args []string) error {
	base := strings.TrimRight(os.ExpandEnv(args[0]), "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return parseErrf("bad daemon URL %q (want http://host:port)", args[0])
	}
	rc := &remote{base: base, client: &http.Client{Timeout: 30 * time.Second}}
	infos, err := rc.graphs()
	if err != nil {
		return err
	}
	in.remote = rc
	fmt.Fprintf(in.out, "connected: %d graph(s)\n", len(infos))
	return nil
}

func (in *Interp) cmdDisconnect() error {
	if in.remote == nil {
		return parseErrf("not connected (missing connect command)")
	}
	in.remote = nil
	fmt.Fprintln(in.out, "disconnected")
	return nil
}

func (in *Interp) cmdGraphs() error {
	if in.remote == nil {
		return parseErrf("not connected (missing connect command)")
	}
	infos, err := in.remote.graphs()
	if err != nil {
		return err
	}
	for _, gi := range infos {
		kind := "static"
		if gi.Live {
			kind = "live"
		}
		if gi.Directed {
			kind += " directed"
		}
		fmt.Fprintf(in.out, "%s: %s, %d vertices, %d edges\n", gi.Name, kind, gi.Vertices, gi.Edges)
	}
	return nil
}

// cmdFetch pulls a graph's newest durable snapshot off the daemon (or, via
// a router, off whichever shard owns it) and makes it the current graph.
func (in *Interp) cmdFetch(args []string) error {
	if in.remote == nil {
		return parseErrf("not connected (missing connect command)")
	}
	name := args[0]
	body, err := in.remote.get("/graphs/" + url.PathEscape(name) + "/snapshot")
	if err != nil {
		return err
	}
	snap, err := blob.DecodeSnapshot(body)
	if err != nil {
		return fmt.Errorf("decode snapshot of %q: %w", name, err)
	}
	in.tk = core.New(snap.Graph, core.WithSeed(in.seed))
	g := in.tk.Graph()
	fmt.Fprintf(in.out, "fetched %s: %d vertices, %d edges\n", name, g.NumVertices(), g.NumEdges())
	return nil
}
