package script

import (
	"errors"
	"strings"
	"testing"
)

// FuzzScriptParse hardens the script front end: arbitrary input lines
// must parse to a command, a blank, or a parse-class error — never a
// panic, and never a runtime-class error (the parser has no graph to
// fail against). Successfully parsed commands must survive a canonical
// re-parse, so the parse result is a faithful representation of the line.
// Beyond the f.Add seeds, a committed corpus lives under
// testdata/fuzz/FuzzScriptParse; CI runs a short -fuzz smoke over it.
func FuzzScriptParse(f *testing.F) {
	seeds := []string{
		"read dimacs graph.txt",
		"read binary graph.bin",
		"kcentrality 1 256 => scores.txt",
		"extract component 1 => sub.bin",
		"print diameter 10",
		"compare exact.txt approx.txt 5",
		"bfs 0 4",
		"sssp 0 => dist.txt",
		"save graph",
		"restore graph",
		"kcores 2",
		"clustering => coef.txt",
		"undirected",
		"# a comment => not a redirect",
		"   ",
		"=> orphan.txt",
		"clustering =>",
		"kcentrality 9 1",
		"kcentrality 0 0 eps=0.01 delta=0.1",
		"kcentrality 0 0 eps=2",
		"kcentrality 1 4 eps=0.01",
		"bfs -1 2",
		"print diameter 0x10",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		cmd, err := ParseLine(line)
		if err != nil {
			var pe parseError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseLine returned a non-parse error: %v (input %q)", err, line)
			}
			if cmd.Name != "" || len(cmd.Args) != 0 || cmd.Redirect != "" {
				t.Fatalf("error with non-zero command %+v (input %q)", cmd, line)
			}
			return
		}
		if cmd.Name == "" {
			return // blank or comment
		}
		if _, known := staticChecks[cmd.Name]; !known {
			t.Fatalf("parsed unknown command %q (input %q)", cmd.Name, line)
		}
		// The canonical rendering of a parsed command must re-parse to the
		// same command.
		rebuilt := cmd.Name
		if len(cmd.Args) > 0 {
			rebuilt += " " + strings.Join(cmd.Args, " ")
		}
		if cmd.Redirect != "" {
			rebuilt += " => " + cmd.Redirect
		}
		again, err := ParseLine(rebuilt)
		if err != nil {
			t.Fatalf("canonical form rejected: %q: %v (input %q)", rebuilt, err, line)
		}
		if again.Name != cmd.Name || again.Redirect != cmd.Redirect || len(again.Args) != len(cmd.Args) {
			t.Fatalf("re-parse diverged: %+v != %+v (input %q)", again, cmd, line)
		}
	})
}
