// Package script implements GraphCT's prototype scripting interface: a
// line-oriented command language executed sequentially, with the first
// line reading a graph from disk and following lines invoking one kernel
// each. Per-vertex results can be redirected to files with "=> path"; all
// other kernels print to the interpreter's output. A stack-based memory —
// "similar to that of a basic calculator" — saves and restores graphs so a
// subgraph can be analyzed and the original recalled. The language has no
// loops; an external process can monitor results and drive execution.
// Scripts are not limited to local files: "connect URL" targets a running
// graphctd daemon or router, and "fetch NAME" pulls one of its graphs
// down for local analysis (see remote.go).
package script

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"graphct/internal/bc"
	"graphct/internal/blob"
	"graphct/internal/core"
	"graphct/internal/dimacs"
	"graphct/internal/graph"
	"graphct/internal/rank"
	"graphct/internal/sssp"
	"graphct/internal/stats"
)

// Error annotates a script failure with its provenance — the script file
// (when known), the 1-based line of the failing command, and whether the
// failure was a parse/usage error or a runtime (kernel or I/O) failure —
// so drivers can report "file:line" and exit with distinct codes.
type Error struct {
	Path  string // script file; "" for inline input
	Line  int
	Parse bool // command could not be parsed vs failed while running
	Err   error
}

func (e *Error) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("%s:%d: %v", e.Path, e.Line, e.Err)
	}
	return fmt.Sprintf("script line %d: %v", e.Line, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// parseError marks usage and argument errors so Run can classify them.
type parseError struct{ error }

func (p parseError) Unwrap() error { return p.error }

// parseErrf builds a parse-class error; command handlers use it for
// anything wrong with the command text itself (unknown commands, bad
// usage, malformed arguments) as opposed to failures of valid commands.
func parseErrf(format string, args ...any) error {
	return parseError{fmt.Errorf(format, args...)}
}

// Interp executes GraphCT scripts.
type Interp struct {
	tk     *core.Toolkit
	remote *remote // connected daemon or router (nil = local only)
	out    io.Writer
	dir    string // base for relative file paths
	file   string // script path for error provenance ("" when inline)
	seed   int64
	line   int
}

// noGraphNeeded names the commands that run before any graph is loaded:
// the ones that load graphs, operate on score files, or talk to a daemon.
var noGraphNeeded = map[string]bool{
	"read": true, "compare": true,
	"connect": true, "disconnect": true, "graphs": true, "fetch": true,
}

// New returns an interpreter writing kernel output to out. Relative paths
// in scripts resolve against dir ("" = current directory).
func New(out io.Writer, dir string) *Interp {
	return &Interp{out: out, dir: dir, seed: 1}
}

// SetSeed fixes the sampling seed used by kernels the interpreter runs.
func (in *Interp) SetSeed(seed int64) { in.seed = seed }

// Toolkit exposes the current toolkit (nil before any read command).
func (in *Interp) Toolkit() *core.Toolkit { return in.tk }

// Run executes a script line by line, stopping at the first error, which
// is returned as a *Error annotated with the failing line.
func (in *Interp) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	in.line = 0
	for sc.Scan() {
		in.line++
		if err := in.Exec(sc.Text()); err != nil {
			var pe parseError
			return &Error{Path: in.file, Line: in.line, Parse: errors.As(err, &pe), Err: err}
		}
	}
	return sc.Err()
}

// RunFile executes the script in the named file; errors carry the file
// name and line of the failing command.
func (in *Interp) RunFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if in.dir == "" {
		in.dir = filepath.Dir(path)
	}
	in.file = path
	return in.Run(f)
}

// Exec executes one script line: ParseLine does the static validation
// (so malformed commands are rejected before any kernel state is touched
// or mutated), then the matching handler runs with the interpreter's
// graph. Handlers re-derive their typed arguments and add the
// graph-dependent checks parsing cannot do.
func (in *Interp) Exec(line string) error {
	c, err := ParseLine(line)
	if err != nil {
		return err
	}
	if c.Name == "" { // blank or comment
		return nil
	}
	args, redirect := c.Args, c.Redirect
	if !noGraphNeeded[c.Name] && in.tk == nil {
		return parseErrf("no graph loaded (missing read command)")
	}
	switch c.Name {
	case "read":
		return in.cmdRead(args)
	case "connect":
		return in.cmdConnect(args)
	case "disconnect":
		return in.cmdDisconnect()
	case "graphs":
		return in.cmdGraphs()
	case "fetch":
		return in.cmdFetch(args)
	case "print":
		return in.cmdPrint(args, redirect)
	case "save":
		return in.cmdSave(args)
	case "restore":
		return in.cmdRestore(args)
	case "extract":
		return in.cmdExtract(args, redirect)
	case "kcentrality":
		return in.cmdKCentrality(args, redirect)
	case "components":
		return in.cmdComponents()
	case "kcores":
		return in.cmdKCores(args)
	case "clustering":
		return in.cmdClustering(redirect)
	case "undirected":
		in.tk.ToUndirected()
		return nil
	case "reciprocal":
		in.tk.ReciprocalCore()
		return nil
	case "reorder":
		return in.cmdReorder(args)
	case "bfs":
		return in.cmdBFS(args)
	case "compare":
		return in.cmdCompare(args)
	case "stats":
		return in.cmdStats()
	case "sssp":
		return in.cmdSSSP(args, redirect)
	default:
		return parseErrf("unknown command %q", c.Name)
	}
}

// cmdSSSP runs weighted single-source shortest paths via delta-stepping;
// "=> file" writes per-vertex distances (-1 for unreachable).
func (in *Interp) cmdSSSP(args []string, redirect string) error {
	if len(args) != 1 {
		return parseErrf("usage: sssp SOURCE [=> dist.txt]")
	}
	src, err := strconv.Atoi(args[0])
	if err != nil || src < 0 || src >= in.tk.Graph().NumVertices() {
		return parseErrf("bad source %q", args[0])
	}
	res, err := in.tk.SSSP(int32(src))
	if err != nil {
		return err
	}
	reached := 0
	maxDist := int64(0)
	for _, d := range res.Dist {
		if d != sssp.Inf {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	if redirect != "" {
		scores := make([]float64, len(res.Dist))
		for v, d := range res.Dist {
			if d == sssp.Inf {
				scores[v] = -1
			} else {
				scores[v] = float64(d)
			}
		}
		return writeScores(in.path(redirect), scores)
	}
	fmt.Fprintf(in.out, "sssp from %d: reached %d vertices, max distance %d\n", src, reached, maxDist)
	return nil
}

// cmdStats prints the distribution characterization of Section III-C: the
// power-law exponent fit, the share of links held by the top 20% of
// vertices (the 80/20 observation), and the Gini concentration.
func (in *Interp) cmdStats() error {
	g := in.tk.Graph()
	alpha, used := stats.PowerLawAlpha(g, 4)
	fmt.Fprintf(in.out, "power-law alpha %.3f (fit over %d vertices with degree >= 4)\n", alpha, used)
	fmt.Fprintf(in.out, "top-20%% of vertices hold %.1f%% of links\n", 100*stats.TopShare(g, 0.2))
	fmt.Fprintf(in.out, "degree gini coefficient %.3f\n", stats.GiniCoefficient(g))
	return nil
}

// cmdCompare implements the analyst's accuracy workflow over saved score
// files: "compare exact.txt approx.txt 5" prints the overlap of the top
// 5% of vertices between the two rankings (the paper's normalized set
// Hamming comparison).
func (in *Interp) cmdCompare(args []string) error {
	if len(args) != 3 {
		return parseErrf("usage: compare FILE1 FILE2 TOP_PERCENT")
	}
	pct, err := strconv.ParseFloat(args[2], 64)
	if err != nil || pct <= 0 || pct > 100 {
		return parseErrf("bad top percent %q", args[2])
	}
	a, err := readScores(in.path(args[0]))
	if err != nil {
		return err
	}
	b, err := readScores(in.path(args[1]))
	if err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("score files disagree on vertex count: %d vs %d", len(a), len(b))
	}
	frac := pct / 100
	overlap := rank.TopAccuracy(a, b, frac)
	hamming := rank.NormalizedHamming(rank.TopFraction(a, frac), rank.TopFraction(b, frac))
	fmt.Fprintf(in.out, "top %.4g%%: overlap %.4f, normalized set hamming %.4f\n", pct, overlap, hamming)
	return nil
}

// readScores reads a per-vertex score file written by writeScores. Lines
// must be "vertex value" with vertices forming a dense 0..n-1 range in
// any order.
func readScores(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var scores []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: malformed score line", path, line)
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%s:%d: bad vertex %q", path, line, fields[0])
		}
		s, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad score %q", path, line, fields[1])
		}
		for len(scores) <= v {
			scores = append(scores, 0)
		}
		scores[v] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return scores, nil
}

func (in *Interp) path(p string) string {
	if filepath.IsAbs(p) || in.dir == "" {
		return p
	}
	return filepath.Join(in.dir, p)
}

func (in *Interp) cmdRead(args []string) error {
	if len(args) != 2 {
		return parseErrf("usage: read dimacs|binary|snapshot FILE")
	}
	kind, file := strings.ToLower(args[0]), in.path(args[1])
	var err error
	switch kind {
	case "dimacs":
		in.tk, err = core.LoadDIMACS(file, false, core.WithSeed(in.seed))
	case "edgelist":
		in.tk, err = core.LoadEdgeList(file, false, core.WithSeed(in.seed))
	case "binary":
		in.tk, err = core.LoadBinary(file, core.WithSeed(in.seed))
	case "snapshot":
		var snap blob.Snapshot
		if snap, err = blob.ReadSnapshotFile(file); err == nil {
			in.tk = core.New(snap.Graph, core.WithSeed(in.seed))
		}
	default:
		return parseErrf("unknown graph format %q", kind)
	}
	if err != nil {
		return err
	}
	g := in.tk.Graph()
	fmt.Fprintf(in.out, "read %s: %d vertices, %d edges\n", filepath.Base(file), g.NumVertices(), g.NumEdges())
	return nil
}

func (in *Interp) cmdPrint(args []string, redirect string) error {
	if len(args) == 0 {
		return parseErrf("usage: print diameter|degrees|components [...]")
	}
	switch strings.ToLower(args[0]) {
	case "diameter":
		// "print diameter 10" estimates from 10 percent of the
		// vertices; no argument uses the 256-source default.
		d := in.tk.Diameter()
		if len(args) >= 2 {
			pct, err := strconv.Atoi(args[1])
			if err != nil || pct <= 0 || pct > 100 {
				return parseErrf("bad diameter sample percent %q", args[1])
			}
			n := in.tk.Graph().NumVertices()
			samples := n * pct / 100
			if samples < 1 {
				samples = 1
			}
			d = stats.EstimateDiameter(in.tk.Graph(), samples, 4, in.seed)
		}
		fmt.Fprintf(in.out, "diameter estimate %d (longest sampled path %d from %d sources)\n",
			d.Estimate, d.LongestPath, d.Sources)
	case "degrees":
		s := in.tk.DegreeStats()
		fmt.Fprintf(in.out, "degrees: n %d, mean %.4f, variance %.4f, max %d\n", s.N, s.Mean, s.Variance, s.Max)
	case "components":
		return in.cmdComponents()
	default:
		return parseErrf("unknown print target %q", args[0])
	}
	_ = redirect
	return nil
}

// cmdSave handles both memories: "save graph" pushes onto the in-memory
// stack, "save snapshot FILE" writes the current graph in graphctd's
// durable snapshot format (the same bytes the daemon persists), so a
// script can hand a graph to — or pick one up from — a daemon data dir.
func (in *Interp) cmdSave(args []string) error {
	switch {
	case len(args) == 1 && strings.ToLower(args[0]) == "graph":
		in.tk.Save()
		return nil
	case len(args) == 2 && strings.ToLower(args[0]) == "snapshot":
		file := in.path(args[1])
		g := in.tk.Graph()
		if err := blob.WriteSnapshotFile(file, blob.Snapshot{Graph: g}); err != nil {
			return err
		}
		fmt.Fprintf(in.out, "saved snapshot %s: %d vertices, %d edges\n",
			filepath.Base(file), g.NumVertices(), g.NumEdges())
		return nil
	}
	return parseErrf("usage: save graph | save snapshot FILE")
}

func (in *Interp) cmdRestore(args []string) error {
	if len(args) != 1 || strings.ToLower(args[0]) != "graph" {
		return parseErrf("usage: restore graph")
	}
	return in.tk.Restore()
}

func (in *Interp) cmdExtract(args []string, redirect string) error {
	if len(args) != 2 || strings.ToLower(args[0]) != "component" {
		return parseErrf("usage: extract component N [=> file.bin]")
	}
	rank, err := strconv.Atoi(args[1])
	if err != nil {
		return parseErrf("bad component rank %q", args[1])
	}
	if err := in.tk.ExtractComponent(rank); err != nil {
		return err
	}
	g := in.tk.Graph()
	fmt.Fprintf(in.out, "extracted component %d: %d vertices, %d edges\n", rank, g.NumVertices(), g.NumEdges())
	if redirect != "" {
		return dimacs.SaveBinary(in.path(redirect), g)
	}
	return nil
}

const kcentralityUsage = "usage: kcentrality K SAMPLES [eps=E [delta=D]] [=> file]"

// parseAdaptiveArgs parses kcentrality's optional adaptive suffix
// (eps=E, then optionally delta=D). A returned eps of 0 means the suffix
// was absent — fixed-k sampling mode; with eps given, delta defaults to
// the kernel's DefaultDelta.
func parseAdaptiveArgs(extra []string) (eps, delta float64, err error) {
	if len(extra) == 0 {
		return 0, 0, nil
	}
	if !strings.HasPrefix(extra[0], "eps=") {
		return 0, 0, parseErrf(kcentralityUsage)
	}
	eps, err = strconv.ParseFloat(strings.TrimPrefix(extra[0], "eps="), 64)
	if err != nil || eps <= 0 || eps >= 1 {
		return 0, 0, parseErrf("bad %q (need 0 < eps < 1)", extra[0])
	}
	delta = bc.DefaultDelta
	if len(extra) > 1 {
		if len(extra) > 2 || !strings.HasPrefix(extra[1], "delta=") {
			return 0, 0, parseErrf(kcentralityUsage)
		}
		delta, err = strconv.ParseFloat(strings.TrimPrefix(extra[1], "delta="), 64)
		if err != nil || delta <= 0 || delta >= 1 {
			return 0, 0, parseErrf("bad %q (need 0 < delta < 1)", extra[1])
		}
	}
	return eps, delta, nil
}

func (in *Interp) cmdKCentrality(args []string, redirect string) error {
	if len(args) < 2 || len(args) > 4 {
		return parseErrf(kcentralityUsage)
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 0 || k > bc.MaxK {
		return parseErrf("bad k %q (supported range 0..%d)", args[0], bc.MaxK)
	}
	samples, err := strconv.Atoi(args[1])
	if err != nil {
		return parseErrf("bad sample count %q", args[1])
	}
	eps, delta, err := parseAdaptiveArgs(args[2:])
	if err != nil {
		return err
	}
	if eps > 0 {
		if k != 0 || samples != 0 {
			return parseErrf("adaptive kcentrality needs k=0 and samples=0 (eps sizes its own sample count)")
		}
		res := in.tk.ApproxCentrality(eps, delta, 0)
		if redirect != "" {
			return writeScores(in.path(redirect), res.Scores)
		}
		g := res.Guarantee
		fmt.Fprintf(in.out, "kcentrality adaptive eps=%g delta=%g samples=%d rounds=%d top vertices:\n",
			g.Epsilon, g.Delta, g.SamplesUsed, g.Rounds)
		for i, v := range res.TopK(10) {
			fmt.Fprintf(in.out, "%2d. vertex %d score %.2f\n", i+1, in.tk.OrigID(v), res.Scores[v])
		}
		return nil
	}
	res := in.tk.KCentrality(k, samples)
	if redirect != "" {
		return writeScores(in.path(redirect), res.Scores)
	}
	top := res.TopK(10)
	fmt.Fprintf(in.out, "kcentrality k=%d samples=%d top vertices:\n", k, len(res.Sources))
	for i, v := range top {
		fmt.Fprintf(in.out, "%2d. vertex %d score %.2f\n", i+1, in.tk.OrigID(v), res.Scores[v])
	}
	return nil
}

// cmdReorder relabels the current graph for cache locality. Vertex ids in
// later per-vertex output still refer to the loaded graph (the toolkit
// composes the inverse permutation into its orig-id mapping), so the
// command changes kernel speed, not kernel answers.
func (in *Interp) cmdReorder(args []string) error {
	if len(args) != 1 {
		return parseErrf("usage: reorder degree|bfs")
	}
	kind, err := graph.ParseReorder(strings.ToLower(args[0]))
	if err != nil || kind == graph.ReorderNone {
		return parseErrf("unknown reorder %q (want degree or bfs)", args[0])
	}
	if err := in.tk.Reorder(kind); err != nil {
		return err
	}
	g := in.tk.Graph()
	fmt.Fprintf(in.out, "reordered %s: %d vertices, %d edges\n", kind, g.NumVertices(), g.NumEdges())
	return nil
}

func (in *Interp) cmdComponents() error {
	census := in.tk.ComponentCensus()
	fmt.Fprintf(in.out, "components: %d\n", len(census))
	for i, c := range census {
		if i >= 10 {
			fmt.Fprintf(in.out, "... %d more\n", len(census)-10)
			break
		}
		fmt.Fprintf(in.out, "component %d: %d vertices\n", i+1, c.Size)
	}
	return nil
}

func (in *Interp) cmdKCores(args []string) error {
	if len(args) != 1 {
		return parseErrf("usage: kcores K")
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 0 {
		return parseErrf("bad core level %q", args[0])
	}
	in.tk.KCores(int32(k))
	g := in.tk.Graph()
	fmt.Fprintf(in.out, "%d-core: %d vertices, %d edges\n", k, g.NumVertices(), g.NumEdges())
	return nil
}

func (in *Interp) cmdClustering(redirect string) error {
	coef := in.tk.ClusteringCoefficients()
	if redirect != "" {
		return writeScores(in.path(redirect), coef)
	}
	fmt.Fprintf(in.out, "global clustering coefficient %.6f\n", in.tk.GlobalClustering())
	return nil
}

func (in *Interp) cmdBFS(args []string) error {
	if len(args) != 2 {
		return parseErrf("usage: bfs SOURCE DEPTH")
	}
	src, err := strconv.Atoi(args[0])
	if err != nil || src < 0 || src >= in.tk.Graph().NumVertices() {
		return parseErrf("bad source %q", args[0])
	}
	depth, err := strconv.Atoi(args[1])
	if err != nil {
		return parseErrf("bad depth %q", args[1])
	}
	r := in.tk.BFS(int32(src), depth)
	fmt.Fprintf(in.out, "bfs from %d: reached %d vertices, depth %d\n", src, r.NumReached(), r.Depth)
	return nil
}

// writeScores writes one score per line, "vertex value".
func writeScores(path string, scores []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for v, s := range scores {
		fmt.Fprintf(w, "%d %.10g\n", v, s)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
