package script

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphct/internal/blob"
	"graphct/internal/dimacs"
	"graphct/internal/gen"
)

// writeTestGraph writes a DIMACS file with two components: a K4 (largest)
// and a path of 3.
func writeTestGraph(t *testing.T, dir string) string {
	t.Helper()
	g := gen.Disjoint(gen.Complete(4), gen.Path(3))
	path := filepath.Join(dir, "test.dimacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, dir, src string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	in := New(&out, dir)
	err := in.Run(strings.NewReader(src))
	return out.String(), err
}

func TestPaperExampleScript(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	// The paper's §IV-B example adapted to the test graph.
	src := `read dimacs test.dimacs
print diameter 10
save graph
extract component 1 => comp1.bin
print degrees
kcentrality 1 256 => k1scores.txt
kcentrality 2 256 => k2scores.txt
restore graph
extract component 2
print degrees
`
	out, err := run(t, dir, src)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "extracted component 1: 4 vertices, 6 edges") {
		t.Fatalf("missing component extraction: %s", out)
	}
	if !strings.Contains(out, "extracted component 2: 3 vertices, 2 edges") {
		t.Fatalf("restore+second extraction failed: %s", out)
	}
	// comp1.bin must round trip as the K4.
	g, err := dimacs.LoadBinary(filepath.Join(dir, "comp1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 6 {
		t.Fatalf("saved component = %v", g)
	}
	// Score files exist with one line per K4 vertex.
	for _, name := range []string{"k1scores.txt", "k2scores.txt"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 4 {
			t.Fatalf("%s has %d lines, want 4", name, lines)
		}
	}
}

func TestPrintCommands(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, "read dimacs test.dimacs\nprint diameter\nprint degrees\nprint components\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"diameter estimate", "degrees: n 7", "components: 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKCentralityToScreen(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, "read dimacs test.dimacs\nkcentrality 0 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kcentrality k=0") || !strings.Contains(out, "vertex") {
		t.Fatalf("kcentrality output: %s", out)
	}
}

func TestKCentralityAdaptive(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, "read dimacs test.dimacs\nkcentrality 0 0 eps=0.05 delta=0.2\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kcentrality adaptive eps=0.05 delta=0.2 samples=") {
		t.Fatalf("adaptive kcentrality output: %s", out)
	}
	// delta defaults when only eps is given, and redirects write scores.
	out, err = run(t, dir, "read dimacs test.dimacs\nkcentrality 0 0 eps=0.05 => ascores.txt\n")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "adaptive") {
		t.Fatalf("redirected run printed rankings: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "ascores.txt")); err != nil {
		t.Fatalf("redirect wrote no score file: %v", err)
	}
}

func TestKCentralityAdaptiveRejects(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	for _, line := range []string{
		"kcentrality 1 0 eps=0.05",                    // adaptive is classic BC only
		"kcentrality 0 16 eps=0.05",                   // samples conflicts with eps
		"kcentrality 0 0 delta=0.2",                   // delta requires eps
		"kcentrality 0 0 eps=1.5",                     // out of range
		"kcentrality 0 0 eps=0.05 x=1",                // unknown trailing arg
		"kcentrality 0 0 eps=0.05 delta=0.2 eps=0.01", // too many args
	} {
		_, err := run(t, dir, "read dimacs test.dimacs\n"+line+"\n")
		if err == nil {
			t.Errorf("%q: no error", line)
		}
	}
}

func TestKCoresClusteringBFS(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, `read dimacs test.dimacs
clustering
kcores 3
bfs 0 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "global clustering coefficient") {
		t.Fatalf("clustering missing: %s", out)
	}
	if !strings.Contains(out, "3-core: 4 vertices, 6 edges") {
		t.Fatalf("kcores missing: %s", out)
	}
	if !strings.Contains(out, "bfs from 0: reached 4 vertices, depth 1") {
		t.Fatalf("bfs missing: %s", out)
	}
}

func TestClusteringRedirect(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	_, err := run(t, dir, "read dimacs test.dimacs\nclustering => coef.txt\n")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "coef.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") != 7 {
		t.Fatal("coefficient file wrong length")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	_, err := run(t, dir, "# a comment\n\nread dimacs test.dimacs\n# trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	_, err := run(t, dir, "read dimacs test.dimacs\nfrobnicate\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestCommandsBeforeRead(t *testing.T) {
	_, err := run(t, t.TempDir(), "print degrees\n")
	if err == nil || !strings.Contains(err.Error(), "no graph loaded") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadArguments(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	bad := []string{
		"read dimacs",                // missing file
		"read csv x",                 // unknown format
		"read dimacs missing.dimacs", // no such file
	}
	for _, src := range bad {
		if _, err := run(t, dir, src+"\n"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
	badAfter := []string{
		"print",
		"print nonsense",
		"print diameter -3",
		"print diameter 200",
		"save g",
		"restore g",
		"extract component x",
		"extract component 99",
		"extract widget 1",
		"kcentrality x 1",
		"kcentrality -1 1",
		"kcentrality 1",
		"kcentrality 1 y",
		"kcores",
		"kcores x",
		"bfs 0",
		"bfs 99 1",
		"bfs x 1",
		"bfs 0 z",
	}
	for _, src := range badAfter {
		if _, err := run(t, dir, "read dimacs test.dimacs\n"+src+"\n"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

// TestSnapshotRoundTrip saves the loaded graph in the daemon's durable
// snapshot format and reads it back: same shape, same kernels, and the
// on-disk file opens through the blob package (the compat contract with
// graphctd data directories).
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	src := `read dimacs test.dimacs
save snapshot test.snap
read snapshot test.snap
print degrees
print components
`
	out, err := run(t, dir, src)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"saved snapshot test.snap: 7 vertices, 8 edges",
		"read test.snap: 7 vertices, 8 edges",
		"degrees: n 7",
		"components: 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	snap, err := blob.ReadSnapshotFile(filepath.Join(dir, "test.snap"))
	if err != nil {
		t.Fatalf("snapshot not readable through blob: %v", err)
	}
	if snap.Graph.NumVertices() != 7 || snap.Graph.NumEdges() != 8 {
		t.Fatalf("blob snapshot = %d vertices / %d edges", snap.Graph.NumVertices(), snap.Graph.NumEdges())
	}
	// Error paths: truncated snapshot and bad arity.
	if err := os.WriteFile(filepath.Join(dir, "torn.snap"), []byte("GCTO"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"read snapshot torn.snap",
		"read snapshot missing.snap",
		"read dimacs test.dimacs\nsave snapshot",
		// Snapshot writes create missing directories, so force the failure
		// with a parent that is a regular file.
		"read dimacs test.dimacs\nsave snapshot test.dimacs/x.snap",
	} {
		if _, err := run(t, dir, bad+"\n"); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestRestoreEmptyStack(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	if _, err := run(t, dir, "read dimacs test.dimacs\nrestore graph\n"); err == nil {
		t.Fatal("restore with empty stack should error")
	}
}

func TestUndirectedAndReciprocal(t *testing.T) {
	dir := t.TempDir()
	// Directed pair: 0<->1, plus 2->0.
	path := filepath.Join(dir, "d.dimacs")
	if err := os.WriteFile(path, []byte("p sp 3 3\na 1 2 1\na 2 1 1\na 3 1 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	in := New(&out, dir)
	// Scripted reads default to undirected symmetrization, so drive the
	// reciprocal filter through the toolkit on a directed read.
	if err := in.Run(strings.NewReader("read dimacs d.dimacs\nundirected\nprint degrees\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degrees: n 3") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestSSSPCommand(t *testing.T) {
	dir := t.TempDir()
	// Weighted chain: 1 -5- 2 -2- 3.
	if err := os.WriteFile(filepath.Join(dir, "w.dimacs"), []byte("p edge 3 2\ne 1 2 5\ne 2 3 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, dir, "read dimacs w.dimacs\nsssp 0\nsssp 0 => dist.txt\n")
	if err != nil {
		t.Fatal(err)
	}
	// read dimacs keeps the weight column, so distances are weighted:
	// d(0,2) = 5 + 2.
	if !strings.Contains(out, "sssp from 0: reached 3 vertices, max distance 7") {
		t.Fatalf("sssp output: %s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "dist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\n") != 3 {
		t.Fatal("distance file wrong length")
	}
	for _, bad := range []string{"sssp", "sssp x", "sssp 99"} {
		if _, err := run(t, dir, "read dimacs w.dimacs\n"+bad+"\n"); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestStatsCommand(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, "read dimacs test.dimacs\nstats\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"power-law alpha", "top-20%", "gini"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q: %s", want, out)
		}
	}
}

func TestCompareScoreFiles(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	// Produce exact and sampled k-centrality score files, then compare.
	src := `read dimacs test.dimacs
kcentrality 0 0 => exact.txt
kcentrality 0 3 => approx.txt
compare exact.txt approx.txt 20
compare exact.txt exact.txt 10
`
	out, err := run(t, dir, src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "top 20%: overlap") {
		t.Fatalf("compare output missing: %s", out)
	}
	if !strings.Contains(out, "top 10%: overlap 1.0000, normalized set hamming 0.0000") {
		t.Fatalf("self-compare not perfect: %s", out)
	}
}

func TestCompareWorksWithoutGraph(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.txt", "b.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("0 1.5\n1 0.5\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := run(t, dir, "compare a.txt b.txt 50\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "overlap 1.0000") {
		t.Fatalf("output: %s", out)
	}
}

func TestCompareErrors(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "good.txt"), []byte("0 1\n1 2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "short.txt"), []byte("0 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "badline.txt"), []byte("0 1 2 3\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "badvertex.txt"), []byte("x 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "badscore.txt"), []byte("0 huh\n"), 0o644)
	cases := []string{
		"compare good.txt",                  // arity
		"compare good.txt short.txt 0",      // bad percent
		"compare good.txt short.txt 101",    // bad percent
		"compare good.txt short.txt x",      // bad percent
		"compare missing.txt good.txt 10",   // missing file
		"compare good.txt missing.txt 10",   // missing file
		"compare good.txt short.txt 10",     // length mismatch
		"compare good.txt badline.txt 10",   // malformed line
		"compare good.txt badvertex.txt 10", // bad vertex
		"compare good.txt badscore.txt 10",  // bad score
	}
	for _, src := range cases {
		if _, err := run(t, dir, src+"\n"); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestKCentralityRejectsUnsupportedK(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	if _, err := run(t, dir, "read dimacs test.dimacs\nkcentrality 3 4\n"); err == nil {
		t.Fatal("k=3 accepted")
	}
}

func TestReadEdgeList(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g.txt"), []byte("# snap\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, dir, "read edgelist g.txt\nprint degrees\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "read g.txt: 3 vertices, 2 edges") {
		t.Fatalf("output: %s", out)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	scriptPath := filepath.Join(dir, "job.gct")
	if err := os.WriteFile(scriptPath, []byte("read dimacs test.dimacs\nprint degrees\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	in := New(&out, "")
	if err := in.RunFile(scriptPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degrees") {
		t.Fatal("RunFile produced no output")
	}
	if err := in.RunFile(filepath.Join(dir, "missing.gct")); err == nil {
		t.Fatal("missing script should error")
	}
}

func TestToolkitAccessorAndAbsolutePaths(t *testing.T) {
	dir := t.TempDir()
	gpath := writeTestGraph(t, dir)
	var out bytes.Buffer
	in := New(&out, "")
	if in.Toolkit() != nil {
		t.Fatal("toolkit before read should be nil")
	}
	// Absolute path bypasses the interpreter dir.
	if err := in.Exec("read dimacs " + gpath); err != nil {
		t.Fatal(err)
	}
	if in.Toolkit() == nil || in.Toolkit().Graph().NumVertices() != 7 {
		t.Fatal("toolkit not populated")
	}
}

func TestManyComponentsPrintTruncates(t *testing.T) {
	dir := t.TempDir()
	// 15 singleton-ish components: print components must truncate at 10.
	var sb strings.Builder
	sb.WriteString("p edge 30 15\n")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&sb, "e %d %d 1\n", 2*i+1, 2*i+2)
	}
	if err := os.WriteFile(filepath.Join(dir, "many.dimacs"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, dir, "read dimacs many.dimacs\nprint components\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "components: 15") || !strings.Contains(out, "... 5 more") {
		t.Fatalf("truncation missing: %s", out)
	}
}

func TestRedirectToBadPathErrors(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	for _, src := range []string{
		"read dimacs test.dimacs\nkcentrality 0 0 => missing/dir/scores.txt\n",
		"read dimacs test.dimacs\nclustering => missing/dir/coef.txt\n",
		"read dimacs test.dimacs\nextract component 1 => missing/dir/c.bin\n",
	} {
		if _, err := run(t, dir, src); err == nil {
			t.Errorf("bad redirect accepted: %q", src)
		}
	}
}

func TestSeedPropagation(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	var out1, out2 bytes.Buffer
	a := New(&out1, dir)
	a.SetSeed(42)
	if err := a.Run(strings.NewReader("read dimacs test.dimacs\nkcentrality 0 2\n")); err != nil {
		t.Fatal(err)
	}
	b := New(&out2, dir)
	b.SetSeed(42)
	if err := b.Run(strings.NewReader("read dimacs test.dimacs\nkcentrality 0 2\n")); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatal("same seed gave different sampled output")
	}
}

// classify runs src and returns the annotated *Error, failing the test if
// the script succeeded or the error is not a *Error.
func classify(t *testing.T, dir, src string) *Error {
	t.Helper()
	_, err := run(t, dir, src)
	if err == nil {
		t.Fatalf("no error for %q", src)
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error for %q is %T, want *Error: %v", src, err, err)
	}
	return se
}

// TestErrorClassification pins the parse vs runtime split drivers rely
// on for exit codes.
func TestErrorClassification(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	parse := []string{
		"frobnicate\n", // unknown command
		"components\n", // kernel before any read
		"read dimacs test.dimacs\nkcentrality 9 1\n",    // k outside range
		"read dimacs test.dimacs\nbfs 0\n",              // missing argument
		"read dimacs test.dimacs\nkcentrality 0 0 =>\n", // redirect without file
		"read dimacs test.dimacs\n=> out.txt\n",         // redirect without command
	}
	for _, src := range parse {
		if se := classify(t, dir, src); !se.Parse {
			t.Errorf("%q classified as runtime, want parse: %v", src, se)
		}
	}
	runtime := []string{
		"read dimacs missing.dimacs\n",                     // file does not exist
		"read dimacs test.dimacs\nextract component 99\n",  // rank out of range
		"read dimacs test.dimacs\nrestore graph\n",         // empty stack
		"read dimacs test.dimacs\ncompare a.txt b.txt 5\n", // missing score files
	}
	for _, src := range runtime {
		if se := classify(t, dir, src); se.Parse {
			t.Errorf("%q classified as parse, want runtime: %v", src, se)
		}
	}
}

// TestMalformedRedirects covers the "=>" error paths: a redirect needs
// both a command and a target.
func TestMalformedRedirects(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	for _, src := range []string{
		"read dimacs test.dimacs\nclustering =>\n",
		"read dimacs test.dimacs\nclustering =>   \n",
		"read dimacs test.dimacs\n=> scores.txt\n",
	} {
		if _, err := run(t, dir, src); err == nil {
			t.Errorf("malformed redirect accepted: %q", src)
		}
	}
	// Comments containing "=>" stay comments.
	if _, err := run(t, dir, "read dimacs test.dimacs\n# a comment => not a redirect\n"); err != nil {
		t.Errorf("comment with => rejected: %v", err)
	}
}

// TestKernelBeforeReadMentionsRead pins the guidance in the error text.
func TestKernelBeforeReadMentionsRead(t *testing.T) {
	for _, src := range []string{"components\n", "stats\n", "kcores 2\n", "sssp 0\n"} {
		_, err := run(t, t.TempDir(), src)
		if err == nil || !strings.Contains(err.Error(), "missing read command") {
			t.Errorf("%q: err = %v, want mention of missing read", src, err)
		}
	}
}

// TestRunFileErrorProvenance checks errors from RunFile carry file:line.
func TestRunFileErrorProvenance(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	path := filepath.Join(dir, "bad.gct")
	if err := os.WriteFile(path, []byte("read dimacs test.dimacs\nnonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(&bytes.Buffer{}, "")
	err := in.RunFile(path)
	if err == nil || !strings.Contains(err.Error(), path+":2:") {
		t.Fatalf("err = %v, want %s:2: prefix", err, path)
	}
	var se *Error
	if !errors.As(err, &se) || !se.Parse || se.Line != 2 || se.Path != path {
		t.Fatalf("annotation = %+v", se)
	}
}

// TestReorderCommand relabels for cache locality mid-script and checks
// per-vertex output still reports the loaded graph's ids: the path middle
// (vertex 5 in the file) is the only positive-betweenness vertex.
func TestReorderCommand(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	out, err := run(t, dir, "read dimacs test.dimacs\nreorder degree\nkcentrality 0 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reordered degree: 7 vertices, 8 edges") {
		t.Fatalf("reorder output: %s", out)
	}
	if !strings.Contains(out, " 1. vertex 5 ") {
		t.Fatalf("top vertex not translated to the loaded id: %s", out)
	}
}

// TestReorderCommandRejectsBadArgs pins the usage error for missing and
// unknown permutation kinds.
func TestReorderCommandRejectsBadArgs(t *testing.T) {
	dir := t.TempDir()
	writeTestGraph(t, dir)
	if _, err := run(t, dir, "read dimacs test.dimacs\nreorder\n"); err == nil || !strings.Contains(err.Error(), "usage: reorder") {
		t.Errorf("missing kind: err = %v, want usage error", err)
	}
	if _, err := run(t, dir, "read dimacs test.dimacs\nreorder hilbert\n"); err == nil || !strings.Contains(err.Error(), "unknown reorder") {
		t.Errorf("unknown kind: err = %v, want unknown-reorder error", err)
	}
}
