package sssp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphct/internal/gen"
)

const cancelBudget = 500 * time.Millisecond

func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeltaSteppingCtxCancellation(t *testing.T) {
	// A long path is delta-stepping's worst case — hundreds of thousands
	// of tiny sequential bucket rounds — so the uncancelled run takes
	// well over the cancel budget and a mid-run cancel is guaranteed to
	// land while rounds are still being settled.
	g := gen.Path(1_200_000)

	_, _ = DeltaSteppingCtx(context.Background(), gen.Path(4), 0, 0)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := DeltaSteppingCtx(ctx, g, 0, 0)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-cancelled: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if d := time.Since(start); d > cancelBudget {
		t.Fatalf("pre-cancelled call took %v, budget %v", d, cancelBudget)
	}

	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start = time.Now()
	res, err = DeltaSteppingCtx(ctx, g, 0, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("mid-run cancel: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if elapsed > 10*time.Millisecond+cancelBudget {
		t.Fatalf("mid-run cancel returned after %v, budget %v", elapsed, cancelBudget)
	}
	checkGoroutines(t, baseline)
}
