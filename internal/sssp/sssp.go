// Package sssp provides weighted single-source shortest paths: a Dijkstra
// reference and the parallel delta-stepping algorithm of the Cray
// MTA/XMT kernel family GraphCT descends from. DIMACS inputs carry
// integer edge weights ("an edge list and an integer weight for each
// edge"); these kernels put them to work. Unweighted graphs are treated
// as having unit weights, where both algorithms reduce to BFS distances.
package sssp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// Inf marks unreachable vertices.
const Inf = int64(math.MaxInt64)

// Result holds one source's distances.
type Result struct {
	Source int32
	Dist   []int64 // Dist[v] = weighted distance, or Inf
}

// Reached reports whether v was reached.
func (r *Result) Reached(v int32) bool { return r.Dist[v] != Inf }

// validateWeights returns an error if any arc has a negative weight.
func validateWeights(g *graph.Graph) error {
	if !g.Weighted() {
		return nil
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Weights(int32(v)) {
			if w < 0 {
				return fmt.Errorf("sssp: negative edge weight %d at vertex %d", w, v)
			}
		}
	}
	return nil
}

// Dijkstra computes exact shortest paths with a binary heap — the
// sequential reference the parallel kernel is verified against.
func Dijkstra(g *graph.Graph, src int32) (*Result, error) {
	if err := validateWeights(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	r := &Result{Source: src, Dist: make([]int64, n)}
	for i := range r.Dist {
		r.Dist[i] = Inf
	}
	if n == 0 || src < 0 || int(src) >= n {
		return r, nil
	}
	r.Dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > r.Dist[item.v] {
			continue // stale entry
		}
		nbr := g.Neighbors(item.v)
		wts := g.Weights(item.v)
		for i, u := range nbr {
			w := int64(1)
			if wts != nil {
				w = int64(wts[i])
			}
			if nd := item.d + w; nd < r.Dist[u] {
				r.Dist[u] = nd
				heap.Push(pq, distItem{v: u, d: nd})
			}
		}
	}
	return r, nil
}

type distItem struct {
	v int32
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DeltaStepping computes shortest paths with the parallel bucket
// algorithm: vertices are grouped into buckets of width delta; each
// bucket settles by repeated parallel relaxation of light edges
// (weight < delta), then relaxes its heavy edges once. delta <= 0 picks
// a heuristic width (mean edge weight + 1).
func DeltaStepping(g *graph.Graph, src int32, delta int64) (*Result, error) {
	return DeltaSteppingCtx(context.Background(), g, src, delta)
}

// DeltaSteppingCtx is DeltaStepping with cooperative cancellation: the
// context is checked between relaxation rounds (each round is one parallel
// sweep over a frontier), so a cancelled request stops within a round
// rather than running the full bucket schedule.
func DeltaSteppingCtx(ctx context.Context, g *graph.Graph, src int32, delta int64) (*Result, error) {
	if err := validateWeights(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	r := &Result{Source: src, Dist: make([]int64, n)}
	for i := range r.Dist {
		r.Dist[i] = Inf
	}
	if n == 0 || src < 0 || int(src) >= n {
		return r, nil
	}
	if delta <= 0 {
		delta = heuristicDelta(g)
	}
	dist := r.Dist
	dist[src] = 0
	buckets := map[int64][]int32{0: {src}}
	enqueue := func(vs []int32) {
		for _, v := range vs {
			b := atomic.LoadInt64(&dist[v]) / delta
			buckets[b] = append(buckets[b], v)
		}
	}
	for len(buckets) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Smallest non-empty bucket index.
		bi := int64(-1)
		for k := range buckets {
			if bi == -1 || k < bi {
				bi = k
			}
		}
		var settled []int32
		// Light-edge phase: relax until the bucket stops refilling.
		// Every improvement lands in bucket >= bi (distances only
		// shrink toward bi*delta), so progress is monotone and finite.
		for len(buckets[bi]) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			frontier := buckets[bi]
			delete(buckets, bi)
			// Keep only entries still belonging to this bucket: a vertex
			// may have improved into an earlier, already-settled range
			// (then its entry here is stale but it was settled there).
			live := frontier[:0]
			for _, v := range frontier {
				if dist[v]/delta == bi {
					live = append(live, v)
				}
			}
			settled = append(settled, live...)
			enqueue(relax(g, live, dist, delta, true))
		}
		delete(buckets, bi)
		// Heavy-edge phase: w >= delta guarantees targets land in
		// buckets strictly beyond bi, so one pass suffices.
		enqueue(relax(g, settled, dist, delta, false))
	}
	return r, nil
}

// relax relaxes the light (or heavy) edges of the frontier in parallel,
// returning the vertices whose distances improved. Updates use an atomic
// min CAS loop; duplicates in the returned slice are tolerated by the
// caller's staleness checks.
func relax(g *graph.Graph, frontier []int32, dist []int64, delta int64, light bool) []int32 {
	workers := par.Workers()
	improvedBufs := make([][]int32, workers)
	var cursor atomic.Int64
	const chunk = 64
	par.ForEachWorker(func(wk, _ int) {
		var improved []int32
		for {
			lo := int(cursor.Add(chunk)) - chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			for _, v := range frontier[lo:hi] {
				dv := atomic.LoadInt64(&dist[v])
				if dv == Inf {
					continue
				}
				nbr := g.Neighbors(v)
				wts := g.Weights(v)
				for i, u := range nbr {
					w := int64(1)
					if wts != nil {
						w = int64(wts[i])
					}
					if light != (w < delta) {
						continue
					}
					nd := dv + w
					for {
						du := atomic.LoadInt64(&dist[u])
						if nd >= du {
							break
						}
						if atomic.CompareAndSwapInt64(&dist[u], du, nd) {
							improved = append(improved, u)
							break
						}
					}
				}
			}
		}
		improvedBufs[wk] = improved
	})
	var out []int32
	for _, b := range improvedBufs {
		out = append(out, b...)
	}
	return out
}

// heuristicDelta picks mean edge weight + 1 (1 for unweighted graphs,
// reducing the light phase to BFS-like level sweeps).
func heuristicDelta(g *graph.Graph) int64 {
	if !g.Weighted() || g.NumArcs() == 0 {
		return 1
	}
	var sum int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Weights(int32(v)) {
			sum += int64(w)
		}
	}
	return sum/g.NumArcs() + 1
}
