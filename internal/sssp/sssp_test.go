package sssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/bfs"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

func weightedRandom(t testing.TB, n, m int, maxW int32, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.WeightedEdge, m)
	for i := range edges {
		edges[i] = graph.WeightedEdge{
			U: int32(rng.Intn(n)),
			V: int32(rng.Intn(n)),
			W: 1 + rng.Int31n(maxW),
		}
	}
	g, err := graph.FromWeightedEdges(n, edges, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraWeightedPath(t *testing.T) {
	// 0 -5- 1 -2- 2, plus direct 0 -9- 2: best route via 1 costs 7.
	g, _ := graph.FromWeightedEdges(3, []graph.WeightedEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 9},
	}, graph.Options{})
	r, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[1] != 5 || r.Dist[2] != 7 {
		t.Fatalf("dist = %v", r.Dist)
	}
}

func TestDijkstraUnreachableAndEdgeCases(t *testing.T) {
	g := gen.Disjoint(gen.Path(3), gen.Path(2))
	r, _ := Dijkstra(g, 0)
	if r.Reached(3) || !r.Reached(2) {
		t.Fatalf("reachability wrong: %v", r.Dist)
	}
	if r2, _ := Dijkstra(g, -1); r2.Reached(0) {
		t.Fatal("bad source reached vertices")
	}
	if r3, _ := Dijkstra(graph.Empty(0, false), 0); len(r3.Dist) != 0 {
		t.Fatal("empty graph")
	}
}

func TestNegativeWeightsRejected(t *testing.T) {
	g, _ := graph.FromWeightedEdges(2, []graph.WeightedEdge{{U: 0, V: 1, W: -3}}, graph.Options{})
	if _, err := Dijkstra(g, 0); err == nil {
		t.Fatal("negative weight accepted by dijkstra")
	}
	if _, err := DeltaStepping(g, 0, 2); err == nil {
		t.Fatal("negative weight accepted by delta-stepping")
	}
}

func TestUnweightedMatchesBFS(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 3)
	d, err := Dijkstra(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DeltaStepping(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	lv := bfs.Search(g, 5).Level
	for v := 0; v < 200; v++ {
		want := Inf
		if lv[v] != bfs.Unreached {
			want = int64(lv[v])
		}
		if d.Dist[v] != want || ds.Dist[v] != want {
			t.Fatalf("v=%d dijkstra=%d delta=%d bfs=%d", v, d.Dist[v], ds.Dist[v], want)
		}
	}
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	f := func(seed int64, deltaRaw uint8) bool {
		g := weightedRandom(t, 80, 250, 20, seed)
		src := int32(seed%80+79) % 80
		want, err := Dijkstra(g, src)
		if err != nil {
			return false
		}
		delta := int64(deltaRaw%30) + 1
		got, err := DeltaStepping(g, src, delta)
		if err != nil {
			return false
		}
		for v := range want.Dist {
			if want.Dist[v] != got.Dist[v] {
				t.Logf("seed=%d delta=%d v=%d want %d got %d", seed, delta, v, want.Dist[v], got.Dist[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSteppingHeuristicDelta(t *testing.T) {
	g := weightedRandom(t, 120, 400, 50, 9)
	want, _ := Dijkstra(g, 0)
	got, err := DeltaStepping(g, 0, 0) // heuristic width
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("heuristic delta wrong at %d", v)
		}
	}
}

func TestDeltaSteppingLargeDelta(t *testing.T) {
	// delta larger than any path weight: everything is one light bucket
	// (Bellman-Ford-ish) and must still be exact.
	g := weightedRandom(t, 60, 200, 5, 4)
	want, _ := Dijkstra(g, 3)
	got, err := DeltaStepping(g, 3, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("huge delta wrong at %d", v)
		}
	}
}

func TestDeltaSteppingDeltaOne(t *testing.T) {
	// delta=1 makes every edge heavy: pure bucket-per-distance Dijkstra.
	g := weightedRandom(t, 60, 200, 6, 8)
	want, _ := Dijkstra(g, 1)
	got, err := DeltaStepping(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Dist {
		if want.Dist[v] != got.Dist[v] {
			t.Fatalf("delta=1 wrong at %d", v)
		}
	}
}

func TestWeightedDirected(t *testing.T) {
	g, _ := graph.FromWeightedEdges(3, []graph.WeightedEdge{
		{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 4},
	}, graph.Options{Directed: true})
	r, _ := Dijkstra(g, 2)
	if r.Reached(0) {
		t.Fatal("directed distances should not flow backward")
	}
	fwd, _ := DeltaStepping(g, 0, 3)
	if fwd.Dist[2] != 8 {
		t.Fatalf("directed delta dist = %v", fwd.Dist)
	}
}

func BenchmarkDijkstraWeighted(b *testing.B) {
	g := weightedRandom(b, 20000, 100000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, int32(i%20000))
	}
}

func BenchmarkDeltaSteppingWeighted(b *testing.B) {
	g := weightedRandom(b, 20000, 100000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, int32(i%20000), 0)
	}
}
