// Package failpoint implements named fault-injection points for the
// serving path. A failpoint is a compiled-in hook (an Eval call) that is
// inert until armed; arming it attaches an action — return an error, add
// latency, or panic — with an optional hit budget and firing probability.
// The chaos harness and operators drive the same registry: tests arm
// points programmatically, graphctd arms them from the GRAPHCT_FAILPOINTS
// environment variable and (when -debug is set) a POST /debug/failpoints
// endpoint.
//
// The spec grammar, term by term (terms separated by ';'):
//
//	name=action[(param)][*budget][%probability]
//
//	kernel.exec=panic(boom)*1        panic once, then disarm
//	stream.apply=error%10            fail 10% of batch applications
//	cache.put=delay(5ms)*100%50      50% chance of a 5ms stall, 100 times
//
// Actions: error (param = message), delay (param = Go duration, required),
// panic (param = message). A missing budget is unlimited; a missing
// probability fires every evaluation. Probabilities are percentages in
// (0, 100].
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The catalogue of points compiled into the serving path. Arming any
// other name is legal (the spec parser cannot know every Eval site) but
// does nothing until code evaluates it.
const (
	// KernelExec fires inside a kernel pool slot, right before the kernel
	// body runs. An error becomes a 500; a panic exercises the per-kernel
	// recover isolation.
	KernelExec = "kernel.exec"
	// StreamApply fires at the top of stream.ApplyBatch, before any
	// mutation, so an injected failure always leaves the stream unchanged.
	StreamApply = "stream.apply"
	// CachePut fires before a kernel result is inserted into the result
	// cache; a failure drops the insertion (the response is still served).
	CachePut = "cache.put"
	// SnapshotPublish fires before a live graph materializes an epoch
	// snapshot; a failure defers publication to a later batch.
	SnapshotPublish = "snapshot.publish"
	// BlobPut fires before the filesystem blob store commits an object;
	// a failure leaves the store unchanged (durable snapshot writes are
	// retried at the next publication).
	BlobPut = "blob.put"
	// WALAppend fires before a batch is appended to the write-ahead log;
	// a failure skips the append and forces the next snapshot publication
	// to rotate the log, bounding the unlogged window.
	WALAppend = "wal.append"
)

// ErrInjected is the sentinel every injected error wraps, letting callers
// distinguish synthetic failures from organic ones.
var ErrInjected = errors.New("failpoint injected failure")

// Error is the error an armed error-action failpoint returns.
type Error struct {
	Point string
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("failpoint %s: %s", e.Point, e.Msg) }

// Unwrap makes errors.Is(err, ErrInjected) hold for every injected error.
func (e *Error) Unwrap() error { return ErrInjected }

// PanicValue is the value a panic-action failpoint panics with, so
// recover sites can tell injected panics from organic ones.
type PanicValue struct {
	Point string
	Msg   string
}

func (p PanicValue) String() string { return fmt.Sprintf("failpoint %s: %s", p.Point, p.Msg) }

// Action is what an armed failpoint does when it fires.
type Action int

const (
	ActionError Action = iota
	ActionDelay
	ActionPanic
)

func (a Action) String() string {
	switch a {
	case ActionError:
		return "error"
	case ActionDelay:
		return "delay"
	case ActionPanic:
		return "panic"
	}
	return "unknown"
}

// point is one armed injection site.
type point struct {
	action Action
	msg    string
	delay  time.Duration
	budget int64 // remaining fires; < 0 means unlimited
	prob   float64
	evals  int64
	fires  int64
}

// Status reports one armed point for listings.
type Status struct {
	Name        string  `json:"name"`
	Spec        string  `json:"spec"`
	Budget      int64   `json:"budget"` // remaining fires, -1 = unlimited
	Probability float64 `json:"probability_pct"`
	Evals       int64   `json:"evals"`
	Fires       int64   `json:"fires"`
}

// Registry holds armed failpoints. The zero-value-free constructor wires
// a seeded RNG so probabilistic arms are reproducible under Seed.
type Registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

// Default is the process-wide registry every compiled-in Eval site uses.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		rng:    rand.New(rand.NewSource(1)),
		points: make(map[string]*point),
	}
}

// Seed re-seeds the probability RNG, making a chaos run reproducible.
func (r *Registry) Seed(seed int64) {
	r.mu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.mu.Unlock()
}

// termRe parses one spec term; see the package comment for the grammar.
var termRe = regexp.MustCompile(`^(error|delay|panic)(?:\(([^)]*)\))?(?:\*(\d+))?(?:%([0-9.]+))?$`)

// Arm arms one point from a single spec term ("name=action...").
// Re-arming a name replaces its previous arm.
func (r *Registry) Arm(term string) error {
	name, rest, ok := strings.Cut(strings.TrimSpace(term), "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return fmt.Errorf("failpoint: bad term %q (want name=action[(param)][*budget][%%prob])", term)
	}
	m := termRe.FindStringSubmatch(strings.TrimSpace(rest))
	if m == nil {
		return fmt.Errorf("failpoint: bad action %q in term %q", rest, term)
	}
	p := &point{budget: -1, prob: 100}
	switch m[1] {
	case "error":
		p.action = ActionError
		p.msg = m[2]
		if p.msg == "" {
			p.msg = "injected error"
		}
	case "delay":
		p.action = ActionDelay
		d, err := time.ParseDuration(m[2])
		if err != nil || d < 0 {
			return fmt.Errorf("failpoint: delay needs a duration param, got %q", m[2])
		}
		p.delay = d
	case "panic":
		p.action = ActionPanic
		p.msg = m[2]
		if p.msg == "" {
			p.msg = "injected panic"
		}
	}
	if m[3] != "" {
		n, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("failpoint: bad budget %q in term %q", m[3], term)
		}
		p.budget = n
	}
	if m[4] != "" {
		pct, err := strconv.ParseFloat(m[4], 64)
		if err != nil || pct <= 0 || pct > 100 {
			return fmt.Errorf("failpoint: bad probability %q in term %q (want (0,100])", m[4], term)
		}
		p.prob = pct
	}
	r.mu.Lock()
	r.points[name] = p
	r.mu.Unlock()
	return nil
}

// ArmAll arms every ';'-separated term in spec (the GRAPHCT_FAILPOINTS
// format). An error on any term leaves earlier terms armed.
func (r *Registry) ArmAll(spec string) error {
	for _, term := range strings.Split(spec, ";") {
		if strings.TrimSpace(term) == "" {
			continue
		}
		if err := r.Arm(term); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes the arm on name, reporting whether one existed.
func (r *Registry) Disarm(name string) bool {
	r.mu.Lock()
	_, ok := r.points[name]
	delete(r.points, name)
	r.mu.Unlock()
	return ok
}

// DisarmAll removes every arm.
func (r *Registry) DisarmAll() {
	r.mu.Lock()
	r.points = make(map[string]*point)
	r.mu.Unlock()
}

// List returns the armed points sorted by name.
func (r *Registry) List() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Status, 0, len(r.points))
	for name, p := range r.points {
		spec := p.action.String()
		switch p.action {
		case ActionDelay:
			spec += "(" + p.delay.String() + ")"
		default:
			spec += "(" + p.msg + ")"
		}
		if p.budget >= 0 {
			spec += "*" + strconv.FormatInt(p.budget, 10)
		}
		if p.prob < 100 {
			spec += "%" + strconv.FormatFloat(p.prob, 'g', -1, 64)
		}
		out = append(out, Status{
			Name: name, Spec: spec, Budget: p.budget,
			Probability: p.prob, Evals: p.evals, Fires: p.fires,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Eval is the compiled-in hook: it fires the arm on name if one exists,
// its budget is not exhausted, and the probability roll passes. An
// error-action arm returns an *Error (wrapping ErrInjected); a delay arm
// sleeps and returns nil; a panic arm panics with a PanicValue. A
// disarmed or unknown name costs one map lookup.
func (r *Registry) Eval(name string) error {
	r.mu.Lock()
	p, ok := r.points[name]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	p.evals++
	if p.budget == 0 || (p.prob < 100 && r.rng.Float64()*100 >= p.prob) {
		r.mu.Unlock()
		return nil
	}
	if p.budget > 0 {
		p.budget--
	}
	p.fires++
	action, msg, delay := p.action, p.msg, p.delay
	r.mu.Unlock()

	switch action {
	case ActionDelay:
		time.Sleep(delay)
		return nil
	case ActionPanic:
		panic(PanicValue{Point: name, Msg: msg})
	default:
		return &Error{Point: name, Msg: msg}
	}
}

// Eval fires name's arm on the Default registry; see Registry.Eval.
func Eval(name string) error { return Default.Eval(name) }
