package failpoint

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestArmSpecParsing(t *testing.T) {
	for _, bad := range []string{
		"",                      // no name
		"=error",                // empty name
		"p",                     // no action
		"p=explode",             // unknown action
		"p=delay",               // delay without duration
		"p=delay(soon)",         // unparseable duration
		"p=error*0",             // zero budget
		"p=error*-1",            // negative budget
		"p=error%0",             // zero probability
		"p=error%101",           // probability > 100
		"p=error*2%x",           // bad probability
		"p=error(msg)*2%10 junk",
	} {
		r := NewRegistry()
		if err := r.Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted a malformed term", bad)
		}
	}
	r := NewRegistry()
	if err := r.ArmAll("a=error(boom)*2; b=delay(3ms)%50 ;c=panic"); err != nil {
		t.Fatalf("ArmAll: %v", err)
	}
	st := r.List()
	if len(st) != 3 || st[0].Name != "a" || st[1].Name != "b" || st[2].Name != "c" {
		t.Fatalf("List = %+v, want a,b,c", st)
	}
	if st[0].Spec != "error(boom)*2" || st[1].Spec != "delay(3ms)%50" || st[2].Spec != "panic(injected panic)" {
		t.Fatalf("round-tripped specs = %q %q %q", st[0].Spec, st[1].Spec, st[2].Spec)
	}
}

func TestErrorBudget(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("p=error(kaboom)*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := r.Eval("p")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: %v, want injected error", i, err)
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Point != "p" || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("eval %d: error %v lacks point/message", i, err)
		}
	}
	// Budget exhausted: the point stays listed but inert.
	if err := r.Eval("p"); err != nil {
		t.Fatalf("post-budget eval: %v, want nil", err)
	}
	st := r.List()
	if len(st) != 1 || st[0].Budget != 0 || st[0].Fires != 2 || st[0].Evals != 3 {
		t.Fatalf("status after exhaustion = %+v", st)
	}
	if err := r.Eval("never-armed"); err != nil {
		t.Fatalf("unknown point: %v, want nil", err)
	}
}

func TestPanicActionAndValue(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("p=panic(chaos)*1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		pv, ok := v.(PanicValue)
		if !ok || pv.Point != "p" || pv.Msg != "chaos" {
			t.Fatalf("recovered %#v, want PanicValue{p, chaos}", v)
		}
		// The budget was consumed: a second eval is inert.
		if err := r.Eval("p"); err != nil {
			t.Fatalf("post-panic eval: %v", err)
		}
	}()
	_ = r.Eval("p")
	t.Fatal("Eval did not panic")
}

func TestDelayAction(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("p=delay(30ms)*1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Eval("p"); err != nil {
		t.Fatalf("delay eval returned error %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay eval returned after %v, want >= 30ms", d)
	}
}

// TestProbabilityIsSeededAndRoughlyCalibrated pins both determinism (same
// seed, same firing pattern) and calibration (≈10% over many evals).
func TestProbabilityIsSeededAndRoughlyCalibrated(t *testing.T) {
	pattern := func(seed int64) []bool {
		r := NewRegistry()
		r.Seed(seed)
		if err := r.Arm("p=error%10"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 2000)
		for i := range out {
			out[i] = r.Eval("p") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d", i)
		}
		if a[i] {
			fires++
		}
	}
	// 2000 evals at 10%: expect ~200; accept a generous band.
	if fires < 120 || fires > 300 {
		t.Fatalf("10%% arm fired %d/2000 times, outside [120, 300]", fires)
	}
}

// TestConcurrentEval drives one point from many goroutines to give the
// race detector a target and to check the budget is never oversubscribed.
func TestConcurrentEval(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("p=error*100"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if r.Eval("p") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Fatalf("budget 100 fired %d times under concurrency", fired)
	}
}

func TestDisarm(t *testing.T) {
	r := NewRegistry()
	if err := r.ArmAll("a=error;b=error"); err != nil {
		t.Fatal(err)
	}
	if !r.Disarm("a") || r.Disarm("a") {
		t.Fatal("Disarm existence reporting wrong")
	}
	if err := r.Eval("a"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	r.DisarmAll()
	if err := r.Eval("b"); err != nil {
		t.Fatalf("point fired after DisarmAll: %v", err)
	}
	if len(r.List()) != 0 {
		t.Fatalf("List after DisarmAll = %+v", r.List())
	}
}
