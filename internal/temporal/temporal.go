// Package temporal analyzes tweet streams over time — the paper analyzes
// one snapshot and notes that "characteristics change over time. This
// paper considers only a snapshot, but ongoing work examines the data's
// temporal aspects." A stream is sliced into weekly windows (isolated or
// cumulative), each window's interaction graph characterized, and the
// churn of the most-central actors tracked across windows.
package temporal

import (
	"sort"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/tweets"
)

// Snapshot is one time window's interaction graph and summary.
type Snapshot struct {
	Week      int
	Users     *tweets.UserGraph
	LWCCUsers int
	TopActors []string // top actors by sampled betweenness centrality
}

// Options configures a temporal analysis.
type Options struct {
	// Cumulative grows each window to include all earlier weeks instead
	// of isolating one week per snapshot.
	Cumulative bool
	// TopK actors ranked per window (default 10).
	TopK int
	// Samples for the per-window BC estimate; <= 0 means exact.
	Samples int
	Seed    int64
}

// Weeks returns the sorted distinct weeks present in the stream.
func Weeks(ts []tweets.Tweet) []int {
	seen := map[int]bool{}
	for _, t := range ts {
		seen[t.Week] = true
	}
	weeks := make([]int, 0, len(seen))
	for w := range seen {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	return weeks
}

// Analyze slices the stream by week and characterizes each window.
func Analyze(ts []tweets.Tweet, opt Options) []Snapshot {
	if opt.TopK <= 0 {
		opt.TopK = 10
	}
	weeks := Weeks(ts)
	var out []Snapshot
	for _, wk := range weeks {
		lo := wk
		if opt.Cumulative && len(weeks) > 0 {
			lo = weeks[0]
		}
		window := tweets.FilterWeek(ts, lo, wk)
		ug := tweets.Build(window)
		snap := Snapshot{Week: wk, Users: ug}
		if ug.Graph.NumVertices() > 0 {
			lwcc, _ := cc.Largest(ug.Graph)
			snap.LWCCUsers = lwcc.NumVertices()
			res := bc.Centrality(ug.Graph, bc.Options{Samples: opt.Samples, Seed: opt.Seed})
			snap.TopActors = ug.Handles(res.TopK(opt.TopK))
		}
		out = append(out, snap)
	}
	return out
}

// Turnover returns, per consecutive snapshot pair, the fraction of the
// top-actor set replaced between windows: 0 means a stable elite, 1 a
// complete churn. The comparison is by handle so windows with different
// vertex numberings compare correctly.
func Turnover(snaps []Snapshot) []float64 {
	if len(snaps) < 2 {
		return nil
	}
	out := make([]float64, 0, len(snaps)-1)
	for i := 1; i < len(snaps); i++ {
		prev := toSet(snaps[i-1].TopActors)
		cur := toSet(snaps[i].TopActors)
		if len(prev) == 0 && len(cur) == 0 {
			out = append(out, 0)
			continue
		}
		max := len(prev)
		if len(cur) > max {
			max = len(cur)
		}
		common := 0
		for h := range cur {
			if prev[h] {
				common++
			}
		}
		out = append(out, 1-float64(common)/float64(max))
	}
	return out
}

func toSet(hs []string) map[string]bool {
	m := make(map[string]bool, len(hs))
	for _, h := range hs {
		m[h] = true
	}
	return m
}

// GrowthRow summarizes one snapshot for trend tables.
type GrowthRow struct {
	Week         int
	Tweets       int
	Users        int
	Interactions int64
	LWCCShare    float64 // LWCC users / users
}

// Growth tabulates per-window sizes, the temporal counterpart of the
// paper's Table III.
func Growth(snaps []Snapshot) []GrowthRow {
	rows := make([]GrowthRow, len(snaps))
	for i, s := range snaps {
		st := s.Users.Stats
		row := GrowthRow{
			Week:         s.Week,
			Tweets:       st.Tweets,
			Users:        st.Users,
			Interactions: st.UniqueInteractions,
		}
		if st.Users > 0 {
			row.LWCCShare = float64(s.LWCCUsers) / float64(st.Users)
		}
		rows[i] = row
	}
	return rows
}
