package temporal

import (
	"testing"

	"graphct/internal/tweets"
)

func corpus(t *testing.T) []tweets.Tweet {
	t.Helper()
	return tweets.Generate(tweets.H1N1Corpus(0.05, 11)) // weeks 36-39
}

func TestWeeks(t *testing.T) {
	ts := []tweets.Tweet{{Week: 38}, {Week: 36}, {Week: 38}, {Week: 37}}
	got := Weeks(ts)
	if len(got) != 3 || got[0] != 36 || got[2] != 38 {
		t.Fatalf("Weeks = %v", got)
	}
	if Weeks(nil) != nil && len(Weeks(nil)) != 0 {
		t.Fatal("empty weeks")
	}
}

func TestAnalyzeIsolatedWindows(t *testing.T) {
	ts := corpus(t)
	snaps := Analyze(ts, Options{TopK: 5, Samples: 64, Seed: 1})
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d, want 4 weeks", len(snaps))
	}
	var total int
	for i, s := range snaps {
		if s.Week != 36+i {
			t.Fatalf("weeks out of order: %v", s.Week)
		}
		if s.Users.Stats.Tweets == 0 {
			t.Fatalf("week %d empty", s.Week)
		}
		if len(s.TopActors) == 0 || len(s.TopActors) > 5 {
			t.Fatalf("week %d top actors = %v", s.Week, s.TopActors)
		}
		if s.LWCCUsers <= 0 || s.LWCCUsers > s.Users.Stats.Users {
			t.Fatalf("week %d LWCC = %d of %d", s.Week, s.LWCCUsers, s.Users.Stats.Users)
		}
		total += s.Users.Stats.Tweets
	}
	if total != len(ts) {
		t.Fatalf("windows cover %d of %d tweets", total, len(ts))
	}
	// The crisis volume model concentrates tweets right after the
	// outbreak week: week 37 (spike) must exceed week 39 (decay).
	if snaps[1].Users.Stats.Tweets <= snaps[3].Users.Stats.Tweets {
		t.Fatalf("no temporal spike: %d vs %d",
			snaps[1].Users.Stats.Tweets, snaps[3].Users.Stats.Tweets)
	}
}

func TestAnalyzeCumulative(t *testing.T) {
	ts := corpus(t)
	snaps := Analyze(ts, Options{Cumulative: true, TopK: 5, Samples: 64})
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Users.Stats.Tweets < snaps[i-1].Users.Stats.Tweets {
			t.Fatal("cumulative windows must be monotone in tweets")
		}
		if snaps[i].Users.Stats.Users < snaps[i-1].Users.Stats.Users {
			t.Fatal("cumulative windows must be monotone in users")
		}
	}
	last := snaps[len(snaps)-1]
	if last.Users.Stats.Tweets != len(ts) {
		t.Fatal("final cumulative window must cover the stream")
	}
}

func TestTurnover(t *testing.T) {
	snaps := []Snapshot{
		{TopActors: []string{"a", "b", "c"}},
		{TopActors: []string{"a", "b", "d"}},
		{TopActors: []string{"x", "y", "z"}},
	}
	got := Turnover(snaps)
	if len(got) != 2 {
		t.Fatalf("turnover = %v", got)
	}
	if got[0] < 0.32 || got[0] > 0.34 {
		t.Fatalf("turnover[0] = %v, want 1/3", got[0])
	}
	if got[1] != 1 {
		t.Fatalf("turnover[1] = %v, want 1", got[1])
	}
	if Turnover(snaps[:1]) != nil {
		t.Fatal("single snapshot should have no turnover")
	}
}

func TestTurnoverEmptyWindows(t *testing.T) {
	got := Turnover([]Snapshot{{}, {}})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty turnover = %v", got)
	}
}

func TestTurnoverOnRealStreamIsModerate(t *testing.T) {
	ts := corpus(t)
	snaps := Analyze(ts, Options{TopK: 5, Samples: 0}) // exact BC per window
	tv := Turnover(snaps)
	if len(tv) != 3 {
		t.Fatalf("turnover = %v", tv)
	}
	// Broadcast hubs persist across weeks, so the elite never fully
	// churns.
	for i, v := range tv {
		if v < 0 || v > 1 {
			t.Fatalf("turnover out of range: %v", tv)
		}
		if v == 1 {
			t.Fatalf("complete churn at window %d unexpected for hub-dominated stream", i)
		}
	}
}

func TestGrowth(t *testing.T) {
	ts := corpus(t)
	snaps := Analyze(ts, Options{TopK: 3, Samples: 32})
	rows := Growth(snaps)
	if len(rows) != len(snaps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Week != snaps[i].Week || r.Users <= 0 || r.Tweets <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.LWCCShare <= 0 || r.LWCCShare > 1 {
			t.Fatalf("LWCC share out of range: %+v", r)
		}
	}
}
