// Package api is the wire contract shared by every graphct process that
// speaks the daemon's HTTP protocol: the X-Graphct-* header names, the
// QoS class values, the ingest/snapshot/WAL content types and the JSON
// error shape. graphctd (server and router roles), the follower
// replication tailer, cmd/loadgen, cmd/tweetgen and the graphct CLI's
// connect mode all import these constants instead of repeating string
// literals, so the client and server halves of the protocol cannot drift
// apart silently.
//
// The package is deliberately a leaf: standard library only, importable
// from anywhere in the tree without cycles.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Response headers. Every kernel response carries HeaderEpoch (which
// graph epoch served it) and HeaderClass (which QoS lane admitted it);
// the rest appear on the paths that produce them.
const (
	// HeaderEpoch names the graph epoch that served a kernel response —
	// the handle clients use to correlate reads with ingest acks, and the
	// value a router compares against HeaderMinEpoch.
	HeaderEpoch = "X-Graphct-Epoch"
	// HeaderClass names the QoS lane (ClassCheap or ClassExpensive) the
	// request was admitted under.
	HeaderClass = "X-Graphct-Class"
	// HeaderSource says how the body was produced: "computed",
	// "coalesced", "cache" or "stale".
	HeaderSource = "X-Graphct-Source"
	// HeaderStale, on a degraded (?stale=allow) response, names the epoch
	// that actually computed the body.
	HeaderStale = "X-Graphct-Stale"
	// HeaderBreaker marks a 503 rejected by an open circuit breaker.
	HeaderBreaker = "X-Graphct-Breaker"
	// HeaderDeduped marks an ingest response answered from the
	// idempotency window instead of re-applying the batch.
	HeaderDeduped = "X-Graphct-Deduped"
)

// Request headers.
const (
	// HeaderClient identifies the caller for per-client rate limiting and
	// metric attribution.
	HeaderClient = "X-Graphct-Client"
	// HeaderMinEpoch is the read-your-epoch floor: a worker whose current
	// epoch for the graph is older answers 412 Precondition Failed, and a
	// router retries the next replica or falls through to the leader.
	HeaderMinEpoch = "X-Graphct-Min-Epoch"
)

// Routing headers, set by the router role.
const (
	// HeaderWorker names the backend member that actually served a
	// response routed through a coordinator.
	HeaderWorker = "X-Graphct-Worker"
	// HeaderDegraded marks a response (or 503) the router could only
	// produce in degraded mode: "stale-epoch" when a lagging replica
	// served below the requested min epoch, "down" when no shard member
	// was reachable.
	HeaderDegraded = "X-Graphct-Degraded"
)

// Replication headers, set by the WAL streaming endpoint.
const (
	// HeaderWALBase is the base epoch of the served WAL segment — the
	// durable snapshot it extends.
	HeaderWALBase = "X-Graphct-Wal-Base"
	// HeaderWALSealed is "true" when the served segment has been rotated:
	// it is complete, and applying all of it lands exactly on the durable
	// snapshot named by HeaderWALNext.
	HeaderWALSealed = "X-Graphct-Wal-Sealed"
	// HeaderWALNext, on a sealed segment, is the next durable epoch —
	// the epoch a follower publishes after applying the sealed segment in
	// full, and the base it tails next. It is derived from the snapshot
	// chain, not the surviving segment set: the segment based at that
	// epoch may itself have been dropped, in which case tailing it
	// answers 410 and the follower re-bootstraps.
	HeaderWALNext = "X-Graphct-Wal-Next"
)

// QoS cost classes (the values HeaderClass carries).
const (
	ClassCheap     = "cheap"
	ClassExpensive = "expensive"
)

// Content types of the non-JSON bodies on the wire.
const (
	// ContentTypeUpdates is the compact GCTU binary ingest framing
	// (internal/stream).
	ContentTypeUpdates = "application/x-graphct-updates"
	// ContentTypeSnapshot is the GCTS durable snapshot envelope
	// (internal/blob), served by GET /graphs/{name}/snapshot.
	ContentTypeSnapshot = "application/x-graphct-snapshot"
	// ContentTypeWAL is a GCTW write-ahead-log segment (internal/wal),
	// served by GET /graphs/{name}/wal.
	ContentTypeWAL = "application/x-graphct-wal"
)

// Error is the JSON error body every non-2xx response carries:
// {"error": "message"}.
type Error struct {
	Message string `json:"error"`
}

// WriteJSON writes v as the JSON response body under the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the protocol's JSON error shape under status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, Error{Message: fmt.Sprintf(format, args...)})
}

// DecodeError extracts the server's error message from a non-2xx response
// body ("" when the body is not the protocol's error shape). The caller
// still owns the body.
func DecodeError(body []byte) string {
	var e Error
	if err := json.Unmarshal(body, &e); err != nil {
		return ""
	}
	return e.Message
}
