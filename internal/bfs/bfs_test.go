package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestSearchPath(t *testing.T) {
	g := gen.Path(6)
	r := Search(g, 0)
	for v := 0; v < 6; v++ {
		if r.Level[v] != int32(v) {
			t.Errorf("level[%d] = %d, want %d", v, r.Level[v], v)
		}
	}
	if r.Depth != 5 {
		t.Fatalf("depth = %d, want 5", r.Depth)
	}
	if r.NumReached() != 6 {
		t.Fatalf("reached %d, want 6", r.NumReached())
	}
}

func TestSearchStar(t *testing.T) {
	g := gen.Star(100)
	r := Search(g, 0)
	if r.Depth != 1 {
		t.Fatalf("star depth = %d", r.Depth)
	}
	for v := 1; v < 100; v++ {
		if r.Level[v] != 1 || r.Parent[v] != 0 {
			t.Fatalf("leaf %d level=%d parent=%d", v, r.Level[v], r.Parent[v])
		}
	}
	leaf := Search(g, 57)
	if leaf.Depth != 2 || leaf.Level[0] != 1 {
		t.Fatalf("leaf search depth=%d level[hub]=%d", leaf.Depth, leaf.Level[0])
	}
}

func TestSearchDisconnected(t *testing.T) {
	g := gen.Disjoint(gen.Path(3), gen.Ring(4))
	r := Search(g, 0)
	if r.NumReached() != 3 {
		t.Fatalf("reached %d, want 3", r.NumReached())
	}
	for v := 3; v < 7; v++ {
		if r.Reached(int32(v)) {
			t.Fatalf("vertex %d in other component reached", v)
		}
		if r.Parent[v] != Unreached {
			t.Fatalf("unreached vertex %d has parent %d", v, r.Parent[v])
		}
	}
}

func TestSearchBounded(t *testing.T) {
	g := gen.Path(10)
	r := SearchBounded(g, 0, 3)
	if r.NumReached() != 4 {
		t.Fatalf("bounded reached %d, want 4", r.NumReached())
	}
	if r.Depth != 3 {
		t.Fatalf("bounded depth = %d, want 3", r.Depth)
	}
	if r.Reached(4) {
		t.Fatal("vertex beyond bound reached")
	}
	zero := SearchBounded(g, 5, 0)
	if zero.NumReached() != 1 || zero.Depth != 0 {
		t.Fatal("zero-depth search should visit only the source")
	}
}

func TestSearchInvalidSource(t *testing.T) {
	g := gen.Path(3)
	r := Search(g, -1)
	if r.NumReached() != 0 {
		t.Fatal("negative source should reach nothing")
	}
	r = Search(g, 99)
	if r.NumReached() != 0 {
		t.Fatal("out-of-range source should reach nothing")
	}
}

func TestSearchEmptyGraph(t *testing.T) {
	g := graph.Empty(0, false)
	r := Search(g, 0)
	if r.NumReached() != 0 {
		t.Fatal("empty graph search reached vertices")
	}
}

func TestOrderIsLevelMonotone(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, 4)
	r := Search(g, 0)
	for i := 1; i < len(r.Order); i++ {
		if r.Level[r.Order[i]] < r.Level[r.Order[i-1]] {
			t.Fatalf("order not level-monotone at %d", i)
		}
	}
}

func TestParentLevels(t *testing.T) {
	g := gen.ErdosRenyi(200, 700, 9)
	r := Search(g, 3)
	for v := 0; v < 200; v++ {
		if !r.Reached(int32(v)) || int32(v) == r.Source {
			continue
		}
		p := r.Parent[v]
		if p == Unreached {
			t.Fatalf("reached vertex %d missing parent", v)
		}
		if r.Level[p] != r.Level[v]-1 {
			t.Fatalf("parent level mismatch at %d: %d vs %d", v, r.Level[p], r.Level[v])
		}
		if !g.HasEdge(p, int32(v)) {
			t.Fatalf("parent %d not adjacent to %d", p, v)
		}
	}
}

func TestPathTo(t *testing.T) {
	g := gen.Grid(5, 5)
	r := Search(g, 0)
	p := r.PathTo(24)
	if len(p) != r.Depth+1 || p[0] != 0 || p[len(p)-1] != 24 {
		t.Fatalf("path = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.HasEdge(p[i-1], p[i]) {
			t.Fatalf("path step %d-%d not an edge", p[i-1], p[i])
		}
	}
	if r.PathTo(-1) != nil {
		t.Fatal("PathTo(-1) should be nil")
	}
	disc := Search(gen.Disjoint(gen.Path(2), gen.Path(2)), 0)
	if disc.PathTo(3) != nil {
		t.Fatal("PathTo(unreached) should be nil")
	}
	if got := r.PathTo(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("PathTo(source) = %v", got)
	}
}

func TestEccentricity(t *testing.T) {
	if e := Eccentricity(gen.Path(9), 0); e != 8 {
		t.Fatalf("path end ecc = %d", e)
	}
	if e := Eccentricity(gen.Path(9), 4); e != 4 {
		t.Fatalf("path mid ecc = %d", e)
	}
	if e := Eccentricity(gen.Ring(10), 3); e != 5 {
		t.Fatalf("ring ecc = %d", e)
	}
}

// Reference sequential BFS for cross-checking.
func seqLevels(g CSRGraph, src int32) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = Unreached
	}
	if int(src) >= n || src < 0 {
		return level
	}
	level[src] = 0
	q := []int32{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Neighbors(u) {
			if level[v] == Unreached {
				level[v] = level[u] + 1
				q = append(q, v)
			}
		}
	}
	return level
}

// Property: parallel BFS levels equal sequential BFS levels on random
// graphs.
func TestPropertyMatchesSequential(t *testing.T) {
	f := func(seed int64, srcRaw uint8) bool {
		g := gen.ErdosRenyi(120, 300, seed)
		src := int32(srcRaw) % 120
		want := seqLevels(g, src)
		got := Search(g, src).Level
		for v := range want {
			if want[v] != got[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality on BFS levels — adjacent vertices' levels
// differ by at most 1 when both reached.
func TestPropertyLevelLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.PreferentialAttachment(150, 2, seed)
		r := Search(g, int32(rng.Intn(150)))
		for v := 0; v < 150; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				lv, lw := r.Level[v], r.Level[w]
				if lv == Unreached || lw == Unreached {
					if lv != lw {
						return false // one side of an edge reached but not the other
					}
					continue
				}
				if lv-lw > 1 || lw-lv > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSearchRMAT14(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(14, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(g, int32(i%g.NumVertices()))
	}
}
