package bfs

import (
	"sync/atomic"

	"graphct/internal/par"
)

// Degreer is the extra capability hybrid search needs from a graph.
type Degreer interface {
	CSRGraph
	Degree(v int32) int
	NumArcs() int64
	Directed() bool
}

// Beamer-style direction-optimizing switch thresholds: go bottom-up when
// the frontier's out-edges exceed remaining-edges/alpha, return top-down
// when the frontier shrinks below vertices/beta. Exported because the
// betweenness kernel's direction-optimized forward sweeps (internal/bc)
// share them — one tuning point for every hybrid traversal in the tree.
const (
	HybridAlpha = 14
	HybridBeta  = 24
)

const (
	hybridAlpha = HybridAlpha
	hybridBeta  = HybridBeta
)

// HybridSearch runs a direction-optimizing BFS on an undirected graph:
// top-down frontier expansion while the frontier is small, switching to a
// bottom-up sweep (every unvisited vertex scans its neighbors for a
// visited parent) when the frontier covers a large share of the edges —
// the regime scale-free graphs enter after two or three levels. Directed
// graphs fall back to the standard search, whose results it matches
// exactly except for Parent ties and visitation order within a level.
func HybridSearch(g Degreer, src int32) *Result {
	if g.Directed() {
		return Search(g, src)
	}
	n := g.NumVertices()
	r := &Result{Source: src, Level: make([]int32, n), Parent: make([]int32, n)}
	for i := range r.Level {
		r.Level[i] = Unreached
		r.Parent[i] = Unreached
	}
	if n == 0 || src < 0 || int(src) >= n {
		return r
	}
	r.Level[src] = 0
	r.Parent[src] = src
	r.Order = append(r.Order, src)
	frontier := []int32{src}
	depth := int32(0)
	remainingEdges := g.NumArcs()
	for len(frontier) > 0 {
		frontierEdges := int64(0)
		for _, u := range frontier {
			frontierEdges += int64(g.Degree(u))
		}
		remainingEdges -= frontierEdges
		var next []int32
		if frontierEdges > remainingEdges/hybridAlpha && int64(len(frontier)) > int64(n)/hybridBeta {
			next = bottomUpStep(g, r.Level, r.Parent, depth+1)
		} else {
			next = expand(g, frontier, r.Level, r.Parent, depth+1)
		}
		if len(next) == 0 {
			break
		}
		depth++
		r.Order = append(r.Order, next...)
		frontier = next
	}
	r.Depth = int(depth)
	return r
}

// bottomUpStep claims every unvisited vertex adjacent to the previous
// level. Each vertex writes only its own entries, so the parallel loop is
// race-free without CAS.
func bottomUpStep(g Degreer, level, parent []int32, d int32) []int32 {
	n := g.NumVertices()
	workers := par.Workers()
	buffers := make([][]int32, workers)
	var cursor atomic.Int64
	const chunk = 4096
	par.ForEachWorker(func(w, _ int) {
		var buf []int32
		row := rowFunc(g)
		for {
			lo := int(cursor.Add(chunk)) - chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for v := int32(lo); v < int32(hi); v++ {
				if atomic.LoadInt32(&level[v]) != Unreached {
					continue
				}
				for _, u := range row(v) {
					// u may be claimed concurrently in this same step
					// (then its level is d, not d-1), so the read must
					// be atomic even though v's entries are worker-owned.
					if atomic.LoadInt32(&level[u]) == d-1 {
						atomic.StoreInt32(&level[v], d)
						parent[v] = u
						buf = append(buf, v)
						break
					}
				}
			}
		}
		buffers[w] = buf
	})
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	next := make([]int32, 0, total)
	for _, b := range buffers {
		next = append(next, b...)
	}
	return next
}
