package bfs

import (
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestHybridMatchesStandardLevels(t *testing.T) {
	f := func(seed int64, srcRaw uint8) bool {
		g := gen.RMAT(gen.PaperRMAT(9, seed))
		src := int32(srcRaw) % int32(g.NumVertices())
		a := Search(g, src)
		b := HybridSearch(g, src)
		if a.Depth != b.Depth || a.NumReached() != b.NumReached() {
			return false
		}
		for v := range a.Level {
			if a.Level[v] != b.Level[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridParentsConsistent(t *testing.T) {
	g := gen.RMAT(gen.PaperRMAT(10, 3))
	r := HybridSearch(g, 0)
	for v := 0; v < g.NumVertices(); v++ {
		if !r.Reached(int32(v)) || int32(v) == r.Source {
			continue
		}
		p := r.Parent[v]
		if p == Unreached || r.Level[p] != r.Level[v]-1 || !g.HasEdge(p, int32(v)) {
			t.Fatalf("bad parent at %d: p=%d", v, p)
		}
	}
}

func TestHybridDenseGraphTriggersBottomUp(t *testing.T) {
	// A complete graph reaches everything at depth 1 with a huge
	// frontier-edge count, exercising the bottom-up branch.
	g := gen.Complete(200)
	r := HybridSearch(g, 7)
	if r.Depth != 1 || r.NumReached() != 200 {
		t.Fatalf("K200 search: depth=%d reached=%d", r.Depth, r.NumReached())
	}
}

func TestHybridPathStaysTopDown(t *testing.T) {
	g := gen.Path(1000)
	r := HybridSearch(g, 0)
	if r.Depth != 999 || r.NumReached() != 1000 {
		t.Fatalf("path search: depth=%d reached=%d", r.Depth, r.NumReached())
	}
}

func TestHybridDirectedFallsBack(t *testing.T) {
	d, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.Options{Directed: true})
	r := HybridSearch(d, 0)
	if r.NumReached() != 3 || r.Depth != 2 {
		t.Fatalf("directed fallback: %+v", r)
	}
}

func TestHybridEdgeCases(t *testing.T) {
	if HybridSearch(graph.Empty(0, false), 0).NumReached() != 0 {
		t.Fatal("empty graph")
	}
	if HybridSearch(gen.Path(3), -1).NumReached() != 0 {
		t.Fatal("negative source")
	}
	if HybridSearch(gen.Path(3), 99).NumReached() != 0 {
		t.Fatal("out-of-range source")
	}
}

func BenchmarkHybridVsStandard(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(15, 1))
	b.Run("standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Search(g, int32(i%g.NumVertices()))
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HybridSearch(g, int32(i%g.NumVertices()))
		}
	})
}
