// Package bfs implements GraphCT's level-synchronous parallel breadth-first
// search. Within each level the frontier is expanded by all workers, with
// unvisited vertices claimed exactly once by an atomic compare-and-swap on
// their level — the fine-grained parallelism the paper exposes inside every
// traversal-based kernel.
package bfs

import (
	"sync/atomic"

	"graphct/internal/par"
)

// Unreached marks vertices a search never visited.
const Unreached = int32(-1)

// CSRGraph is the read-only view the traversal needs; *graph.Graph
// satisfies it.
type CSRGraph interface {
	NumVertices() int
	Neighbors(v int32) []int32
}

// rowDecoder is the optional fast row access *graph.Graph provides: on a
// raw CSR graph it returns the aliased adjacency slice, on a delta-varint
// compact graph it decodes into the caller's reusable buffer. Traversals
// probe for it so compact graphs traverse without a per-row allocation,
// while any plain CSRGraph still works through Neighbors.
type rowDecoder interface {
	NeighborsInto(buf *[]int32, v int32) []int32
}

// rowFunc returns the per-worker row accessor for g. Each worker calls
// this once and owns the returned closure's decode buffer.
func rowFunc(g CSRGraph) func(v int32) []int32 {
	if rd, ok := g.(rowDecoder); ok {
		var nbuf []int32
		return func(v int32) []int32 { return rd.NeighborsInto(&nbuf, v) }
	}
	return g.Neighbors
}

// Result holds the output of one breadth-first search.
type Result struct {
	Source int32
	Level  []int32 // Level[v] = hops from Source, or Unreached
	Parent []int32 // Parent[v] = BFS-tree parent, Source's parent is itself
	Depth  int     // deepest level reached (eccentricity within the component)
	Order  []int32 // vertices in visitation (level) order
}

// Reached reports whether v was visited.
func (r *Result) Reached(v int32) bool { return r.Level[v] != Unreached }

// NumReached returns the number of visited vertices (the component size for
// an unbounded search of an undirected graph).
func (r *Result) NumReached() int { return len(r.Order) }

// Search runs a full breadth-first search from src.
func Search(g CSRGraph, src int32) *Result {
	return SearchBounded(g, src, -1)
}

// SearchBounded runs a breadth-first search from src exploring at most
// maxDepth levels (maxDepth < 0 means unbounded). This is GraphCT's "mark a
// breadth-first search from a given vertex of a given length" kernel.
func SearchBounded(g CSRGraph, src int32, maxDepth int) *Result {
	n := g.NumVertices()
	r := &Result{
		Source: src,
		Level:  make([]int32, n),
		Parent: make([]int32, n),
	}
	for i := range r.Level {
		r.Level[i] = Unreached
		r.Parent[i] = Unreached
	}
	if n == 0 || src < 0 || int(src) >= n {
		return r
	}
	r.Level[src] = 0
	r.Parent[src] = src
	frontier := []int32{src}
	r.Order = append(r.Order, src)
	depth := int32(0)
	for len(frontier) > 0 {
		if maxDepth >= 0 && int(depth) >= maxDepth {
			break
		}
		next := expand(g, frontier, r.Level, r.Parent, depth+1)
		if len(next) == 0 {
			break
		}
		depth++
		r.Order = append(r.Order, next...)
		frontier = next
	}
	r.Depth = int(depth)
	return r
}

// expand visits the neighbors of every frontier vertex, claiming unvisited
// vertices with CAS. Workers accumulate into private buffers that are
// concatenated afterwards, avoiding a shared queue on the hot path.
func expand(g CSRGraph, frontier []int32, level, parent []int32, d int32) []int32 {
	workers := par.Workers()
	buffers := make([][]int32, workers)
	var cursor atomic.Int64
	const chunk = 64
	par.ForEachWorker(func(w, _ int) {
		var buf []int32
		row := rowFunc(g)
		for {
			lo := int(cursor.Add(chunk)) - chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			for _, u := range frontier[lo:hi] {
				for _, v := range row(u) {
					if atomic.LoadInt32(&level[v]) != Unreached {
						continue
					}
					if par.CASInt32(&level[v], Unreached, d) {
						atomic.StoreInt32(&parent[v], u)
						buf = append(buf, v)
					}
				}
			}
		}
		buffers[w] = buf
	})
	total := 0
	for _, b := range buffers {
		total += len(b)
	}
	next := make([]int32, 0, total)
	for _, b := range buffers {
		next = append(next, b...)
	}
	return next
}

// Eccentricity returns the depth of a full BFS from src: the longest
// shortest-path distance to any reachable vertex.
func Eccentricity(g CSRGraph, src int32) int {
	return Search(g, src).Depth
}

// PathTo reconstructs a shortest path from the search source to v using the
// parent pointers, or nil if v was not reached.
func (r *Result) PathTo(v int32) []int32 {
	if v < 0 || int(v) >= len(r.Level) || !r.Reached(v) {
		return nil
	}
	var rev []int32
	for u := v; ; u = r.Parent[u] {
		rev = append(rev, u)
		if u == r.Source {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
