// Package kcore implements GraphCT's k-core extraction kernel: iterative
// parallel peeling of vertices below the degree threshold until a fixed
// point, yielding both the core number of every vertex and induced k-core
// subgraphs.
package kcore

import (
	"sync/atomic"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// Decompose returns core[v], the largest k such that v belongs to the
// k-core of g (the maximal subgraph where every vertex has degree >= k).
// Isolated vertices have core number 0. Directed graphs are decomposed on
// their undirected projection.
func Decompose(g *graph.Graph) []int32 {
	if g.Directed() {
		g = g.Undirected()
	}
	n := g.NumVertices()
	deg := make([]int32, n)
	core := make([]int32, n)
	alive := make([]bool, n)
	par.For(n, func(v int) {
		deg[v] = int32(g.Degree(int32(v)))
		alive[v] = true
	})
	remaining := n
	for k := int32(0); remaining > 0; k++ {
		// Peel everything of degree <= k at this level; repeat until no
		// vertex at this level remains, then raise k.
		for {
			var peel []int32
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					peel = append(peel, int32(v))
				}
			}
			if len(peel) == 0 {
				break
			}
			par.For(len(peel), func(i int) {
				v := peel[i]
				alive[v] = false
				core[v] = k
			})
			remaining -= len(peel)
			// NeighborIter keeps the peeled vertices' row decode
			// allocation-free on compact graphs; par.For's per-index
			// closures can't share a decode buffer.
			par.For(len(peel), func(i int) {
				for it := g.NeighborIter(peel[i]); ; {
					w, ok := it.Next()
					if !ok {
						break
					}
					if alive[w] {
						atomic.AddInt32(&deg[w], -1)
					}
				}
			})
		}
	}
	return core
}

// MaxCore returns the degeneracy of g: the largest k with a non-empty
// k-core.
func MaxCore(g *graph.Graph) int32 {
	var max int32
	for _, c := range Decompose(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// Extract returns the induced subgraph of vertices with core number >= k
// together with their original ids — GraphCT's "extracting k-cores" kernel.
func Extract(g *graph.Graph, k int32) (*graph.Graph, []int32) {
	core := Decompose(g)
	keep := make([]bool, g.NumVertices())
	par.For(len(keep), func(v int) { keep[v] = core[v] >= k })
	return g.Induced(keep)
}
