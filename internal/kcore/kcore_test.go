package kcore

import (
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestDecomposeRing(t *testing.T) {
	core := Decompose(gen.Ring(10))
	for v, c := range core {
		if c != 2 {
			t.Fatalf("ring core[%d] = %d, want 2", v, c)
		}
	}
}

func TestDecomposeStar(t *testing.T) {
	core := Decompose(gen.Star(10))
	for v, c := range core {
		if c != 1 {
			t.Fatalf("star core[%d] = %d, want 1", v, c)
		}
	}
}

func TestDecomposeComplete(t *testing.T) {
	core := Decompose(gen.Complete(6))
	for v, c := range core {
		if c != 5 {
			t.Fatalf("K6 core[%d] = %d, want 5", v, c)
		}
	}
}

func TestDecomposeCliqueWithTail(t *testing.T) {
	// K4 on {0..3} plus tail 3-4-5.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}}
	g, _ := graph.FromEdges(6, edges, graph.Options{})
	core := Decompose(g)
	want := []int32{3, 3, 3, 3, 1, 1}
	for v, c := range want {
		if core[v] != c {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
}

func TestDecomposeIsolated(t *testing.T) {
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, graph.Options{})
	core := Decompose(g)
	if core[2] != 0 || core[0] != 1 {
		t.Fatalf("core = %v", core)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if got := Decompose(graph.Empty(0, false)); len(got) != 0 {
		t.Fatal("empty graph core should be empty")
	}
}

func TestMaxCore(t *testing.T) {
	if MaxCore(gen.Complete(5)) != 4 {
		t.Fatal("K5 degeneracy != 4")
	}
	if MaxCore(gen.BinaryTree(15)) != 1 {
		t.Fatal("tree degeneracy != 1")
	}
}

func TestExtract(t *testing.T) {
	g := gen.Disjoint(gen.Complete(4), gen.Path(5))
	sub, orig := Extract(g, 2)
	if sub.NumVertices() != 4 || sub.NumEdges() != 6 {
		t.Fatalf("2-core = %v", sub)
	}
	if orig[0] != 0 {
		t.Fatalf("orig = %v", orig)
	}
	all, _ := Extract(g, 0)
	if all.NumVertices() != 9 {
		t.Fatal("0-core should keep everything")
	}
	none, _ := Extract(g, 4)
	if none.NumVertices() != 0 {
		t.Fatal("4-core of K4+path should be empty")
	}
}

func TestDirectedUsesProjection(t *testing.T) {
	d, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, graph.Options{Directed: true})
	core := Decompose(d)
	for _, c := range core {
		if c != 2 {
			t.Fatalf("directed triangle core = %v", core)
		}
	}
}

// Property: the k-core, as extracted, has minimum degree >= k, and core
// numbers are monotone under the definition (every vertex with core >= k
// keeps >= k neighbors with core >= k).
func TestPropertyCoreInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 180, seed)
		core := Decompose(g)
		for k := int32(1); k <= 4; k++ {
			sub, _ := Extract(g, k)
			for v := 0; v < sub.NumVertices(); v++ {
				if int32(sub.Degree(int32(v))) < k {
					return false
				}
			}
		}
		// core[v] <= degree(v) always.
		for v := 0; v < 60; v++ {
			if core[v] > int32(g.Degree(int32(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
