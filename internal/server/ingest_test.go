package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"graphct/internal/stream"
)

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	var body bytes.Buffer
	if v != nil {
		if err := json.NewEncoder(&body).Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func mustIngest(t *testing.T, base, name string, batch []map[string]any) ingestResult {
	t.Helper()
	status, body := postJSON(t, base+"/graphs/"+name+"/ingest", batch)
	if status != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", status, body)
	}
	var res ingestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestIngestLifecycle walks the happy path: create a live graph, ingest
// JSON batches, watch epochs advance on snapshot, and see kernels observe
// the streamed state.
func TestIngestLifecycle(t *testing.T) {
	reg := NewRegistry()
	s := New(reg, Config{SnapshotEvery: -1}) // snapshot after every effective batch
	ts := newHTTPServer(t, s)

	status, body := postJSON(t, ts.URL+"/graphs", map[string]any{
		"name": "live", "format": "live", "vertices": 5,
	})
	if status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", status, body)
	}
	var info graphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Live || info.Vertices != 5 || info.Edges != 0 {
		t.Fatalf("info = %+v", info)
	}

	res := mustIngest(t, ts.URL, "live", []map[string]any{
		{"u": 0, "v": 1}, {"u": 1, "v": 2}, {"u": 2, "v": 0}, {"u": 0, "v": 1}, {"u": 3, "v": 3},
	})
	if res.Inserted != 3 || res.Ignored != 2 || res.Edges != 3 || !res.Snapshotted {
		t.Fatalf("res = %+v", res)
	}
	if res.Epoch <= info.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", info.Epoch, res.Epoch)
	}

	// The published snapshot serves kernels, stamped with its epoch.
	code, hdr, body := get(t, ts.URL+"/graphs/live/clustering")
	if code != http.StatusOK {
		t.Fatalf("clustering: HTTP %d: %s", code, body)
	}
	if got := hdr.Get("X-Graphct-Epoch"); got != fmt.Sprint(res.Epoch) {
		t.Fatalf("epoch header %q, want %d", got, res.Epoch)
	}
	var clu struct {
		Global float64 `json:"global_clustering"`
	}
	if err := json.Unmarshal(body, &clu); err != nil {
		t.Fatal(err)
	}
	if clu.Global != 1 { // the streamed triangle is fully clustered
		t.Fatalf("global clustering = %v", clu.Global)
	}

	// Deleting an edge breaks the triangle; the next epoch must show it.
	res = mustIngest(t, ts.URL, "live", []map[string]any{{"u": 0, "v": 1, "del": true}})
	if res.Deleted != 1 || res.Edges != 2 || !res.Snapshotted {
		t.Fatalf("res = %+v", res)
	}
	code, _, body = get(t, ts.URL+"/graphs/live/clustering")
	if code != http.StatusOK {
		t.Fatalf("clustering: HTTP %d", code)
	}
	if err := json.Unmarshal(body, &clu); err != nil {
		t.Fatal(err)
	}
	if clu.Global != 0 {
		t.Fatalf("global clustering after delete = %v", clu.Global)
	}

	m := s.Metrics()
	if m.IngestBatches.Load() != 2 || m.IngestUpdates.Load() != 6 ||
		m.IngestMutations.Load() != 4 || m.Snapshots.Load() != 2 {
		t.Fatalf("metrics: batches=%d updates=%d mutations=%d snapshots=%d",
			m.IngestBatches.Load(), m.IngestUpdates.Load(), m.IngestMutations.Load(), m.Snapshots.Load())
	}
}

// TestIngestBinaryFraming sends the compact framing end to end.
func TestIngestBinaryFraming(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddLive("live", 100); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{SnapshotEvery: 10})
	ts := newHTTPServer(t, s)

	ups := make([]stream.Update, 40)
	for i := range ups {
		ups[i] = stream.Update{U: int32(i % 7), V: int32((i + 3) % 11), Time: int64(i)}
	}
	var buf bytes.Buffer
	if err := stream.EncodeUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs/live/ingest", stream.WireContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var res ingestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 40 || res.Inserted == 0 || !res.Snapshotted {
		t.Fatalf("res = %+v", res)
	}

	// Force-flush with nothing pending reports the current epoch quietly.
	status, body := postJSON(t, ts.URL+"/graphs/live/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d: %s", status, body)
	}
	var snap ingestResult
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Snapshotted || snap.Epoch != res.Epoch {
		t.Fatalf("idle snapshot = %+v (ingest epoch %d)", snap, res.Epoch)
	}
}

// TestIngestValidation pins the endpoint's error contract.
func TestIngestValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddLive("live", 4); err != nil {
		t.Fatal(err)
	}
	reg.Add("static", testGraph())
	s := New(reg, Config{MaxBatch: 8})
	ts := newHTTPServer(t, s)

	cases := []struct {
		name string
		url  string
		body string
		ct   string
		want int
	}{
		{"no graph", "/graphs/none/ingest", "[]", "application/json", http.StatusNotFound},
		{"static graph", "/graphs/static/ingest", "[]", "application/json", http.StatusConflict},
		{"bad json", "/graphs/live/ingest", "{not json", "application/json", http.StatusBadRequest},
		{"bad frame", "/graphs/live/ingest", "XXXX", stream.WireContentType, http.StatusBadRequest},
		{"oversized", "/graphs/live/ingest",
			`[{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1},{"u":0,"v":1}]`,
			"application/json", http.StatusRequestEntityTooLarge},
		{"out of range", "/graphs/live/ingest", `[{"u":0,"v":99}]`, "application/json", http.StatusUnprocessableEntity},
		{"snapshot no graph", "/graphs/none/snapshot", "", "application/json", http.StatusNotFound},
		{"snapshot static", "/graphs/static/snapshot", "", "application/json", http.StatusConflict},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, tc.ct, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// A rejected batch (vertex out of range) must leave the stream intact.
	res := mustIngest(t, ts.URL, "live", []map[string]any{{"u": 0, "v": 1}})
	if res.Edges != 1 || res.Inserted != 1 {
		t.Fatalf("res = %+v", res)
	}

	// Creating a live graph without vertices is rejected.
	status, _ := postJSON(t, ts.URL+"/graphs", map[string]any{"name": "bad", "format": "live"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("liveness without vertices: HTTP %d", status)
	}
}

// TestIngestBackpressure saturates the ingest pool and demands 429s,
// counted in the ingest metrics, while the kernel pool stays unaffected.
func TestIngestBackpressure(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddLive("live", 10); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{IngestConcurrent: 1, IngestQueued: 1, SnapshotEvery: 1 << 30})
	ts := newHTTPServer(t, s)

	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s.beforeIngest = func(string) {
		entered <- struct{}{}
		<-release
	}

	const clients = 8
	var wg sync.WaitGroup
	codes := make([]int, clients)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postJSON(t, ts.URL+"/graphs/live/ingest", []map[string]any{{"u": 0, "v": 1}})
		}(i)
	}
	<-entered // one batch holds the only slot
	// Wait until rejections surface, then release the stuck writer.
	deadline := time.After(5 * time.Second)
	for s.Metrics().IngestRejected.Load() < clients-2 {
		select {
		case <-deadline:
			t.Fatal("rejections never arrived")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	ok, rejected := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok < 1 || rejected < clients-2 || ok+rejected != clients {
		t.Fatalf("ok=%d rejected=%d", ok, rejected)
	}
	if got := s.Metrics().IngestRejected.Load(); got != int64(rejected) {
		t.Fatalf("metrics rejected %d != %d", got, rejected)
	}
}

// TestIngestRaceStress is the concurrency acceptance harness: 4 writers
// stream random batches while 8 readers hammer kernels on the same graph.
// Every kernel response must be internally consistent — the edge count it
// reports must be exactly the edge count the ingest path published for
// the epoch stamped on the response — proving readers never observe a
// half-applied batch or a torn snapshot.
func TestIngestRaceStress(t *testing.T) {
	reg := NewRegistry()
	first, err := reg.AddLive("live", 200)
	if err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{
		MaxConcurrent:    4,
		MaxQueued:        1024,
		IngestConcurrent: 4,
		IngestQueued:     1024,
		SnapshotEvery:    32,
		CacheBytes:       -1, // force recomputation so readers exercise kernels
	})
	ts := newHTTPServer(t, s)

	duration := 2 * time.Second
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	stop := time.Now().Add(duration)

	// epochEdges records, for every published epoch, the live edge count
	// captured inside the writer critical section. Readers cross-check
	// their responses against it after the fact.
	var mu sync.Mutex
	epochEdges := map[uint64]int64{first.Epoch: 0}

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(stop) {
				batch := make([]map[string]any, 1+rng.Intn(24))
				for i := range batch {
					batch[i] = map[string]any{
						"u": rng.Intn(200), "v": rng.Intn(200), "del": rng.Intn(4) == 0,
					}
				}
				var body bytes.Buffer
				_ = json.NewEncoder(&body).Encode(batch)
				resp, err := http.Post(ts.URL+"/graphs/live/ingest", "application/json", &body)
				if err != nil {
					report("writer %d: %v", w, err)
					return
				}
				var res ingestResult
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					report("writer %d: HTTP %d, %v", w, resp.StatusCode, err)
					return
				}
				if res.Snapshotted {
					mu.Lock()
					epochEdges[res.Epoch] = res.Edges
					mu.Unlock()
				}
			}
		}(w)
	}

	type observation struct {
		epoch uint64
		edges int64
	}
	observations := make([][]observation, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				code, hdr, body := get(t, ts.URL+"/graphs/live/stats")
				if code != http.StatusOK {
					report("reader %d: HTTP %d: %s", r, code, body)
					return
				}
				var st struct {
					Edges int64 `json:"edges"`
				}
				if err := json.Unmarshal(body, &st); err != nil {
					report("reader %d: %v", r, err)
					return
				}
				var epoch uint64
				if _, err := fmt.Sscan(hdr.Get("X-Graphct-Epoch"), &epoch); err != nil {
					report("reader %d: bad epoch header %q", r, hdr.Get("X-Graphct-Epoch"))
					return
				}
				observations[r] = append(observations[r], observation{epoch, st.Edges})
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Post-join verification avoids racing the writers' bookkeeping: every
	// epoch a reader saw must exist and carry exactly the edge count its
	// publishing batch recorded.
	checked := 0
	for r, obs := range observations {
		for _, o := range obs {
			want, ok := epochEdges[o.epoch]
			if !ok {
				t.Fatalf("reader %d observed unpublished epoch %d", r, o.epoch)
			}
			if o.edges != want {
				t.Fatalf("reader %d: epoch %d reported %d edges, published %d — torn batch",
					r, o.epoch, o.edges, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("readers made no observations")
	}
	t.Logf("verified %d kernel responses across %d epochs", checked, len(epochEdges))
}

func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}
