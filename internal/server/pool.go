package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull rejects a kernel request when the admission queue is at
// capacity — the server's backpressure signal, mapped to HTTP 429.
var ErrQueueFull = errors.New("server: admission queue full")

// Pool is the admission-controlled kernel executor: at most maxRunning
// kernels execute at once (each kernel already parallelizes internally
// via internal/par, so running many concurrently would oversubscribe the
// machine and balloon working memory), and at most maxQueued further
// requests may wait for a slot. Requests beyond that are rejected
// immediately rather than piling up.
type Pool struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxQ    int64
}

// NewPool returns a pool running at most maxRunning kernels with at most
// maxQueued waiters. Non-positive arguments default to 2 running and 16
// queued.
func NewPool(maxRunning, maxQueued int) *Pool {
	if maxRunning <= 0 {
		maxRunning = 2
	}
	if maxQueued <= 0 {
		maxQueued = 16
	}
	return &Pool{slots: make(chan struct{}, maxRunning), maxQ: int64(maxQueued)}
}

// Acquire claims an execution slot, waiting in the admission queue if all
// slots are busy. It fails fast with ErrQueueFull when the queue is at
// capacity and returns ctx.Err() if the request deadline expires while
// queued. Every successful Acquire must be paired with Release.
func (p *Pool) Acquire(ctx context.Context) error {
	// Fast path: a free slot admits without queuing.
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	if p.waiting.Add(1) > p.maxQ {
		p.waiting.Add(-1)
		return ErrQueueFull
	}
	defer p.waiting.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire.
func (p *Pool) Release() { <-p.slots }

// QueueDepth returns the number of requests waiting for a slot.
func (p *Pool) QueueDepth() int64 { return p.waiting.Load() }

// Accepting reports whether the admission queue still has headroom — the
// readiness signal: a pool whose queue is full answers every new request
// with ErrQueueFull, so the daemon should shed traffic upstream.
func (p *Pool) Accepting() bool { return p.waiting.Load() < p.maxQ }

// Running returns the number of kernels currently executing.
func (p *Pool) Running() int { return len(p.slots) }
