package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"graphct/internal/api"
	"graphct/internal/stream"
)

func TestParseShards(t *testing.T) {
	shards, err := ParseShards(" http://a:1 | http://a2:1 , http://b:1/ ")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(shards))
	}
	if got := shards[0].Members; len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://a2:1" {
		t.Fatalf("shard 0 members = %v", got)
	}
	if shards[1].Leader() != "http://b:1" {
		t.Fatalf("shard 1 leader = %q (trailing slash must be trimmed)", shards[1].Leader())
	}

	for _, bad := range []string{
		"",
		"  , ,",
		"a:1",
		"http://a:1,http://a:1",
		"http://a:1|http://a:1",
	} {
		if _, err := ParseShards(bad); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
}

// routedCluster is a router in front of n single-member shards, each a
// fresh in-memory worker.
func routedCluster(t *testing.T, n int) (*Router, *httptest.Server, []*Server, []*httptest.Server) {
	t.Helper()
	workers := make([]*Server, n)
	backends := make([]*httptest.Server, n)
	shards := make([]Shard, n)
	for i := range workers {
		workers[i] = New(NewRegistry(), Config{})
		backends[i] = httptest.NewServer(workers[i])
		t.Cleanup(backends[i].Close)
		shards[i] = Shard{Members: []string{backends[i].URL}}
	}
	rt := NewRouter(shards)
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)
	return rt, rts, workers, backends
}

// TestRouterPartitionsByName drives the full write surface through a
// two-shard router: creation routes by the name in the body, every graph
// lands on exactly the ring-owning worker, ingest and deletes follow it
// there, reads come back stamped with the serving worker, and the merged
// listing covers both shards.
func TestRouterPartitionsByName(t *testing.T) {
	rt, rts, workers, backends := routedCluster(t, 2)

	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for _, name := range names {
		status, body := postJSON(t, rts.URL+"/graphs", map[string]any{
			"name": name, "format": "live", "vertices": 50,
		})
		if status != http.StatusCreated && status != http.StatusOK {
			t.Fatalf("create %q: HTTP %d: %s", name, status, body)
		}
	}
	owners := make(map[string]int)
	spread := make(map[int]int)
	for _, name := range names {
		leader := rt.shardFor(name).Leader()
		var owner int = -1
		for i, b := range backends {
			_, onWorker := workers[i].reg.Get(name)
			if b.URL == leader {
				owner = i
				if !onWorker {
					t.Fatalf("%q owned by worker %d but absent there", name, i)
				}
			} else if onWorker {
				t.Fatalf("%q leaked onto non-owning worker %d", name, i)
			}
		}
		owners[name] = owner
		spread[owner]++
	}
	if len(spread) != 2 {
		t.Fatalf("all %d names hashed to one shard: %v", len(names), owners)
	}

	// Ingest through the router mutates the owner's copy.
	if status, body := postJSON(t, rts.URL+"/graphs/alpha/ingest",
		[]map[string]any{{"u": 0, "v": 1}, {"u": 1, "v": 2}}); status != http.StatusOK {
		t.Fatalf("routed ingest: HTTP %d: %s", status, body)
	}
	if e, _ := workers[owners["alpha"]].reg.Get("alpha"); e.Live.st.NumEdges() != 2 {
		t.Fatalf("owner edges = %d, want 2", e.Live.st.NumEdges())
	}

	// Reads carry the worker that served them.
	status, hdr, _ := get(t, rts.URL+"/graphs/alpha/stats")
	if status != http.StatusOK {
		t.Fatalf("routed read: HTTP %d", status)
	}
	if got := hdr.Get(api.HeaderWorker); got != backends[owners["alpha"]].URL {
		t.Fatalf("%s = %q, want owner %q", api.HeaderWorker, got, backends[owners["alpha"]].URL)
	}

	// The merged listing sees every shard's graphs exactly once.
	status, hdr, body := get(t, rts.URL+"/graphs")
	if status != http.StatusOK || hdr.Get(api.HeaderDegraded) != "" {
		t.Fatalf("routed list: HTTP %d degraded=%q", status, hdr.Get(api.HeaderDegraded))
	}
	for _, name := range names {
		if !strings.Contains(string(body), `"name":"`+name+`"`) {
			t.Fatalf("merged listing missing %q: %s", name, body)
		}
	}

	// Deletes route home too.
	req, _ := http.NewRequest(http.MethodDelete, rts.URL+"/graphs/alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		t.Fatalf("routed delete: HTTP %d", resp.StatusCode)
	}
	if _, ok := workers[owners["alpha"]].reg.Get("alpha"); ok {
		t.Fatal("delete did not reach the owning worker")
	}
	if rt.Metrics().Writes.Load() == 0 || rt.Metrics().Reads.Load() == 0 {
		t.Fatal("router metrics did not count the traffic")
	}
}

// TestRouterFailoverAndDegraded covers the liveness edges: a dead replica
// is skipped (counted as a failover), a dead shard degrades the graph
// listing rather than failing it, writes to a dead leader answer 503, and
// a fully dead shard answers reads with 503 — all stamped with
// X-Graphct-Degraded.
func TestRouterFailoverAndDegraded(t *testing.T) {
	worker := New(NewRegistry(), Config{})
	if _, err := worker.AddLive("g", 10); err != nil {
		t.Fatal(err)
	}
	wts := httptest.NewServer(worker)
	defer wts.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	// Shard with a dead replica: reads fail over to the leader.
	rt := NewRouter([]Shard{{Members: []string{wts.URL, deadURL}}})
	rts := httptest.NewServer(rt)
	defer rts.Close()
	status, hdr, _ := get(t, rts.URL+"/graphs/g/stats")
	if status != http.StatusOK || hdr.Get(api.HeaderWorker) != wts.URL {
		t.Fatalf("read with dead replica: HTTP %d from %q", status, hdr.Get(api.HeaderWorker))
	}

	// Two shards, one completely down: the listing degrades, reads and
	// writes for graphs on the dead shard answer 503.
	rt2 := NewRouter([]Shard{{Members: []string{wts.URL}}, {Members: []string{deadURL}}})
	rts2 := httptest.NewServer(rt2)
	defer rts2.Close()
	status, hdr, _ = get(t, rts2.URL+"/graphs")
	if status != http.StatusOK || hdr.Get(api.HeaderDegraded) != "partial" {
		t.Fatalf("degraded list: HTTP %d degraded=%q", status, hdr.Get(api.HeaderDegraded))
	}
	var deadName string
	for i := 0; ; i++ {
		name := fmt.Sprintf("n-%d", i)
		if rt2.shardFor(name).Leader() == deadURL {
			deadName = name
			break
		}
	}
	status, hdr, _ = get(t, rts2.URL+"/graphs/"+deadName+"/stats")
	if status != http.StatusServiceUnavailable || hdr.Get(api.HeaderDegraded) != "down" {
		t.Fatalf("read on dead shard: HTTP %d degraded=%q", status, hdr.Get(api.HeaderDegraded))
	}
	status, body := postJSON(t, rts2.URL+"/graphs/"+deadName+"/ingest", []map[string]any{{"u": 0, "v": 1}})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("write to dead leader: HTTP %d: %s", status, body)
	}
}

// TestRouterMinEpochReads pins the read-your-epoch contract at the router:
// a lagging replica answering 412 is failed over, an unsatisfiable floor
// surfaces as 412, and ?stale=allow downgrades that to an explicitly
// degraded stale answer.
func TestRouterMinEpochReads(t *testing.T) {
	g := testGraph()
	lag := New(NewRegistry(), Config{})
	lagEntry := lag.reg.Add("g", g) // published first: the older epoch
	lead := New(NewRegistry(), Config{})
	leadEntry := lead.reg.Add("g", g)
	if leadEntry.Epoch <= lagEntry.Epoch {
		t.Fatalf("epochs not ordered: lead %d, lag %d", leadEntry.Epoch, lagEntry.Epoch)
	}
	leadTS := httptest.NewServer(lead)
	defer leadTS.Close()
	lagTS := httptest.NewServer(lag)
	defer lagTS.Close()

	rt := NewRouter([]Shard{{Members: []string{leadTS.URL, lagTS.URL}}})
	rts := httptest.NewServer(rt)
	defer rts.Close()

	read := func(minEpoch uint64, stale bool) (int, http.Header) {
		t.Helper()
		u := rts.URL + "/graphs/g/stats"
		if stale {
			u += "?stale=allow"
		}
		req, _ := http.NewRequest(http.MethodGet, u, nil)
		req.Header.Set(api.HeaderMinEpoch, strconv.FormatUint(minEpoch, 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	// No floor: the replica serves (replicas absorb read load).
	status, hdr, _ := get(t, rts.URL+"/graphs/g/stats")
	if status != http.StatusOK || hdr.Get(api.HeaderWorker) != lagTS.URL {
		t.Fatalf("unfloored read: HTTP %d from %q, want replica %q", status, hdr.Get(api.HeaderWorker), lagTS.URL)
	}

	// A floor above the replica's epoch falls through to the leader; the
	// answer must be at or past the floor.
	status, h := read(leadEntry.Epoch, false)
	if status != http.StatusOK || h.Get(api.HeaderWorker) != leadTS.URL {
		t.Fatalf("floored read: HTTP %d from %q, want leader %q", status, h.Get(api.HeaderWorker), leadTS.URL)
	}
	if got, _ := strconv.ParseUint(h.Get(api.HeaderEpoch), 10, 64); got < leadEntry.Epoch {
		t.Fatalf("floored read served epoch %d < floor %d", got, leadEntry.Epoch)
	}
	if rt.Metrics().Failovers.Load() == 0 {
		t.Fatal("412 fall-through not counted as a failover")
	}

	// An unsatisfiable floor is an honest 412...
	if status, _ = read(leadEntry.Epoch+100, false); status != http.StatusPreconditionFailed {
		t.Fatalf("unsatisfiable floor: HTTP %d, want 412", status)
	}
	// ...unless the caller allows staleness, which trades the floor for an
	// explicitly marked degraded answer.
	status, h = read(leadEntry.Epoch+100, true)
	if status != http.StatusOK || h.Get(api.HeaderDegraded) != "stale-epoch" {
		t.Fatalf("stale fallback: HTTP %d degraded=%q", status, h.Get(api.HeaderDegraded))
	}
}

// TestClusterReplicationEndToEnd is the topology acceptance scenario: a
// router in front of one shard whose leader is durable and whose second
// member is a follower replicating over HTTP. All writes go through the
// router; the follower bootstraps from the shipped snapshot and tails the
// WAL; routed kernel reads at the leader's head epoch are answered — by
// either member — bit-identically to the leader, and read-your-epoch
// floors are never violated even while the follower lags.
func TestClusterReplicationEndToEnd(t *testing.T) {
	const vertices = 150
	leader := newDurableServer(t, t.TempDir(), Config{SnapshotEvery: 50})
	lts := httptest.NewServer(leader)
	defer lts.Close()
	fsrv, follower, fts := newFollowerServer(t, lts.URL)

	shards, err := ParseShards(lts.URL + "|" + fts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(shards)
	rts := httptest.NewServer(rt)
	defer rts.Close()

	// Create and feed the graph exclusively through the router.
	if status, body := postJSON(t, rts.URL+"/graphs", map[string]any{
		"name": "g", "format": "live", "vertices": vertices,
	}); status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("create via router: HTTP %d: %s", status, body)
	}
	workload := soakBatches(17, vertices, 24, 25)
	toJSON := func(batch []stream.Update) []map[string]any {
		out := make([]map[string]any, len(batch))
		for i, u := range batch {
			out[i] = map[string]any{"u": u.U, "v": u.V, "time": u.Time, "del": u.Del}
		}
		return out
	}
	var head uint64
	for b, batch := range workload {
		status, body := postJSON(t, fmt.Sprintf("%s/graphs/g/ingest?batch_id=b-%d", rts.URL, b), toJSON(batch))
		if status != http.StatusOK {
			t.Fatalf("routed ingest %d: HTTP %d: %s", b, status, body)
		}

		// Mid-stream, while the follower lags arbitrarily, floored reads
		// through the router must never observe an epoch below the floor.
		if e, ok := leader.reg.Get("g"); ok {
			head = e.Epoch
		}
		if b%6 == 0 {
			if err := follower.SyncOnce(context.Background()); err != nil {
				t.Fatalf("SyncOnce: %v", err)
			}
		}
		req, _ := http.NewRequest(http.MethodGet, rts.URL+"/graphs/g/components", nil)
		req.Header.Set(api.HeaderMinEpoch, strconv.FormatUint(head, 10))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("floored read at epoch %d: HTTP %d", head, resp.StatusCode)
		}
		got, _ := strconv.ParseUint(resp.Header.Get(api.HeaderEpoch), 10, 64)
		if got < head {
			t.Fatalf("read-your-epoch violated: served epoch %d < floor %d", got, head)
		}
	}

	// Let the follower fully converge, then demand bit-identical kernel
	// results from both members at the same epoch, through the router.
	if err := follower.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")

	le, _ := leader.reg.Get("g")
	servedBy := make(map[string]bool)
	for _, kernel := range []string{"components", "stats", "degrees", "clustering"} {
		_, _, want := get(t, lts.URL+"/graphs/g/"+kernel)
		for i := 0; i < 4; i++ {
			req, _ := http.NewRequest(http.MethodGet, rts.URL+"/graphs/g/"+kernel, nil)
			req.Header.Set(api.HeaderMinEpoch, strconv.FormatUint(le.Epoch, 10))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("routed %s: HTTP %d: %s", kernel, resp.StatusCode, body)
			}
			if got, _ := strconv.ParseUint(resp.Header.Get(api.HeaderEpoch), 10, 64); got != le.Epoch {
				t.Fatalf("routed %s at epoch %d, want %d", kernel, got, le.Epoch)
			}
			if string(body) != string(want) {
				t.Fatalf("routed %s from %s differs from leader:\n%s\n%s",
					kernel, resp.Header.Get(api.HeaderWorker), body, want)
			}
			servedBy[resp.Header.Get(api.HeaderWorker)] = true
		}
	}
	// Replicas absorb reads; the leader is the fallback. With the floor at
	// the head epoch, every one of these answers came from the follower —
	// bit-identical to the leader's, which is the acceptance property.
	if !servedBy[fts.URL] || servedBy[lts.URL] {
		t.Fatalf("reads were not absorbed by the replica: %v", servedBy)
	}

	// Kill the leader: reads keep flowing from the follower (stale reads
	// of the replica's pinned epoch), which is the degradation the
	// topology promises.
	lts.Close()
	status, hdr, body := get(t, rts.URL+"/graphs/g/components")
	if status != http.StatusOK || hdr.Get(api.HeaderWorker) != fts.URL {
		t.Fatalf("read after leader death: HTTP %d from %q: %s", status, hdr.Get(api.HeaderWorker), body)
	}
	if status, _ := postJSON(t, rts.URL+"/graphs/g/ingest", toJSON(workload[0])); status != http.StatusServiceUnavailable {
		t.Fatalf("write after leader death: HTTP %d, want 503", status)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return body
}
