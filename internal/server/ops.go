package server

import (
	"encoding/json"
	"net/http"

	"graphct/internal/failpoint"
)

// handleReadyz is the load-balancer gate: 200 only when the daemon has
// finished preloading its graphs (SetReady) and both admission queues
// still accept work. Liveness (/healthz) stays 200 through saturation —
// a busy daemon is alive — while readiness sheds new traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !s.ready.Load() && s.recovering.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "recovering", "reason": "replaying durable state",
		})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "starting", "reason": "graph preload in progress",
		})
	case !s.pool.Accepting() || !s.ingest.Accepting():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "saturated",
			"queue_depth":        s.pool.QueueDepth(),
			"ingest_queue_depth": s.ingest.QueueDepth(),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "graphs": len(s.reg.List()),
		})
	}
}

// failpointRequest is the POST /debug/failpoints body. Exactly one of
// Arm, Disarm, DisarmAll, Seed acts; listing is the GET verb.
type failpointRequest struct {
	Arm       string `json:"arm,omitempty"`        // spec term(s), ';'-separated
	Disarm    string `json:"disarm,omitempty"`     // point name
	DisarmAll bool   `json:"disarm_all,omitempty"` // drop every arm
	Seed      *int64 `json:"seed,omitempty"`       // reseed the probability RNG
}

// handleFailpoints is the debug-only fault-injection control surface.
// Unless the server was configured with Debug it answers 404, so
// production daemons do not expose a self-sabotage endpoint.
func (s *Server) handleFailpoints(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Debug {
		writeError(w, http.StatusNotFound, "failpoint endpoint disabled (start with -debug)")
		return
	}
	reg := failpoint.Default
	if r.Method == http.MethodPost {
		var req failpointRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		switch {
		case req.Arm != "":
			if err := reg.ArmAll(req.Arm); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		case req.Disarm != "":
			if !reg.Disarm(req.Disarm) {
				writeError(w, http.StatusNotFound, "no armed failpoint %q", req.Disarm)
				return
			}
		case req.DisarmAll:
			reg.DisarmAll()
		case req.Seed != nil:
			reg.Seed(*req.Seed)
		default:
			writeError(w, http.StatusBadRequest, "want one of arm, disarm, disarm_all, seed")
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"failpoints": reg.List()})
}
