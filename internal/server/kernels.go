package server

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strconv"

	"graphct/internal/bc"
	"graphct/internal/core"
	"graphct/internal/failpoint"
	"graphct/internal/sssp"
	"graphct/internal/stats"
)

// kernelRun executes one kernel over a graph entry; the canonical param
// string doubles as the cache-key suffix.
type kernelRun func(ctx context.Context) (any, error)

// parseKernel validates a kernel request and returns its canonical
// parameter string plus a closure that runs it. Validation happens here,
// before the request touches the cache or pool, so malformed requests are
// rejected with 400 without consuming serving-path resources.
func (s *Server) parseKernel(kernel string, e *GraphEntry, q url.Values) (string, kernelRun, error) {
	g := e.Graph
	tk := func() *core.Toolkit { return core.New(g, core.WithSeed(s.cfg.Seed)) }
	switch kernel {
	case "components":
		return "", func(ctx context.Context) (any, error) {
			census := tk().ComponentCensus()
			type comp struct {
				Rank int   `json:"rank"`
				Size int64 `json:"size"`
			}
			top := make([]comp, 0, 20)
			for i, c := range census {
				if i >= 20 {
					break
				}
				top = append(top, comp{Rank: i + 1, Size: c.Size})
			}
			return map[string]any{"count": len(census), "largest": top}, nil
		}, nil
	case "stats":
		return "", func(ctx context.Context) (any, error) {
			ds := tk().DegreeStats()
			alpha, used := stats.PowerLawAlpha(g, 4)
			return map[string]any{
				"vertices": g.NumVertices(), "edges": g.NumEdges(),
				"degree_mean": ds.Mean, "degree_variance": ds.Variance, "degree_max": ds.Max,
				"power_law_alpha": alpha, "power_law_fit_vertices": used,
			}, nil
		}, nil
	case "degrees":
		return "", func(ctx context.Context) (any, error) {
			ds := tk().DegreeStats()
			return ds, nil
		}, nil
	case "clustering":
		return "", func(ctx context.Context) (any, error) {
			return map[string]any{"global_clustering": tk().GlobalClustering()}, nil
		}, nil
	case "diameter":
		return "", func(ctx context.Context) (any, error) {
			d, err := tk().DiameterCtx(ctx)
			if err != nil {
				return nil, err
			}
			return d, nil
		}, nil
	case "kcores":
		k, err := intParam(q, "k", 1)
		if err != nil || k < 0 {
			return "", nil, fmt.Errorf("bad k %q", q.Get("k"))
		}
		return fmt.Sprintf("k=%d", k), func(ctx context.Context) (any, error) {
			t := tk()
			t.KCores(int32(k))
			sub := t.Graph()
			return map[string]any{"k": k, "vertices": sub.NumVertices(), "edges": sub.NumEdges()}, nil
		}, nil
	case "kcentrality":
		k, err := intParam(q, "k", 0)
		if err != nil || k < 0 || k > bc.MaxK {
			return "", nil, fmt.Errorf("bad k %q (supported range 0..%d)", q.Get("k"), bc.MaxK)
		}
		samples, err := intParam(q, "samples", 256)
		if err != nil {
			return "", nil, fmt.Errorf("bad samples %q", q.Get("samples"))
		}
		top, err := intParam(q, "top", 10)
		if err != nil || top < 1 {
			return "", nil, fmt.Errorf("bad top %q", q.Get("top"))
		}
		if q.Get("epsilon") != "" || q.Get("delta") != "" {
			// Adaptive (ε,δ)-guaranteed mode: ?epsilon= selects it, ?delta=
			// rides along (defaulting like the kernel). The guarantee covers
			// classic betweenness only, so k must stay 0; samples is the
			// fixed-k knob and is ignored — reject it so callers don't
			// believe it did something.
			eps, err := floatParam(q, "epsilon", 0)
			if err != nil || eps <= 0 || eps >= 1 {
				return "", nil, fmt.Errorf("bad epsilon %q (need 0 < epsilon < 1)", q.Get("epsilon"))
			}
			delta, err := floatParam(q, "delta", bc.DefaultDelta)
			if err != nil || delta <= 0 || delta >= 1 {
				return "", nil, fmt.Errorf("bad delta %q (need 0 < delta < 1)", q.Get("delta"))
			}
			if k != 0 {
				return "", nil, fmt.Errorf("epsilon requires k=0 (adaptive mode is classic betweenness; got k=%d)", k)
			}
			if q.Get("samples") != "" {
				return "", nil, fmt.Errorf("samples and epsilon are mutually exclusive (the adaptive estimator sizes its own sample count)")
			}
			// %g canonicalizes numerically equal spellings ("0.05", ".05",
			// "5e-2") to one cache key per (epoch, ε, δ, top).
			params := fmt.Sprintf("delta=%g&epsilon=%g&k=0&top=%d", delta, eps, top)
			return params, func(ctx context.Context) (any, error) {
				res, err := core.New(e.Undirected(), core.WithSeed(s.cfg.Seed)).ApproxCentralityCtx(ctx, eps, delta, 0)
				if err != nil {
					return nil, err
				}
				type scored struct {
					Vertex int32   `json:"vertex"`
					Score  float64 `json:"score"`
				}
				ranked := make([]scored, 0, top)
				for _, v := range res.TopK(top) {
					ranked = append(ranked, scored{Vertex: e.ToExternal(v), Score: res.Scores[v]})
				}
				return map[string]any{"k": 0, "top": ranked, "guarantee": res.Guarantee}, nil
			}, nil
		}
		return fmt.Sprintf("k=%d&samples=%d&top=%d", k, samples, top), func(ctx context.Context) (any, error) {
			// Centrality treats the graph as undirected; resolving the
			// entry's memoized view here keeps concurrent requests on a
			// directed graph from each paying (or racing to share) the
			// symmetrization inside the kernel.
			res, err := core.New(e.Undirected(), core.WithSeed(s.cfg.Seed)).KCentralityCtx(ctx, k, samples)
			if err != nil {
				return nil, err
			}
			type scored struct {
				Vertex int32   `json:"vertex"`
				Score  float64 `json:"score"`
			}
			ranked := make([]scored, 0, top)
			for _, v := range res.TopK(top) {
				// Translate to client-visible ids: a reorder-relabeled
				// graph must never leak internal labels.
				ranked = append(ranked, scored{Vertex: e.ToExternal(v), Score: res.Scores[v]})
			}
			return map[string]any{"k": k, "sources": len(res.Sources), "top": ranked}, nil
		}, nil
	case "bfs":
		src, err := vertexParam(q, "src", g.NumVertices())
		if err != nil {
			return "", nil, err
		}
		depth, err := intParam(q, "depth", -1)
		if err != nil {
			return "", nil, fmt.Errorf("bad depth %q", q.Get("depth"))
		}
		return fmt.Sprintf("depth=%d&src=%d", depth, src), func(ctx context.Context) (any, error) {
			// src is the client's id; the kernel runs on internal labels.
			res := tk().BFS(e.ToInternal(src), depth)
			return map[string]any{"src": src, "reached": res.NumReached(), "depth": res.Depth}, nil
		}, nil
	case "sssp":
		src, err := vertexParam(q, "src", g.NumVertices())
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("src=%d", src), func(ctx context.Context) (any, error) {
			res, err := tk().SSSPCtx(ctx, e.ToInternal(src))
			if err != nil {
				return nil, err
			}
			reached, maxDist := 0, int64(0)
			for _, d := range res.Dist {
				if d != sssp.Inf {
					reached++
					if d > maxDist {
						maxDist = d
					}
				}
			}
			return map[string]any{"src": src, "reached": reached, "max_distance": maxDist}, nil
		}, nil
	default:
		return "", nil, errUnknownKernel
	}
}

var errUnknownKernel = errors.New("unknown kernel")

func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func vertexParam(q url.Values, name string, n int) (int32, error) {
	v, err := intParam(q, name, 0)
	if err != nil || v < 0 || v >= n {
		return 0, fmt.Errorf("bad vertex %q (graph has %d vertices)", q.Get(name), n)
	}
	return int32(v), nil
}

// errKernelPanic marks a kernel execution that panicked and was isolated
// by the per-kernel recover; it maps to HTTP 500 instead of a dead daemon.
var errKernelPanic = errors.New("kernel panicked")

// runKernel executes one kernel with panic isolation: a panicking kernel
// (organic or injected via the kernel.exec failpoint) is converted into
// an error on this request alone, counted in kernel_panics, and the
// daemon keeps serving.
func (s *Server) runKernel(ctx context.Context, run kernelRun) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.KernelPanics.Add(1)
			err = fmt.Errorf("%w: %v", errKernelPanic, r)
		}
	}()
	if err := failpoint.Eval(failpoint.KernelExec); err != nil {
		return nil, err
	}
	return run(ctx)
}
