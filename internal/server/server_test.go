package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graphct/internal/dimacs"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

// testGraph returns a deterministic scale-free-ish graph big enough that
// centrality runs are observable but fast.
func testGraph() *graph.Graph {
	return gen.PreferentialAttachment(400, 3, 1)
}

func newTestServer(t *testing.T, cfg Config, g *graph.Graph) (*Server, *httptest.Server, *GraphEntry) {
	t.Helper()
	reg := NewRegistry()
	e := reg.Add("g", g)
	s := New(reg, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, e
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestCoalescingCacheAndBackpressure drives the acceptance scenario: 32
// concurrent identical kcentrality requests produce exactly one kernel
// execution with identical bodies, the follow-up call is a cache hit, and
// a saturated admission queue rejects with 429.
func TestCoalescingCacheAndBackpressure(t *testing.T) {
	s, ts, e := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1}, testGraph())

	started := make(chan string, 64)
	release := make(chan struct{})
	s.beforeKernel = func(kernel string) {
		started <- kernel
		<-release
	}

	const clients = 32
	url := ts.URL + "/graphs/g/kcentrality?k=1&samples=16"
	key := fmt.Sprintf("g@%d/kcentrality?k=1&samples=16&top=10", e.Epoch)

	var wg sync.WaitGroup
	type reply struct {
		status int
		source string
		body   string
	}
	replies := make([]reply, clients)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			status, hdr, body := get(t, url)
			replies[i] = reply{status, hdr.Get("X-Graphct-Source"), string(body)}
		}(i)
	}

	// The leader is now blocked inside its pool slot; wait until the
	// other 31 requests are waiting on its singleflight call.
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waitersFor(key) != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests coalesced", s.flight.waitersFor(key), clients-1)
		}
		time.Sleep(time.Millisecond)
	}

	// With the only slot held by the blocked leader, a non-coalescable
	// request fills the queue (MaxQueued=1) and the next one must be
	// rejected with 429.
	queuedDone := make(chan int, 1)
	go func() {
		status, _, _ := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples=17")
		queuedDone <- status
	}()
	for s.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	status, _, body := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples=18")
	if status != http.StatusTooManyRequests {
		t.Fatalf("expected 429 from full admission queue, got %d: %s", status, body)
	}
	if got := s.metrics.Rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(release) // let the leader and the queued request run
	wg.Wait()
	if qs := <-queuedDone; qs != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", qs)
	}

	if runs := s.metrics.KernelRuns("kcentrality"); runs != 2 {
		// One coalesced run for the 32 identical requests plus the
		// queued samples=17 request; the samples=18 request was rejected.
		t.Fatalf("kernel executions = %d, want 2", runs)
	}
	coalesced := 0
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, r.status, r.body)
		}
		if r.body != replies[0].body {
			t.Fatalf("request %d: body diverges:\n%s\nvs\n%s", i, r.body, replies[0].body)
		}
		if r.source == "coalesced" {
			coalesced++
		}
	}
	if coalesced != clients-1 {
		t.Fatalf("coalesced replies = %d, want %d", coalesced, clients-1)
	}

	// Follow-up identical request: served from cache, no new execution.
	s.beforeKernel = nil
	status, hdr, body2 := get(t, url)
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "cache" {
		t.Fatalf("follow-up: status %d source %q", status, hdr.Get("X-Graphct-Source"))
	}
	if string(body2) != replies[0].body {
		t.Fatalf("cached body diverges from computed body")
	}
	if got := s.metrics.CacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if runs := s.metrics.KernelRuns("kcentrality"); runs != 2 {
		t.Fatalf("kernel executions after cache hit = %d, want 2", runs)
	}
}

// TestDeadlineCancellation verifies that requests whose deadline has
// expired return promptly: the beforeKernel hook outlasts the 1ms budget,
// so the kernels must notice cancellation at their first checkpoint
// instead of running to completion.
func TestDeadlineCancellation(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxConcurrent: 2, MaxQueued: 4}, gen.PreferentialAttachment(3000, 3, 1))
	s.beforeKernel = func(string) { time.Sleep(20 * time.Millisecond) }

	for _, ep := range []string{
		"/graphs/g/kcentrality?samples=3000&timeout_ms=1",
		"/graphs/g/sssp?src=0&timeout_ms=1",
		"/graphs/g/diameter?timeout_ms=1",
	} {
		start := time.Now()
		status, _, body := get(t, ts.URL+ep)
		elapsed := time.Since(start)
		if status != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d body %s, want 504", ep, status, body)
		}
		if elapsed > 5*time.Second {
			t.Errorf("%s: took %v after deadline expiry, not prompt", ep, elapsed)
		}
	}
	if got := s.metrics.Canceled.Load(); got != 3 {
		t.Fatalf("canceled counter = %d, want 3", got)
	}
}

// TestKernelEndpoints exercises every read-only kernel route for shape
// and status.
func TestKernelEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, gen.Disjoint(gen.Complete(4), gen.Path(3)))
	for _, tc := range []struct {
		path string
		want map[string]float64 // numeric fields to assert
	}{
		{"/graphs/g/components", map[string]float64{"count": 2}},
		{"/graphs/g/stats", map[string]float64{"vertices": 7, "edges": 8}},
		{"/graphs/g/degrees", map[string]float64{"N": 7, "Max": 3}},
		// K4 contributes 12 closed wedges, the path's center one open
		// wedge: transitivity 12/13.
		{"/graphs/g/clustering", map[string]float64{"global_clustering": 12.0 / 13.0}},
		{"/graphs/g/diameter", map[string]float64{"Sources": 7}},
		{"/graphs/g/kcores?k=3", map[string]float64{"vertices": 4, "edges": 6}},
		{"/graphs/g/kcentrality?k=0&samples=0", map[string]float64{"sources": 7}},
		{"/graphs/g/bfs?src=0&depth=-1", map[string]float64{"reached": 4, "depth": 1}},
		{"/graphs/g/sssp?src=4", map[string]float64{"reached": 3, "max_distance": 2}},
	} {
		status, _, body := get(t, ts.URL+tc.path)
		if status != http.StatusOK {
			t.Errorf("%s: status %d body %s", tc.path, status, body)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Errorf("%s: bad JSON %s: %v", tc.path, body, err)
			continue
		}
		for field, want := range tc.want {
			got, ok := m[field].(float64)
			if !ok || got != want {
				t.Errorf("%s: field %q = %v, want %v (body %s)", tc.path, field, m[field], want, body)
			}
		}
	}
}

// TestBadRequests verifies validation happens before the serving path.
func TestBadRequests(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{}, gen.Path(5))
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/graphs/missing/components", http.StatusNotFound},
		{"/graphs/g/nosuchkernel", http.StatusNotFound},
		{"/graphs/g/kcentrality?k=99", http.StatusBadRequest},
		{"/graphs/g/kcentrality?samples=abc", http.StatusBadRequest},
		{"/graphs/g/kcentrality?epsilon=0", http.StatusBadRequest},
		{"/graphs/g/kcentrality?epsilon=1.5", http.StatusBadRequest},
		{"/graphs/g/kcentrality?epsilon=abc", http.StatusBadRequest},
		{"/graphs/g/kcentrality?epsilon=0.05&delta=0", http.StatusBadRequest},
		{"/graphs/g/kcentrality?delta=0.5", http.StatusBadRequest}, // delta without epsilon
		{"/graphs/g/kcentrality?epsilon=0.05&k=1", http.StatusBadRequest},
		{"/graphs/g/kcentrality?epsilon=0.05&samples=16", http.StatusBadRequest},
		{"/graphs/g/bfs?src=100", http.StatusBadRequest},
		{"/graphs/g/sssp?src=-1", http.StatusBadRequest},
		{"/graphs/g/kcores?k=-2", http.StatusBadRequest},
		{"/graphs/g/components?timeout_ms=zero", http.StatusBadRequest},
	} {
		status, _, body := get(t, ts.URL+tc.path)
		if status != tc.want {
			t.Errorf("%s: status %d body %s, want %d", tc.path, status, body, tc.want)
		}
	}
	if got := s.metrics.Rejected.Load(); got != 0 {
		t.Fatalf("validation failures must not count as rejections, got %d", got)
	}
}

// TestGraphLifecycle loads a graph over HTTP, lists it, extracts its
// largest component as a new graph, and deletes both.
func TestGraphLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "two.dimacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.Write(f, gen.Disjoint(gen.Complete(4), gen.Path(3))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts, _ := newTestServer(t, Config{}, gen.Path(2))

	body, _ := json.Marshal(loadRequest{Name: "two", Format: "dimacs", Path: path})
	resp, err := http.Post(ts.URL+"/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: status %d body %s", resp.StatusCode, loaded)
	}
	var info graphInfo
	if err := json.Unmarshal(loaded, &info); err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 7 || info.Edges != 8 {
		t.Fatalf("loaded graph %+v, want 7 vertices 8 edges", info)
	}

	status, _, listBody := get(t, ts.URL+"/graphs")
	var list []graphInfo
	if status != http.StatusOK || json.Unmarshal(listBody, &list) != nil || len(list) != 2 {
		t.Fatalf("list: status %d body %s", status, listBody)
	}

	extract, _ := json.Marshal(extractRequest{Component: 1, As: "core"})
	resp, err = http.Post(ts.URL+"/graphs/two/extract", "application/json", bytes.NewReader(extract))
	if err != nil {
		t.Fatal(err)
	}
	exBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("extract: status %d body %s", resp.StatusCode, exBody)
	}
	var ex graphInfo
	if err := json.Unmarshal(exBody, &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Name != "core" || ex.Vertices != 4 || ex.Edges != 6 {
		t.Fatalf("extracted %+v, want the K4", ex)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/two", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	status, _, _ = get(t, ts.URL+"/graphs/two/components")
	if status != http.StatusNotFound {
		t.Fatalf("deleted graph still serves: %d", status)
	}
}

// TestApproxCentralityEndpoint covers the adaptive (ε,δ) mode of the
// centrality route: guarantee fields ride in the body, responses cache by
// (epoch, ε, δ) with spelling-insensitive keys, and a reload invalidates.
func TestApproxCentralityEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{}, testGraph())

	status, hdr, body := get(t, ts.URL+"/graphs/g/kcentrality?epsilon=0.05&delta=0.2&top=5")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("first call: %d %q body %s", status, hdr.Get("X-Graphct-Source"), body)
	}
	var m struct {
		K   int `json:"k"`
		Top []struct {
			Vertex int32   `json:"vertex"`
			Score  float64 `json:"score"`
		} `json:"top"`
		Guarantee struct {
			Epsilon     float64 `json:"epsilon"`
			Delta       float64 `json:"delta"`
			SamplesUsed int     `json:"samples_used"`
			Rounds      int     `json:"rounds"`
			Stopped     bool    `json:"stopped"`
		} `json:"guarantee"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if m.Guarantee.Epsilon != 0.05 || m.Guarantee.Delta != 0.2 {
		t.Fatalf("guarantee = %+v, want requested (0.05, 0.2)", m.Guarantee)
	}
	if m.Guarantee.SamplesUsed <= 0 || m.Guarantee.Rounds <= 0 {
		t.Fatalf("guarantee missing sampling evidence: %+v", m.Guarantee)
	}
	if len(m.Top) != 5 {
		t.Fatalf("top = %d entries, want 5 (body %s)", len(m.Top), body)
	}

	// Same (ε,δ) in a different spelling: the canonical key makes it a
	// cache hit with a byte-identical body.
	status, hdr, body2 := get(t, ts.URL+"/graphs/g/kcentrality?epsilon=5e-2&delta=0.2&top=5")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "cache" {
		t.Fatalf("respelled call: %d %q, want cache hit", status, hdr.Get("X-Graphct-Source"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached body diverges from computed body")
	}

	// Different ε is a different result: must compute, not serve the
	// ε=0.05 entry.
	status, hdr, _ = get(t, ts.URL+"/graphs/g/kcentrality?epsilon=0.04&delta=0.2&top=5")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("eps change: %d %q, want computed", status, hdr.Get("X-Graphct-Source"))
	}
	// Different δ likewise.
	status, hdr, _ = get(t, ts.URL+"/graphs/g/kcentrality?epsilon=0.05&delta=0.1&top=5")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("delta change: %d %q, want computed", status, hdr.Get("X-Graphct-Source"))
	}
	if runs := s.metrics.KernelRuns("kcentrality"); runs != 3 {
		t.Fatalf("kernel executions = %d, want 3 (one per distinct (eps,delta))", runs)
	}

	// Reload the graph: a new epoch must invalidate the adaptive entries
	// like any other cached kernel result.
	s.reg.Add("g", testGraph())
	status, hdr, _ = get(t, ts.URL+"/graphs/g/kcentrality?epsilon=0.05&delta=0.2&top=5")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("post-reload: %d %q, want computed", status, hdr.Get("X-Graphct-Source"))
	}
}

// TestEpochInvalidation reloads a graph under the same name and checks
// that cached results for the old epoch are not served.
func TestEpochInvalidation(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{}, gen.Complete(4))
	status, hdr, _ := get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("first call: %d %q", status, hdr.Get("X-Graphct-Source"))
	}
	status, hdr, _ = get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "cache" {
		t.Fatalf("second call: %d %q", status, hdr.Get("X-Graphct-Source"))
	}
	s.reg.Add("g", gen.Disjoint(gen.Path(2), gen.Path(2)))
	status, hdr, body := get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "computed" {
		t.Fatalf("post-reload call: %d %q", status, hdr.Get("X-Graphct-Source"))
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil || m["count"].(float64) != 2 {
		t.Fatalf("post-reload body %s, want count 2", body)
	}
}

// TestHealthzAndMetrics checks the operational endpoints' shape.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, gen.Path(4))
	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", status, body)
	}
	get(t, ts.URL+"/graphs/g/components")
	get(t, ts.URL+"/graphs/g/components")
	status, _, body = get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics JSON: %v in %s", err, body)
	}
	if snap.Requests != 2 || snap.CacheHits != 1 || snap.CacheMiss != 1 {
		t.Fatalf("metrics %+v, want 2 requests, 1 hit, 1 miss", snap)
	}
	if snap.KernelRuns["components"] != 1 {
		t.Fatalf("kernel_runs %v, want components:1", snap.KernelRuns)
	}
	if h, ok := snap.LatencyMs["components"]; !ok || h.Count != 1 {
		t.Fatalf("latency histogram %v, want one components observation", snap.LatencyMs)
	}
}

// TestCacheLRU checks the byte bound and eviction order directly.
func TestCacheLRU(t *testing.T) {
	c := NewCache(100)
	val := func(n int) []byte { return bytes.Repeat([]byte{'x'}, n) }
	c.Put("a", val(40))
	c.Put("b", val(40))
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 80/2", c.Bytes(), c.Len())
	}
	c.Get("a") // refresh a; b becomes LRU
	c.Put("c", val(40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	c.Put("huge", val(200)) // larger than the bound: never stored
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value was cached")
	}
	c.Put("a", val(90)) // resize in place forces eviction of c
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived eviction after a grew")
	}
	if c.Bytes() != 90 {
		t.Fatalf("bytes=%d after resize, want 90", c.Bytes())
	}

	off := NewCache(0)
	off.Put("k", val(10))
	if _, ok := off.Get("k"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

// TestPoolAdmission checks slot accounting and queue rejection without
// HTTP in the way.
func TestPoolAdmission(t *testing.T) {
	p := NewPool(1, 1)
	if err := p.Acquire(t.Context()); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- p.Acquire(t.Context()) }()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Acquire(t.Context()); err != ErrQueueFull {
		t.Fatalf("third acquire: %v, want ErrQueueFull", err)
	}
	p.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	p.Release()
	if p.Running() != 0 || p.QueueDepth() != 0 {
		t.Fatalf("pool not drained: running=%d queued=%d", p.Running(), p.QueueDepth())
	}
}

// TestConcurrentRequestsShareOneSymmetrization pins the per-epoch
// undirected memo: 8 concurrent kcentrality requests with distinct
// parameters (so neither the cache nor singleflight can merge them) on a
// directed graph must trigger exactly one symmetrization.
func TestConcurrentRequestsShareOneSymmetrization(t *testing.T) {
	dg := gen.Follower(gen.DefaultFollower(300, 1))
	if !dg.Directed() {
		t.Fatal("test wants a directed graph")
	}
	_, ts, e := newTestServer(t, Config{MaxConcurrent: 8, MaxQueued: 64}, dg)

	const requests = 8
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	wg.Add(requests)
	for i := 0; i < requests; i++ {
		go func(i int) {
			defer wg.Done()
			// Distinct samples => distinct cache keys => every request
			// executes a kernel of its own.
			url := fmt.Sprintf("%s/graphs/g/kcentrality?samples=%d", ts.URL, 16+i)
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if builds := e.Graph.UndirectedBuilds(); builds != 1 {
		t.Fatalf("%d concurrent kcentrality requests symmetrized %d times, want 1", requests, builds)
	}
	if e.Undirected() != e.Graph.Undirected() {
		t.Fatal("registry entry and graph disagree on the undirected view")
	}
}
