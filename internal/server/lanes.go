package server

import (
	"context"
	"sync/atomic"

	"graphct/internal/api"
)

// QoS cost classes. Every kernel request is classified before admission
// and the class travels with the response as X-Graphct-Class, so clients
// and the load harness can attribute latency to the lane that served it.
// The values are the wire contract's (internal/api); the local names keep
// call sites short.
const (
	ClassCheap     = api.ClassCheap
	ClassExpensive = api.ClassExpensive
)

// costClass assigns a kernel its admission class. Expensive kernels are
// the ones whose single execution can hold a pool slot for seconds to
// minutes (sampled betweenness, diameter estimation — both sweep many
// BFS/SSSP sources); everything else answers in microseconds to tens of
// milliseconds and must never queue behind them.
func costClass(kernel string) string {
	switch kernel {
	case "kcentrality", "diameter":
		return ClassExpensive
	}
	return ClassCheap
}

// LanePool is the QoS-aware admission pool: at most maxRunning kernels
// execute at once, and when a cheap reservation is configured, at most
// maxRunning-reserved of those slots may be held by expensive-class
// kernels. The reservation is what keeps millions of cheap stat reads
// responsive while sparse betweenness requests run: however saturated the
// expensive lane is — every allowed slot held, more queued — a cheap
// request still finds a free slot, because expensive admissions are
// capped below the total.
//
// Each class also queues separately (maxQueued waiters per lane), so a
// burst of expensive requests fills the expensive queue and starts
// returning 429 without consuming the cheap lane's queue capacity.
// reserved <= 0 disables the lanes entirely: one shared slot pool, one
// shared queue bound — bit-compatible with the pre-QoS Pool.
type LanePool struct {
	slots     chan struct{} // total concurrency
	expensive chan struct{} // nil when lanes are disabled; caps expensive slot-holders

	cheapWaiting atomic.Int64
	expWaiting   atomic.Int64
	expRunning   atomic.Int64
	maxQ         int64
	reserved     int
}

// NewLanePool returns a pool running at most maxRunning kernels with at
// most maxQueued waiters per lane, reserving reserved slots for
// cheap-class kernels. Non-positive maxRunning/maxQueued default to 2
// and 16 (matching NewPool); reserved is clamped so at least one slot
// remains available to the expensive class.
func NewLanePool(maxRunning, reserved, maxQueued int) *LanePool {
	if maxRunning <= 0 {
		maxRunning = 2
	}
	if maxQueued <= 0 {
		maxQueued = 16
	}
	if reserved >= maxRunning {
		reserved = maxRunning - 1
	}
	p := &LanePool{
		slots:    make(chan struct{}, maxRunning),
		maxQ:     int64(maxQueued),
		reserved: reserved,
	}
	if reserved > 0 {
		p.expensive = make(chan struct{}, maxRunning-reserved)
	}
	return p
}

// Reserved returns the cheap-only slot count (0 = lanes disabled).
func (p *LanePool) Reserved() int { return p.reserved }

// admit claims a token from lane, queueing under waiting against maxQ —
// the same fast-path/bounded-queue protocol as Pool.Acquire.
func (p *LanePool) admit(ctx context.Context, lane chan struct{}, waiting *atomic.Int64) error {
	select {
	case lane <- struct{}{}:
		return nil
	default:
	}
	if waiting.Add(1) > p.maxQ {
		waiting.Add(-1)
		return ErrQueueFull
	}
	defer waiting.Add(-1)
	select {
	case lane <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Acquire claims an execution slot for a request of the given class,
// waiting in that class's admission queue if necessary. It fails fast
// with ErrQueueFull when the class's queue is at capacity and returns
// ctx.Err() if the deadline expires while queued. Every successful
// Acquire must be paired with a Release of the same class.
func (p *LanePool) Acquire(ctx context.Context, class string) error {
	if p.expensive == nil || class != ClassExpensive {
		return p.admit(ctx, p.slots, &p.cheapWaiting)
	}
	// Expensive admission is two-stage: first a lane token (this is the
	// bounded queue — it caps how many expensive kernels may hold or be
	// about to hold a slot at maxRunning-reserved), then a total slot.
	// The second wait is unbounded but can only contend with cheap
	// kernels actually running, which finish in milliseconds; it never
	// rejects, because the request already passed lane admission.
	if err := p.admit(ctx, p.expensive, &p.expWaiting); err != nil {
		return err
	}
	select {
	case p.slots <- struct{}{}:
		p.expRunning.Add(1)
		return nil
	case <-ctx.Done():
		<-p.expensive
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire with the same class.
func (p *LanePool) Release(class string) {
	<-p.slots
	if p.expensive != nil && class == ClassExpensive {
		p.expRunning.Add(-1)
		<-p.expensive
	}
}

// QueueDepth returns the total number of requests waiting across lanes.
func (p *LanePool) QueueDepth() int64 {
	return p.cheapWaiting.Load() + p.expWaiting.Load()
}

// LaneDepths returns the per-class queue depths.
func (p *LanePool) LaneDepths() (cheap, expensive int64) {
	return p.cheapWaiting.Load(), p.expWaiting.Load()
}

// Running returns the number of kernels currently executing.
func (p *LanePool) Running() int { return len(p.slots) }

// ExpensiveRunning returns how many expensive-class kernels hold slots
// (always 0 with lanes disabled — the pool does not track classes then).
func (p *LanePool) ExpensiveRunning() int64 { return p.expRunning.Load() }

// Accepting reports whether the cheap lane still has queue headroom — the
// readiness signal. The cheap lane is deliberately the gate: a daemon
// drowning in expensive requests but still serving stats is degraded, not
// down, and upstream load balancers should keep sending the cheap reads
// the reservation protects.
func (p *LanePool) Accepting() bool { return p.cheapWaiting.Load() < p.maxQ }
