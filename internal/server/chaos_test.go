package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphct/internal/failpoint"
	"graphct/internal/gen"
)

// TestChaos is the headline failure-hardening scenario from the issue:
// every failpoint armed at 10% probability, 8 concurrent readers and 2
// ingest writers hammering one daemon for several seconds. The process
// must never die, every response must be one of the statuses the failure
// model allows (200/429/500/503), per-reader epochs must stay monotonic,
// and once the chaos is disarmed a clean request must succeed.
func TestChaos(t *testing.T) {
	duration := 5 * time.Second
	if testing.Short() {
		duration = time.Second
	}

	failpoint.Default.Seed(7)
	armFailpoints(t,
		"kernel.exec=panic(chaos)%10"+
			";stream.apply=error(chaos)%10"+
			";cache.put=error%10"+
			";snapshot.publish=error%10"+
			";blob.put=error(chaos)%10"+
			";wal.append=error(chaos)%10")

	dataDir := t.TempDir()
	reg := NewRegistry()
	reg.Add("g", gen.PreferentialAttachment(300, 3, 1))
	s := New(reg, Config{
		MaxConcurrent:    2,
		MaxQueued:        4, // small queue so 429s actually happen
		CheapReserved:    1, // QoS lanes on: chaos must hold with classes split
		IngestConcurrent: 2,
		IngestQueued:     8,
		SnapshotEvery:    64,
		BreakerThreshold: 5,
		BreakerCooldown:  50 * time.Millisecond,
		DataDir:          dataDir, // durability under fire too
	})
	if _, err := s.AddLive("live", 256); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	stop := time.Now().Add(duration)
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	validStatus := func(code int) bool {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusServiceUnavailable:
			return true
		}
		return false
	}

	// 2 ingest writers: unique batch IDs, random small batches into the
	// live graph, an occasional forced snapshot. Under injected faults a
	// batch may be rejected (500) or deferred — both fine; what is not
	// fine is a transport error (dead process) or an unexpected status.
	var requests, failures int64
	var cmu sync.Mutex
	count := func(code int) {
		cmu.Lock()
		requests++
		if code != http.StatusOK {
			failures++
		}
		cmu.Unlock()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for seq := 0; time.Now().Before(stop); seq++ {
				batch := make([]map[string]any, 1+rng.Intn(24))
				for i := range batch {
					batch[i] = map[string]any{"u": rng.Intn(256), "v": rng.Intn(256)}
				}
				var body bytes.Buffer
				_ = json.NewEncoder(&body).Encode(batch)
				url := fmt.Sprintf("%s/graphs/live/ingest?batch_id=chaos-w%d/%d", ts.URL, w, seq)
				resp, err := http.Post(url, "application/json", &body)
				if err != nil {
					report("writer %d: process unreachable: %v", w, err)
					return
				}
				resp.Body.Close()
				count(resp.StatusCode)
				if !validStatus(resp.StatusCode) {
					report("writer %d: ingest status %d", w, resp.StatusCode)
					return
				}
				if rng.Intn(50) == 0 {
					resp, err := http.Post(ts.URL+"/graphs/live/snapshot", "application/json", nil)
					if err != nil {
						report("writer %d: process unreachable: %v", w, err)
						return
					}
					resp.Body.Close()
					count(resp.StatusCode)
					if !validStatus(resp.StatusCode) {
						report("writer %d: snapshot status %d", w, resp.StatusCode)
						return
					}
				}
			}
		}(w)
	}

	// 8 readers across both graphs and several kernels, some opting into
	// stale serving. With lanes enabled the mix includes an expensive
	// kernel, so both admission lanes run hot under chaos. Each reader
	// checks every response it gets: allowed status, and a
	// never-decreasing epoch header per graph (epochs only move forward,
	// even while snapshot publication is being injected with failures).
	kernels := []string{"components", "stats", "degrees", "clustering", "kcentrality?k=1&samples=4",
		"kcentrality?epsilon=0.2&delta=0.2"}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			lastEpoch := map[string]uint64{}
			for time.Now().Before(stop) {
				graphName := "g"
				if rng.Intn(2) == 0 {
					graphName = "live"
				}
				url := ts.URL + "/graphs/" + graphName + "/" + kernels[rng.Intn(len(kernels))]
				if rng.Intn(3) == 0 {
					if strings.Contains(url, "?") {
						url += "&stale=allow"
					} else {
						url += "?stale=allow"
					}
				}
				resp, err := http.Get(url)
				if err != nil {
					report("reader %d: process unreachable: %v", r, err)
					return
				}
				resp.Body.Close()
				count(resp.StatusCode)
				if !validStatus(resp.StatusCode) {
					report("reader %d: %s: status %d", r, url, resp.StatusCode)
					return
				}
				if h := resp.Header.Get("X-Graphct-Epoch"); h != "" {
					epoch, err := strconv.ParseUint(h, 10, 64)
					if err != nil {
						report("reader %d: bad epoch header %q", r, h)
						return
					}
					if epoch < lastEpoch[graphName] {
						report("reader %d: %s epoch went backwards: %d after %d",
							r, graphName, epoch, lastEpoch[graphName])
						return
					}
					lastEpoch[graphName] = epoch
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The chaos must have actually injected something, or the run proved
	// nothing. With thousands of evals at 10% this cannot miss.
	var injected int64
	for _, st := range failpoint.Default.List() {
		injected += st.Fires
	}
	if injected == 0 {
		t.Fatalf("no failpoint fired across %d requests — chaos run was a no-op", requests)
	}

	// Disarm and prove the daemon recovered: a clean request succeeds.
	// Breakers tripped by the chaos may still be cooling down, so allow
	// retries past the 50ms cooldown.
	failpoint.Default.DisarmAll()
	deadline := time.Now().Add(5 * time.Second)
	for _, url := range []string{ts.URL + "/graphs/g/components", ts.URL + "/graphs/live/stats"} {
		for {
			status, _, body := get(t, url)
			if status == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon did not recover after disarm: %s: %d %s", url, status, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The metrics endpoint still serves and reflects the run.
	status, _, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics after chaos: %d %s", status, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics did not parse: %v", err)
	}

	// Whatever the chaos did to the store and the log, the on-disk state
	// must still be recoverable: a fresh server over the same data dir
	// rebuilds the live graph and serves it.
	s2 := New(NewRegistry(), Config{DataDir: dataDir})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("recovery after chaos = %d, %v; want 1, nil", n, err)
	}
	if e, ok := s2.reg.Get("live"); !ok || e.Live == nil {
		t.Fatal("live graph not recovered after chaos")
	}
	t.Logf("chaos: %d requests (%d non-200), %d faults injected, %d kernel panics, %d breaker trips, %d stale serves",
		requests, failures, injected,
		s.metrics.KernelPanics.Load(), s.breakers.Trips(), s.metrics.StaleServed.Load())
}
