package server

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution whose result every caller shares — the standard singleflight
// pattern, implemented locally so the module stays dependency-free. N
// identical kernel requests arriving together cost one kernel run, one
// pool slot and one cache fill.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	val     []byte
	err     error
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per key at a time: the first caller (the leader)
// executes fn while concurrent callers with the same key block and
// receive the leader's result. shared reports whether this caller got a
// coalesced result instead of executing fn itself.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}

// waitersFor reports how many callers are blocked on key's in-flight
// call — a test observation point for coalescing.
func (g *flightGroup) waitersFor(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}
