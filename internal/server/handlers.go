package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphct/internal/api"
	"graphct/internal/core"
	"graphct/internal/failpoint"
)

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": len(s.reg.List())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.pool, s.ingest, s.cache, s.breakers, s.limiter))
}

type graphInfo struct {
	Name     string `json:"name"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Directed bool   `json:"directed"`
	Live     bool   `json:"live,omitempty"`
}

func entryInfo(e *GraphEntry) graphInfo {
	return graphInfo{
		Name:     e.Name,
		Epoch:    e.Epoch,
		Vertices: e.Graph.NumVertices(),
		Edges:    e.Graph.NumEdges(),
		Directed: e.Graph.Directed(),
		Live:     e.Live != nil,
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]graphInfo, len(entries))
	for i, e := range entries {
		out[i] = entryInfo(e)
	}
	writeJSON(w, http.StatusOK, out)
}

type loadRequest struct {
	Name     string `json:"name"`
	Format   string `json:"format"` // dimacs | edgelist | binary | live
	Path     string `json:"path"`
	Directed bool   `json:"directed"`
	// Vertices sizes a live graph (format "live"), which starts empty and
	// grows through POST /graphs/{name}/ingest instead of a file.
	Vertices int `json:"vertices,omitempty"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Format == "live" {
		if req.Name == "" {
			writeError(w, http.StatusBadRequest, "name is required")
			return
		}
		e, err := s.AddLive(req.Name, req.Vertices)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "create live %q: %v", req.Name, err)
			return
		}
		writeJSON(w, http.StatusCreated, entryInfo(e))
		return
	}
	if req.Name == "" || req.Format == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, "name, format and path are required")
		return
	}
	e, err := s.reg.Load(req.Name, req.Format, req.Path, req.Directed)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "load %q: %v", req.Name, err)
		return
	}
	writeJSON(w, http.StatusCreated, entryInfo(e))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// A replica's lifecycle follows its leader: deleting one locally would
	// leave the tailer holding the stale Live, and the next sealed segment
	// it finishes would silently republish the graph.
	if e.Live != nil && e.Live.replica {
		writeError(w, http.StatusConflict, "graph %q is a replica; delete it on its leader", name)
		return
	}
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// Deleting a durable live graph also deletes its snapshots and log:
	// the name is gone, not just the memory.
	if s.durable() && e.Live != nil {
		s.dropDurable(name, e.Live)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

type extractRequest struct {
	Component int    `json:"component"` // 1 = largest
	As        string `json:"as"`
}

// handleExtract registers the rank-th largest component of a graph as a
// new named graph — the server analogue of the script's
// "extract component N => file.bin", with the registry standing in for
// the filesystem.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	var req extractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.As == "" {
		writeError(w, http.StatusBadRequest, "\"as\" (target graph name) is required")
		return
	}
	if req.Component == 0 {
		req.Component = 1
	}
	tk := core.New(e.Graph, core.WithSeed(s.cfg.Seed))
	if err := tk.ExtractComponent(req.Component); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// The derived entry keeps an id trail to the loaded graph: the
	// toolkit's orig ids point into the parent's internal labels, which
	// the parent's own translation lifts to client-visible ids.
	var orig []int32
	if sub := tk.OrigIDs(); sub != nil {
		orig = make([]int32, len(sub))
		for i, v := range sub {
			orig[i] = e.ToExternal(v)
		}
	} else if e.Orig != nil {
		orig = e.Orig
	}
	ne := s.reg.AddWithOrig(req.As, tk.Graph(), orig)
	writeJSON(w, http.StatusCreated, entryInfo(ne))
}

// cacheResult inserts a computed kernel result under its epoch-scoped key
// and refreshes the epochless stale entry behind ?stale=allow. The
// cache.put failpoint drops both insertions — degrading hit rate, never
// the response. An empty staleKey skips the stale refresh: historical
// (?epoch=E) reads must not masquerade as the latest result.
func (s *Server) cacheResult(key, staleKey string, epoch uint64, body []byte) {
	if err := failpoint.Eval(failpoint.CachePut); err != nil {
		s.metrics.CacheDropped.Add(1)
		return
	}
	// A rejected admission with caching enabled means the value outgrew
	// the cost-aware entry bound (or the whole cache): served, not stored.
	if !s.cache.Put(key, body) && s.cfg.CacheBytes > 0 {
		s.metrics.CacheOversized.Add(1)
	}
	if staleKey != "" {
		s.cache.Put(staleKey, encodeStale(epoch, body))
	}
}

// handleKernel is the concurrent serving path: cache lookup, circuit
// breaker, then singleflight-coalesced execution through the admission
// pool with panic isolation and optional stale fallback.
func (s *Server) handleKernel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	kernel := r.PathValue("kernel")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// ?epoch=E pins the request to a durable point-in-time snapshot
	// instead of the current entry (which stays the default).
	historical := false
	if v := r.URL.Query().Get("epoch"); v != "" {
		epoch, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad epoch %q", v)
			return
		}
		he, err := s.epochEntry(name, epoch, e)
		if err != nil {
			writeError(w, http.StatusNotFound, "epoch %d of %q: %v", epoch, name, err)
			return
		}
		historical = he != e
		e = he
	}
	// Read-your-epoch: a client (usually a router acting for one) that has
	// observed epoch E declares it as a floor; an entry still behind it
	// answers 412 so the caller can retry a member that has caught up.
	if v := r.Header.Get(api.HeaderMinEpoch); v != "" {
		min, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad %s %q", api.HeaderMinEpoch, v)
			return
		}
		if e.Epoch < min {
			epochHeader(w, e.Epoch)
			writeError(w, http.StatusPreconditionFailed,
				"graph %q at epoch %d, behind requested minimum %d", name, e.Epoch, min)
			return
		}
	}
	params, run, err := s.parseKernel(kernel, e, r.URL.Query())
	if err != nil {
		if errors.Is(err, errUnknownKernel) {
			writeError(w, http.StatusNotFound, "unknown kernel %q", kernel)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	// Validate the deadline before the cache lookup so a malformed
	// timeout_ms is a 400 regardless of whether the result is cached.
	timeout := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "bad timeout_ms %q", v)
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	staleOK := false
	switch r.URL.Query().Get("stale") {
	case "", "deny":
	case "allow":
		staleOK = true
	default:
		writeError(w, http.StatusBadRequest, "bad stale %q (want allow or deny)", r.URL.Query().Get("stale"))
		return
	}
	// Classify before any resource is consumed: the class decides which
	// admission lane the request competes in, and the header lets clients
	// (and the load harness) attribute the latency they saw to a lane.
	class := costClass(kernel)
	w.Header().Set(api.HeaderClass, class)
	// Per-client fairness gates the whole serving path, cache hits
	// included: a client above its rate is told to back off even when the
	// answer would have been free, otherwise one hot client could still
	// monopolize the socket and starve the metrics a fair share.
	if ok, retry := s.limiter.Allow(r.Header.Get(ClientHeader)); !ok {
		s.metrics.RateLimited.Add(1)
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "client rate limit exceeded (retry in %ds)", secs)
		return
	}
	s.metrics.Requests.Add(1)

	// The whole request — cache key, coalescing group, kernel input — is
	// pinned to the entry resolved above, so a snapshot published mid-flight
	// cannot tear the response; the header tells clients which epoch served.
	epochHeader(w, e.Epoch)
	key := fmt.Sprintf("%s@%d/%s?%s", e.Name, e.Epoch, kernel, params)
	staleKey := staleCacheKey(e.Name, kernel, params)
	if historical {
		staleKey = "" // point-in-time results never refresh the stale entry
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		s.writeRaw(w, body, "cache")
		return
	}
	s.metrics.CacheMiss.Add(1)

	// Cache hits serve even through an open breaker (they cost no kernel
	// run); everything past this point risks an execution, so a tripped
	// (graph, kernel) pair short-circuits to 503 — or a stale hit.
	record, err := s.breakers.Allow(name + "/" + kernel)
	if err != nil {
		s.metrics.BreakerRejected.Add(1)
		if staleOK && s.serveStale(w, staleKey) {
			return
		}
		w.Header().Set(api.HeaderBreaker, "open")
		s.writeKernelError(w, err)
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Coalesce identical concurrent requests: the leader runs the kernel
	// under its own deadline; followers share the leader's result (and,
	// if the leader is cancelled, its cancellation).
	body, err, shared := s.flight.Do(key, func() ([]byte, error) {
		if err := s.pool.Acquire(ctx, class); err != nil {
			return nil, err
		}
		defer s.pool.Release(class)
		s.metrics.KernelStarted(kernel)
		if s.beforeKernel != nil {
			s.beforeKernel(kernel)
		}
		start := time.Now()
		res, err := s.runKernel(ctx, run)
		s.metrics.ObserveLatency(kernel, time.Since(start))
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		s.cacheResult(key, staleKey, e.Epoch, b)
		return b, nil
	})
	if shared {
		s.metrics.Coalesced.Add(1)
	}
	// Only the flight leader's outcome feeds the breaker, and only
	// outcomes that say something about the kernel: backpressure and
	// client cancellations are skipped.
	switch {
	case shared, errors.Is(err, ErrQueueFull),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		record(breakerSkip)
	case err != nil:
		record(breakerFailure)
	default:
		record(breakerSuccess)
	}
	if err != nil {
		if staleOK && errors.Is(err, ErrQueueFull) && s.serveStale(w, staleKey) {
			return
		}
		s.writeKernelError(w, err)
		return
	}
	source := "computed"
	if shared {
		source = "coalesced"
	}
	s.writeRaw(w, body, source)
}

// staleCacheKey is the epochless cache key holding the latest computed
// result for (graph, kernel, params), whatever epoch produced it. The
// NUL separator keeps it disjoint from epoch-scoped keys, which never
// contain one.
func staleCacheKey(name, kernel, params string) string {
	return "stale\x00" + name + "/" + kernel + "?" + params
}

// encodeStale prefixes body with the big-endian epoch that computed it.
func encodeStale(epoch uint64, body []byte) []byte {
	out := make([]byte, 8+len(body))
	binary.BigEndian.PutUint64(out, epoch)
	copy(out[8:], body)
	return out
}

// serveStale answers a rejected request from the epochless stale entry,
// if one exists: HTTP 200 with X-Graphct-Stale naming the epoch that
// actually computed the body (X-Graphct-Epoch still names the current
// one). Returns false when nothing stale is cached.
func (s *Server) serveStale(w http.ResponseWriter, staleKey string) bool {
	raw, ok := s.cache.Get(staleKey)
	if !ok || len(raw) < 8 {
		return false
	}
	s.metrics.StaleServed.Add(1)
	w.Header().Set(api.HeaderStale, strconv.FormatUint(binary.BigEndian.Uint64(raw), 10))
	s.writeRaw(w, raw[8:], "stale")
	return true
}

func (s *Server) writeRaw(w http.ResponseWriter, body []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(api.HeaderSource, source)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) writeKernelError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrBreakerOpen):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.Canceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, "kernel canceled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
