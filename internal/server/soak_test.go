package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"graphct/internal/cluster"
	"graphct/internal/graph"
	"graphct/internal/stream"
)

// soakBatches builds a deterministic ingest workload: seeded batches of
// inserts and deletes over n vertices, the raw material for replaying the
// same logical sequence through different paths.
func soakBatches(seed int64, n, batches, perBatch int) [][]stream.Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]stream.Update, batches)
	for b := range out {
		batch := make([]stream.Update, perBatch)
		for i := range batch {
			batch[i] = stream.Update{
				U:    int32(rng.Intn(n)),
				V:    int32(rng.Intn(n)),
				Time: int64(b*perBatch + i),
				Del:  rng.Intn(5) == 0,
			}
		}
		out[b] = batch
	}
	return out
}

// graphsEqual bit-compares two CSR graphs by adjacency.
func graphsEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape: got %d vertices / %d edges, want %d / %d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := int32(0); int(v) < want.NumVertices(); v++ {
		g, w := got.Neighbors(v), want.Neighbors(v)
		if len(g) != len(w) {
			t.Fatalf("vertex %d: got %d neighbors, want %d", v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("vertex %d neighbor %d: got %d, want %d", v, i, g[i], w[i])
			}
		}
	}
}

// TestSoakIdempotentReplay is the soak/idempotency scenario: the same
// seeded ingest sequence is replayed against the daemon twice, with
// duplicate batch IDs additionally interleaved mid-stream, and the final
// snapshot must be bit-identical to ONE clean replay applied directly
// through internal/stream — duplicates must change nothing.
func TestSoakIdempotentReplay(t *testing.T) {
	const (
		vertices = 200
		batches  = 60
		perBatch = 40
	)
	workload := soakBatches(99, vertices, batches, perBatch)

	// Reference: one clean replay straight through the stream engine.
	clean := stream.New(vertices)
	for _, batch := range workload {
		if _, err := clean.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	want := clean.Snapshot()

	// Server replay: twice over, with every third batch immediately
	// re-sent under its own ID (a client retry after a lost response).
	reg := NewRegistry()
	if _, err := reg.AddLive("soak", vertices); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{SnapshotEvery: 512})
	ts := newHTTPServer(t, s)

	post := func(id string, batch []stream.Update) (int, ingestResult) {
		t.Helper()
		type ju struct {
			U    int32 `json:"u"`
			V    int32 `json:"v"`
			Time int64 `json:"time,omitempty"`
			Del  bool  `json:"del,omitempty"`
		}
		out := make([]ju, len(batch))
		for i, up := range batch {
			out[i] = ju{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
		}
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(out); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/graphs/soak/ingest?batch_id="+id, "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res ingestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, res
	}

	firstResults := make([]ingestResult, batches)
	for pass := 0; pass < 2; pass++ {
		for b, batch := range workload {
			id := fmt.Sprintf("soak/%d", b)
			status, res := post(id, batch)
			if status != http.StatusOK {
				t.Fatalf("pass %d batch %d: status %d", pass, b, status)
			}
			if pass == 0 {
				firstResults[b] = res
				if b%3 == 0 {
					// Interleaved duplicate: the retry must echo the
					// recorded result, not re-apply.
					status, dup := post(id, batch)
					if status != http.StatusOK || dup != res {
						t.Fatalf("batch %d duplicate: status %d result %+v, want %+v", b, status, dup, res)
					}
				}
			} else if res != firstResults[b] {
				// Second full replay: every batch is a duplicate.
				t.Fatalf("pass 1 batch %d: result %+v, want deduped %+v", b, res, firstResults[b])
			}
		}
	}
	wantDedup := int64(batches + (batches+2)/3)
	if got := s.metrics.IngestDeduped.Load(); got != wantDedup {
		t.Fatalf("ingest_deduped = %d, want %d", got, wantDedup)
	}
	if got := s.metrics.IngestBatches.Load(); got != batches {
		t.Fatalf("ingest_batches = %d, want %d (duplicates applied)", got, batches)
	}

	// Flush and fetch the final published snapshot.
	status, body := postJSON(t, ts.URL+"/graphs/soak/snapshot", nil)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d %s", status, body)
	}
	e, ok := s.reg.Get("soak")
	if !ok {
		t.Fatal("soak graph vanished")
	}
	graphsEqual(t, e.Graph, want)

	// Differential check against the batch-free reference implementation:
	// the live engine's incremental clustering agrees with internal/cluster
	// recomputing from scratch on the final graph.
	if gotCC, wantCC := e.Live.st.GlobalCoefficient(), cluster.Global(want); gotCC != wantCC {
		t.Fatalf("incremental global clustering %v, recomputed %v", gotCC, wantCC)
	}
	gotTri, wantTri := e.Live.st.Triangles(), cluster.Triangles(want)
	for v := range wantTri {
		if gotTri[v] != wantTri[v] {
			t.Fatalf("vertex %d: incremental triangle count %d, recomputed %d", v, gotTri[v], wantTri[v])
		}
	}
}
