package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"graphct/internal/api"
	"graphct/internal/blob"
	"graphct/internal/stream"
	"graphct/internal/wal"
)

// Snapshot-shipping replication. The leader side is two read-only
// endpoints over artifacts durability already maintains:
//
//	GET /graphs/{name}/snapshot    newest durable GCTS snapshot, raw
//	GET /graphs/{name}/wal?from=E  the log segment based at epoch E, raw
//
// A follower bootstraps a graph from the snapshot, then polls the WAL
// segment based at that snapshot's epoch. Appends accumulate in the open
// segment; once the leader publishes the next durable epoch the segment
// is sealed (X-Graphct-Wal-Sealed, with X-Graphct-Wal-Next naming the
// epoch it leads to), and a follower that has applied all of it holds —
// bit for bit — the state of the leader's next snapshot, so it republishes
// its entry pinned at that epoch and moves on to the next segment. Epoch
// numbers are therefore comparable across the shard: "epoch E of g" is
// the same graph on every member, which is what lets a router enforce
// read-your-epoch by retrying members until one has caught up.
//
// A follower that falls behind the retention window gets 410 Gone and
// re-bootstraps from the newest snapshot; the same path covers leader
// restarts and segments dropped as incomplete after WAL append failures.
// Replays are harmless: batch_id dedup windows are rebuilt from the
// records themselves, exactly as crash recovery rebuilds them.

// handleSnapshotGet serves the newest durable snapshot of a live graph in
// its at-rest GCTS encoding, falling back through retained epochs if the
// newest blob is unreadable (the same policy recovery uses).
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.durable() {
		writeError(w, http.StatusNotFound, "daemon has no data directory; nothing durable to ship")
		return
	}
	epochs, err := s.durableEpochs(name)
	if err != nil || len(epochs) == 0 {
		writeError(w, http.StatusNotFound, "no durable snapshots for %q", name)
		return
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		data, err := s.store.Get(snapshotKey(name, epochs[i]))
		if err != nil {
			continue
		}
		w.Header().Set("Content-Type", api.ContentTypeSnapshot)
		epochHeader(w, epochs[i])
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
		return
	}
	writeError(w, http.StatusNotFound, "no loadable snapshot for %q", name)
}

// handleWALGet serves the log segment based at ?from=E, raw. The response
// distinguishes the three states a tailer must react to:
//
//   - 200 with X-Graphct-Wal-Sealed absent: the open segment — apply new
//     records and poll again (a torn tail just means an append is in
//     flight);
//   - 200 with X-Graphct-Wal-Sealed: a complete segment whose full
//     application lands on the durable epoch in X-Graphct-Wal-Next;
//   - 410 Gone: the segment was pruned (or dropped as incomplete) — the
//     tailer must re-bootstrap from the newest snapshot.
func (s *Server) handleWALGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v := r.URL.Query().Get("from")
	if v == "" {
		writeError(w, http.StatusBadRequest, "from (segment base epoch) is required")
		return
	}
	from, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad from %q", v)
		return
	}
	if !s.durable() {
		writeError(w, http.StatusNotFound, "daemon has no data directory; nothing durable to ship")
		return
	}
	segs, err := s.walSegments(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "list segments: %v", err)
		return
	}
	found, rotated := false, false
	for _, base := range segs {
		if base == from {
			found = true
		}
		if base > from {
			rotated = true
		}
	}
	// The epoch a sealed segment leads to comes from the durable snapshot
	// chain, not from the surviving segment set: rotation drops a segment
	// as incomplete while the snapshot it was based at survives, and
	// naming the next *existing* segment across that gap would have a
	// follower pin state at an epoch it never applied — diverging from the
	// leader while still tailing a valid segment, so no 410 ever corrects
	// it. The next durable snapshot is exactly where the rotation that
	// closed this segment landed (rotation only happens after its snapshot
	// commits, and pruning is oldest-first), so it is safe to pin.
	next := uint64(0)
	if epochs, err := s.durableEpochs(name); err == nil {
		for _, e := range epochs {
			if e > from {
				next = e // ascending: the first epoch past from is the successor
				break
			}
		}
	}
	if !found {
		// Anything durable past `from` means the segment existed and is
		// gone — the tailer's position is unrecoverable from logs alone.
		if rotated || next != 0 {
			writeError(w, http.StatusGone, "segment %d of %q pruned; re-bootstrap from the newest snapshot", from, name)
			return
		}
		writeError(w, http.StatusNotFound, "no log segment based at epoch %d for %q", from, name)
		return
	}
	if rotated && next == 0 {
		// A rotated segment implies a committed successor snapshot; if it
		// cannot be named, the seal point cannot be pinned safely — a
		// snapshot re-bootstrap always lands on correct bits.
		writeError(w, http.StatusGone, "segment %d of %q sealed but its successor epoch is unlistable; re-bootstrap from the newest snapshot", from, name)
		return
	}
	data, err := os.ReadFile(s.walPath(name, from))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "read segment: %v", err)
		return
	}
	w.Header().Set("Content-Type", api.ContentTypeWAL)
	w.Header().Set(api.HeaderWALBase, strconv.FormatUint(from, 10))
	if rotated {
		w.Header().Set(api.HeaderWALSealed, "true")
		w.Header().Set(api.HeaderWALNext, strconv.FormatUint(next, 10))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// applyReplica applies one replicated WAL record to a replica graph under
// the same critical-section discipline as direct ingest: dedup check,
// batch application, idempotency recording. No snapshot threshold and no
// local WAL — replica epochs come only from the leader's seal points, and
// a replica's durability is the leader's.
func (s *Server) applyReplica(live *Live, rec wal.Record) error {
	live.mu.Lock()
	defer live.mu.Unlock()
	if rec.BatchID != "" {
		if _, ok := live.dedup[rec.BatchID]; ok {
			return nil
		}
	}
	res, err := live.st.ApplyBatch(rec.Updates)
	if err != nil {
		return err
	}
	if rec.BatchID != "" {
		live.remember(rec.BatchID, ingestResult{
			Accepted: len(rec.Updates),
			Inserted: res.Inserted,
			Deleted:  res.Deleted,
			Ignored:  res.Ignored,
			Edges:    live.st.NumEdges(),
		})
	}
	return nil
}

// Follower tails a leader daemon, mirroring every live graph it serves.
// One Follower drives one Server (the worker role started with -follow);
// its methods are called from a single goroutine (Run), or directly from
// tests, never both.
type Follower struct {
	srv      *Server
	leader   string
	interval time.Duration
	client   *http.Client
	state    map[string]*replState
}

// replState is the tailer's position in one graph's replication stream.
type replState struct {
	live    *Live
	base    uint64 // segment being tailed == the last pinned epoch
	applied int    // records of that segment already applied
}

// NewFollower returns a Follower that replicates leader's live graphs
// into s, polling every interval (<= 0 uses 200ms).
func NewFollower(s *Server, leader string, interval time.Duration) *Follower {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	return &Follower{
		srv:      s,
		leader:   strings.TrimRight(leader, "/"),
		interval: interval,
		client:   &http.Client{Timeout: 30 * time.Second},
		state:    make(map[string]*replState),
	}
}

// Run polls until ctx is cancelled. Sync failures (leader down, mid-prune
// races) are counted and retried on the next tick — a follower's job is
// to converge when the leader is back, not to crash with it.
func (f *Follower) Run(ctx context.Context) {
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		if err := f.SyncOnce(ctx); err != nil && ctx.Err() == nil {
			f.srv.metrics.ReplicaErrors.Add(1)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// SyncOnce runs one full replication pass: discover the leader's live
// graphs, bootstrap new ones, tail known ones to the current head, and
// drop replicas of graphs the leader deleted.
func (f *Follower) SyncOnce(ctx context.Context) error {
	names, err := f.leaderLiveGraphs(ctx)
	if err != nil {
		return err
	}
	listed := make(map[string]bool, len(names))
	var firstErr error
	for _, name := range names {
		listed[name] = true
		if err := f.syncGraph(ctx, name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sync %q: %w", name, err)
		}
	}
	var stale []string
	for name := range f.state {
		if !listed[name] {
			stale = append(stale, name)
		}
	}
	// Absence from the listing only means deletion once the leader is past
	// boot: a restarted leader serves /graphs from its first instant while
	// warm-restart recovery still repopulates the registry in the
	// background, and dropping replicas on that partial listing would 404
	// reads exactly when the replica should cover for the leader — then
	// force full snapshot re-ships once recovery finishes.
	if len(stale) > 0 && f.leaderListingComplete(ctx) {
		for _, name := range stale {
			f.srv.reg.Remove(name)
			delete(f.state, name)
		}
	}
	return firstErr
}

// leaderListingComplete reports whether the leader's /graphs listing can
// be trusted as exhaustive. /readyz distinguishes the cases: "ready" and
// "saturated" leaders list every graph they own (a busy leader's registry
// is complete), while "starting"/"recovering" — or unreachable — leaders
// may still be rebuilding theirs.
func (f *Follower) leaderListingComplete(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusOK {
		return true
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := decodeJSON(resp.Body, &st); err != nil {
		return false
	}
	return st.Status == "saturated"
}

// leaderLiveGraphs lists the live graphs the leader currently serves.
func (f *Follower) leaderLiveGraphs(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+"/graphs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("list leader graphs: HTTP %d", resp.StatusCode)
	}
	var infos []graphInfo
	if err := decodeJSON(resp.Body, &infos); err != nil {
		return nil, err
	}
	var names []string
	for _, gi := range infos {
		if gi.Live {
			names = append(names, gi.Name)
		}
	}
	return names, nil
}

// syncGraph advances one graph's replica to the leader's current head,
// crossing as many sealed segments as have accumulated since the last
// pass and pinning each one's epoch in order.
func (f *Follower) syncGraph(ctx context.Context, name string) error {
	st := f.state[name]
	if st == nil {
		ns, err := f.bootstrap(ctx, name)
		if err != nil || ns == nil {
			return err
		}
		f.state[name] = ns
		st = ns
	}
	for {
		status, sealed, next, data, err := f.fetchWAL(ctx, name, st.base)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
		case http.StatusGone:
			ns, err := f.bootstrap(ctx, name)
			if err != nil {
				return err
			}
			if ns == nil {
				return nil
			}
			f.state[name] = ns
			st = ns
			continue
		case http.StatusNotFound:
			return nil // the segment does not exist yet; nothing to tail
		default:
			return fmt.Errorf("fetch wal from=%d: HTTP %d", st.base, status)
		}
		_, recs, torn, err := wal.Decode(data)
		if err != nil {
			return err
		}
		for i := st.applied; i < len(recs); i++ {
			if err := f.srv.applyReplica(st.live, recs[i]); err != nil {
				return err
			}
			f.srv.metrics.ReplicaBatches.Add(1)
		}
		if len(recs) > st.applied {
			st.applied = len(recs)
		}
		if !sealed || torn {
			return nil // caught up to the open segment's fsynced head
		}
		// The segment is complete and fully applied: the replica's state
		// is exactly the leader's snapshot at `next`. Publish it there and
		// start on the next segment, which may already hold records.
		f.publishPinned(name, st.live, next)
		st.base, st.applied = next, 0
	}
}

// bootstrap (re)creates a replica from the leader's newest snapshot,
// publishing it pinned at that snapshot's epoch. Returns (nil, nil) when
// the leader serves no durable snapshot for the graph (not yet committed,
// or a non-durable leader) — the next pass retries.
func (f *Follower) bootstrap(ctx context.Context, name string) (*replState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.leader+"/graphs/"+url.PathEscape(name)+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch snapshot: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	snap, err := blob.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	// Rebuild through the stream exactly as crash recovery does, so the
	// replica's materialized snapshots are bit-identical to the leader's
	// for the same adjacency.
	st := stream.FromGraph(snap.Graph)
	st.Touch(snap.LastTime)
	live := &Live{st: st, replica: true}
	f.srv.reg.addEntryAt(name, st.Snapshot(), live, snap.Epoch)
	f.srv.metrics.ReplicaBootstraps.Add(1)
	return &replState{live: live, base: snap.Epoch}, nil
}

// publishPinned materializes the replica's current state and publishes it
// at the leader's epoch.
func (f *Follower) publishPinned(name string, live *Live, epoch uint64) {
	live.mu.Lock()
	g := live.st.Snapshot()
	live.mu.Unlock()
	f.srv.reg.addEntryAt(name, g, live, epoch)
	f.srv.metrics.ReplicaEpochs.Add(1)
}

// fetchWAL fetches one segment image. data is non-nil only for 200s.
func (f *Follower) fetchWAL(ctx context.Context, name string, from uint64) (status int, sealed bool, next uint64, data []byte, err error) {
	u := fmt.Sprintf("%s/graphs/%s/wal?from=%d", f.leader, url.PathEscape(name), from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, false, 0, nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, false, 0, nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, false, 0, nil, nil
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, false, 0, nil, err
	}
	if resp.Header.Get(api.HeaderWALSealed) == "true" {
		sealed = true
		next, err = strconv.ParseUint(resp.Header.Get(api.HeaderWALNext), 10, 64)
		if err != nil {
			return 0, false, 0, nil, fmt.Errorf("sealed segment without a parseable %s", api.HeaderWALNext)
		}
	}
	return http.StatusOK, sealed, next, data, nil
}

// drain consumes and closes a response body for connection reuse.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}

// decodeJSON decodes a protocol JSON body.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
