package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"graphct/internal/cluster"
	"graphct/internal/failpoint"
	"graphct/internal/stream"
)

// newDurableServer builds a server persisting to dir.
func newDurableServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	return New(NewRegistry(), cfg)
}

// ingestDirect pushes one batch through the full ingest critical section
// (apply, WAL append, snapshot-on-threshold, persistence) without HTTP.
func ingestDirect(t *testing.T, s *Server, name, batchID string, batch []stream.Update) ingestResult {
	t.Helper()
	e, ok := s.reg.Get(name)
	if !ok || e.Live == nil {
		t.Fatalf("no live graph %q", name)
	}
	out, _, err := s.applyIngest(name, e.Live, batchID, batch)
	if err != nil {
		t.Fatalf("ingest %q: %v", batchID, err)
	}
	return out
}

// cleanReplay applies the workload prefix [0, upto) straight through the
// stream engine — the uninterrupted reference every recovery must match.
func cleanReplay(t *testing.T, vertices int, workload [][]stream.Update, upto int) *stream.Stream {
	t.Helper()
	st := stream.New(vertices)
	for _, batch := range workload[:upto] {
		if _, err := st.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// assertRecoveredMatches bit-compares a recovered live graph against a
// clean replay: adjacency, edge count, incremental triangle counters,
// global clustering and the restored stream clock.
func assertRecoveredMatches(t *testing.T, s *Server, name string, want *stream.Stream) {
	t.Helper()
	e, ok := s.reg.Get(name)
	if !ok {
		t.Fatalf("graph %q not recovered", name)
	}
	if e.Live == nil {
		t.Fatalf("graph %q recovered static", name)
	}
	wantG := want.Snapshot()
	graphsEqual(t, e.Graph, wantG)
	gotTri, wantTri := e.Live.st.Triangles(), want.Triangles()
	for v := range wantTri {
		if gotTri[v] != wantTri[v] {
			t.Fatalf("vertex %d: recovered triangle count %d, clean replay %d", v, gotTri[v], wantTri[v])
		}
	}
	if got, want := e.Live.st.GlobalCoefficient(), want.GlobalCoefficient(); got != want {
		t.Fatalf("recovered global clustering %v, clean replay %v", got, want)
	}
	if got := cluster.Global(e.Graph); got != want.GlobalCoefficient() {
		t.Fatalf("static recount on recovered graph %v, incremental %v", got, want.GlobalCoefficient())
	}
	if got, wantT := e.Live.st.LastTime(), want.LastTime(); got != wantT {
		t.Fatalf("recovered clock %d, clean replay %d", got, wantT)
	}
}

// TestWarmRestartDifferential is the acceptance scenario in-process: a
// durable server ingests a seeded workload (snapshots and WAL rotations
// interleaving), is abandoned without any shutdown hook, and a second
// server over the same data directory must recover the graph bit-identical
// to an uninterrupted replay.
func TestWarmRestartDifferential(t *testing.T) {
	const (
		vertices = 150
		batches  = 40
		perBatch = 25
	)
	dir := t.TempDir()
	workload := soakBatches(7, vertices, batches, perBatch)

	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 100})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	for b, batch := range workload {
		ingestDirect(t, s1, "g", fmt.Sprintf("b-%d", b), batch)
	}
	if s1.metrics.WALAppends.Load() != batches {
		t.Fatalf("wal_appends = %d, want %d", s1.metrics.WALAppends.Load(), batches)
	}
	if s1.metrics.SnapshotsPersisted.Load() == 0 || s1.metrics.SnapshotBytes.Load() == 0 {
		t.Fatal("no snapshots persisted during ingest")
	}
	// No shutdown, no flush: s1 is simply abandoned, as a killed process
	// would be. Everything recovery can use is already on disk.

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 100})
	n, err := s2.RecoverAll()
	if err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v; want 1, nil", n, err)
	}
	assertRecoveredMatches(t, s2, "g", cleanReplay(t, vertices, workload, batches))
	if s2.metrics.RecoveredGraphs.Load() != 1 {
		t.Fatalf("recovered_graphs = %d", s2.metrics.RecoveredGraphs.Load())
	}
	if s2.metrics.RecoveryMs.Load() < 0 {
		t.Fatalf("recovery_ms negative")
	}

	// Epochs keep ascending across the restart: the recovered entry must
	// sit above every epoch the first server published.
	e1max := uint64(0)
	for _, epoch := range listDurableEpochs(t, s2, "g") {
		if epoch > e1max {
			e1max = epoch
		}
	}
	e2, _ := s2.reg.Get("g")
	if e2.Epoch < e1max {
		t.Fatalf("recovered epoch %d below durable max %d", e2.Epoch, e1max)
	}

	// The recovered graph keeps ingesting and stays differential-correct.
	extra := soakBatches(8, vertices, 5, perBatch)
	for b, batch := range extra {
		ingestDirect(t, s2, "g", fmt.Sprintf("x-%d", b), batch)
	}
	want := cleanReplay(t, vertices, workload, batches)
	for _, batch := range extra {
		if _, err := want.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	s2.forceSnapshot("g", e2.Live, e2.Epoch)
	assertRecoveredMatches(t, s2, "g", want)
}

func listDurableEpochs(t *testing.T, s *Server, name string) []uint64 {
	t.Helper()
	epochs, err := s.durableEpochs(name)
	if err != nil {
		t.Fatal(err)
	}
	return epochs
}

// TestWarmRestartTornTail crashes "mid-write": the active WAL segment
// loses its final byte, invalidating exactly the last record. Recovery
// must stop at the last intact record and match a clean replay of every
// fully-logged batch.
func TestWarmRestartTornTail(t *testing.T) {
	const (
		vertices = 80
		batches  = 10
		perBatch = 20
	)
	dir := t.TempDir()
	workload := soakBatches(21, vertices, batches, perBatch)

	// A huge threshold keeps every batch in the initial segment: no
	// rotation, so the torn record is precisely the last batch.
	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	for b, batch := range workload {
		ingestDirect(t, s1, "g", fmt.Sprintf("b-%d", b), batch)
	}
	e, _ := s1.reg.Get("g")
	segPath := e.Live.wal.Path()
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	if s2.metrics.WALTornTails.Load() != 1 {
		t.Fatalf("wal_torn_tails = %d, want 1", s2.metrics.WALTornTails.Load())
	}
	if s2.metrics.RecoveredBatches.Load() != batches-1 {
		t.Fatalf("recovered_batches = %d, want %d", s2.metrics.RecoveredBatches.Load(), batches-1)
	}
	assertRecoveredMatches(t, s2, "g", cleanReplay(t, vertices, workload, batches-1))
}

// TestWarmRestartDedupWindow pins client-retry semantics across a crash:
// a batch acked before the crash and retried after the restart is answered
// from the rebuilt idempotency window, not double-applied.
func TestWarmRestartDedupWindow(t *testing.T) {
	const vertices = 50
	dir := t.TempDir()
	workload := soakBatches(33, vertices, 6, 15)

	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	for b, batch := range workload {
		ingestDirect(t, s1, "g", fmt.Sprintf("b-%d", b), batch)
	}

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	ts := newHTTPServer(t, s2)
	// The client never saw the ack for its last batch and retries it.
	last := len(workload) - 1
	var body []map[string]any
	for _, up := range workload[last] {
		body = append(body, map[string]any{"u": up.U, "v": up.V, "time": up.Time, "del": up.Del})
	}
	status, raw := postJSON(t, ts.URL+fmt.Sprintf("/graphs/g/ingest?batch_id=b-%d", last), body)
	if status != http.StatusOK {
		t.Fatalf("retry after restart: HTTP %d: %s", status, raw)
	}
	if s2.metrics.IngestDeduped.Load() != 1 {
		t.Fatalf("ingest_deduped = %d, want 1 (retry double-applied?)", s2.metrics.IngestDeduped.Load())
	}
	assertRecoveredMatches(t, s2, "g", cleanReplay(t, vertices, workload, len(workload)))
}

// TestWALFailureForcesDurableSnapshot: when an append fails, the batch is
// still acked but the same request publishes and persists a snapshot, so
// the acked batch is durable anyway and a restart recovers it.
func TestWALFailureForcesDurableSnapshot(t *testing.T) {
	defer failpoint.Default.DisarmAll()
	const vertices = 40
	dir := t.TempDir()
	workload := soakBatches(5, vertices, 4, 10)

	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, s1, "g", "b-0", workload[0])

	if err := failpoint.Default.Arm("wal.append=error(disk gone)*1"); err != nil {
		t.Fatal(err)
	}
	out := ingestDirect(t, s1, "g", "b-1", workload[1])
	if !out.Snapshotted {
		t.Fatalf("append failure did not force a snapshot: %+v", out)
	}
	if s1.metrics.WALErrors.Load() != 1 {
		t.Fatalf("wal_errors = %d, want 1", s1.metrics.WALErrors.Load())
	}
	e, _ := s1.reg.Get("g")
	if e.Live.walFailed {
		t.Fatal("walFailed not cleared by successful rotation")
	}
	ingestDirect(t, s1, "g", "b-2", workload[2])
	ingestDirect(t, s1, "g", "b-3", workload[3])

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 1 << 40})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	assertRecoveredMatches(t, s2, "g", cleanReplay(t, vertices, workload, 4))
}

// TestBlobFailureKeepsAckedBatchesDurable: a blob store outage defers the
// snapshot commit, but the old WAL segment keeps accumulating, so no acked
// batch is lost to a crash during the outage.
func TestBlobFailureKeepsAckedBatchesDurable(t *testing.T) {
	defer failpoint.Default.DisarmAll()
	const (
		vertices = 60
		batches  = 12
		perBatch = 20
	)
	dir := t.TempDir()
	workload := soakBatches(11, vertices, batches, perBatch)

	// Low threshold so publications (and thus blob puts) fire repeatedly
	// while the store is down.
	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 50})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Default.Arm("blob.put=error(store down)"); err != nil {
		t.Fatal(err)
	}
	for b, batch := range workload {
		ingestDirect(t, s1, "g", fmt.Sprintf("b-%d", b), batch)
	}
	if s1.metrics.PersistErrors.Load() == 0 {
		t.Fatal("no persist errors recorded during the outage")
	}
	failpoint.Default.DisarmAll()

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 50})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	assertRecoveredMatches(t, s2, "g", cleanReplay(t, vertices, workload, batches))
}

// TestRecoverFallsBackPastCorruptSnapshot: bit rot in the newest durable
// snapshot must not stop the daemon — recovery falls back to an older
// retained epoch and serves what it can.
func TestRecoverFallsBackPastCorruptSnapshot(t *testing.T) {
	const vertices = 40
	dir := t.TempDir()
	workload := soakBatches(17, vertices, 8, 20)

	s1 := newDurableServer(t, dir, Config{SnapshotEvery: 60, RetainEpochs: 4})
	if _, err := s1.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	for b, batch := range workload {
		ingestDirect(t, s1, "g", fmt.Sprintf("b-%d", b), batch)
	}
	epochs := listDurableEpochs(t, s1, "g")
	if len(epochs) < 2 {
		t.Fatalf("want >= 2 durable epochs, got %v", epochs)
	}
	newest := epochs[len(epochs)-1]
	path := filepath.Join(dir, "blobs", "g", epochLabel(newest)+snapSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newDurableServer(t, dir, Config{SnapshotEvery: 60, RetainEpochs: 4})
	if n, err := s2.RecoverAll(); err != nil || n != 1 {
		t.Fatalf("RecoverAll = %d, %v", n, err)
	}
	e, _ := s2.reg.Get("g")
	// The fallback epoch plus whatever tail survives cannot exceed the
	// true final state; it must be a valid graph the daemon can serve.
	if e.Graph.NumVertices() != vertices {
		t.Fatalf("fallback recovered %d vertices, want %d", e.Graph.NumVertices(), vertices)
	}
	ingestDirect(t, s2, "g", "post-recovery", workload[0])
}

// TestReadyzRecovering pins the /readyz contract during boot-time replay.
func TestReadyzRecovering(t *testing.T) {
	s := newDurableServer(t, t.TempDir(), Config{})
	s.SetReady(false)
	s.SetRecovering(true)
	ts := newHTTPServer(t, s)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during recovery: HTTP %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "recovering" {
		t.Fatalf("readyz status %q, want \"recovering\"", body.Status)
	}
	s.SetRecovering(false)
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var body2 struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body2); err != nil {
		t.Fatal(err)
	}
	if body2.Status != "starting" {
		t.Fatalf("readyz status %q after recovery, want \"starting\"", body2.Status)
	}
}

// TestEpochsEndpointAndPointInTime exercises the history surface: the
// epochs listing and ?epoch=E kernel reads against retained snapshots.
func TestEpochsEndpointAndPointInTime(t *testing.T) {
	const vertices = 30
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{SnapshotEvery: -1, RetainEpochs: 8})
	if _, err := s.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, s)

	// Two published epochs with different edge counts.
	ingestDirect(t, s, "g", "b-0", []stream.Update{{U: 0, V: 1, Time: 1}, {U: 1, V: 2, Time: 2}})
	e1, _ := s.reg.Get("g")
	epoch1, edges1 := e1.Epoch, e1.Graph.NumEdges()
	ingestDirect(t, s, "g", "b-1", []stream.Update{{U: 2, V: 3, Time: 3}, {U: 3, V: 4, Time: 4}})
	e2, _ := s.reg.Get("g")
	epoch2, edges2 := e2.Epoch, e2.Graph.NumEdges()
	if epoch1 == epoch2 || edges1 == edges2 {
		t.Fatalf("test needs two distinct epochs: %d/%d edges %d/%d", epoch1, epoch2, edges1, edges2)
	}

	resp, err := http.Get(ts.URL + "/graphs/g/epochs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Name    string   `json:"name"`
		Current uint64   `json:"current"`
		Durable []uint64 `json:"durable"`
		Live    bool     `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Current != epoch2 || !listing.Live {
		t.Fatalf("epochs listing %+v, want current %d live", listing, epoch2)
	}
	found := map[uint64]bool{}
	for _, ep := range listing.Durable {
		found[ep] = true
	}
	if !found[epoch1] || !found[epoch2] {
		t.Fatalf("durable epochs %v missing %d or %d", listing.Durable, epoch1, epoch2)
	}

	stats := func(url string) (int, int64, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Edges int64 `json:"edges"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Edges, resp.Header.Get("X-Graphct-Epoch")
	}
	if code, edges, hdr := stats(ts.URL + "/graphs/g/stats"); code != 200 || edges != edges2 || hdr != fmt.Sprint(epoch2) {
		t.Fatalf("current stats: %d, %d edges, epoch %s", code, edges, hdr)
	}
	if code, edges, hdr := stats(fmt.Sprintf("%s/graphs/g/stats?epoch=%d", ts.URL, epoch1)); code != 200 || edges != edges1 || hdr != fmt.Sprint(epoch1) {
		t.Fatalf("point-in-time stats: %d, %d edges (want %d), epoch %s (want %d)", code, edges, edges1, hdr, epoch1)
	}
	// Served again — now from the historical cache — identically.
	if code, edges, _ := stats(fmt.Sprintf("%s/graphs/g/stats?epoch=%d", ts.URL, epoch1)); code != 200 || edges != edges1 {
		t.Fatalf("cached point-in-time stats: %d, %d edges", code, edges)
	}
	if code, _, _ := stats(ts.URL + "/graphs/g/stats?epoch=999999"); code != http.StatusNotFound {
		t.Fatalf("unknown epoch: HTTP %d, want 404", code)
	}
	if code, _, _ := stats(ts.URL + "/graphs/g/stats?epoch=bogus"); code != http.StatusBadRequest {
		t.Fatalf("malformed epoch: HTTP %d, want 400", code)
	}
}

// TestDurableLiveNameValidation: names that cannot map onto blob keys and
// file paths are rejected up front when durability is on.
func TestDurableLiveNameValidation(t *testing.T) {
	s := newDurableServer(t, t.TempDir(), Config{})
	for _, name := range []string{"../escape", "a/b", "", "a b", "a\x00b"} {
		if _, err := s.AddLive(name, 10); err == nil {
			t.Errorf("AddLive(%q) succeeded on a durable server", name)
		}
	}
	if _, err := s.AddLive("ok-name.v2", 10); err != nil {
		t.Fatalf("AddLive(ok-name.v2): %v", err)
	}
}

// TestDeleteDropsDurableState: deleting a durable live graph removes its
// snapshots and log, so a restart does not resurrect it.
func TestDeleteDropsDurableState(t *testing.T) {
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{SnapshotEvery: -1})
	if _, err := s.AddLive("g", 20); err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, s, "g", "b", []stream.Update{{U: 0, V: 1, Time: 1}})
	ts := newHTTPServer(t, s)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/g", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}

	s2 := newDurableServer(t, dir, Config{})
	if n, err := s2.RecoverAll(); err != nil || n != 0 {
		t.Fatalf("RecoverAll after delete = %d, %v; want 0, nil", n, err)
	}
	if _, ok := s2.reg.Get("g"); ok {
		t.Fatal("deleted graph resurrected by recovery")
	}
}

// TestRetentionPrunes: the snapshot history is bounded by RetainEpochs and
// stale WAL segments do not accumulate.
func TestRetentionPrunes(t *testing.T) {
	const retain = 2
	dir := t.TempDir()
	s := newDurableServer(t, dir, Config{SnapshotEvery: -1, RetainEpochs: retain})
	if _, err := s.AddLive("g", 50); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		ingestDirect(t, s, "g", fmt.Sprintf("b-%d", b),
			[]stream.Update{{U: int32(b), V: int32(b + 1), Time: int64(b)}})
	}
	epochs := listDurableEpochs(t, s, "g")
	if len(epochs) > retain {
		t.Fatalf("retained %d snapshot epochs, cap %d: %v", len(epochs), retain, epochs)
	}
	segs, err := s.walSegments("g")
	if err != nil {
		t.Fatal(err)
	}
	// Segments are retained while their base snapshot is (followers finish
	// sealed segments from them), so the bound is the retention window,
	// and no retained segment may predate the oldest retained snapshot.
	if len(segs) == 0 || len(segs) > retain {
		t.Fatalf("WAL segments not bounded by retention: %v", segs)
	}
	if segs[0] < epochs[0] {
		t.Fatalf("segment %d predates oldest retained snapshot %d", segs[0], epochs[0])
	}
}
