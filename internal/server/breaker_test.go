package server

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a BreakerSet deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreakers(threshold int, cooldown time.Duration) (*BreakerSet, *fakeClock) {
	b := NewBreakerSet(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func mustAllow(t *testing.T, b *BreakerSet, key string) func(breakerOutcome) {
	t.Helper()
	rec, err := b.Allow(key)
	if err != nil {
		t.Fatalf("Allow(%s): %v", key, err)
	}
	return rec
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreakers(3, time.Second)
	for i := 0; i < 2; i++ {
		mustAllow(t, b, "g/k")(breakerFailure)
	}
	// A success resets the consecutive count.
	mustAllow(t, b, "g/k")(breakerSuccess)
	for i := 0; i < 2; i++ {
		mustAllow(t, b, "g/k")(breakerFailure)
	}
	if st := b.State("g/k"); st != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", st)
	}
	mustAllow(t, b, "g/k")(breakerFailure)
	if st := b.State("g/k"); st != "open" {
		t.Fatalf("state after 3rd consecutive failure = %s, want open", st)
	}
	if _, err := b.Allow("g/k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	// Other keys are untouched.
	mustAllow(t, b, "g/other")(breakerSuccess)
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreakers(1, time.Second)
	mustAllow(t, b, "g/k")(breakerFailure) // trips immediately
	if _, err := b.Allow("g/k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker admitted before cooldown")
	}
	clk.advance(time.Second)
	// First caller after cooldown becomes the probe; a second concurrent
	// caller is still rejected.
	probe := mustAllow(t, b, "g/k")
	if _, err := b.Allow("g/k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Probe failure re-opens for a full cooldown.
	probe(breakerFailure)
	if st := b.State("g/k"); st != "open" {
		t.Fatalf("state after failed probe = %s, want open", st)
	}
	if _, err := b.Allow("g/k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker admitted right after failed probe")
	}
	clk.advance(time.Second)
	// Probe success closes the breaker for everyone.
	mustAllow(t, b, "g/k")(breakerSuccess)
	if st := b.State("g/k"); st != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	mustAllow(t, b, "g/k")(breakerSuccess)
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2 (initial trip + failed probe)", got)
	}
}

// TestBreakerSkippedProbeReleasesSlot pins the coalescing interaction: a
// probe whose request turns out to be a follower (or is cancelled) must
// hand the probe slot back so the breaker is not wedged half-open.
func TestBreakerSkippedProbeReleasesSlot(t *testing.T) {
	b, clk := newTestBreakers(1, time.Second)
	mustAllow(t, b, "g/k")(breakerFailure)
	clk.advance(time.Second)
	probe := mustAllow(t, b, "g/k")
	probe(breakerSkip)
	// The next Allow may probe again immediately — no fresh cooldown.
	mustAllow(t, b, "g/k")(breakerSuccess)
	if st := b.State("g/k"); st != "closed" {
		t.Fatalf("state = %s, want closed", st)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := newTestBreakers(-1, time.Second)
	for i := 0; i < 100; i++ {
		mustAllow(t, b, "g/k")(breakerFailure)
	}
	if _, err := b.Allow("g/k"); err != nil {
		t.Fatalf("disabled breaker rejected: %v", err)
	}
	if b.Trips() != 0 {
		t.Fatal("disabled breaker recorded trips")
	}
}
