package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"graphct/internal/api"
	"graphct/internal/ring"
)

// The router role: a coordinator that owns no graphs and serves the same
// HTTP surface by proxying to workers. Graph names are partitioned over a
// consistent-hash ring keyed by each shard's leader URL, so adding a
// shard moves one shard's worth of names, not all of them. Writes go to
// the owning shard's leader; kernel reads fan across the shard's members
// (replicas first, leader as the fallback), skipping members that are
// down, behind the caller's min-epoch floor, or throwing backpressure.
// Requests and responses pass through with their headers — deadlines
// (timeout_ms in the query plus context cancellation), QoS class, epoch
// and min-epoch floors all propagate — and every proxied response gains
// X-Graphct-Worker naming the member that actually served it.

// Shard is one partition of the registry: a leader (Members[0]) that
// accepts writes and replicates to the remaining members, all of which
// serve reads.
type Shard struct {
	Members []string
}

// Leader returns the shard's write endpoint.
func (sh Shard) Leader() string { return sh.Members[0] }

// ParseShards parses the -workers topology spec: comma-separated shards,
// each a |-separated member list whose first entry is the leader, e.g.
// "http://a:8423|http://a2:8423,http://b:8423".
func ParseShards(spec string) ([]Shard, error) {
	var shards []Shard
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var sh Shard
		for _, member := range strings.Split(part, "|") {
			member = strings.TrimRight(strings.TrimSpace(member), "/")
			if member == "" {
				continue
			}
			u, err := url.Parse(member)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("worker %q is not an absolute URL", member)
			}
			if seen[member] {
				return nil, fmt.Errorf("worker %q listed twice", member)
			}
			seen[member] = true
			sh.Members = append(sh.Members, member)
		}
		if len(sh.Members) == 0 {
			return nil, fmt.Errorf("empty shard in %q", spec)
		}
		shards = append(shards, sh)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no workers in %q", spec)
	}
	return shards, nil
}

// RouterMetrics counts the router's own traffic; worker-side serving
// metrics live on the workers.
type RouterMetrics struct {
	Reads     atomic.Int64 // kernel reads proxied
	Writes    atomic.Int64 // writes proxied to shard leaders
	Failovers atomic.Int64 // member attempts that fell through to another member
	Degraded  atomic.Int64 // responses served (or synthesized) in degraded mode
}

// Router is the coordinator role's http.Handler.
type Router struct {
	shards  map[string]Shard // leader URL -> shard
	ring    *ring.Ring
	client  *http.Client
	mux     *http.ServeMux
	metrics RouterMetrics

	// next rotates the replica a read starts on, per shard, so read load
	// spreads instead of hammering the first replica.
	mu   sync.Mutex
	next map[string]int
}

// NewRouter builds a coordinator over the given shards.
func NewRouter(shards []Shard) *Router {
	leaders := make([]string, len(shards))
	byLeader := make(map[string]Shard, len(shards))
	for i, sh := range shards {
		leaders[i] = sh.Leader()
		byLeader[sh.Leader()] = sh
	}
	rt := &Router{
		shards: byLeader,
		ring:   ring.New(leaders, 0),
		client: &http.Client{}, // per-request deadlines ride on contexts
		next:   make(map[string]int),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /graphs", rt.handleListGraphs)
	mux.HandleFunc("POST /graphs", rt.handleCreateGraph)
	mux.HandleFunc("DELETE /graphs/{name}", rt.handleWrite)
	mux.HandleFunc("POST /graphs/{name}/extract", rt.handleWrite)
	mux.HandleFunc("POST /graphs/{name}/ingest", rt.handleWrite)
	mux.HandleFunc("POST /graphs/{name}/snapshot", rt.handleWrite)
	mux.HandleFunc("GET /graphs/{name}/epochs", rt.handleWrite) // leader is authoritative for epochs
	mux.HandleFunc("GET /graphs/{name}/snapshot", rt.handleWrite)
	mux.HandleFunc("GET /graphs/{name}/wal", rt.handleWrite)
	mux.HandleFunc("GET /graphs/{name}/{kernel}", rt.handleRead)
	rt.mux = mux
	return rt
}

// Metrics exposes the router's counters.
func (rt *Router) Metrics() *RouterMetrics { return &rt.metrics }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// shardFor returns the shard owning a graph name.
func (rt *Router) shardFor(name string) Shard {
	return rt.shards[rt.ring.Get(name)]
}

// readOrder returns the members to try for one read: replicas starting at
// a rotating offset, the leader last — replicas absorb read load, the
// leader is the member guaranteed to be at the head epoch.
func (rt *Router) readOrder(sh Shard) []string {
	if len(sh.Members) == 1 {
		return sh.Members
	}
	replicas := sh.Members[1:]
	rt.mu.Lock()
	start := rt.next[sh.Leader()] % len(replicas)
	rt.next[sh.Leader()]++
	rt.mu.Unlock()
	order := make([]string, 0, len(sh.Members))
	for i := 0; i < len(replicas); i++ {
		order = append(order, replicas[(start+i)%len(replicas)])
	}
	return append(order, sh.Leader())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "shards": len(rt.shards)})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int64{
		"routed_reads":  rt.metrics.Reads.Load(),
		"routed_writes": rt.metrics.Writes.Load(),
		"failovers":     rt.metrics.Failovers.Load(),
		"degraded":      rt.metrics.Degraded.Load(),
	})
}

// handleListGraphs fans GET /graphs to every shard leader and merges. A
// down shard degrades the listing (its graphs are omitted) rather than
// failing it; the response says so.
func (rt *Router) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	var all []graphInfo
	degraded := false
	for leader := range rt.shards {
		resp, err := rt.forward(r, leader, nil)
		if err != nil {
			degraded = true
			continue
		}
		var infos []graphInfo
		err = json.NewDecoder(resp.Body).Decode(&infos)
		drain(resp)
		if err != nil || resp.StatusCode != http.StatusOK {
			degraded = true
			continue
		}
		all = append(all, infos...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	if degraded {
		rt.metrics.Degraded.Add(1)
		w.Header().Set(api.HeaderDegraded, "partial")
	}
	if all == nil {
		all = []graphInfo{}
	}
	writeJSON(w, http.StatusOK, all)
}

// handleCreateGraph routes POST /graphs by the name inside the body.
func (rt *Router) handleCreateGraph(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		writeError(w, http.StatusBadRequest, "body must carry the graph name to route on")
		return
	}
	rt.proxyWrite(w, r, rt.shardFor(req.Name).Leader(), body)
}

// handleWrite routes single-home requests (writes, epoch listings, the
// replication feeds) to the owning shard's leader.
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	rt.proxyWrite(w, r, rt.shardFor(r.PathValue("name")).Leader(), body)
}

// proxyWrite forwards one request to a single member, exactly once: the
// client owns retries (its batch_id makes them idempotent), the router
// must not multiply them. An unreachable leader is the degraded case the
// topology cannot absorb — writes have one home — so it maps to 503.
func (rt *Router) proxyWrite(w http.ResponseWriter, r *http.Request, member string, body []byte) {
	rt.metrics.Writes.Add(1)
	resp, err := rt.forward(r, member, body)
	if err != nil {
		rt.metrics.Degraded.Add(1)
		w.Header().Set(api.HeaderDegraded, "down")
		writeError(w, http.StatusServiceUnavailable, "shard leader %s unreachable: %v", member, err)
		return
	}
	defer drain(resp)
	relay(w, resp, member)
}

// handleRead serves a kernel read with replica fanout. Pass one honors
// the caller's min-epoch floor, failing over past members that are down,
// behind, missing the graph, or shedding load. If every member answered
// 412 and the caller allows staleness, pass two retries without the floor
// and marks the response degraded — an explicitly-stale answer beats an
// error when the caller said so. With no member reachable at all, the
// router answers 503 with the degradation header.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	rt.metrics.Reads.Add(1)
	sh := rt.shardFor(r.PathValue("name"))
	order := rt.readOrder(sh)
	staleOK := r.URL.Query().Get("stale") == "allow"

	var saw412, sawAny bool
	for i, member := range order {
		resp, err := rt.forward(r, member, nil)
		if err != nil {
			continue
		}
		sawAny = true
		if resp.StatusCode == http.StatusPreconditionFailed {
			saw412 = true
		}
		if i < len(order)-1 && retryableRead(resp.StatusCode) {
			drain(resp)
			rt.metrics.Failovers.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusPreconditionFailed && staleOK {
			drain(resp)
			break // fall to pass two instead of surfacing the leader's 412
		}
		defer drain(resp)
		relay(w, resp, member)
		return
	}

	if saw412 && staleOK {
		// Pass two: drop the freshness floor. Whoever answers is serving
		// an epoch older than requested, which is exactly what the caller
		// opted into; the header makes the degradation visible.
		r2 := r.Clone(r.Context())
		r2.Header.Del(api.HeaderMinEpoch)
		for i, member := range order {
			resp, err := rt.forward(r2, member, nil)
			if err != nil {
				continue
			}
			if i < len(order)-1 && retryableRead(resp.StatusCode) {
				drain(resp)
				rt.metrics.Failovers.Add(1)
				continue
			}
			defer drain(resp)
			rt.metrics.Degraded.Add(1)
			w.Header().Set(api.HeaderDegraded, "stale-epoch")
			relay(w, resp, member)
			return
		}
	}

	rt.metrics.Degraded.Add(1)
	w.Header().Set(api.HeaderDegraded, "down")
	if sawAny {
		writeError(w, http.StatusServiceUnavailable, "no member of shard %s could serve the read", sh.Leader())
		return
	}
	writeError(w, http.StatusServiceUnavailable, "shard %s is down (%d members tried)", sh.Leader(), len(order))
}

// retryableRead reports whether a member's answer warrants trying the
// next member: missing graph (replication lag), stale epoch, shed load or
// server failure. Client errors (400s) are authoritative wherever they
// come from.
func retryableRead(status int) bool {
	switch status {
	case http.StatusNotFound, http.StatusPreconditionFailed, http.StatusTooManyRequests:
		return true
	}
	return status >= 500
}

// forward re-issues r against member with r's path, query and headers,
// under r's context so client cancellation and deadlines propagate.
func (rt *Router) forward(r *http.Request, member string, body []byte) (*http.Response, error) {
	u := member + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		switch k {
		case "Host", "Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade", "Content-Length":
			continue
		}
		req.Header[k] = vs
	}
	return rt.client.Do(req)
}

// relay copies a member's response to the client, stamping which worker
// served it.
func relay(w http.ResponseWriter, resp *http.Response, member string) {
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	h.Set(api.HeaderWorker, member)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
