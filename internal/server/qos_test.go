package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphct/internal/load"
	"graphct/internal/testutil"
)

// acquireResult runs Acquire in a goroutine and reports its error on a
// channel, so tests can assert "this admission blocks" without deadlocking.
func acquireAsync(p *LanePool, class string) chan error {
	ch := make(chan error, 1)
	go func() { ch <- p.Acquire(context.Background(), class) }()
	return ch
}

func mustAcquire(t *testing.T, p *LanePool, class string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Acquire(ctx, class); err != nil {
		t.Fatalf("Acquire(%s): %v", class, err)
	}
}

func mustBlock(t *testing.T, p *LanePool, class string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx, class); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire(%s) = %v, want to block until deadline", class, err)
	}
}

// TestLanePoolReservedExclusion is QoS invariant (a): with reserved cheap
// slots, the expensive class can never occupy them — its admissions cap at
// maxRunning-reserved, so a cheap request always finds a slot no matter
// how many expensive requests are in flight or queued.
func TestLanePoolReservedExclusion(t *testing.T) {
	p := NewLanePool(2, 1, 16)
	if p.Reserved() != 1 {
		t.Fatalf("Reserved() = %d", p.Reserved())
	}

	mustAcquire(t, p, ClassExpensive)
	if got := p.ExpensiveRunning(); got != 1 {
		t.Fatalf("expensive running = %d, want 1", got)
	}
	// The second expensive request must NOT take the remaining slot: that
	// one is reserved for cheap.
	mustBlock(t, p, ClassExpensive)

	// Invariant (b): the expensive lane is saturated (slot held and a
	// waiter just timed out), yet cheap admission succeeds instantly.
	mustAcquire(t, p, ClassCheap)
	if got := p.Running(); got != 2 {
		t.Fatalf("running = %d, want 2", got)
	}
	// Now the pool is truly full: cheap also waits.
	mustBlock(t, p, ClassCheap)

	// Releasing the cheap slot readmits cheap but still not expensive.
	p.Release(ClassCheap)
	mustBlock(t, p, ClassExpensive)
	mustAcquire(t, p, ClassCheap)

	p.Release(ClassCheap)
	p.Release(ClassExpensive)
	if got := p.Running(); got != 0 {
		t.Fatalf("running after releases = %d", got)
	}
	if got := p.ExpensiveRunning(); got != 0 {
		t.Fatalf("expensive running after releases = %d", got)
	}
}

// TestLanePoolPerLaneQueues: each class queues separately under its own
// maxQueued bound, so an expensive burst filling its queue neither
// consumes cheap queue capacity nor vice versa.
func TestLanePoolPerLaneQueues(t *testing.T) {
	p := NewLanePool(2, 1, 1) // 1 expensive slot, 1 reserved, 1 waiter per lane
	mustAcquire(t, p, ClassExpensive)
	mustAcquire(t, p, ClassCheap)

	// One waiter per lane fits the queue...
	expWait := acquireAsync(p, ClassExpensive)
	cheapWait := acquireAsync(p, ClassCheap)
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, e := p.LaneDepths()
		if c == 1 && e == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane depths cheap=%d exp=%d, want 1/1", c, e)
		}
		time.Sleep(time.Millisecond)
	}
	if p.QueueDepth() != 2 {
		t.Fatalf("QueueDepth = %d, want 2", p.QueueDepth())
	}
	if p.Accepting() {
		t.Fatal("cheap lane at queue capacity still reports accepting")
	}

	// ...and the next in EACH lane fails fast with ErrQueueFull.
	if err := p.Acquire(context.Background(), ClassExpensive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expensive over-queue: %v, want ErrQueueFull", err)
	}
	if err := p.Acquire(context.Background(), ClassCheap); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("cheap over-queue: %v, want ErrQueueFull", err)
	}

	// Drain: each release admits the matching waiter.
	p.Release(ClassCheap)
	if err := <-cheapWait; err != nil {
		t.Fatalf("queued cheap acquire: %v", err)
	}
	p.Release(ClassExpensive)
	if err := <-expWait; err != nil {
		t.Fatalf("queued expensive acquire: %v", err)
	}
	p.Release(ClassCheap)
	p.Release(ClassExpensive)
}

// TestLanePoolDisabled: reserved <= 0 must behave exactly like the old
// shared pool — expensive requests may hold every slot.
func TestLanePoolDisabled(t *testing.T) {
	p := NewLanePool(2, 0, 4)
	mustAcquire(t, p, ClassExpensive)
	mustAcquire(t, p, ClassExpensive)
	if got := p.Running(); got != 2 {
		t.Fatalf("running = %d", got)
	}
	mustBlock(t, p, ClassCheap)
	p.Release(ClassExpensive)
	p.Release(ClassExpensive)
}

func TestCostClass(t *testing.T) {
	for kernel, want := range map[string]string{
		"kcentrality": ClassExpensive,
		"diameter":    ClassExpensive,
		"stats":       ClassCheap,
		"bfs":         ClassCheap,
		"components":  ClassCheap,
		"kcores":      ClassCheap,
	} {
		if got := costClass(kernel); got != want {
			t.Errorf("costClass(%s) = %s, want %s", kernel, got, want)
		}
	}
}

func TestRateLimiterBuckets(t *testing.T) {
	l := NewRateLimiter(2, 4)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clk.now

	for i := 0; i < 4; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.Allow("a")
	if ok {
		t.Fatal("drained bucket admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want ~0.5s", wait)
	}
	// Another client is unaffected.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("fresh client rejected")
	}
	// Tokens accrue at rate: after 500ms one token is back.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("refilled bucket rejected")
	}
	// Idle time caps at burst, it does not bank indefinitely.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("a"); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("after long idle, admitted %d, want burst 4", admitted)
	}

	var nilLimiter *RateLimiter
	if ok, _ := nilLimiter.Allow("x"); !ok {
		t.Fatal("nil limiter must admit everything")
	}
	if nilLimiter.Clients() != 0 {
		t.Fatal("nil limiter reports clients")
	}
	if NewRateLimiter(0, 5) != nil {
		t.Fatal("rate 0 should build a nil (disabled) limiter")
	}
}

// TestRateLimiterPrune: a flood of distinct client IDs is bounded — once
// the map hits maxRateClients, fully-refilled (idle) buckets are dropped.
func TestRateLimiterPrune(t *testing.T) {
	l := NewRateLimiter(1000, 1)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l.now = clk.now
	for i := 0; i < maxRateClients; i++ {
		l.Allow("client-" + strconv.Itoa(i))
	}
	if got := l.Clients(); got != maxRateClients {
		t.Fatalf("tracked %d clients, want %d", got, maxRateClients)
	}
	clk.advance(time.Second) // every bucket refills
	l.Allow("newcomer")
	if got := l.Clients(); got != 1 {
		t.Fatalf("after prune: %d clients tracked, want 1", got)
	}
}

// TestCacheMaxEntry: cost-aware admission — results over the per-entry
// bound are never cached, so one giant diameter result cannot evict
// hundreds of cheap stats entries.
func TestCacheMaxEntry(t *testing.T) {
	c := NewCache(100)
	c.SetMaxEntry(10)
	if !c.Put("small", make([]byte, 8)) {
		t.Fatal("small entry rejected")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("small entry not retrievable")
	}
	if c.Put("big", make([]byte, 11)) {
		t.Fatal("oversized entry admitted")
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry cached anyway")
	}
	// 0 disables the per-entry bound (whole-cache bound still applies).
	c.SetMaxEntry(0)
	if !c.Put("big", make([]byte, 11)) {
		t.Fatal("entry under cache bound rejected with maxEntry disabled")
	}
	if c.Put("huge", make([]byte, 101)) {
		t.Fatal("entry over the whole-cache bound admitted")
	}
}

// TestQoSLaneIsolationHTTP drives invariants (a) and (b) through the full
// serving path: with one reserved slot, a second concurrent centrality
// request waits in the expensive queue rather than taking the last slot,
// and cheap reads keep completing promptly meanwhile. Class attribution
// travels on every response as X-Graphct-Class.
func TestQoSLaneIsolationHTTP(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, ts, _ := newTestServer(t, Config{MaxConcurrent: 2, CheapReserved: 1, MaxQueued: 4}, testGraph())

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.beforeKernel = func(kernel string) {
		if kernel == "kcentrality" {
			started <- struct{}{}
			<-release
		}
	}

	// Two non-coalescable expensive requests. Only one may hold a slot.
	expDone := make(chan int, 2)
	for _, samples := range []string{"16", "17"} {
		go func(samples string) {
			status, hdr, _ := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples="+samples)
			if class := hdr.Get("X-Graphct-Class"); class != ClassExpensive {
				t.Errorf("kcentrality class header = %q, want %q", class, ClassExpensive)
			}
			expDone <- status
		}(samples)
	}
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, e := s.pool.LaneDepths(); e == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second expensive request never queued in the expensive lane")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.pool.ExpensiveRunning(); got != 1 {
		t.Fatalf("expensive running = %d, want 1 (reserved slot protected)", got)
	}
	select {
	case <-started:
		t.Fatal("second expensive kernel started despite the reservation")
	default:
	}

	// (b) Expensive lane saturated — slot held, queue occupied — yet cheap
	// reads complete, and are labeled with their lane.
	for _, ep := range []string{"/graphs/g/stats", "/graphs/g/bfs?src=1", "/graphs/g/components"} {
		status, hdr, body := get(t, ts.URL+ep)
		if status != http.StatusOK {
			t.Fatalf("%s during expensive saturation: %d %s", ep, status, body)
		}
		if class := hdr.Get("X-Graphct-Class"); class != ClassCheap {
			t.Fatalf("%s class header = %q, want %q", ep, class, ClassCheap)
		}
	}

	// The lane gauges surface on /metrics.
	_, _, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{`"cheap_reserved":1`, `"expensive_running":1`, `"expensive_queue_depth":1`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %s in %s", want, body)
		}
	}

	close(release)
	for i := 0; i < 2; i++ {
		if status := <-expDone; status != http.StatusOK {
			t.Fatalf("expensive request %d finished with %d", i, status)
		}
	}
}

// TestClientRateLimitHTTP is invariant (c): per-client token buckets keyed
// on X-Graphct-Client return 429 with a Retry-After hint when drained,
// without touching other clients or the anonymous bucket.
func TestClientRateLimitHTTP(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, ts, _ := newTestServer(t, Config{ClientRate: 1, ClientBurst: 2}, testGraph())
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.limiter.now = clk.now

	doGet := func(client string) (int, http.Header) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/graphs/g/stats", nil)
		if client != "" {
			req.Header.Set(ClientHeader, client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	for i := 0; i < 2; i++ {
		if status, _ := doGet("alice"); status != http.StatusOK {
			t.Fatalf("alice burst request %d: %d", i, status)
		}
	}
	status, hdr := doGet("alice")
	if status != http.StatusTooManyRequests {
		t.Fatalf("drained client got %d, want 429", status)
	}
	retry, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", hdr.Get("Retry-After"))
	}
	if class := hdr.Get("X-Graphct-Class"); class != ClassCheap {
		t.Fatalf("rate-limited response lost class attribution: %q", class)
	}
	if got := s.metrics.RateLimited.Load(); got != 1 {
		t.Fatalf("rate_limited metric = %d, want 1", got)
	}

	// Other identities — named or anonymous — are untouched.
	if status, _ := doGet("bob"); status != http.StatusOK {
		t.Fatalf("bob: %d", status)
	}
	if status, _ := doGet(""); status != http.StatusOK {
		t.Fatalf("anonymous: %d", status)
	}

	// Tokens accrue with time; alice recovers.
	clk.advance(time.Duration(retry) * time.Second)
	if status, _ := doGet("alice"); status != http.StatusOK {
		t.Fatalf("alice after Retry-After: %d", status)
	}
}

// TestQoSCoalescingWithLanes: lanes must not break request coalescing — a
// duplicate of an in-flight expensive request joins the flight instead of
// consuming a second lane admission.
func TestQoSCoalescingWithLanes(t *testing.T) {
	s, ts, e := newTestServer(t, Config{MaxConcurrent: 2, CheapReserved: 1, MaxQueued: 4}, testGraph())
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.beforeKernel = func(kernel string) {
		if kernel == "kcentrality" {
			started <- struct{}{}
			<-release
		}
	}
	url := ts.URL + "/graphs/g/kcentrality?k=1&samples=16"
	key := fmt.Sprintf("g@%d/kcentrality?k=1&samples=16&top=10", e.Epoch)
	done := make(chan string, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, hdr, _ := get(t, url)
			done <- hdr.Get("X-Graphct-Source")
		}()
	}
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waitersFor(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate expensive request did not coalesce")
		}
		time.Sleep(time.Millisecond)
	}
	// The follower coalesced: it holds no lane admission of its own.
	if got := s.pool.ExpensiveRunning(); got != 1 {
		t.Fatalf("expensive running = %d, want 1", got)
	}
	if _, e := s.pool.LaneDepths(); e != 0 {
		t.Fatalf("expensive queue depth = %d, want 0 (follower must not queue)", e)
	}
	close(release)
	sources := map[string]int{}
	for i := 0; i < 2; i++ {
		sources[<-done]++
	}
	if sources["coalesced"] != 1 {
		t.Fatalf("sources = %v, want exactly one coalesced reply", sources)
	}
	if runs := s.metrics.KernelRuns("kcentrality"); runs != 1 {
		t.Fatalf("kernel runs = %d, want 1", runs)
	}
}

// TestQoSStaleWithLanes: degraded serving composes with lanes — a cheap
// request rejected by a full cheap queue still answers from the stale
// entry under ?stale=allow.
func TestQoSStaleWithLanes(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 2, CheapReserved: 1, MaxQueued: 1,
		SnapshotEvery: -1, // publish an epoch per ingest batch
	}, testGraph())
	if _, err := s.AddLive("live", 64); err != nil {
		t.Fatal(err)
	}

	// Prime: compute stats at the current epoch (writes the stale entry),
	// then advance the epoch so the next stats request misses the cache.
	if status, _, body := get(t, ts.URL+"/graphs/live/stats"); status != http.StatusOK {
		t.Fatalf("prime: %d %s", status, body)
	}
	resp, err := http.Post(ts.URL+"/graphs/live/ingest?batch_id=stale-test/0", "application/json",
		strings.NewReader(`[{"u":1,"v":2},{"u":2,"v":3}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}

	// Saturate: hold both slots (one per class) and fill the cheap queue.
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.beforeKernel = func(string) { started <- struct{}{}; <-release }
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	blocked := make(chan int, 3)
	go func() {
		status, _, _ := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples=16")
		blocked <- status
	}()
	go func() {
		status, _, _ := get(t, ts.URL+"/graphs/g/bfs?src=0")
		blocked <- status
	}()
	<-started
	<-started
	go func() {
		status, _, _ := get(t, ts.URL+"/graphs/g/components")
		blocked <- status
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c, _ := s.pool.LaneDepths(); c == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("filler request never queued in the cheap lane")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: a plain stats read is rejected...
	if status, _, _ := get(t, ts.URL+"/graphs/live/stats"); status != http.StatusTooManyRequests {
		t.Fatalf("saturated cheap lane returned %d, want 429", status)
	}
	// ...but ?stale=allow serves the pre-ingest result, labeled stale.
	status, hdr, _ := get(t, ts.URL+"/graphs/live/stats?stale=allow")
	if status != http.StatusOK {
		t.Fatalf("stale=allow: %d, want 200", status)
	}
	if hdr.Get("X-Graphct-Stale") == "" {
		t.Fatal("stale response missing X-Graphct-Stale epoch header")
	}

	close(release)
	for i := 0; i < 3; i++ {
		if status := <-blocked; status != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d", i, status)
		}
	}
}

// TestQoSBreakerWithLanes: circuit breakers stay per-(graph,kernel) with
// lanes on — a tripped centrality breaker rejects only centrality, while
// cheap kernels and the other expensive kernel keep serving.
func TestQoSBreakerWithLanes(t *testing.T) {
	armFailpoints(t, "kernel.exec=error(qos-breaker)*2")
	_, ts, _ := newTestServer(t, Config{
		MaxConcurrent: 2, CheapReserved: 1,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
	}, testGraph())

	for i := 0; i < 2; i++ {
		if status, _, _ := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples=16"); status != http.StatusInternalServerError {
			t.Fatalf("injected failure %d did not 500", i)
		}
	}
	if status, _, _ := get(t, ts.URL+"/graphs/g/kcentrality?k=1&samples=16"); status != http.StatusServiceUnavailable {
		t.Fatal("tripped breaker did not 503")
	}
	if status, _, _ := get(t, ts.URL+"/graphs/g/stats"); status != http.StatusOK {
		t.Fatal("cheap kernel caught the expensive kernel's breaker")
	}
	if status, _, _ := get(t, ts.URL+"/graphs/g/diameter"); status != http.StatusOK {
		t.Fatal("sibling expensive kernel caught kcentrality's breaker")
	}
}

// TestCheapP99ImprovesWithLanes is the acceptance scenario: identical
// mixed workload — a closed-loop cheap reader plus an open-loop stream of
// slow centrality requests — measured against lanes off and lanes on. The
// reservation must collapse the cheap tail, because cheap reads stop
// waiting for slots held by (deterministically slowed) centrality runs.
func TestCheapP99ImprovesWithLanes(t *testing.T) {
	testutil.CheckGoroutines(t)
	const bcDelay = 120 * time.Millisecond

	measure := func(reserved int) (cheap, bc load.ClassReport) {
		s, ts, _ := newTestServer(t, Config{
			MaxConcurrent: 2, CheapReserved: reserved, MaxQueued: 64,
			CacheBytes: -1, // no result cache: every read exercises admission
		}, testGraph())
		s.beforeKernel = func(kernel string) {
			if kernel == "kcentrality" {
				time.Sleep(bcDelay)
			}
		}
		rng := rand.New(rand.NewSource(7))
		var seq atomic.Int64
		target := load.Target{Base: ts.URL, Graph: "g"}
		reports := load.Run(context.Background(), []load.Class{
			{Name: "cheap", Workers: 4, Do: target.Kernel("bfs", func() string {
				return "src=" + strconv.Itoa(rng.Intn(400))
			})},
			{Name: "bc", QPS: 25, Workers: 64, Do: target.Kernel("kcentrality", func() string {
				return fmt.Sprintf("k=1&samples=%d", 16+seq.Add(1))
			})},
		}, load.Options{Duration: 1200 * time.Millisecond, Warmup: 300 * time.Millisecond})
		return reports[0], reports[1]
	}

	cheapOff, _ := measure(0)
	cheapOn, bcOn := measure(1)

	if cheapOff.Requests == 0 || cheapOn.Requests == 0 {
		t.Fatalf("no cheap requests measured: off %d on %d", cheapOff.Requests, cheapOn.Requests)
	}
	if errs := cheapOn.Errors + bcOn.Errors; errs != 0 {
		t.Fatalf("transport errors under lanes: %d", errs)
	}
	t.Logf("cheap p99: lanes off %.1fms (%d reqs), lanes on %.1fms (%d reqs)",
		cheapOff.P99Ms, cheapOff.Requests, cheapOn.P99Ms, cheapOn.Requests)

	// Lanes off: cheap reads queue behind ~120ms centrality slot-holders,
	// so the tail must show most of one delay. Lanes on: the reserved slot
	// keeps the tail an order of magnitude lower. The thresholds leave
	// slack for scheduler noise while keeping the separation unmistakable.
	if cheapOff.P99Ms < float64(bcDelay/time.Millisecond)/2 {
		t.Fatalf("lanes-off cheap p99 %.1fms shows no contention; the scenario lost its forcing function", cheapOff.P99Ms)
	}
	if cheapOn.P99Ms >= cheapOff.P99Ms/2 {
		t.Fatalf("cheap p99 with lanes on = %.1fms, not clearly better than %.1fms without",
			cheapOn.P99Ms, cheapOff.P99Ms)
	}
}

