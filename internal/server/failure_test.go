package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphct/internal/failpoint"
	"graphct/internal/gen"
)

// bgGet issues a request whose outcome nobody checks — used to occupy
// pool slots from goroutines, where t.Fatal is off limits.
func bgGet(url string) {
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
	}
}

// armFailpoints arms spec on the process-wide registry and guarantees
// cleanup, so one test's chaos never leaks into the next.
func armFailpoints(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(failpoint.Default.DisarmAll)
	if err := failpoint.Default.ArmAll(spec); err != nil {
		t.Fatalf("arm %q: %v", spec, err)
	}
}

// TestKernelPanicIsolation is the acceptance scenario: an injected kernel
// panic yields a 500 and a kernel_panics increment while the daemon keeps
// serving — the next request on the same server returns 200.
func TestKernelPanicIsolation(t *testing.T) {
	armFailpoints(t, "kernel.exec=panic(injected chaos)*1")
	s, ts, _ := newTestServer(t, Config{}, gen.Complete(4))

	status, _, body := get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking kernel: status %d body %s, want 500", status, body)
	}
	if !bytes.Contains(body, []byte("injected chaos")) {
		t.Fatalf("500 body %s does not carry the panic value", body)
	}
	if got := s.metrics.KernelPanics.Load(); got != 1 {
		t.Fatalf("kernel_panics = %d, want 1", got)
	}

	// The budget is spent: the same daemon must serve the retry.
	status, _, body = get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusOK {
		t.Fatalf("post-panic request: status %d body %s, want 200", status, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil || m["count"].(float64) != 1 {
		t.Fatalf("post-panic body %s, want components count 1", body)
	}
}

// TestBreakerTripsOverHTTP drives a kernel into repeated injected
// failures until the circuit breaker answers 503 without executing, then
// lets the cooldown probe heal it.
func TestBreakerTripsOverHTTP(t *testing.T) {
	armFailpoints(t, "kernel.exec=error(down)*3")
	s, ts, _ := newTestServer(t, Config{
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	}, gen.Complete(4))

	for i := 0; i < 3; i++ {
		if status, _, body := get(t, ts.URL+"/graphs/g/components"); status != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d body %s, want 500", i, status, body)
		}
	}
	status, hdr, body := get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusServiceUnavailable || hdr.Get("X-Graphct-Breaker") != "open" {
		t.Fatalf("tripped breaker: status %d header %q body %s, want 503/open", status, hdr.Get("X-Graphct-Breaker"), body)
	}
	if runs := s.metrics.KernelRuns("components"); runs != 3 {
		t.Fatalf("open breaker still executed kernels: runs = %d, want 3", runs)
	}
	if got := s.metrics.BreakerRejected.Load(); got != 1 {
		t.Fatalf("breaker_rejected = %d, want 1", got)
	}

	// After the cooldown the failpoint budget is exhausted, so the
	// half-open probe succeeds and the breaker closes.
	time.Sleep(60 * time.Millisecond)
	if status, _, body := get(t, ts.URL+"/graphs/g/components"); status != http.StatusOK {
		t.Fatalf("probe after cooldown: status %d body %s, want 200", status, body)
	}
	if st := s.breakers.State("g/components"); st != "closed" {
		t.Fatalf("breaker state after successful probe = %s, want closed", st)
	}
}

// TestStaleServingOn429 pins degraded serving: with the pool saturated, a
// request with ?stale=allow is answered from the last computed result
// (an older epoch) with X-Graphct-Stale, while the same request without
// the opt-in stays a 429.
func TestStaleServingOn429(t *testing.T) {
	s, ts, e := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1}, gen.Complete(4))

	// Compute once so the stale entry exists, then bump the epoch by
	// reloading the graph under the same name.
	if status, _, _ := get(t, ts.URL+"/graphs/g/components"); status != http.StatusOK {
		t.Fatal("seed request failed")
	}
	oldEpoch := e.Epoch
	s.reg.Add("g", gen.Complete(5))

	// Saturate: one blocked leader holds the only slot, one waiter fills
	// the queue. Distinct params keep them from coalescing.
	release := make(chan struct{})
	s.beforeKernel = func(string) { <-release }
	defer close(release)
	go bgGet(ts.URL + "/graphs/g/kcentrality?samples=16")
	go bgGet(ts.URL + "/graphs/g/kcentrality?samples=17")
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	status, _, _ := get(t, ts.URL+"/graphs/g/components")
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated pool without opt-in: status %d, want 429", status)
	}
	status, hdr, body := get(t, ts.URL+"/graphs/g/components?stale=allow")
	if status != http.StatusOK || hdr.Get("X-Graphct-Source") != "stale" {
		t.Fatalf("stale=allow: status %d source %q body %s", status, hdr.Get("X-Graphct-Source"), body)
	}
	if hdr.Get("X-Graphct-Stale") != strconv.FormatUint(oldEpoch, 10) {
		t.Fatalf("X-Graphct-Stale = %q, want epoch %d", hdr.Get("X-Graphct-Stale"), oldEpoch)
	}
	if got := s.metrics.StaleServed.Load(); got != 1 {
		t.Fatalf("stale_served = %d, want 1", got)
	}
	// A kernel with nothing computed yet has no stale fallback: still 429.
	status, _, _ = get(t, ts.URL+"/graphs/g/clustering?stale=allow")
	if status != http.StatusTooManyRequests {
		t.Fatalf("stale=allow without a stale entry: status %d, want 429", status)
	}
	if status, _, _ := get(t, ts.URL+"/graphs/g/components?stale=maybe"); status != http.StatusBadRequest {
		t.Fatal("bad stale param accepted")
	}
}

// TestIngestDedup pins idempotency: a batch retried under the same
// batch_id returns the original result without double-applying.
func TestIngestDedup(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.AddLive("live", 10); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{SnapshotEvery: -1})
	ts := newHTTPServer(t, s)

	batch := []map[string]any{{"u": 0, "v": 1}, {"u": 1, "v": 2}}
	buf, _ := json.Marshal(batch)
	post := func() (int, http.Header, ingestResult) {
		resp, err := http.Post(ts.URL+"/graphs/live/ingest?batch_id=b1", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res ingestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, res
	}

	status, hdr, first := post()
	if status != http.StatusOK || hdr.Get("X-Graphct-Deduped") != "" {
		t.Fatalf("first batch: status %d deduped %q", status, hdr.Get("X-Graphct-Deduped"))
	}
	if first.Inserted != 2 || first.Edges != 2 {
		t.Fatalf("first batch result %+v, want 2 inserted", first)
	}
	status, hdr, second := post()
	if status != http.StatusOK || hdr.Get("X-Graphct-Deduped") != "true" {
		t.Fatalf("retried batch: status %d deduped %q", status, hdr.Get("X-Graphct-Deduped"))
	}
	if second != first {
		t.Fatalf("deduped result %+v differs from original %+v", second, first)
	}
	if got := s.metrics.IngestDeduped.Load(); got != 1 {
		t.Fatalf("ingest_deduped = %d, want 1", got)
	}
	if batches := s.metrics.IngestBatches.Load(); batches != 1 {
		t.Fatalf("ingest_batches = %d, want 1 (no double apply)", batches)
	}
	// The edge count proves no double application.
	status, _, body := get(t, ts.URL+"/graphs/live/stats")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"edges":2`)) {
		t.Fatalf("stats after dedup: %d %s, want 2 edges", status, body)
	}

	if resp, err := http.Post(ts.URL+"/graphs/live/ingest?batch_id="+strings.Repeat("x", 129), "application/json", bytes.NewReader(buf)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized batch_id: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestReadyz pins the readiness lifecycle: 503 while preloading, 200 once
// ready, 503 again when an admission queue fills.
func TestReadyz(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1}, gen.Complete(4))

	if status, _, body := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("fresh server readyz: %d %s, want 200", status, body)
	}
	s.SetReady(false)
	status, _, body := get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("starting")) {
		t.Fatalf("not-ready readyz: %d %s, want 503 starting", status, body)
	}
	// Liveness is independent of readiness.
	if status, _, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatal("healthz must stay 200 while not ready")
	}
	s.SetReady(true)

	// Saturate the kernel queue: readiness flips to 503 "saturated".
	release := make(chan struct{})
	s.beforeKernel = func(string) { <-release }
	defer close(release)
	go bgGet(ts.URL + "/graphs/g/kcentrality?samples=16")
	go bgGet(ts.URL + "/graphs/g/kcentrality?samples=17")
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	status, _, body = get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("saturated")) {
		t.Fatalf("saturated readyz: %d %s, want 503 saturated", status, body)
	}
}

// TestFailpointEndpointGating: the debug endpoint is 404 unless Debug is
// configured, and when enabled it arms, lists and disarms points.
func TestFailpointEndpointGating(t *testing.T) {
	t.Cleanup(failpoint.Default.DisarmAll)

	_, tsOff, _ := newTestServer(t, Config{}, gen.Complete(4))
	if status, _, _ := get(t, tsOff.URL+"/debug/failpoints"); status != http.StatusNotFound {
		t.Fatal("failpoint endpoint exposed without Debug")
	}

	_, ts, _ := newTestServer(t, Config{Debug: true}, gen.Complete(4))
	post := func(req failpointRequest) (int, []byte) {
		t.Helper()
		b, _ := json.Marshal(req)
		return postJSON(t, ts.URL+"/debug/failpoints", json.RawMessage(b))
	}
	if status, body := post(failpointRequest{Arm: "kernel.exec=error(armed-via-http)*1"}); status != http.StatusOK {
		t.Fatalf("arm: %d %s", status, body)
	}
	status, _, body := get(t, ts.URL+"/debug/failpoints")
	if status != http.StatusOK || !bytes.Contains(body, []byte("kernel.exec")) {
		t.Fatalf("list: %d %s", status, body)
	}
	if status, _, body := get(t, ts.URL+"/graphs/g/components"); status != http.StatusInternalServerError {
		t.Fatalf("armed point did not fire: %d %s", status, body)
	}
	if status, body := post(failpointRequest{DisarmAll: true}); status != http.StatusOK {
		t.Fatalf("disarm_all: %d %s", status, body)
	}
	if status, body := post(failpointRequest{}); status != http.StatusBadRequest {
		t.Fatalf("empty request: %d %s, want 400", status, body)
	}
	if status, body := post(failpointRequest{Arm: "bad spec ="}); status != http.StatusBadRequest {
		t.Fatalf("bad spec: %d %s, want 400", status, body)
	}
	if status, body := post(failpointRequest{Disarm: "never-armed"}); status != http.StatusNotFound {
		t.Fatalf("disarm unknown: %d %s, want 404", status, body)
	}
}
