// Package server implements graphctd's long-running analysis service: a
// registry of named in-memory CSR graphs shared by all clients, with the
// toolkit's kernels exposed as HTTP JSON endpoints. The paper's scripting
// interface amortizes one expensive ingest across many kernel invocations
// within a single process; this server extends that amortization across
// processes and users, holding graphs resident and serving concurrent
// analysis traffic.
//
// The serving path is built for concurrency, not just correctness:
//
//   - results are cached by (graph epoch, kernel, params) in a
//     byte-bounded LRU, so repeated analyses cost one map lookup;
//   - concurrent identical requests coalesce (singleflight) into one
//     kernel execution whose result every caller shares;
//   - kernel executions pass an admission-controlled pool — a bounded
//     number run at once (each already saturates cores via internal/par)
//     and a bounded queue applies backpressure by rejecting overflow with
//     429 rather than accumulating unbounded goroutines;
//   - every request carries a context deadline that the long-running
//     kernels (betweenness source loops, SSSP relaxation rounds, diameter
//     sampling) observe at cooperative checkpoints.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphct/internal/bc"
	"graphct/internal/blob"
	"graphct/internal/core"
	"graphct/internal/failpoint"
	"graphct/internal/sssp"
	"graphct/internal/stats"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrent bounds simultaneously executing kernels (default 2).
	MaxConcurrent int
	// MaxQueued bounds kernel requests waiting for a slot; excess
	// requests get 429 (default 16). With lanes enabled (CheapReserved)
	// the bound applies per lane.
	MaxQueued int
	// CheapReserved enables QoS priority lanes: this many MaxConcurrent
	// slots are reserved for cheap-class kernels (stats, degrees,
	// components, clustering, kcores, bfs, sssp), capping expensive-class
	// kernels (kcentrality, diameter) at MaxConcurrent-CheapReserved so
	// cheap reads never queue behind a long centrality run. 0 (default)
	// disables the lanes: one shared pool, pre-QoS behavior.
	CheapReserved int
	// CacheBytes bounds the result cache (default 64 MiB; <0 disables).
	CacheBytes int64
	// CacheMaxEntry is the cost-aware cache admission bound: results
	// larger than this are served but never cached, so one giant
	// expensive result cannot evict hundreds of cheap entries. 0 defaults
	// to CacheBytes/8; negative disables the bound.
	CacheMaxEntry int64
	// ClientRate enables per-client token-bucket rate limiting of kernel
	// requests, keyed on the X-Graphct-Client header: each client earns
	// this many requests per second up to ClientBurst, and a drained
	// bucket answers 429 with Retry-After. 0 (default) disables limiting.
	ClientRate float64
	// ClientBurst is the token-bucket capacity per client (default 2×
	// ClientRate, minimum 1).
	ClientBurst int
	// DefaultTimeout bounds each kernel request that does not set its own
	// ?timeout_ms (0 = no default deadline).
	DefaultTimeout time.Duration
	// Seed drives the sampling kernels, so identical requests are
	// deterministic and cache/coalescing-friendly.
	Seed int64
	// IngestConcurrent bounds simultaneously applying ingest batches
	// (default 2). Ingest has its own pool so writer bursts and kernel
	// bursts cannot starve each other.
	IngestConcurrent int
	// IngestQueued bounds ingest batches waiting for a slot; excess gets
	// 429 (default 64).
	IngestQueued int
	// SnapshotEvery is the snapshot-on-threshold policy: a live graph
	// publishes a new epoch once this many effective mutations (edges
	// actually added or removed) accumulate. 0 defaults to 4096; negative
	// snapshots after every effective batch.
	SnapshotEvery int64
	// MaxBatch bounds the updates accepted in one ingest request
	// (default 1 << 20); larger batches get 413.
	MaxBatch int
	// BreakerThreshold trips a (graph, kernel) circuit breaker after this
	// many consecutive kernel failures (default 5; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before it
	// half-opens for a single probe (default 1s).
	BreakerCooldown time.Duration
	// Debug exposes the failpoint control endpoint (/debug/failpoints).
	// Off by default: fault injection is an operator tool, not an API.
	Debug bool
	// DataDir enables durability: live graphs persist epoch snapshots to
	// a blob store under it and log every applied batch to a write-ahead
	// log between snapshots, so a restarted daemon recovers them (see
	// RecoverAll). Empty keeps the pre-durability in-memory behavior.
	DataDir string
	// RetainEpochs bounds how many durable snapshot epochs each live
	// graph keeps (default 3, minimum 1). Retained epochs serve
	// ?epoch=E point-in-time reads and give recovery fallbacks when the
	// newest snapshot is damaged.
	RetainEpochs int
}

// Server serves graph-analysis requests over a Registry.
type Server struct {
	reg      *Registry
	cache    *Cache
	flight   *flightGroup
	pool     *LanePool
	ingest   *Pool
	metrics  *Metrics
	breakers *BreakerSet
	limiter  *RateLimiter // nil = per-client rate limiting disabled
	mux      *http.ServeMux
	cfg      Config

	// ready gates /readyz: daemons flip it once preloads finish, so load
	// balancers hold traffic while multi-GiB graphs parse. Servers start
	// ready; cmd/graphctd opts into the not-ready window.
	ready atomic.Bool
	// recovering marks the boot-time replay window: /readyz reports
	// "recovering" (still 503) while RecoverAll rebuilds live graphs.
	recovering atomic.Bool

	// Durability state; store is nil without Config.DataDir.
	store  *blob.FS
	walDir string
	retain int

	// hist caches point-in-time entries loaded for ?epoch=E reads.
	histMu sync.Mutex
	hist   map[string]*GraphEntry

	// beforeKernel, when non-nil, runs inside the pool slot right before
	// a kernel executes — a test seam for holding executions in flight.
	beforeKernel func(kernel string)
	// beforeIngest is the same seam for the ingest path, running inside
	// the ingest pool slot before the batch takes the writer lock.
	beforeIngest func(name string)
}

// New returns a Server over reg.
func New(reg *Registry, cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.IngestQueued <= 0 {
		cfg.IngestQueued = 64
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 20
	}
	if cfg.RetainEpochs == 0 {
		cfg.RetainEpochs = 3
	}
	if cfg.RetainEpochs < 1 {
		cfg.RetainEpochs = 1
	}
	if cfg.ClientBurst == 0 {
		cfg.ClientBurst = int(2 * cfg.ClientRate)
	}
	s := &Server{
		reg:      reg,
		cache:    NewCache(cfg.CacheBytes),
		flight:   newFlightGroup(),
		pool:     NewLanePool(cfg.MaxConcurrent, cfg.CheapReserved, cfg.MaxQueued),
		ingest:   NewPool(cfg.IngestConcurrent, cfg.IngestQueued),
		metrics:  NewMetrics(),
		breakers: NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		limiter:  NewRateLimiter(cfg.ClientRate, cfg.ClientBurst),
		cfg:      cfg,
		retain:   cfg.RetainEpochs,
		hist:     make(map[string]*GraphEntry),
	}
	switch {
	case cfg.CacheMaxEntry > 0:
		s.cache.SetMaxEntry(cfg.CacheMaxEntry)
	case cfg.CacheMaxEntry == 0 && cfg.CacheBytes > 0:
		s.cache.SetMaxEntry(cfg.CacheBytes / 8)
	}
	if cfg.DataDir != "" {
		s.store = blob.NewFS(filepath.Join(cfg.DataDir, "blobs"))
		s.walDir = filepath.Join(cfg.DataDir, "wal")
	}
	s.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("POST /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("POST /graphs/{name}/extract", s.handleExtract)
	mux.HandleFunc("POST /graphs/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /graphs/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /graphs/{name}/epochs", s.handleEpochs)
	mux.HandleFunc("GET /graphs/{name}/{kernel}", s.handleKernel)
	s.mux = mux
	return s
}

// Metrics exposes the server's counters (used by tests and cmd/graphctd).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetReady flips the /readyz gate. Servers construct ready; a daemon
// that preloads graphs in the background sets false before listening and
// true once every preload has parsed.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetRecovering marks the boot-time replay window so /readyz can report
// "recovering" (still not ready) while durable graphs rebuild.
func (s *Server) SetRecovering(recovering bool) { s.recovering.Store(recovering) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "graphs": len(s.reg.List())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.pool, s.ingest, s.cache, s.breakers, s.limiter))
}

type graphInfo struct {
	Name     string `json:"name"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Directed bool   `json:"directed"`
	Live     bool   `json:"live,omitempty"`
}

func entryInfo(e *GraphEntry) graphInfo {
	return graphInfo{
		Name:     e.Name,
		Epoch:    e.Epoch,
		Vertices: e.Graph.NumVertices(),
		Edges:    e.Graph.NumEdges(),
		Directed: e.Graph.Directed(),
		Live:     e.Live != nil,
	}
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.List()
	out := make([]graphInfo, len(entries))
	for i, e := range entries {
		out[i] = entryInfo(e)
	}
	writeJSON(w, http.StatusOK, out)
}

type loadRequest struct {
	Name     string `json:"name"`
	Format   string `json:"format"` // dimacs | edgelist | binary | live
	Path     string `json:"path"`
	Directed bool   `json:"directed"`
	// Vertices sizes a live graph (format "live"), which starts empty and
	// grows through POST /graphs/{name}/ingest instead of a file.
	Vertices int `json:"vertices,omitempty"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Format == "live" {
		if req.Name == "" {
			writeError(w, http.StatusBadRequest, "name is required")
			return
		}
		e, err := s.AddLive(req.Name, req.Vertices)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "create live %q: %v", req.Name, err)
			return
		}
		writeJSON(w, http.StatusCreated, entryInfo(e))
		return
	}
	if req.Name == "" || req.Format == "" || req.Path == "" {
		writeError(w, http.StatusBadRequest, "name, format and path are required")
		return
	}
	e, err := s.reg.Load(req.Name, req.Format, req.Path, req.Directed)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "load %q: %v", req.Name, err)
		return
	}
	writeJSON(w, http.StatusCreated, entryInfo(e))
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok || !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// Deleting a durable live graph also deletes its snapshots and log:
	// the name is gone, not just the memory.
	if s.durable() && e.Live != nil {
		s.dropDurable(name, e.Live)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

type extractRequest struct {
	Component int    `json:"component"` // 1 = largest
	As        string `json:"as"`
}

// handleExtract registers the rank-th largest component of a graph as a
// new named graph — the server analogue of the script's
// "extract component N => file.bin", with the registry standing in for
// the filesystem.
func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	var req extractRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.As == "" {
		writeError(w, http.StatusBadRequest, "\"as\" (target graph name) is required")
		return
	}
	if req.Component == 0 {
		req.Component = 1
	}
	tk := core.New(e.Graph, core.WithSeed(s.cfg.Seed))
	if err := tk.ExtractComponent(req.Component); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// The derived entry keeps an id trail to the loaded graph: the
	// toolkit's orig ids point into the parent's internal labels, which
	// the parent's own translation lifts to client-visible ids.
	var orig []int32
	if sub := tk.OrigIDs(); sub != nil {
		orig = make([]int32, len(sub))
		for i, v := range sub {
			orig[i] = e.ToExternal(v)
		}
	} else if e.Orig != nil {
		orig = e.Orig
	}
	ne := s.reg.AddWithOrig(req.As, tk.Graph(), orig)
	writeJSON(w, http.StatusCreated, entryInfo(ne))
}

// kernelRun executes one kernel over a graph entry; the canonical param
// string doubles as the cache-key suffix.
type kernelRun func(ctx context.Context) (any, error)

// parseKernel validates a kernel request and returns its canonical
// parameter string plus a closure that runs it. Validation happens here,
// before the request touches the cache or pool, so malformed requests are
// rejected with 400 without consuming serving-path resources.
func (s *Server) parseKernel(kernel string, e *GraphEntry, q url.Values) (string, kernelRun, error) {
	g := e.Graph
	tk := func() *core.Toolkit { return core.New(g, core.WithSeed(s.cfg.Seed)) }
	switch kernel {
	case "components":
		return "", func(ctx context.Context) (any, error) {
			census := tk().ComponentCensus()
			type comp struct {
				Rank int   `json:"rank"`
				Size int64 `json:"size"`
			}
			top := make([]comp, 0, 20)
			for i, c := range census {
				if i >= 20 {
					break
				}
				top = append(top, comp{Rank: i + 1, Size: c.Size})
			}
			return map[string]any{"count": len(census), "largest": top}, nil
		}, nil
	case "stats":
		return "", func(ctx context.Context) (any, error) {
			ds := tk().DegreeStats()
			alpha, used := stats.PowerLawAlpha(g, 4)
			return map[string]any{
				"vertices": g.NumVertices(), "edges": g.NumEdges(),
				"degree_mean": ds.Mean, "degree_variance": ds.Variance, "degree_max": ds.Max,
				"power_law_alpha": alpha, "power_law_fit_vertices": used,
			}, nil
		}, nil
	case "degrees":
		return "", func(ctx context.Context) (any, error) {
			ds := tk().DegreeStats()
			return ds, nil
		}, nil
	case "clustering":
		return "", func(ctx context.Context) (any, error) {
			return map[string]any{"global_clustering": tk().GlobalClustering()}, nil
		}, nil
	case "diameter":
		return "", func(ctx context.Context) (any, error) {
			d, err := tk().DiameterCtx(ctx)
			if err != nil {
				return nil, err
			}
			return d, nil
		}, nil
	case "kcores":
		k, err := intParam(q, "k", 1)
		if err != nil || k < 0 {
			return "", nil, fmt.Errorf("bad k %q", q.Get("k"))
		}
		return fmt.Sprintf("k=%d", k), func(ctx context.Context) (any, error) {
			t := tk()
			t.KCores(int32(k))
			sub := t.Graph()
			return map[string]any{"k": k, "vertices": sub.NumVertices(), "edges": sub.NumEdges()}, nil
		}, nil
	case "kcentrality":
		k, err := intParam(q, "k", 0)
		if err != nil || k < 0 || k > bc.MaxK {
			return "", nil, fmt.Errorf("bad k %q (supported range 0..%d)", q.Get("k"), bc.MaxK)
		}
		samples, err := intParam(q, "samples", 256)
		if err != nil {
			return "", nil, fmt.Errorf("bad samples %q", q.Get("samples"))
		}
		top, err := intParam(q, "top", 10)
		if err != nil || top < 1 {
			return "", nil, fmt.Errorf("bad top %q", q.Get("top"))
		}
		return fmt.Sprintf("k=%d&samples=%d&top=%d", k, samples, top), func(ctx context.Context) (any, error) {
			// Centrality treats the graph as undirected; resolving the
			// entry's memoized view here keeps concurrent requests on a
			// directed graph from each paying (or racing to share) the
			// symmetrization inside the kernel.
			res, err := core.New(e.Undirected(), core.WithSeed(s.cfg.Seed)).KCentralityCtx(ctx, k, samples)
			if err != nil {
				return nil, err
			}
			type scored struct {
				Vertex int32   `json:"vertex"`
				Score  float64 `json:"score"`
			}
			ranked := make([]scored, 0, top)
			for _, v := range res.TopK(top) {
				// Translate to client-visible ids: a reorder-relabeled
				// graph must never leak internal labels.
				ranked = append(ranked, scored{Vertex: e.ToExternal(v), Score: res.Scores[v]})
			}
			return map[string]any{"k": k, "sources": len(res.Sources), "top": ranked}, nil
		}, nil
	case "bfs":
		src, err := vertexParam(q, "src", g.NumVertices())
		if err != nil {
			return "", nil, err
		}
		depth, err := intParam(q, "depth", -1)
		if err != nil {
			return "", nil, fmt.Errorf("bad depth %q", q.Get("depth"))
		}
		return fmt.Sprintf("depth=%d&src=%d", depth, src), func(ctx context.Context) (any, error) {
			// src is the client's id; the kernel runs on internal labels.
			res := tk().BFS(e.ToInternal(src), depth)
			return map[string]any{"src": src, "reached": res.NumReached(), "depth": res.Depth}, nil
		}, nil
	case "sssp":
		src, err := vertexParam(q, "src", g.NumVertices())
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("src=%d", src), func(ctx context.Context) (any, error) {
			res, err := tk().SSSPCtx(ctx, e.ToInternal(src))
			if err != nil {
				return nil, err
			}
			reached, maxDist := 0, int64(0)
			for _, d := range res.Dist {
				if d != sssp.Inf {
					reached++
					if d > maxDist {
						maxDist = d
					}
				}
			}
			return map[string]any{"src": src, "reached": reached, "max_distance": maxDist}, nil
		}, nil
	default:
		return "", nil, errUnknownKernel
	}
}

var errUnknownKernel = errors.New("unknown kernel")

func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func vertexParam(q url.Values, name string, n int) (int32, error) {
	v, err := intParam(q, name, 0)
	if err != nil || v < 0 || v >= n {
		return 0, fmt.Errorf("bad vertex %q (graph has %d vertices)", q.Get(name), n)
	}
	return int32(v), nil
}

// errKernelPanic marks a kernel execution that panicked and was isolated
// by the per-kernel recover; it maps to HTTP 500 instead of a dead daemon.
var errKernelPanic = errors.New("kernel panicked")

// runKernel executes one kernel with panic isolation: a panicking kernel
// (organic or injected via the kernel.exec failpoint) is converted into
// an error on this request alone, counted in kernel_panics, and the
// daemon keeps serving.
func (s *Server) runKernel(ctx context.Context, run kernelRun) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.KernelPanics.Add(1)
			err = fmt.Errorf("%w: %v", errKernelPanic, r)
		}
	}()
	if err := failpoint.Eval(failpoint.KernelExec); err != nil {
		return nil, err
	}
	return run(ctx)
}

// cacheResult inserts a computed kernel result under its epoch-scoped key
// and refreshes the epochless stale entry behind ?stale=allow. The
// cache.put failpoint drops both insertions — degrading hit rate, never
// the response. An empty staleKey skips the stale refresh: historical
// (?epoch=E) reads must not masquerade as the latest result.
func (s *Server) cacheResult(key, staleKey string, epoch uint64, body []byte) {
	if err := failpoint.Eval(failpoint.CachePut); err != nil {
		s.metrics.CacheDropped.Add(1)
		return
	}
	// A rejected admission with caching enabled means the value outgrew
	// the cost-aware entry bound (or the whole cache): served, not stored.
	if !s.cache.Put(key, body) && s.cfg.CacheBytes > 0 {
		s.metrics.CacheOversized.Add(1)
	}
	if staleKey != "" {
		s.cache.Put(staleKey, encodeStale(epoch, body))
	}
}

// handleKernel is the concurrent serving path: cache lookup, circuit
// breaker, then singleflight-coalesced execution through the admission
// pool with panic isolation and optional stale fallback.
func (s *Server) handleKernel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	kernel := r.PathValue("kernel")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// ?epoch=E pins the request to a durable point-in-time snapshot
	// instead of the current entry (which stays the default).
	historical := false
	if v := r.URL.Query().Get("epoch"); v != "" {
		epoch, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad epoch %q", v)
			return
		}
		he, err := s.epochEntry(name, epoch, e)
		if err != nil {
			writeError(w, http.StatusNotFound, "epoch %d of %q: %v", epoch, name, err)
			return
		}
		historical = he != e
		e = he
	}
	params, run, err := s.parseKernel(kernel, e, r.URL.Query())
	if err != nil {
		if errors.Is(err, errUnknownKernel) {
			writeError(w, http.StatusNotFound, "unknown kernel %q", kernel)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	// Validate the deadline before the cache lookup so a malformed
	// timeout_ms is a 400 regardless of whether the result is cached.
	timeout := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "bad timeout_ms %q", v)
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	staleOK := false
	switch r.URL.Query().Get("stale") {
	case "", "deny":
	case "allow":
		staleOK = true
	default:
		writeError(w, http.StatusBadRequest, "bad stale %q (want allow or deny)", r.URL.Query().Get("stale"))
		return
	}
	// Classify before any resource is consumed: the class decides which
	// admission lane the request competes in, and the header lets clients
	// (and the load harness) attribute the latency they saw to a lane.
	class := costClass(kernel)
	w.Header().Set("X-Graphct-Class", class)
	// Per-client fairness gates the whole serving path, cache hits
	// included: a client above its rate is told to back off even when the
	// answer would have been free, otherwise one hot client could still
	// monopolize the socket and starve the metrics a fair share.
	if ok, retry := s.limiter.Allow(r.Header.Get(ClientHeader)); !ok {
		s.metrics.RateLimited.Add(1)
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "client rate limit exceeded (retry in %ds)", secs)
		return
	}
	s.metrics.Requests.Add(1)

	// The whole request — cache key, coalescing group, kernel input — is
	// pinned to the entry resolved above, so a snapshot published mid-flight
	// cannot tear the response; the header tells clients which epoch served.
	epochHeader(w, e.Epoch)
	key := fmt.Sprintf("%s@%d/%s?%s", e.Name, e.Epoch, kernel, params)
	staleKey := staleCacheKey(e.Name, kernel, params)
	if historical {
		staleKey = "" // point-in-time results never refresh the stale entry
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		s.writeRaw(w, body, "cache")
		return
	}
	s.metrics.CacheMiss.Add(1)

	// Cache hits serve even through an open breaker (they cost no kernel
	// run); everything past this point risks an execution, so a tripped
	// (graph, kernel) pair short-circuits to 503 — or a stale hit.
	record, err := s.breakers.Allow(name + "/" + kernel)
	if err != nil {
		s.metrics.BreakerRejected.Add(1)
		if staleOK && s.serveStale(w, staleKey) {
			return
		}
		w.Header().Set("X-Graphct-Breaker", "open")
		s.writeKernelError(w, err)
		return
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Coalesce identical concurrent requests: the leader runs the kernel
	// under its own deadline; followers share the leader's result (and,
	// if the leader is cancelled, its cancellation).
	body, err, shared := s.flight.Do(key, func() ([]byte, error) {
		if err := s.pool.Acquire(ctx, class); err != nil {
			return nil, err
		}
		defer s.pool.Release(class)
		s.metrics.KernelStarted(kernel)
		if s.beforeKernel != nil {
			s.beforeKernel(kernel)
		}
		start := time.Now()
		res, err := s.runKernel(ctx, run)
		s.metrics.ObserveLatency(kernel, time.Since(start))
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		s.cacheResult(key, staleKey, e.Epoch, b)
		return b, nil
	})
	if shared {
		s.metrics.Coalesced.Add(1)
	}
	// Only the flight leader's outcome feeds the breaker, and only
	// outcomes that say something about the kernel: backpressure and
	// client cancellations are skipped.
	switch {
	case shared, errors.Is(err, ErrQueueFull),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		record(breakerSkip)
	case err != nil:
		record(breakerFailure)
	default:
		record(breakerSuccess)
	}
	if err != nil {
		if staleOK && errors.Is(err, ErrQueueFull) && s.serveStale(w, staleKey) {
			return
		}
		s.writeKernelError(w, err)
		return
	}
	source := "computed"
	if shared {
		source = "coalesced"
	}
	s.writeRaw(w, body, source)
}

// staleCacheKey is the epochless cache key holding the latest computed
// result for (graph, kernel, params), whatever epoch produced it. The
// NUL separator keeps it disjoint from epoch-scoped keys, which never
// contain one.
func staleCacheKey(name, kernel, params string) string {
	return "stale\x00" + name + "/" + kernel + "?" + params
}

// encodeStale prefixes body with the big-endian epoch that computed it.
func encodeStale(epoch uint64, body []byte) []byte {
	out := make([]byte, 8+len(body))
	binary.BigEndian.PutUint64(out, epoch)
	copy(out[8:], body)
	return out
}

// serveStale answers a rejected request from the epochless stale entry,
// if one exists: HTTP 200 with X-Graphct-Stale naming the epoch that
// actually computed the body (X-Graphct-Epoch still names the current
// one). Returns false when nothing stale is cached.
func (s *Server) serveStale(w http.ResponseWriter, staleKey string) bool {
	raw, ok := s.cache.Get(staleKey)
	if !ok || len(raw) < 8 {
		return false
	}
	s.metrics.StaleServed.Add(1)
	w.Header().Set("X-Graphct-Stale", strconv.FormatUint(binary.BigEndian.Uint64(raw), 10))
	s.writeRaw(w, raw[8:], "stale")
	return true
}

func (s *Server) writeRaw(w http.ResponseWriter, body []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Graphct-Source", source)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) writeKernelError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.Rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrBreakerOpen):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.Canceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, "kernel canceled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
