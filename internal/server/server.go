// Package server implements graphctd's long-running analysis service: a
// registry of named in-memory CSR graphs shared by all clients, with the
// toolkit's kernels exposed as HTTP JSON endpoints. The paper's scripting
// interface amortizes one expensive ingest across many kernel invocations
// within a single process; this server extends that amortization across
// processes and users, holding graphs resident and serving concurrent
// analysis traffic.
//
// The serving path is built for concurrency, not just correctness:
//
//   - results are cached by (graph epoch, kernel, params) in a
//     byte-bounded LRU, so repeated analyses cost one map lookup;
//   - concurrent identical requests coalesce (singleflight) into one
//     kernel execution whose result every caller shares;
//   - kernel executions pass an admission-controlled pool — a bounded
//     number run at once (each already saturates cores via internal/par)
//     and a bounded queue applies backpressure by rejecting overflow with
//     429 rather than accumulating unbounded goroutines;
//   - every request carries a context deadline that the long-running
//     kernels (betweenness source loops, SSSP relaxation rounds, diameter
//     sampling) observe at cooperative checkpoints.
//
// The package is organized as composable roles around one serving core:
//
//   - server.go — the core: Config, the Server that owns a Registry plus
//     the admission/cache/breaker machinery, and the worker-role mux;
//   - handlers.go / kernels.go — the HTTP handlers and the kernel
//     dispatch table they validate against;
//   - ingest.go / persist.go — the live-graph write path and durability;
//   - replica.go — the follower role: snapshot/WAL streaming endpoints
//     on the leader side, and the tailer that keeps a follower's graphs
//     bit-identical to the leader's at pinned epochs;
//   - router.go — the coordinator role: a mux-compatible Router that owns
//     no graphs and proxies to workers over a consistent-hash ring.
//
// cmd/graphctd composes these roles behind flags; embedders can do the
// same with New (worker) and NewRouter (coordinator).
package server

import (
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"graphct/internal/api"
	"graphct/internal/blob"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrent bounds simultaneously executing kernels (default 2).
	MaxConcurrent int
	// MaxQueued bounds kernel requests waiting for a slot; excess
	// requests get 429 (default 16). With lanes enabled (CheapReserved)
	// the bound applies per lane.
	MaxQueued int
	// CheapReserved enables QoS priority lanes: this many MaxConcurrent
	// slots are reserved for cheap-class kernels (stats, degrees,
	// components, clustering, kcores, bfs, sssp), capping expensive-class
	// kernels (kcentrality, diameter) at MaxConcurrent-CheapReserved so
	// cheap reads never queue behind a long centrality run. 0 (default)
	// disables the lanes: one shared pool, pre-QoS behavior.
	CheapReserved int
	// CacheBytes bounds the result cache (default 64 MiB; <0 disables).
	CacheBytes int64
	// CacheMaxEntry is the cost-aware cache admission bound: results
	// larger than this are served but never cached, so one giant
	// expensive result cannot evict hundreds of cheap entries. 0 defaults
	// to CacheBytes/8; negative disables the bound.
	CacheMaxEntry int64
	// ClientRate enables per-client token-bucket rate limiting of kernel
	// requests, keyed on the X-Graphct-Client header: each client earns
	// this many requests per second up to ClientBurst, and a drained
	// bucket answers 429 with Retry-After. 0 (default) disables limiting.
	ClientRate float64
	// ClientBurst is the token-bucket capacity per client (default 2×
	// ClientRate, minimum 1).
	ClientBurst int
	// DefaultTimeout bounds each kernel request that does not set its own
	// ?timeout_ms (0 = no default deadline).
	DefaultTimeout time.Duration
	// Seed drives the sampling kernels, so identical requests are
	// deterministic and cache/coalescing-friendly.
	Seed int64
	// IngestConcurrent bounds simultaneously applying ingest batches
	// (default 2). Ingest has its own pool so writer bursts and kernel
	// bursts cannot starve each other.
	IngestConcurrent int
	// IngestQueued bounds ingest batches waiting for a slot; excess gets
	// 429 (default 64).
	IngestQueued int
	// SnapshotEvery is the snapshot-on-threshold policy: a live graph
	// publishes a new epoch once this many effective mutations (edges
	// actually added or removed) accumulate. 0 defaults to 4096; negative
	// snapshots after every effective batch.
	SnapshotEvery int64
	// MaxBatch bounds the updates accepted in one ingest request
	// (default 1 << 20); larger batches get 413.
	MaxBatch int
	// BreakerThreshold trips a (graph, kernel) circuit breaker after this
	// many consecutive kernel failures (default 5; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before it
	// half-opens for a single probe (default 1s).
	BreakerCooldown time.Duration
	// Debug exposes the failpoint control endpoint (/debug/failpoints).
	// Off by default: fault injection is an operator tool, not an API.
	Debug bool
	// DataDir enables durability: live graphs persist epoch snapshots to
	// a blob store under it and log every applied batch to a write-ahead
	// log between snapshots, so a restarted daemon recovers them (see
	// RecoverAll). Empty keeps the pre-durability in-memory behavior.
	DataDir string
	// RetainEpochs bounds how many durable snapshot epochs each live
	// graph keeps (default 3, minimum 1). Retained epochs serve
	// ?epoch=E point-in-time reads and give recovery fallbacks when the
	// newest snapshot is damaged.
	RetainEpochs int
}

// Server serves graph-analysis requests over a Registry.
type Server struct {
	reg      *Registry
	cache    *Cache
	flight   *flightGroup
	pool     *LanePool
	ingest   *Pool
	metrics  *Metrics
	breakers *BreakerSet
	limiter  *RateLimiter // nil = per-client rate limiting disabled
	mux      *http.ServeMux
	cfg      Config

	// ready gates /readyz: daemons flip it once preloads finish, so load
	// balancers hold traffic while multi-GiB graphs parse. Servers start
	// ready; cmd/graphctd opts into the not-ready window.
	ready atomic.Bool
	// recovering marks the boot-time replay window: /readyz reports
	// "recovering" (still 503) while RecoverAll rebuilds live graphs.
	recovering atomic.Bool

	// Durability state; store is nil without Config.DataDir.
	store  *blob.FS
	walDir string
	retain int

	// hist caches point-in-time entries loaded for ?epoch=E reads.
	histMu sync.Mutex
	hist   map[string]*GraphEntry

	// beforeKernel, when non-nil, runs inside the pool slot right before
	// a kernel executes — a test seam for holding executions in flight.
	beforeKernel func(kernel string)
	// beforeIngest is the same seam for the ingest path, running inside
	// the ingest pool slot before the batch takes the writer lock.
	beforeIngest func(name string)
}

// New returns a Server over reg.
func New(reg *Registry, cfg Config) *Server {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.IngestQueued <= 0 {
		cfg.IngestQueued = 64
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 20
	}
	if cfg.RetainEpochs == 0 {
		cfg.RetainEpochs = 3
	}
	if cfg.RetainEpochs < 1 {
		cfg.RetainEpochs = 1
	}
	if cfg.ClientBurst == 0 {
		cfg.ClientBurst = int(2 * cfg.ClientRate)
	}
	s := &Server{
		reg:      reg,
		cache:    NewCache(cfg.CacheBytes),
		flight:   newFlightGroup(),
		pool:     NewLanePool(cfg.MaxConcurrent, cfg.CheapReserved, cfg.MaxQueued),
		ingest:   NewPool(cfg.IngestConcurrent, cfg.IngestQueued),
		metrics:  NewMetrics(),
		breakers: NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		limiter:  NewRateLimiter(cfg.ClientRate, cfg.ClientBurst),
		cfg:      cfg,
		retain:   cfg.RetainEpochs,
		hist:     make(map[string]*GraphEntry),
	}
	switch {
	case cfg.CacheMaxEntry > 0:
		s.cache.SetMaxEntry(cfg.CacheMaxEntry)
	case cfg.CacheMaxEntry == 0 && cfg.CacheBytes > 0:
		s.cache.SetMaxEntry(cfg.CacheBytes / 8)
	}
	if cfg.DataDir != "" {
		s.store = blob.NewFS(filepath.Join(cfg.DataDir, "blobs"))
		s.walDir = filepath.Join(cfg.DataDir, "wal")
	}
	s.ready.Store(true)
	s.mux = s.buildMux()
	return s
}

// buildMux wires the worker role's HTTP surface over the serving core.
// It is the only place routes live, so an embedder composing a different
// surface (the router role, a test harness) shares every handler without
// inheriting the route table.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("POST /debug/failpoints", s.handleFailpoints)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /graphs", s.handleListGraphs)
	mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("POST /graphs/{name}/extract", s.handleExtract)
	mux.HandleFunc("POST /graphs/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /graphs/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /graphs/{name}/epochs", s.handleEpochs)
	mux.HandleFunc("GET /graphs/{name}/snapshot", s.handleSnapshotGet)
	mux.HandleFunc("GET /graphs/{name}/wal", s.handleWALGet)
	mux.HandleFunc("GET /graphs/{name}/{kernel}", s.handleKernel)
	return mux
}

// Metrics exposes the server's counters (used by tests and cmd/graphctd).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetReady flips the /readyz gate. Servers construct ready; a daemon
// that preloads graphs in the background sets false before listening and
// true once every preload has parsed.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetRecovering marks the boot-time replay window so /readyz can report
// "recovering" (still not ready) while durable graphs rebuild.
func (s *Server) SetRecovering(recovering bool) { s.recovering.Store(recovering) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON and writeError delegate to the shared wire contract so every
// process speaking the protocol produces identical bodies.
func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	api.WriteError(w, status, format, args...)
}
