package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphct/internal/blob"
	"graphct/internal/stream"
	"graphct/internal/wal"
)

// Durability layout under Config.DataDir:
//
//	<data-dir>/blobs/<name>/epoch-<E>.snap   durable snapshots (blob.Store)
//	<data-dir>/wal/<name>/epoch-<E>.wal      batch-log segments (internal/wal)
//
// Epochs in keys are zero-padded to 20 digits so lexicographic order is
// numeric order. The invariants, proven by the differential warm-restart
// tests:
//
//   - every acked batch is either inside the newest durable snapshot or
//     fsynced in a log segment based at or after that snapshot's epoch;
//   - recovery = newest loadable snapshot + in-order replay of those
//     segments, which bit-matches an uninterrupted replay of the same
//     batch sequence (re-applying an already-included suffix is a no-op:
//     per edge, the last operation wins either way);
//   - a log segment is deleted only after a newer durable snapshot
//     committed, and snapshots are pruned oldest-first down to
//     Config.RetainEpochs, which also serves ?epoch=E point-in-time reads.

const (
	snapSuffix = ".snap"
	walSuffix  = ".wal"
)

// liveNameRe restricts durable live-graph names to characters that map
// safely onto blob keys and file paths.
var liveNameRe = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// durable reports whether the server was configured with a data directory.
func (s *Server) durable() bool { return s.store != nil }

func epochLabel(epoch uint64) string { return fmt.Sprintf("epoch-%020d", epoch) }

func snapshotKey(name string, epoch uint64) string {
	return name + "/" + epochLabel(epoch) + snapSuffix
}

// parseEpochKey extracts the epoch from a key or filename of the form
// ".../epoch-<20 digits><suffix>".
func parseEpochKey(base, suffix string) (uint64, bool) {
	if !strings.HasPrefix(base, "epoch-") || !strings.HasSuffix(base, suffix) {
		return 0, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(base, "epoch-"), suffix)
	epoch, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return epoch, true
}

func (s *Server) walDirFor(name string) string {
	return filepath.Join(s.walDir, name)
}

func (s *Server) walPath(name string, epoch uint64) string {
	return filepath.Join(s.walDirFor(name), epochLabel(epoch)+walSuffix)
}

// durableEpochs returns the retained snapshot epochs for name, ascending.
func (s *Server) durableEpochs(name string) ([]uint64, error) {
	keys, err := s.store.List(name + "/")
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, key := range keys {
		if epoch, ok := parseEpochKey(key[strings.LastIndex(key, "/")+1:], snapSuffix); ok {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// walSegments returns the base epochs of name's log segments, ascending.
func (s *Server) walSegments(name string) ([]uint64, error) {
	entries, err := os.ReadDir(s.walDirFor(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var epochs []uint64
	for _, e := range entries {
		if epoch, ok := parseEpochKey(e.Name(), walSuffix); ok {
			epochs = append(epochs, epoch)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// AddLive creates a live graph, and — when durability is enabled — commits
// its initial empty snapshot and opens its first log segment before
// acknowledging, so the graph exists after a crash that follows the 201.
func (s *Server) AddLive(name string, n int) (*GraphEntry, error) {
	if s.durable() && !liveNameRe.MatchString(name) {
		return nil, fmt.Errorf("durable live graph name %q must match %s", name, liveNameRe)
	}
	e, err := s.reg.AddLive(name, n)
	if err != nil {
		return nil, err
	}
	if !s.durable() {
		return e, nil
	}
	if err := s.initDurable(name, e); err != nil {
		s.reg.Remove(name)
		return nil, fmt.Errorf("persist live graph %q: %w", name, err)
	}
	return e, nil
}

// initDurable writes entry's snapshot and opens a log segment based at
// its epoch, attaching the log to the live graph.
func (s *Server) initDurable(name string, e *GraphEntry) error {
	e.Live.mu.Lock()
	defer e.Live.mu.Unlock()
	data, err := blob.EncodeSnapshot(blob.Snapshot{Epoch: e.Epoch, LastTime: e.Live.st.LastTime(), Graph: e.Graph})
	if err != nil {
		return err
	}
	if err := s.store.Put(snapshotKey(name, e.Epoch), data); err != nil {
		return err
	}
	s.metrics.SnapshotsPersisted.Add(1)
	s.metrics.SnapshotBytes.Add(int64(len(data)))
	l, err := wal.Create(s.walPath(name, e.Epoch), e.Epoch)
	if err != nil {
		return err
	}
	e.Live.wal = l
	e.Live.durableEpoch = e.Epoch
	return nil
}

// persistEpoch runs inside the writer critical section right after an
// in-memory epoch publication: commit the snapshot to the store, rotate
// the log onto the new base, then discard segments and snapshots the new
// snapshot made redundant. Any failure leaves the previous segment
// accumulating (recovery falls back to the older snapshot plus a longer
// tail) and is retried wholesale at the next publication.
func (s *Server) persistEpoch(name string, live *Live, epoch uint64) {
	e, ok := s.reg.Get(name)
	if !ok || e.Epoch != epoch {
		return // deleted (or replaced) mid-publication; nothing to persist
	}
	data, err := blob.EncodeSnapshot(blob.Snapshot{Epoch: epoch, LastTime: live.st.LastTime(), Graph: e.Graph})
	if err != nil {
		s.metrics.PersistErrors.Add(1)
		return
	}
	if err := s.store.Put(snapshotKey(name, epoch), data); err != nil {
		s.metrics.PersistErrors.Add(1)
		return
	}
	s.metrics.SnapshotsPersisted.Add(1)
	s.metrics.SnapshotBytes.Add(int64(len(data)))

	nl, err := wal.Create(s.walPath(name, epoch), epoch)
	if err != nil {
		s.metrics.PersistErrors.Add(1)
		live.walFailed = true // force another publication to retry rotation
		return
	}
	old := live.wal
	incomplete := live.walFailed
	oldBase := live.durableEpoch
	live.wal, live.durableEpoch, live.walFailed = nl, epoch, false
	if old != nil {
		old.Close()
		// A segment missing an acked batch (failed append forced this
		// publication) must not be retained: a follower that finished it
		// would pin the new epoch onto a state missing that batch. Deleting
		// it turns the follower's next poll into a 410 → snapshot
		// re-bootstrap, which lands on the correct bits.
		if incomplete {
			os.Remove(s.walPath(name, oldBase))
		}
	}
	s.pruneDurable(name, epoch)
}

// pruneDurable removes snapshots beyond the retention window and log
// segments older than the oldest retained snapshot. Sealed segments
// inside the window are kept even though recovery no longer needs them:
// they are what a follower mid-tail finishes to pin the next epoch
// without re-shipping a whole snapshot.
func (s *Server) pruneDurable(name string, newest uint64) {
	epochs, err := s.durableEpochs(name)
	if err != nil {
		return
	}
	retain := s.retain
	if retain < 1 {
		retain = 1
	}
	for len(epochs) > retain {
		if err := s.store.Delete(snapshotKey(name, epochs[0])); err != nil {
			return
		}
		epochs = epochs[1:]
	}
	oldest := newest
	if len(epochs) > 0 && epochs[0] < oldest {
		oldest = epochs[0]
	}
	if segs, err := s.walSegments(name); err == nil {
		for _, base := range segs {
			if base < oldest {
				os.Remove(s.walPath(name, base))
			}
		}
	}
}

// dropDurable deletes every durable artifact of name (graph deletion).
func (s *Server) dropDurable(name string, live *Live) {
	if live != nil {
		live.mu.Lock()
		if live.wal != nil {
			live.wal.Close()
			live.wal = nil
		}
		live.mu.Unlock()
	}
	if keys, err := s.store.List(name + "/"); err == nil {
		for _, key := range keys {
			_ = s.store.Delete(key)
		}
	}
	_ = os.RemoveAll(s.walDirFor(name))
}

// RecoverAll warm-restarts every graph found in the data directory:
// newest loadable snapshot + in-order log replay, published at a fresh
// epoch and re-persisted so the steady-state invariant (newest snapshot
// epoch == open segment base) holds again. It returns how many graphs
// were recovered. Callers flip SetRecovering around it so /readyz
// reports the replay.
func (s *Server) RecoverAll() (int, error) {
	if !s.durable() {
		return 0, nil
	}
	start := time.Now()
	keys, err := s.store.List("")
	if err != nil {
		return 0, err
	}
	names := make(map[string]bool)
	maxEpoch := uint64(0)
	for _, key := range keys {
		slash := strings.LastIndex(key, "/")
		if slash <= 0 {
			continue
		}
		epoch, ok := parseEpochKey(key[slash+1:], snapSuffix)
		if !ok {
			continue
		}
		names[key[:slash]] = true
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	// Also scan segment bases: the counter must clear every durable epoch
	// even if a snapshot was pruned or lost while its segment survived.
	for name := range names {
		if segs, err := s.walSegments(name); err == nil && len(segs) > 0 {
			if last := segs[len(segs)-1]; last > maxEpoch {
				maxEpoch = last
			}
		}
	}
	advanceEpochCounter(maxEpoch)

	recovered := 0
	var firstErr error
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		if err := s.recoverGraph(name); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("recover %q: %w", name, err)
			}
			continue
		}
		recovered++
	}
	s.metrics.RecoveredGraphs.Add(int64(recovered))
	s.metrics.RecoveryMs.Store(time.Since(start).Milliseconds())
	return recovered, firstErr
}

// recoverGraph rebuilds one live graph from its durable state.
func (s *Server) recoverGraph(name string) error {
	epochs, err := s.durableEpochs(name)
	if err != nil {
		return err
	}
	if len(epochs) == 0 {
		return fmt.Errorf("no durable snapshots")
	}

	// Load the newest snapshot that passes its integrity frames, falling
	// back through retained epochs on corruption.
	var snap blob.Snapshot
	loaded := false
	for i := len(epochs) - 1; i >= 0 && !loaded; i-- {
		data, err := s.store.Get(snapshotKey(name, epochs[i]))
		if err != nil {
			continue
		}
		sn, err := blob.DecodeSnapshot(data)
		if err != nil {
			continue
		}
		snap, loaded = sn, true
	}
	if !loaded {
		return fmt.Errorf("no loadable snapshot among %d retained epochs", len(epochs))
	}

	// Rebuild the stream: triangle counts are re-established by an exact
	// static count, which equals the incrementally maintained counters for
	// the same adjacency (both are exact integers).
	st := stream.FromGraph(snap.Graph)
	st.Touch(snap.LastTime)
	live := &Live{st: st}

	// Replay segments based at or after the loaded snapshot, in order.
	// Records already contained in the snapshot (a crash between snapshot
	// commit and log rotation) re-apply as no-ops; a torn tail stops at
	// the last intact record. Batch ids are re-remembered so a client
	// retrying its in-flight batch across the restart is deduplicated.
	type remembered struct {
		id  string
		res ingestResult
	}
	var dedup []remembered
	segs, err := s.walSegments(name)
	if err != nil {
		return err
	}
	replayed := 0
	for _, base := range segs {
		if base < snap.Epoch {
			continue
		}
		_, n, torn, err := wal.Replay(s.walPath(name, base), func(rec wal.Record) error {
			res, err := st.ApplyBatch(rec.Updates)
			if err != nil {
				return err
			}
			if rec.BatchID != "" {
				dedup = append(dedup, remembered{rec.BatchID, ingestResult{
					Accepted: len(rec.Updates),
					Inserted: res.Inserted,
					Deleted:  res.Deleted,
					Ignored:  res.Ignored,
					Edges:    st.NumEdges(),
				}})
			}
			return nil
		})
		if err != nil {
			return err
		}
		if torn {
			s.metrics.WALTornTails.Add(1)
		}
		replayed += n
	}
	s.metrics.RecoveredBatches.Add(int64(replayed))

	// Publish the recovered state at a fresh epoch and make it the new
	// durable baseline.
	e := s.reg.addEntry(name, st.Snapshot(), live, nil)
	for i := range dedup {
		dedup[i].res.Epoch = e.Epoch
		live.remember(dedup[i].id, dedup[i].res)
	}
	if err := s.initDurable(name, e); err != nil {
		return err
	}
	s.pruneDurable(name, e.Epoch)
	return nil
}

// epochEntry resolves a point-in-time view: the graph as of durable epoch
// E, served from a retained snapshot. The current entry is returned
// as-is when E is its epoch; otherwise the snapshot is loaded through a
// small cache so repeated historical analyses do not re-parse it.
func (s *Server) epochEntry(name string, epoch uint64, cur *GraphEntry) (*GraphEntry, error) {
	if cur != nil && cur.Epoch == epoch {
		return cur, nil
	}
	if !s.durable() {
		return nil, fmt.Errorf("point-in-time reads need a daemon started with -data-dir")
	}
	cacheKey := name + "@" + strconv.FormatUint(epoch, 10)
	s.histMu.Lock()
	if e, ok := s.hist[cacheKey]; ok {
		s.histMu.Unlock()
		return e, nil
	}
	s.histMu.Unlock()
	data, err := s.store.Get(snapshotKey(name, epoch))
	if err != nil {
		return nil, err
	}
	snap, err := blob.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	e := &GraphEntry{Name: name, Epoch: epoch, Graph: snap.Graph}
	s.histMu.Lock()
	if len(s.hist) >= histCap {
		for k := range s.hist { // evict an arbitrary entry; the cache is tiny
			delete(s.hist, k)
			break
		}
	}
	s.hist[cacheKey] = e
	s.histMu.Unlock()
	return e, nil
}

// histCap bounds the historical-entry cache: point-in-time reads are an
// analytical side path, so a handful of resident epochs is plenty.
const histCap = 4

// handleEpochs lists the epochs a graph can serve: the current in-memory
// one plus every retained durable snapshot (usable as ?epoch=E).
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	durable := []uint64{}
	if s.durable() {
		epochs, err := s.durableEpochs(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "list epochs: %v", err)
			return
		}
		durable = epochs
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"current": e.Epoch,
		"durable": durable,
		"live":    e.Live != nil,
	})
}
