package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"graphct/internal/api"
	"graphct/internal/blob"
	"graphct/internal/stream"
	"graphct/internal/wal"
)

// newFollowerServer pairs a fresh in-memory server with a Follower tailing
// the given leader URL. Tests drive SyncOnce directly for determinism.
func newFollowerServer(t *testing.T, leaderURL string) (*Server, *Follower, *httptest.Server) {
	t.Helper()
	s := New(NewRegistry(), Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, NewFollower(s, leaderURL, time.Millisecond), ts
}

// assertReplicaMatchesLeader checks the full convergence contract: the
// replica's published entry sits at the leader's published epoch with a
// bit-identical adjacency, and the replica's live head (including records
// applied from the open WAL segment) matches the leader's live head.
func assertReplicaMatchesLeader(t *testing.T, leader, follower *Server, name string) {
	t.Helper()
	le, ok := leader.reg.Get(name)
	if !ok {
		t.Fatalf("leader lost graph %q", name)
	}
	fe, ok := follower.reg.Get(name)
	if !ok {
		t.Fatalf("follower has no graph %q", name)
	}
	if fe.Live == nil || !fe.Live.replica {
		t.Fatalf("follower entry for %q is not a replica (live=%v)", name, fe.Live != nil)
	}
	if fe.Epoch != le.Epoch {
		t.Fatalf("replica published epoch %d, leader %d", fe.Epoch, le.Epoch)
	}
	graphsEqual(t, fe.Graph, le.Graph)
	graphsEqual(t, fe.Live.st.Snapshot(), le.Live.st.Snapshot())
	if got, want := fe.Live.st.LastTime(), le.Live.st.LastTime(); got != want {
		t.Fatalf("replica clock %d, leader clock %d", got, want)
	}
}

// TestReplicationFeedEndpoints exercises the leader side of replication:
// the raw snapshot endpoint and the three WAL-tail response states.
func TestReplicationFeedEndpoints(t *testing.T) {
	leader := newDurableServer(t, t.TempDir(), Config{SnapshotEvery: 40})
	if _, err := leader.AddLive("g", 100); err != nil {
		t.Fatal(err)
	}
	for b, batch := range soakBatches(3, 100, 8, 20) {
		ingestDirect(t, leader, "g", fmt.Sprintf("b-%d", b), batch)
	}
	ts := httptest.NewServer(leader)
	defer ts.Close()

	epochs, err := leader.durableEpochs("g")
	if err != nil || len(epochs) < 2 {
		t.Fatalf("want >=2 durable epochs, got %v (%v)", epochs, err)
	}
	head := epochs[len(epochs)-1]

	// Snapshot feed: raw GCTS bytes, decodable, stamped with the epoch.
	status, hdr, body := get(t, ts.URL+"/graphs/g/snapshot")
	if status != http.StatusOK || hdr.Get("Content-Type") != api.ContentTypeSnapshot {
		t.Fatalf("snapshot GET: %d %q", status, hdr.Get("Content-Type"))
	}
	if got := hdr.Get(api.HeaderEpoch); got != strconv.FormatUint(head, 10) {
		t.Fatalf("snapshot epoch header %q, want %d", got, head)
	}
	snap, err := blob.DecodeSnapshot(body)
	if err != nil || snap.Epoch != head {
		t.Fatalf("shipped snapshot: epoch %d, err %v; want %d", snap.Epoch, err, head)
	}

	// Sealed segment: based at an old epoch, naming its successor.
	status, hdr, _ = get(t, fmt.Sprintf("%s/graphs/g/wal?from=%d", ts.URL, epochs[0]))
	if status != http.StatusOK || hdr.Get(api.HeaderWALSealed) != "true" {
		t.Fatalf("old segment: %d sealed=%q", status, hdr.Get(api.HeaderWALSealed))
	}
	if next, _ := strconv.ParseUint(hdr.Get(api.HeaderWALNext), 10, 64); next != epochs[1] {
		t.Fatalf("sealed next %q, want %d", hdr.Get(api.HeaderWALNext), epochs[1])
	}

	// Open segment: the head epoch's tail, not sealed.
	status, hdr, _ = get(t, fmt.Sprintf("%s/graphs/g/wal?from=%d", ts.URL, head))
	if status != http.StatusOK || hdr.Get(api.HeaderWALSealed) != "" {
		t.Fatalf("open segment: %d sealed=%q", status, hdr.Get(api.HeaderWALSealed))
	}
	if got := hdr.Get(api.HeaderWALBase); got != strconv.FormatUint(head, 10) {
		t.Fatalf("open segment base %q, want %d", got, head)
	}

	// Unknown futures 404 (nothing to tail yet); missing from is a 400.
	if status, _, _ = get(t, ts.URL+"/graphs/g/wal?from=999999999"); status != http.StatusNotFound {
		t.Fatalf("future segment: %d, want 404", status)
	}
	if status, _, _ = get(t, ts.URL+"/graphs/g/wal"); status != http.StatusBadRequest {
		t.Fatalf("missing from: %d, want 400", status)
	}

	// A non-durable daemon has nothing to ship.
	mem := New(NewRegistry(), Config{})
	if _, err := mem.AddLive("m", 10); err != nil {
		t.Fatal(err)
	}
	mts := httptest.NewServer(mem)
	defer mts.Close()
	if status, _, _ = get(t, mts.URL+"/graphs/m/snapshot"); status != http.StatusNotFound {
		t.Fatalf("non-durable snapshot: %d, want 404", status)
	}
	if status, _, _ = get(t, mts.URL+"/graphs/m/wal?from=0"); status != http.StatusNotFound {
		t.Fatalf("non-durable wal: %d, want 404", status)
	}
}

// TestFollowerBootstrapAndTail is the follower half of the replication
// acceptance scenario: bootstrap from the leader's newest snapshot, tail
// the WAL across seal points, converge bit-identically at the leader's own
// epoch numbers, reject direct writes, keep converging as the leader moves,
// and drop the replica when the leader deletes the graph.
func TestFollowerBootstrapAndTail(t *testing.T) {
	const vertices = 150
	leader := newDurableServer(t, t.TempDir(), Config{SnapshotEvery: 60})
	if _, err := leader.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	workload := soakBatches(11, vertices, 30, 25)
	for b, batch := range workload[:20] {
		ingestDirect(t, leader, "g", fmt.Sprintf("b-%d", b), batch)
	}
	lts := httptest.NewServer(leader)
	defer lts.Close()

	fsrv, f, fts := newFollowerServer(t, lts.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")
	if fsrv.metrics.ReplicaBootstraps.Load() != 1 {
		t.Fatalf("replica_bootstraps = %d, want 1", fsrv.metrics.ReplicaBootstraps.Load())
	}

	// Kernel responses from the replica are byte-identical to the leader's
	// at the same epoch — the property routed reads rely on.
	for _, kernel := range []string{"stats", "components", "degrees", "clustering"} {
		ls, lh, lb := get(t, lts.URL+"/graphs/g/"+kernel)
		fs, fh, fb := get(t, fts.URL+"/graphs/g/"+kernel)
		if ls != http.StatusOK || fs != http.StatusOK {
			t.Fatalf("%s: leader %d, follower %d", kernel, ls, fs)
		}
		if le, fe := lh.Get(api.HeaderEpoch), fh.Get(api.HeaderEpoch); le != fe {
			t.Fatalf("%s: leader epoch %s, follower epoch %s", kernel, le, fe)
		}
		if string(lb) != string(fb) {
			t.Fatalf("%s: leader and follower bodies differ:\n%s\n%s", kernel, lb, fb)
		}
	}

	// Replicas are read-only: writes must go to the leader.
	if status, body := postJSON(t, fts.URL+"/graphs/g/ingest", []map[string]any{{"u": 0, "v": 1}}); status != http.StatusConflict {
		t.Fatalf("replica ingest: %d %s, want 409", status, body)
	}
	if status, body := postJSON(t, fts.URL+"/graphs/g/snapshot", nil); status != http.StatusConflict {
		t.Fatalf("replica snapshot: %d %s, want 409", status, body)
	}

	// The leader moves on; the next pass catches the replica up without
	// another bootstrap.
	for b, batch := range workload[20:] {
		ingestDirect(t, leader, "g", fmt.Sprintf("b2-%d", b), batch)
	}
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")
	if fsrv.metrics.ReplicaBootstraps.Load() != 1 {
		t.Fatalf("replica_bootstraps = %d after tail, want 1", fsrv.metrics.ReplicaBootstraps.Load())
	}
	if fsrv.metrics.ReplicaEpochs.Load() == 0 {
		t.Fatal("no replica epochs pinned while tailing")
	}

	// Applying the same pass again must be a no-op (idempotent tailing).
	before := fsrv.metrics.ReplicaBatches.Load()
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if got := fsrv.metrics.ReplicaBatches.Load(); got != before {
		t.Fatalf("idle pass applied %d batches", got-before)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")

	// Leader-side deletion propagates.
	leader.reg.Remove("g")
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if _, ok := fsrv.reg.Get("g"); ok {
		t.Fatal("replica survived leader-side delete")
	}
}

// TestFollowerRebootstrapAfterPrune drops a follower far enough behind
// that the leader's retention window prunes its segment: the WAL feed
// answers 410 Gone and the follower must re-bootstrap from the newest
// snapshot rather than silently diverge.
func TestFollowerRebootstrapAfterPrune(t *testing.T) {
	const vertices = 120
	leader := newDurableServer(t, t.TempDir(), Config{SnapshotEvery: 25, RetainEpochs: 1})
	if _, err := leader.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	workload := soakBatches(5, vertices, 24, 25)
	for b, batch := range workload[:4] {
		ingestDirect(t, leader, "g", fmt.Sprintf("b-%d", b), batch)
	}
	lts := httptest.NewServer(leader)
	defer lts.Close()

	fsrv, f, _ := newFollowerServer(t, lts.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}

	// Publish enough epochs that the follower's segment falls out of the
	// one-epoch retention window.
	for b, batch := range workload[4:] {
		ingestDirect(t, leader, "g", fmt.Sprintf("b2-%d", b), batch)
	}
	segs, err := leader.walSegments("g")
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range segs {
		if base == f.state["g"].base {
			t.Skipf("follower segment %d survived retention; prune did not trigger", base)
		}
	}

	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce after prune: %v", err)
	}
	if got := fsrv.metrics.ReplicaBootstraps.Load(); got != 2 {
		t.Fatalf("replica_bootstraps = %d, want 2 (re-bootstrap after 410)", got)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")
}

// TestWALNextDerivedFromSnapshots pins the seal-point contract when a
// segment is dropped as incomplete. With segments E0 (sealed), E1
// (deleted at rotation after a WAL failure) and E2 (open), Wal-Next for
// E0 must name E1 — the durable epoch applying E0 actually lands on —
// not E2, the next *surviving* segment; and tailing from E1 must answer
// 410 so a follower re-bootstraps instead of pinning a wrong epoch. A
// follower driven across the gap must stay bit-identical to the leader.
func TestWALNextDerivedFromSnapshots(t *testing.T) {
	const vertices = 60
	leader := newDurableServer(t, t.TempDir(), Config{SnapshotEvery: 1 << 30})
	if _, err := leader.AddLive("g", vertices); err != nil {
		t.Fatal(err)
	}
	e, _ := leader.reg.Get("g")
	e0 := e.Epoch
	lts := httptest.NewServer(leader)
	defer lts.Close()

	// A follower starts tailing segment E0 before the gap exists.
	fsrv, f, _ := newFollowerServer(t, lts.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}

	// Segment E0 gets one batch, then a forced snapshot seals it at E1.
	ingestDirect(t, leader, "g", "b-1", []stream.Update{{U: 0, V: 1, Time: 1}})
	r1, err := leader.forceSnapshot("g", e.Live, e0)
	if err != nil || !r1.Snapshotted {
		t.Fatalf("snapshot at e1: %+v, %v", r1, err)
	}
	// Segment E1 takes a batch, then a simulated WAL append failure forces
	// the next batch to publish E2 — whose rotation deletes segment E1 as
	// incomplete. Surviving segments: E0 (sealed), E2 (open); durable
	// snapshots: E0, E1, E2.
	ingestDirect(t, leader, "g", "b-2", []stream.Update{{U: 1, V: 2, Time: 2}})
	e.Live.mu.Lock()
	e.Live.walFailed = true
	e.Live.mu.Unlock()
	r2 := ingestDirect(t, leader, "g", "b-3", []stream.Update{{U: 2, V: 3, Time: 3}})
	if !r2.Snapshotted {
		t.Fatalf("walFailed batch did not publish: %+v", r2)
	}
	e1, e2 := r1.Epoch, r2.Epoch
	segs, err := leader.walSegments("g")
	if err != nil || len(segs) != 2 || segs[0] != e0 || segs[1] != e2 {
		t.Fatalf("segments = %v (%v), want [%d %d] with %d dropped", segs, err, e0, e2, e1)
	}

	// The sealed E0 segment must lead to E1 (snapshot chain), not E2
	// (surviving segments).
	status, hdr, _ := get(t, fmt.Sprintf("%s/graphs/g/wal?from=%d", lts.URL, e0))
	if status != http.StatusOK || hdr.Get(api.HeaderWALSealed) != "true" {
		t.Fatalf("sealed segment: %d sealed=%q", status, hdr.Get(api.HeaderWALSealed))
	}
	if got := hdr.Get(api.HeaderWALNext); got != strconv.FormatUint(e1, 10) {
		t.Fatalf("wal-next = %q, want %d (not surviving segment %d)", got, e1, e2)
	}
	// The dropped segment's base is Gone, not a silent miss.
	if status, _, _ = get(t, fmt.Sprintf("%s/graphs/g/wal?from=%d", lts.URL, e1)); status != http.StatusGone {
		t.Fatalf("dropped segment: %d, want 410", status)
	}

	// Driving the follower across the gap: it finishes E0, pins E1, hits
	// the 410 and re-bootstraps from the E2 snapshot — converged, never
	// mis-pinned.
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce across gap: %v", err)
	}
	if got := fsrv.metrics.ReplicaBootstraps.Load(); got != 2 {
		t.Fatalf("replica_bootstraps = %d, want 2 (re-bootstrap across dropped segment)", got)
	}
	assertReplicaMatchesLeader(t, leader, fsrv, "g")
}

// TestFollowerKeepsReplicasWhileLeaderBoots covers the recovery window: a
// leader serves /graphs before background recovery has repopulated it, so
// an empty listing from a not-ready leader must not tear down replicas.
// Once the leader reports ready, absence does mean deletion.
func TestFollowerKeepsReplicasWhileLeaderBoots(t *testing.T) {
	leader := newDurableServer(t, t.TempDir(), Config{})
	if _, err := leader.AddLive("g", 40); err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, leader, "g", "b-1", []stream.Update{{U: 0, V: 1, Time: 1}})
	lts := httptest.NewServer(leader)
	defer lts.Close()

	fsrv, f, _ := newFollowerServer(t, lts.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if _, ok := fsrv.reg.Get("g"); !ok {
		t.Fatal("follower did not bootstrap g")
	}

	// Simulate a leader restart mid-recovery: registry empty, /readyz
	// reporting "recovering". The follower must hold its replica.
	leader.reg.Remove("g")
	leader.SetReady(false)
	leader.SetRecovering(true)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce during recovery: %v", err)
	}
	if _, ok := fsrv.reg.Get("g"); !ok {
		t.Fatal("follower dropped replica on a recovering leader's partial listing")
	}

	// Recovery finishes and the graph really is gone: now the absence is a
	// deletion and the replica follows.
	leader.SetRecovering(false)
	leader.SetReady(true)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce after recovery: %v", err)
	}
	if _, ok := fsrv.reg.Get("g"); ok {
		t.Fatal("replica survived a ready leader's deletion")
	}
}

// TestDeleteReplicaRejected: DELETE on a follower's replica graph is a
// 409 like the other write paths — its lifecycle belongs to the leader.
func TestDeleteReplicaRejected(t *testing.T) {
	leader := newDurableServer(t, t.TempDir(), Config{})
	if _, err := leader.AddLive("g", 40); err != nil {
		t.Fatal(err)
	}
	ingestDirect(t, leader, "g", "b-1", []stream.Update{{U: 0, V: 1, Time: 1}})
	lts := httptest.NewServer(leader)
	defer lts.Close()

	fsrv, f, fts := newFollowerServer(t, lts.URL)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	req, _ := http.NewRequest(http.MethodDelete, fts.URL+"/graphs/g", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replica delete: %d, want 409", resp.StatusCode)
	}
	if _, ok := fsrv.reg.Get("g"); !ok {
		t.Fatal("replica vanished after rejected delete")
	}
}

// TestApplyReplicaDedup covers the record-level idempotency backstop: a
// record whose batch_id is already in the dedup window is not re-applied.
func TestApplyReplicaDedup(t *testing.T) {
	s := New(NewRegistry(), Config{})
	st := stream.New(10)
	live := &Live{st: st, replica: true}
	s.reg.addEntryAt("g", st.Snapshot(), live, 1)

	rec := wal.Record{BatchID: "b-1", Updates: []stream.Update{{U: 0, V: 1, Time: 1}}}
	for i := 0; i < 3; i++ {
		if err := s.applyReplica(live, rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := live.st.NumEdges(); got != 1 {
		t.Fatalf("edges = %d after duplicate applies, want 1", got)
	}
}
