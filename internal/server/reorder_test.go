package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"graphct/internal/bfs"
	"graphct/internal/dimacs"
	"graphct/internal/gen"
	"graphct/internal/graph"
	"graphct/internal/sssp"
)

// translationGraph has distinguishable components and a hub that is NOT
// external vertex 0, so a missing or misdirected id translation changes
// observable results instead of cancelling out: path 0-1-2, then a star
// with hub 3 and leaves 4-7. Degree reordering moves the hub to internal
// id 0.
func translationGraph() *graph.Graph {
	return gen.Disjoint(gen.Path(3), gen.Star(5))
}

func TestRegistryLoadAppliesLayout(t *testing.T) {
	g := translationGraph()
	path := filepath.Join(t.TempDir(), "g.dimacs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	reg.Layout = graph.Layout{Reorder: graph.ReorderDegree, Compact: graph.CompactOff}
	e, err := reg.Load("g", "dimacs", path, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Orig == nil {
		t.Fatal("load with a reordering layout published no id translation")
	}
	// The hub (external 3, degree 4) must now be internal vertex 0.
	if e.ToInternal(3) != 0 || e.ToExternal(0) != 3 {
		t.Fatalf("hub translation: ToInternal(3)=%d ToExternal(0)=%d", e.ToInternal(3), e.ToExternal(0))
	}
	n := g.NumVertices()
	for v := int32(0); int(v) < n; v++ {
		if e.ToInternal(e.ToExternal(v)) != v || e.ToExternal(e.ToInternal(v)) != v {
			t.Fatalf("translation not a bijection at %d", v)
		}
	}
	// Structure is preserved through the mapping: every external edge
	// exists between the translated endpoints.
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			iu := e.ToInternal(u)
			found := false
			for _, w := range e.Graph.Neighbors(iu) {
				if w == e.ToInternal(v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d lost after relabeling", u, v)
			}
		}
	}
}

// TestKernelsTranslateVertexIDs runs the per-vertex kernels over HTTP on a
// degree-reordered graph and checks every answer against the kernels run
// directly on the original labels: the relabeling must be invisible.
func TestKernelsTranslateVertexIDs(t *testing.T) {
	g := translationGraph()
	rg, inv, err := graph.Layout{Reorder: graph.ReorderDegree, Compact: graph.CompactOff}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.AddWithOrig("g", rg, inv)
	s := New(reg, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// kcentrality: the star hub routes every leaf-to-leaf shortest path,
	// so the top-1 answer must name it by its external id (3), not its
	// internal label (0).
	code, _, body := get(t, ts.URL+"/graphs/g/kcentrality?k=0&samples=0&top=1")
	if code != http.StatusOK {
		t.Fatalf("kcentrality: %d %s", code, body)
	}
	var kc struct {
		Top []struct {
			Vertex int32   `json:"vertex"`
			Score  float64 `json:"score"`
		} `json:"top"`
	}
	if err := json.Unmarshal(body, &kc); err != nil {
		t.Fatal(err)
	}
	if len(kc.Top) != 1 || kc.Top[0].Vertex != 3 {
		t.Fatalf("kcentrality top = %+v, want the star hub (external 3)", kc.Top)
	}

	// bfs and sssp from every external source: reach counts and distances
	// must match the kernels on the original graph.
	for src := int32(0); int(src) < g.NumVertices(); src++ {
		wantBFS := bfs.Search(g, src)
		code, _, body := get(t, fmt.Sprintf("%s/graphs/g/bfs?src=%d", ts.URL, src))
		if code != http.StatusOK {
			t.Fatalf("bfs src=%d: %d %s", src, code, body)
		}
		var br struct {
			Src     int32 `json:"src"`
			Reached int   `json:"reached"`
			Depth   int   `json:"depth"`
		}
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		if br.Src != src || br.Reached != wantBFS.NumReached() || br.Depth != wantBFS.Depth {
			t.Fatalf("bfs src=%d: got %+v, want reached=%d depth=%d",
				src, br, wantBFS.NumReached(), wantBFS.Depth)
		}

		wantSSSP, err := sssp.Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		reached, maxDist := 0, int64(0)
		for _, d := range wantSSSP.Dist {
			if d != sssp.Inf {
				reached++
				if d > maxDist {
					maxDist = d
				}
			}
		}
		code, _, body = get(t, fmt.Sprintf("%s/graphs/g/sssp?src=%d", ts.URL, src))
		if code != http.StatusOK {
			t.Fatalf("sssp src=%d: %d %s", src, code, body)
		}
		var sr struct {
			Src     int32 `json:"src"`
			Reached int   `json:"reached"`
			MaxDist int64 `json:"max_distance"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Reached != reached || sr.MaxDist != maxDist {
			t.Fatalf("sssp src=%d: got %+v, want reached=%d max=%d", src, sr, reached, maxDist)
		}
	}
}

// TestExtractComposesTranslation extracts the largest component of a
// reordered graph and checks the derived entry's id trail lifts all the
// way back to the loaded graph's external labels.
func TestExtractComposesTranslation(t *testing.T) {
	g := translationGraph() // largest component: the 5-vertex star, external 3-7
	rg, inv, err := graph.Layout{Reorder: graph.ReorderDegree, Compact: graph.CompactOff}.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.AddWithOrig("g", rg, inv)
	s := New(reg, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/graphs/g/extract", "application/json",
		bytes.NewReader([]byte(`{"component": 1, "as": "sub"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("extract: %d", resp.StatusCode)
	}
	sub, ok := reg.Get("sub")
	if !ok {
		t.Fatal("extracted graph not registered")
	}
	if sub.Graph.NumVertices() != 5 {
		t.Fatalf("extracted %d vertices, want the 5-vertex star", sub.Graph.NumVertices())
	}
	ids := make([]int, 0, 5)
	for v := int32(0); v < 5; v++ {
		ids = append(ids, int(sub.ToExternal(v)))
	}
	sort.Ints(ids)
	for i, want := range []int{3, 4, 5, 6, 7} {
		if ids[i] != want {
			t.Fatalf("extracted external ids %v, want [3 4 5 6 7]", ids)
		}
	}
}
