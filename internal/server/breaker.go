package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen rejects a kernel request whose (graph, kernel) circuit
// breaker is open — the failure-isolation signal, mapped to HTTP 503.
var ErrBreakerOpen = errors.New("server: circuit breaker open")

// breakerOutcome classifies one kernel execution for the breaker.
type breakerOutcome int

const (
	// breakerSkip releases the admission without recording: coalesced
	// followers (the leader already records), queue-full rejections and
	// client cancellations say nothing about the kernel's health.
	breakerSkip breakerOutcome = iota
	breakerSuccess
	breakerFailure
)

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen // one probe in flight
)

// breaker is the per-(graph, kernel) failure state.
type breaker struct {
	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
}

// BreakerSet holds one circuit breaker per key. A breaker trips open
// after threshold consecutive kernel failures (panics and internal
// errors; cancellations and backpressure do not count), rejects requests
// with ErrBreakerOpen while open, and after cooldown admits a single
// half-open probe whose outcome either closes the breaker or re-opens it
// for another cooldown. Keys deliberately exclude the graph epoch: a
// kernel that crashes on a graph keeps its breaker across snapshots until
// a probe actually succeeds.
type BreakerSet struct {
	mu        sync.Mutex
	m         map[string]*breaker
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam
	trips     atomic.Int64
}

// NewBreakerSet returns a set tripping after threshold consecutive
// failures and half-opening after cooldown. threshold 0 defaults to 5 and
// cooldown 0 to 1s; a negative threshold disables breaking entirely.
func NewBreakerSet(threshold int, cooldown time.Duration) *BreakerSet {
	if threshold == 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &BreakerSet{
		m:         make(map[string]*breaker),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// Trips returns how many times any breaker in the set tripped open.
func (b *BreakerSet) Trips() int64 { return b.trips.Load() }

// Allow admits or rejects an execution for key. On admission it returns
// the record function the executor must call exactly once with the
// outcome; on rejection it returns ErrBreakerOpen.
func (b *BreakerSet) Allow(key string) (func(breakerOutcome), error) {
	if b.threshold < 0 {
		return func(breakerOutcome) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br, ok := b.m[key]
	if !ok {
		br = &breaker{}
		b.m[key] = br
	}
	probe := false
	switch br.state {
	case breakerOpen:
		if b.now().Sub(br.openedAt) < b.cooldown {
			return nil, ErrBreakerOpen
		}
		// Cooldown elapsed: this caller becomes the half-open probe.
		br.state = breakerHalfOpen
		probe = true
	case breakerHalfOpen:
		return nil, ErrBreakerOpen
	}
	return func(oc breakerOutcome) { b.record(key, probe, oc) }, nil
}

func (b *BreakerSet) record(key string, probe bool, oc breakerOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br, ok := b.m[key]
	if !ok {
		return
	}
	switch oc {
	case breakerSkip:
		if probe && br.state == breakerHalfOpen {
			// The probe slot was consumed without a verdict; return to
			// open with the original trip time so the next Allow can
			// probe again immediately.
			br.state = breakerOpen
		}
	case breakerSuccess:
		br.state = breakerClosed
		br.fails = 0
	case breakerFailure:
		br.fails++
		if probe || br.fails >= b.threshold {
			if br.state != breakerOpen {
				b.trips.Add(1)
			}
			br.state = breakerOpen
			br.openedAt = b.now()
			br.fails = 0
		}
	}
}

// State reports key's current state name for listings and tests.
func (b *BreakerSet) State(key string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	br, ok := b.m[key]
	if !ok {
		return "closed"
	}
	switch br.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}
