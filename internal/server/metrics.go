package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (exclusive) of the per-kernel
// latency histogram, in milliseconds, growing roughly geometrically from
// sub-millisecond cache-adjacent work to multi-minute centrality runs.
// The final implicit bucket is +Inf.
var latencyBuckets = [...]int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// Histogram counts observations into fixed log-spaced millisecond
// buckets. All methods are safe for concurrent use.
type Histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Int64
	sumMs  atomic.Int64
	n      atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBuckets) && ms >= latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumMs.Add(ms)
	h.n.Add(1)
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumMs   int64            `json:"sum_ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper-bound ms -> count, only non-zero
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n.Load(), SumMs: h.sumMs.Load(), Buckets: make(map[string]int64)}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if i < len(latencyBuckets) {
			s.Buckets[msLabel(latencyBuckets[i])] = c
		} else {
			s.Buckets["+Inf"] = c
		}
	}
	return s
}

func msLabel(ms int64) string {
	// strconv-free small formatter keeps this file self-contained.
	if ms == 0 {
		return "0ms"
	}
	var buf [24]byte
	i := len(buf)
	for v := ms; v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	return string(buf[i:]) + "ms"
}

// Metrics aggregates the serving-path counters exposed at /metrics.
type Metrics struct {
	Requests  atomic.Int64 // kernel requests accepted into the serving path
	CacheHits atomic.Int64
	CacheMiss atomic.Int64
	Coalesced atomic.Int64 // requests satisfied by another caller's run
	Rejected  atomic.Int64 // 429s from the admission queue
	Canceled  atomic.Int64 // kernels stopped by deadline/cancellation

	KernelPanics    atomic.Int64 // kernel panics isolated by recover (500, not a crash)
	BreakerRejected atomic.Int64 // 503s from open circuit breakers
	StaleServed     atomic.Int64 // rejected requests answered from the stale cache
	CacheDropped    atomic.Int64 // cache insertions dropped (cache.put failpoint)
	RateLimited     atomic.Int64 // 429s from per-client token buckets
	CacheOversized  atomic.Int64 // results served but too large for cache admission

	IngestBatches     atomic.Int64 // update batches applied to live graphs
	IngestUpdates     atomic.Int64 // updates accepted inside those batches
	IngestMutations   atomic.Int64 // effective edge insertions + deletions
	IngestRejected    atomic.Int64 // 429s from the ingest queue
	IngestDeduped     atomic.Int64 // batches answered from the idempotency window
	IngestPanics      atomic.Int64 // ingest panics isolated by recover
	Snapshots         atomic.Int64 // epoch snapshots published
	SnapshotsDeferred atomic.Int64 // publications skipped (snapshot.publish failpoint)

	WALAppends         atomic.Int64 // batches durably logged
	WALErrors          atomic.Int64 // failed log appends (batch applied, durability deferred)
	WALTornTails       atomic.Int64 // recoveries that stopped at a damaged log tail
	SnapshotsPersisted atomic.Int64 // epoch snapshots committed to the blob store
	SnapshotBytes      atomic.Int64 // total bytes of persisted snapshots
	PersistErrors      atomic.Int64 // failed snapshot commits / log rotations
	RecoveredGraphs    atomic.Int64 // live graphs rebuilt at boot
	RecoveredBatches   atomic.Int64 // logged batches replayed at boot
	RecoveryMs         atomic.Int64 // wall time of the last RecoverAll

	ReplicaBootstraps atomic.Int64 // follower graph (re-)bootstraps from a leader snapshot
	ReplicaBatches    atomic.Int64 // WAL records applied by the follower tailer
	ReplicaEpochs     atomic.Int64 // leader epochs pinned by the follower
	ReplicaErrors     atomic.Int64 // failed follower sync passes

	mu         sync.Mutex
	kernelRuns map[string]*atomic.Int64
	latency    map[string]*Histogram
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{
		kernelRuns: make(map[string]*atomic.Int64),
		latency:    make(map[string]*Histogram),
	}
}

// KernelStarted counts one underlying execution of kernel (cache hits and
// coalesced requests do not count).
func (m *Metrics) KernelStarted(kernel string) {
	m.runsCounter(kernel).Add(1)
}

// KernelRuns returns how many times kernel actually executed.
func (m *Metrics) KernelRuns(kernel string) int64 {
	return m.runsCounter(kernel).Load()
}

func (m *Metrics) runsCounter(kernel string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.kernelRuns[kernel]
	if !ok {
		c = new(atomic.Int64)
		m.kernelRuns[kernel] = c
	}
	return c
}

// ObserveLatency records one end-to-end kernel execution latency.
func (m *Metrics) ObserveLatency(kernel string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.latency[kernel]
	if !ok {
		h = new(Histogram)
		m.latency[kernel] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	Requests   int64 `json:"requests"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	Coalesced  int64 `json:"coalesced"`
	Rejected   int64 `json:"rejected"`
	Canceled   int64 `json:"canceled"`
	QueueDepth int64 `json:"queue_depth"`
	Running    int   `json:"running"`
	CacheBytes int64 `json:"cache_bytes"`
	CacheItems int   `json:"cache_items"`

	KernelPanics    int64 `json:"kernel_panics"`
	BreakerRejected int64 `json:"breaker_rejected"`
	BreakerTrips    int64 `json:"breaker_trips"`
	StaleServed     int64 `json:"stale_served"`
	CacheDropped    int64 `json:"cache_put_dropped"`
	RateLimited     int64 `json:"rate_limited"`
	CacheOversized  int64 `json:"cache_oversized"`
	RateClients     int   `json:"rate_limit_clients"`

	// QoS lane gauges: zero-valued with lanes disabled (CheapReserved 0).
	CheapReserved    int   `json:"cheap_reserved"`
	CheapQueueDepth  int64 `json:"cheap_queue_depth"`
	ExpQueueDepth    int64 `json:"expensive_queue_depth"`
	ExpensiveRunning int64 `json:"expensive_running"`

	IngestBatches     int64 `json:"ingest_batches"`
	IngestUpdates     int64 `json:"ingest_updates"`
	IngestMutations   int64 `json:"ingest_mutations"`
	IngestRejected    int64 `json:"ingest_rejected"`
	IngestDeduped     int64 `json:"ingest_deduped"`
	IngestPanics      int64 `json:"ingest_panics"`
	Snapshots         int64 `json:"snapshots"`
	SnapshotsDeferred int64 `json:"snapshots_deferred"`
	IngestQueueDepth  int64 `json:"ingest_queue_depth"`
	IngestRunning     int   `json:"ingest_running"`

	WALAppends         int64 `json:"wal_appends"`
	WALErrors          int64 `json:"wal_errors"`
	WALTornTails       int64 `json:"wal_torn_tails"`
	SnapshotsPersisted int64 `json:"snapshots_persisted"`
	SnapshotBytes      int64 `json:"snapshot_bytes"`
	PersistErrors      int64 `json:"persist_errors"`
	RecoveredGraphs    int64 `json:"recovered_graphs"`
	RecoveredBatches   int64 `json:"recovered_batches"`
	RecoveryMs         int64 `json:"recovery_ms"`

	ReplicaBootstraps int64 `json:"replica_bootstraps"`
	ReplicaBatches    int64 `json:"replica_batches"`
	ReplicaEpochs     int64 `json:"replica_epochs"`
	ReplicaErrors     int64 `json:"replica_errors"`

	KernelRuns map[string]int64             `json:"kernel_runs,omitempty"`
	LatencyMs  map[string]HistogramSnapshot `json:"latency_ms,omitempty"`
}

// Snapshot captures the current counters plus the gauges owned by the
// two admission pools, the cache, the breaker set and the rate limiter.
func (m *Metrics) Snapshot(pool *LanePool, ingest *Pool, cache *Cache, breakers *BreakerSet, limiter *RateLimiter) MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:          m.Requests.Load(),
		CacheHits:         m.CacheHits.Load(),
		CacheMiss:         m.CacheMiss.Load(),
		Coalesced:         m.Coalesced.Load(),
		Rejected:          m.Rejected.Load(),
		Canceled:          m.Canceled.Load(),
		KernelPanics:      m.KernelPanics.Load(),
		BreakerRejected:   m.BreakerRejected.Load(),
		StaleServed:       m.StaleServed.Load(),
		CacheDropped:      m.CacheDropped.Load(),
		RateLimited:       m.RateLimited.Load(),
		CacheOversized:    m.CacheOversized.Load(),
		IngestBatches:     m.IngestBatches.Load(),
		IngestUpdates:     m.IngestUpdates.Load(),
		IngestMutations:   m.IngestMutations.Load(),
		IngestRejected:    m.IngestRejected.Load(),
		IngestDeduped:     m.IngestDeduped.Load(),
		IngestPanics:      m.IngestPanics.Load(),
		Snapshots:         m.Snapshots.Load(),
		SnapshotsDeferred: m.SnapshotsDeferred.Load(),

		WALAppends:         m.WALAppends.Load(),
		WALErrors:          m.WALErrors.Load(),
		WALTornTails:       m.WALTornTails.Load(),
		SnapshotsPersisted: m.SnapshotsPersisted.Load(),
		SnapshotBytes:      m.SnapshotBytes.Load(),
		PersistErrors:      m.PersistErrors.Load(),
		RecoveredGraphs:    m.RecoveredGraphs.Load(),
		RecoveredBatches:   m.RecoveredBatches.Load(),
		RecoveryMs:         m.RecoveryMs.Load(),

		ReplicaBootstraps: m.ReplicaBootstraps.Load(),
		ReplicaBatches:    m.ReplicaBatches.Load(),
		ReplicaEpochs:     m.ReplicaEpochs.Load(),
		ReplicaErrors:     m.ReplicaErrors.Load(),

		KernelRuns:        make(map[string]int64),
		LatencyMs:         make(map[string]HistogramSnapshot),
	}
	if breakers != nil {
		s.BreakerTrips = breakers.Trips()
	}
	if pool != nil {
		s.QueueDepth = pool.QueueDepth()
		s.Running = pool.Running()
		s.CheapReserved = pool.Reserved()
		s.CheapQueueDepth, s.ExpQueueDepth = pool.LaneDepths()
		s.ExpensiveRunning = pool.ExpensiveRunning()
	}
	if limiter != nil {
		s.RateClients = limiter.Clients()
	}
	if ingest != nil {
		s.IngestQueueDepth = ingest.QueueDepth()
		s.IngestRunning = ingest.Running()
	}
	if cache != nil {
		s.CacheBytes = cache.Bytes()
		s.CacheItems = cache.Len()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, c := range m.kernelRuns {
		s.KernelRuns[k] = c.Load()
	}
	for k, h := range m.latency {
		s.LatencyMs[k] = h.snapshot()
	}
	return s
}
