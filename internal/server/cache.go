package server

import (
	"container/list"
	"sync"
)

// Cache is a byte-bounded LRU over marshaled kernel results. Keys embed
// the graph's epoch (see Registry), so a reloaded graph never serves
// stale results — its old entries simply stop being referenced and age
// out. Values are the exact response bytes, so a hit costs one map
// lookup plus a write to the socket.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	maxEntry int64 // per-entry admission bound; 0 = only maxBytes bounds
	curBytes int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache evicting least-recently-used entries once the
// stored values exceed maxBytes. maxBytes <= 0 disables caching (every
// Get misses, Put is a no-op), which keeps the serving path uniform.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// SetMaxEntry installs a cost-aware admission bound: values larger than
// maxEntry are not cached. The LRU alone is cost-blind — one multi-MiB
// betweenness ranking would evict hundreds of sub-KiB stat results, each
// of which another client is about to re-request — so the bound keeps a
// single giant result from flushing the cheap working set. maxEntry <= 0
// removes the bound (only maxBytes applies).
func (c *Cache) SetMaxEntry(maxEntry int64) {
	c.mu.Lock()
	c.maxEntry = maxEntry
	c.mu.Unlock()
}

// Get returns the cached bytes for key, marking the entry most recently
// used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting LRU entries to stay under the byte
// bound. It reports whether the value was admitted: values larger than
// the whole bound — or than the per-entry admission bound, when one is
// set — are not cached at all.
func (c *Cache) Put(key string, val []byte) bool {
	if c.maxBytes <= 0 || int64(len(val)) > c.maxBytes {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxEntry > 0 && int64(len(val)) > c.maxEntry {
		return false
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.curBytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
		c.curBytes += int64(len(val))
	}
	for c.curBytes > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.curBytes -= int64(len(e.val))
	}
	return true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the total size of cached values.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
