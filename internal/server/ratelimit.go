package server

import (
	"sync"
	"time"

	"graphct/internal/api"
)

// ClientHeader names the request header that identifies a client for
// per-client rate limiting. Requests without it share one anonymous
// bucket, so an unidentified crowd is still collectively bounded.
const ClientHeader = api.HeaderClient

// maxRateClients bounds the limiter's bucket map. When an insert would
// exceed it, buckets that have fully refilled (idle long enough to hold
// no state worth keeping) are pruned; an adversarial flood of fresh
// client IDs therefore costs O(maxRateClients) memory, not O(clients).
const maxRateClients = 4096

// RateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and every kernel request spends one.
// A drained bucket rejects with the time until the next token, which the
// serving path surfaces as 429 + Retry-After — client-visible fairness,
// where the admission pool's 429 is server-wide backpressure.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clients map[string]*bucket
	now     func() time.Time // test seam
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter granting each client rate requests
// per second with the given burst capacity. rate <= 0 returns nil: a nil
// limiter admits everything, so the serving path stays uniform. burst
// values below 1 are raised to 1 — a bucket that can never hold a whole
// token would reject every request.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   b,
		clients: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow spends one token from client's bucket. When the bucket is empty
// it reports false plus how long until a token accrues — the Retry-After
// the response should carry. A nil limiter always allows.
func (l *RateLimiter) Allow(client string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxRateClients {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops buckets that have fully refilled — clients idle at least
// burst/rate seconds, for whom a fresh bucket is indistinguishable from
// the stored one. Callers hold l.mu.
func (l *RateLimiter) prune(now time.Time) {
	for id, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, id)
		}
	}
}

// Clients returns the number of tracked client buckets (for metrics).
func (l *RateLimiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}
