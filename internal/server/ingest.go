package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphct/internal/stream"
)

// Live is the mutable half of a live (ingest-enabled) graph. Successive
// registry entries published under the same name share one Live: the
// stream accumulates updates under the writer lock while readers keep
// traversing the immutable snapshots of earlier epochs.
//
// The lock serializes whole batches — apply, snapshot decision and epoch
// publication happen inside one critical section, so epochs are published
// in application order and a snapshot always captures batch boundaries,
// never a half-applied batch.
type Live struct {
	mu sync.Mutex
	st *stream.Stream
}

// AddLive publishes an empty live graph over n vertices under name. The
// initial entry carries the empty snapshot at a fresh epoch.
func (r *Registry) AddLive(name string, n int) (*GraphEntry, error) {
	if n <= 0 {
		return nil, fmt.Errorf("live graph needs a positive vertex count, got %d", n)
	}
	live := &Live{st: stream.New(n)}
	return r.addEntry(name, live.st.Snapshot(), live), nil
}

// ingestUpdate is the JSON wire form of one update.
type ingestUpdate struct {
	U    int32 `json:"u"`
	V    int32 `json:"v"`
	Time int64 `json:"time,omitempty"`
	Del  bool  `json:"del,omitempty"`
}

// ingestResult is the ingest endpoint's response. Edges and Epoch are read
// inside the writer critical section, so when Snapshotted is true, Edges
// is exactly the edge count of the graph published at Epoch — the
// invariant the race harness checks against kernel responses.
type ingestResult struct {
	Accepted    int    `json:"accepted"`
	Inserted    int    `json:"inserted"`
	Deleted     int    `json:"deleted"`
	Ignored     int    `json:"ignored"`
	Edges       int64  `json:"edges"`
	Pending     int64  `json:"pending"`
	Epoch       uint64 `json:"epoch"`
	Snapshotted bool   `json:"snapshotted"`
}

// readBatch decodes the request body in either framing: the compact
// binary format (Content-Type application/x-graphct-updates) or a JSON
// array of {"u","v","time","del"} objects.
func (s *Server) readBatch(r *http.Request) ([]stream.Update, error) {
	if r.Header.Get("Content-Type") == stream.WireContentType {
		return stream.DecodeUpdates(r.Body, s.cfg.MaxBatch)
	}
	var ups []ingestUpdate
	if err := json.NewDecoder(r.Body).Decode(&ups); err != nil {
		return nil, fmt.Errorf("%w: %v", stream.ErrWireFormat, err)
	}
	if len(ups) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch of %d updates exceeds limit %d", len(ups), s.cfg.MaxBatch)
	}
	out := make([]stream.Update, len(ups))
	for i, up := range ups {
		out[i] = stream.Update{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
	}
	return out, nil
}

// handleIngest applies one batch of updates to a live graph. Batches pass
// their own admission pool (separate from the kernel pool, so a burst of
// writers cannot starve analysis traffic and vice versa), then apply
// under the graph's writer lock. When the accumulated effective mutations
// reach the snapshot threshold, the same critical section materializes an
// incremental CSR snapshot and publishes it as a new epoch — atomically
// invalidating cached results for the old epoch by keying.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	if e.Live == nil {
		writeError(w, http.StatusConflict, "graph %q is static; only live graphs accept updates", name)
		return
	}
	batch, err := s.readBatch(r)
	if err != nil {
		if errors.Is(err, stream.ErrWireFormat) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		}
		return
	}
	if err := s.ingest.Acquire(r.Context()); err != nil {
		s.writeIngestError(w, err)
		return
	}
	defer s.ingest.Release()
	if s.beforeIngest != nil {
		s.beforeIngest(name)
	}

	live := e.Live
	live.mu.Lock()
	start := time.Now()
	res, err := live.st.ApplyBatch(batch)
	applyDur := time.Since(start)
	if err != nil {
		live.mu.Unlock()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	out := ingestResult{
		Accepted: len(batch),
		Inserted: res.Inserted,
		Deleted:  res.Deleted,
		Ignored:  res.Ignored,
		Edges:    live.st.NumEdges(),
		Epoch:    e.Epoch,
	}
	if live.st.SnapshotDue(s.cfg.SnapshotEvery) {
		out.Epoch = s.publishSnapshot(name, live)
		out.Snapshotted = true
	}
	out.Pending = live.st.PendingUpdates()
	live.mu.Unlock()

	s.metrics.IngestBatches.Add(1)
	s.metrics.IngestUpdates.Add(int64(len(batch)))
	s.metrics.IngestMutations.Add(int64(res.Inserted + res.Deleted))
	s.metrics.ObserveLatency("ingest", applyDur)
	writeJSON(w, http.StatusOK, out)
}

// handleSnapshot force-publishes a snapshot of a live graph regardless of
// the threshold — the flush clients call before reading kernels that must
// observe everything ingested so far. With no pending updates it reports
// the already-current epoch without materializing.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	if e.Live == nil {
		writeError(w, http.StatusConflict, "graph %q is static; nothing to snapshot", name)
		return
	}
	live := e.Live
	live.mu.Lock()
	out := ingestResult{Edges: live.st.NumEdges(), Epoch: e.Epoch}
	if live.st.PendingUpdates() > 0 {
		out.Epoch = s.publishSnapshot(name, live)
		out.Snapshotted = true
	}
	live.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// publishSnapshot materializes live's current state and installs it as a
// new registry entry (fresh epoch) under name. Callers must hold live.mu:
// the materialize-and-publish pair is what keeps epoch order identical to
// batch application order.
func (s *Server) publishSnapshot(name string, live *Live) uint64 {
	start := time.Now()
	g := live.st.Snapshot()
	ne := s.reg.addEntry(name, g, live)
	s.metrics.Snapshots.Add(1)
	s.metrics.ObserveLatency("snapshot", time.Since(start))
	return ne.Epoch
}

func (s *Server) writeIngestError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) {
		s.metrics.IngestRejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeError(w, http.StatusGatewayTimeout, "ingest canceled: %v", err)
}

// epochHeader exposes which epoch served a kernel response, letting
// clients correlate results with ingest/snapshot responses.
func epochHeader(w http.ResponseWriter, epoch uint64) {
	w.Header().Set("X-Graphct-Epoch", strconv.FormatUint(epoch, 10))
}
