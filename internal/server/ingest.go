package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphct/internal/api"
	"graphct/internal/failpoint"
	"graphct/internal/stream"
	"graphct/internal/wal"
)

// Live is the mutable half of a live (ingest-enabled) graph. Successive
// registry entries published under the same name share one Live: the
// stream accumulates updates under the writer lock while readers keep
// traversing the immutable snapshots of earlier epochs.
//
// The lock serializes whole batches — apply, snapshot decision and epoch
// publication happen inside one critical section, so epochs are published
// in application order and a snapshot always captures batch boundaries,
// never a half-applied batch.
type Live struct {
	mu sync.Mutex
	st *stream.Stream

	// Idempotency window: the results of the last dedupWindow batches
	// that carried a client-assigned batch_id, so a retried batch (the
	// client saw a 5xx or lost the response after the server applied it)
	// returns the original result instead of double-applying. Guarded by
	// mu like the stream itself.
	dedup     map[string]ingestResult
	dedupRing []string
	dedupNext int

	// Durability state, guarded by mu like the stream. wal is the open
	// log segment (nil when the server has no data directory);
	// durableEpoch is the snapshot epoch that segment extends; walFailed
	// records a failed append and forces the next opportunity to publish
	// a snapshot, bounding the window of acked-but-unlogged batches.
	wal          *wal.Log
	durableEpoch uint64
	walFailed    bool

	// replica marks a live graph maintained by the follower tailer: its
	// only writer is the replication stream, so direct ingest and forced
	// snapshots are rejected — otherwise the follower would diverge from
	// the leader state it mirrors epoch-for-epoch.
	replica bool
}

// dedupWindow bounds how many batch IDs a live graph remembers.
const dedupWindow = 1024

// remember records id's result in the idempotency window, evicting the
// oldest remembered batch once the window is full. Callers hold l.mu.
func (l *Live) remember(id string, res ingestResult) {
	if l.dedup == nil {
		l.dedup = make(map[string]ingestResult, dedupWindow)
	}
	if len(l.dedupRing) < dedupWindow {
		l.dedupRing = append(l.dedupRing, id)
	} else {
		delete(l.dedup, l.dedupRing[l.dedupNext])
		l.dedupRing[l.dedupNext] = id
		l.dedupNext = (l.dedupNext + 1) % dedupWindow
	}
	l.dedup[id] = res
}

// AddLive publishes an empty live graph over n vertices under name. The
// initial entry carries the empty snapshot at a fresh epoch.
func (r *Registry) AddLive(name string, n int) (*GraphEntry, error) {
	if n <= 0 {
		return nil, fmt.Errorf("live graph needs a positive vertex count, got %d", n)
	}
	live := &Live{st: stream.New(n)}
	return r.addEntry(name, live.st.Snapshot(), live, nil), nil
}

// ingestUpdate is the JSON wire form of one update.
type ingestUpdate struct {
	U    int32 `json:"u"`
	V    int32 `json:"v"`
	Time int64 `json:"time,omitempty"`
	Del  bool  `json:"del,omitempty"`
}

// ingestResult is the ingest endpoint's response. Edges and Epoch are read
// inside the writer critical section, so when Snapshotted is true, Edges
// is exactly the edge count of the graph published at Epoch — the
// invariant the race harness checks against kernel responses.
type ingestResult struct {
	Accepted    int    `json:"accepted"`
	Inserted    int    `json:"inserted"`
	Deleted     int    `json:"deleted"`
	Ignored     int    `json:"ignored"`
	Edges       int64  `json:"edges"`
	Pending     int64  `json:"pending"`
	Epoch       uint64 `json:"epoch"`
	Snapshotted bool   `json:"snapshotted"`
}

// readBatch decodes the request body in either framing: the compact
// binary format (Content-Type application/x-graphct-updates) or a JSON
// array of {"u","v","time","del"} objects.
func (s *Server) readBatch(r *http.Request) ([]stream.Update, error) {
	if r.Header.Get("Content-Type") == stream.WireContentType {
		return stream.DecodeUpdates(r.Body, s.cfg.MaxBatch)
	}
	var ups []ingestUpdate
	if err := json.NewDecoder(r.Body).Decode(&ups); err != nil {
		return nil, fmt.Errorf("%w: %v", stream.ErrWireFormat, err)
	}
	if len(ups) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("batch of %d updates exceeds limit %d", len(ups), s.cfg.MaxBatch)
	}
	out := make([]stream.Update, len(ups))
	for i, up := range ups {
		out[i] = stream.Update{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
	}
	return out, nil
}

// handleIngest applies one batch of updates to a live graph. Batches pass
// their own admission pool (separate from the kernel pool, so a burst of
// writers cannot starve analysis traffic and vice versa), then apply
// under the graph's writer lock. When the accumulated effective mutations
// reach the snapshot threshold, the same critical section materializes an
// incremental CSR snapshot and publishes it as a new epoch — atomically
// invalidating cached results for the old epoch by keying.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	if e.Live == nil {
		writeError(w, http.StatusConflict, "graph %q is static; only live graphs accept updates", name)
		return
	}
	if e.Live.replica {
		writeError(w, http.StatusConflict, "graph %q is a replica; write to its leader", name)
		return
	}
	batchID := r.URL.Query().Get("batch_id")
	if len(batchID) > 128 {
		writeError(w, http.StatusBadRequest, "batch_id longer than 128 bytes")
		return
	}
	batch, err := s.readBatch(r)
	if err != nil {
		if errors.Is(err, stream.ErrWireFormat) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		}
		return
	}
	if err := s.ingest.Acquire(r.Context()); err != nil {
		s.writeIngestError(w, err)
		return
	}
	defer s.ingest.Release()
	if s.beforeIngest != nil {
		s.beforeIngest(name)
	}

	out, dup, err := s.applyIngest(name, e.Live, batchID, batch)
	if err != nil {
		if errors.Is(err, failpoint.ErrInjected) || errors.Is(err, errIngestPanic) {
			// Synthetic failures and isolated panics are the server's
			// fault: 500 tells idempotent clients to retry the batch.
			writeError(w, http.StatusInternalServerError, "%v", err)
		} else {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	if dup {
		s.metrics.IngestDeduped.Add(1)
		w.Header().Set(api.HeaderDeduped, "true")
	}
	writeJSON(w, http.StatusOK, out)
}

// errIngestPanic marks a batch application that panicked and was isolated.
var errIngestPanic = errors.New("ingest panicked")

// applyIngest is the writer critical section: dedup check, batch
// application, snapshot-on-threshold and idempotency recording all happen
// under the live graph's writer lock, with panic isolation so a bug (or
// injected panic) in the apply path poisons one batch, not the daemon.
func (s *Server) applyIngest(name string, live *Live, batchID string, batch []stream.Update) (out ingestResult, dup bool, err error) {
	live.mu.Lock()
	defer live.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.IngestPanics.Add(1)
			err = fmt.Errorf("%w: %v", errIngestPanic, r)
		}
	}()
	if batchID != "" {
		if prev, ok := live.dedup[batchID]; ok {
			return prev, true, nil
		}
	}
	// Re-resolve the entry under the lock: another batch may have
	// published a newer epoch between routing and admission.
	epoch := uint64(0)
	if e, ok := s.reg.Get(name); ok {
		epoch = e.Epoch
	}
	start := time.Now()
	res, err := live.st.ApplyBatch(batch)
	applyDur := time.Since(start)
	if err != nil {
		return ingestResult{}, false, err
	}
	out = ingestResult{
		Accepted: len(batch),
		Inserted: res.Inserted,
		Deleted:  res.Deleted,
		Ignored:  res.Ignored,
		Edges:    live.st.NumEdges(),
		Epoch:    epoch,
	}
	// Log the applied batch before acking. An append failure does not fail
	// the request (the batch is applied and the response truthful); it
	// flips walFailed so the next publication re-establishes durability by
	// committing a snapshot that contains this batch.
	if live.wal != nil {
		if werr := live.wal.Append(batchID, batch); werr != nil {
			s.metrics.WALErrors.Add(1)
			live.walFailed = true
		} else {
			s.metrics.WALAppends.Add(1)
		}
	}
	if live.st.SnapshotDue(s.cfg.SnapshotEvery) || live.walFailed {
		if epoch, ok := s.publishSnapshot(name, live); ok {
			out.Epoch = epoch
			out.Snapshotted = true
		}
	}
	out.Pending = live.st.PendingUpdates()
	if batchID != "" {
		live.remember(batchID, out)
	}
	s.metrics.IngestBatches.Add(1)
	s.metrics.IngestUpdates.Add(int64(len(batch)))
	s.metrics.IngestMutations.Add(int64(res.Inserted + res.Deleted))
	s.metrics.ObserveLatency("ingest", applyDur)
	return out, false, nil
}

// handleSnapshot force-publishes a snapshot of a live graph regardless of
// the threshold — the flush clients call before reading kernels that must
// observe everything ingested so far. With no pending updates it reports
// the already-current epoch without materializing.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	if e.Live == nil {
		writeError(w, http.StatusConflict, "graph %q is static; nothing to snapshot", name)
		return
	}
	if e.Live.replica {
		writeError(w, http.StatusConflict, "graph %q is a replica; its epochs follow the leader", name)
		return
	}
	out, err := s.forceSnapshot(name, e.Live, e.Epoch)
	if err != nil {
		// A forced flush that cannot publish breaks the caller's
		// "everything ingested is now visible" contract: 503 says retry.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// forceSnapshot publishes a snapshot regardless of the threshold, with
// the same panic isolation as the ingest path.
func (s *Server) forceSnapshot(name string, live *Live, epoch uint64) (out ingestResult, err error) {
	live.mu.Lock()
	defer live.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			s.metrics.IngestPanics.Add(1)
			err = fmt.Errorf("%w: %v", errIngestPanic, r)
		}
	}()
	out = ingestResult{Edges: live.st.NumEdges(), Epoch: epoch}
	if live.st.PendingUpdates() > 0 || live.walFailed {
		ne, ok := s.publishSnapshot(name, live)
		if !ok {
			return ingestResult{}, fmt.Errorf("snapshot publication deferred: %w", failpoint.ErrInjected)
		}
		out.Epoch = ne
		out.Snapshotted = true
	}
	return out, nil
}

// publishSnapshot materializes live's current state and installs it as a
// new registry entry (fresh epoch) under name. Callers must hold live.mu:
// the materialize-and-publish pair is what keeps epoch order identical to
// batch application order. The snapshot.publish failpoint defers the
// publication (ok=false): pending updates stay pending and a later batch
// or forced flush retries.
//
// When the graph is durable, the same critical section commits the new
// epoch to the blob store and rotates the write-ahead log onto it
// (persistEpoch), so the durable state never runs ahead of or behind the
// published order.
func (s *Server) publishSnapshot(name string, live *Live) (uint64, bool) {
	if err := failpoint.Eval(failpoint.SnapshotPublish); err != nil {
		s.metrics.SnapshotsDeferred.Add(1)
		return 0, false
	}
	start := time.Now()
	g := live.st.Snapshot()
	ne := s.reg.addEntry(name, g, live, nil)
	s.metrics.Snapshots.Add(1)
	s.metrics.ObserveLatency("snapshot", time.Since(start))
	if live.wal != nil {
		s.persistEpoch(name, live, ne.Epoch)
	}
	return ne.Epoch, true
}

func (s *Server) writeIngestError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) {
		s.metrics.IngestRejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeError(w, http.StatusGatewayTimeout, "ingest canceled: %v", err)
}

// epochHeader exposes which epoch served a kernel response, letting
// clients correlate results with ingest/snapshot responses.
func epochHeader(w http.ResponseWriter, epoch uint64) {
	w.Header().Set(api.HeaderEpoch, strconv.FormatUint(epoch, 10))
}
