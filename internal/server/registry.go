package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"graphct/internal/dimacs"
	"graphct/internal/graph"
)

// epochCounter hands out globally unique graph epochs. Cache keys embed
// the epoch, so replacing a graph under a name implicitly invalidates
// every cached result for the old graph without touching the cache.
var epochCounter atomic.Uint64

// advanceEpochCounter raises the counter to at least min. Recovery calls
// it with the highest epoch found in the durable store before publishing
// anything, so post-restart epochs stay strictly above every persisted
// one — point-in-time keys and "latest snapshot" ordering never collide
// across restarts.
func advanceEpochCounter(min uint64) {
	for {
		cur := epochCounter.Load()
		if cur >= min || epochCounter.CompareAndSwap(cur, min) {
			return
		}
	}
}

// GraphEntry is one named graph in the registry. Entries are immutable
// once published: a reload under the same name installs a new entry with
// a fresh epoch. For live (ingest-enabled) graphs, Graph is the epoch's
// materialized snapshot and Live carries the mutable stream shared by
// successive entries under the name; each snapshot materialization
// publishes a new entry, so readers that resolved an older entry keep a
// consistent view for the whole request.
type GraphEntry struct {
	Name  string
	Epoch uint64
	Graph *graph.Graph
	Live  *Live // nil for static graphs

	// Orig maps the graph's internal vertex ids back to the ids clients
	// know (Orig[internal] = external); nil means identity. Load-time
	// reordering relabels vertices for cache locality, and the API
	// boundary translates both directions so clients never see internal
	// labels: inbound vertex params go through ToInternal, per-vertex
	// results go through ToExternal.
	Orig []int32
	// perm is the eager inverse of Orig (perm[external] = internal),
	// built once at publish time for O(1) inbound translation.
	perm []int32
}

// ToExternal translates an internal vertex id to the client-visible id.
func (e *GraphEntry) ToExternal(v int32) int32 {
	if e.Orig == nil {
		return v
	}
	return e.Orig[v]
}

// ToInternal translates a client-supplied vertex id to the internal label.
// The caller has already range-checked v against the vertex count.
func (e *GraphEntry) ToInternal(v int32) int32 {
	if e.perm == nil {
		return v
	}
	return e.perm[v]
}

// Undirected returns the entry's memoized undirected view. The memo lives
// on the graph itself, so it is scoped to this entry's epoch exactly like
// the result cache: however many concurrent centrality requests hit a
// directed graph, it is symmetrized once per epoch, and reloading a graph
// under the same name (new entry, new epoch, new *Graph) naturally drops
// the stale view along with the stale cache keys.
func (e *GraphEntry) Undirected() *graph.Graph {
	return e.Graph.Undirected()
}

// Registry maps names to in-memory CSR graphs. All methods are safe for
// concurrent use; lookups are cheap (RWMutex read path) because every
// kernel request resolves its graph here.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*GraphEntry

	// Layout is applied to every graph loaded from a file (Load). Live
	// graphs are exempt: IncrementalCSR mutates rows in place, so they
	// stay raw and in ingest order.
	Layout graph.Layout
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*GraphEntry)}
}

// Add publishes g under name, replacing any previous graph and bumping
// the epoch (which orphans stale cache entries). Publishing a static
// graph over a live name drops the live stream.
func (r *Registry) Add(name string, g *graph.Graph) *GraphEntry {
	return r.AddWithOrig(name, g, nil)
}

// AddWithOrig publishes g with an internal→external id mapping (nil for
// identity). Derived graphs (extractions) use it to compose their id
// mapping with their parent's.
func (r *Registry) AddWithOrig(name string, g *graph.Graph, orig []int32) *GraphEntry {
	return r.addEntry(name, g, nil, orig)
}

func (r *Registry) addEntry(name string, g *graph.Graph, live *Live, orig []int32) *GraphEntry {
	e := &GraphEntry{Name: name, Epoch: epochCounter.Add(1), Graph: g, Live: live, Orig: orig}
	// Inbound translation needs the inverse, which only exists when Orig
	// permutes the entry's own id space (a reordered load). A derived
	// entry maps into its parent's larger space: clients address it by its
	// dense ids and Orig translates outputs only.
	if isPerm(orig) {
		e.perm = graph.InversePerm(orig)
	}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e
}

// addEntryAt publishes g under name at a caller-chosen epoch instead of
// the next counter value. The follower tailer uses it to pin replicated
// entries to the leader's durable epochs, so "epoch E of graph g" names
// the same bits on every member of a shard. The global counter is raised
// past the pinned value first, so locally published epochs (follower-own
// graphs, a later promotion to leader) never collide with replicated ones.
func (r *Registry) addEntryAt(name string, g *graph.Graph, live *Live, epoch uint64) *GraphEntry {
	advanceEpochCounter(epoch)
	e := &GraphEntry{Name: name, Epoch: epoch, Graph: g, Live: live}
	r.mu.Lock()
	r.m[name] = e
	r.mu.Unlock()
	return e
}

// isPerm reports whether orig is a permutation of [0, len(orig)).
func isPerm(orig []int32) bool {
	if orig == nil {
		return false
	}
	seen := make([]bool, len(orig))
	for _, v := range orig {
		if v < 0 || int(v) >= len(orig) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Load reads a graph file in the given format ("dimacs", "edgelist" or
// "binary"), applies the registry's memory layout (reordering and/or
// adjacency compression), and publishes it under name. When the layout
// relabels, the entry carries the id translation so the relabeling stays
// invisible at the API.
func (r *Registry) Load(name, format, path string, directed bool) (*GraphEntry, error) {
	var g *graph.Graph
	var err error
	switch format {
	case "dimacs":
		g, err = dimacs.ParseFile(path, dimacs.ParseOptions{Directed: directed, KeepWeights: true})
	case "edgelist":
		g, err = dimacs.ParseEdgeListFile(path, dimacs.EdgeListOptions{Directed: directed})
	case "binary":
		g, err = dimacs.LoadBinary(path)
	default:
		return nil, fmt.Errorf("unknown graph format %q (want dimacs, edgelist or binary)", format)
	}
	if err != nil {
		return nil, err
	}
	g, inv, err := r.Layout.Apply(g)
	if err != nil {
		return nil, err
	}
	return r.AddWithOrig(name, g, inv), nil
}

// Get resolves a name; ok is false when no graph is registered under it.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	e, ok := r.m[name]
	r.mu.RUnlock()
	return e, ok
}

// Remove drops the graph registered under name, reporting whether one
// existed. Cached results for it age out of the LRU naturally.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	_, ok := r.m[name]
	delete(r.m, name)
	r.mu.Unlock()
	return ok
}

// List returns the registered entries sorted by name.
func (r *Registry) List() []*GraphEntry {
	r.mu.RLock()
	out := make([]*GraphEntry, 0, len(r.m))
	for _, e := range r.m {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
