package cc

import (
	"sync/atomic"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// ComponentsBFS labels components with the paper's literal two-phase
// description of Kahan's algorithm: the first phase "searches
// breadth-first simultaneously from every vertex of the graph to greedily
// color neighbors with integers", with the parallel searches recording
// which colors collide; the second phase "repeatedly absorbs higher
// labeled colors into lower labeled neighbors" over the collision graph,
// relabeling downward until no collisions remain.
//
// It produces exactly the same labeling as Components (the smallest
// vertex id per component) by a different route; the equivalence is a
// property test, and the ablation benchmark compares the two.
func ComponentsBFS(g *graph.Graph) *Result {
	work := g
	if g.Directed() {
		work = g.Undirected()
	}
	n := work.NumVertices()
	colors := make([]int32, n)
	frontier := make([]int32, n)
	par.For(n, func(v int) {
		colors[v] = int32(v)
		frontier[v] = int32(v)
	})

	// Phase 1: simultaneous BFS. Every vertex starts as a root; each
	// round, frontier vertices try to color their neighbors. Claiming a
	// smaller color advances that search; meeting an existing search
	// records a collision between the two colors.
	// A collision links two color regions that met. Claiming a virgin
	// vertex v (colors[v] == v) needs no record — color v IS vertex v, so
	// the overwritten entry itself becomes the parent pointer — but
	// displacing a foreign color must be recorded or its region would be
	// orphaned from the union.
	type collision struct{ a, b int32 }
	var collisions []collision
	for len(frontier) > 0 {
		workers := par.Workers()
		nextBufs := make([][]int32, workers)
		collBufs := make([][]collision, workers)
		var cursor atomic.Int64
		const chunk = 1024
		par.ForEachWorker(func(w, _ int) {
			var next []int32
			var coll []collision
			var nbuf []int32
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= len(frontier) {
					break
				}
				hi := lo + chunk
				if hi > len(frontier) {
					hi = len(frontier)
				}
				for _, u := range frontier[lo:hi] {
					cu := atomic.LoadInt32(&colors[u])
					for _, v := range work.NeighborsInto(&nbuf, u) {
						for {
							cv := atomic.LoadInt32(&colors[v])
							if cv <= cu {
								if cv < cu {
									coll = append(coll, collision{a: cv, b: cu})
								}
								break
							}
							if par.CASInt32(&colors[v], cv, cu) {
								if cv != v {
									coll = append(coll, collision{a: cu, b: cv})
								}
								next = append(next, v)
								break
							}
						}
					}
				}
			}
			nextBufs[w] = next
			collBufs[w] = coll
		})
		frontier = frontier[:0]
		for _, b := range nextBufs {
			frontier = append(frontier, b...)
		}
		for _, b := range collBufs {
			collisions = append(collisions, b...)
		}
	}

	// Phase 2: absorb higher labels into lower ones across the recorded
	// collisions, with pointer jumping to flatten chains, until stable.
	root := func(c int32) int32 {
		for colors[c] != c {
			colors[c] = colors[colors[c]] // path halving
			c = colors[c]
		}
		return c
	}
	for {
		changed := false
		for _, cl := range collisions {
			ra, rb := root(cl.a), root(cl.b)
			if ra == rb {
				continue
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			colors[rb] = ra
			changed = true
		}
		if !changed {
			break
		}
	}
	// Final downward relabeling. Chases read entries other workers may be
	// storing finals into concurrently; both old and new values point
	// toward the root, but the access must be atomic.
	count := 0
	par.For(n, func(v int) {
		c := atomic.LoadInt32(&colors[v])
		for {
			cc := atomic.LoadInt32(&colors[c])
			if cc == c {
				break
			}
			c = cc
		}
		atomic.StoreInt32(&colors[v], c)
	})
	for v := 0; v < n; v++ {
		if colors[v] == int32(v) {
			count++
		}
	}
	return &Result{Colors: colors, Count: count}
}
