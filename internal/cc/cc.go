// Package cc extracts connected components with a parallel coloring kernel
// in the style GraphCT borrows from Kahan's algorithm: parallel greedy
// coloring from every vertex, colliding colors absorbed by atomically
// hooking higher labels onto lower ones, then pointer jumping to flatten the
// label forest. The fixed point labels every vertex with the smallest vertex
// id in its component.
package cc

import (
	"sort"
	"sync/atomic"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// Result is a component labeling.
type Result struct {
	Colors []int32 // Colors[v] = smallest vertex id in v's component
	Count  int     // number of components
}

// Components labels the connected components of g. Directed graphs are
// labeled by weak connectivity (arc direction ignored).
func Components(g *graph.Graph) *Result {
	work := g
	if g.Directed() {
		work = g.Undirected()
	}
	n := work.NumVertices()
	colors := make([]int32, n)
	par.For(n, func(v int) { colors[v] = int32(v) })
	for {
		var changed atomic.Bool
		// Hooking: absorb higher labels into lower labeled neighbors. Each
		// chunk owns a decode buffer so compact graphs hook without
		// per-row allocation.
		par.ForChunked(n, 0, func(lo, hi int) {
			var nbuf []int32
			for v := lo; v < hi; v++ {
				cv := atomic.LoadInt32(&colors[v])
				for _, w := range work.NeighborsInto(&nbuf, int32(v)) {
					cw := atomic.LoadInt32(&colors[w])
					switch {
					case cw < cv:
						if par.MinInt32(&colors[v], cw) {
							changed.Store(true)
						}
						cv = atomic.LoadInt32(&colors[v])
					case cv < cw:
						if par.MinInt32(&colors[w], cv) {
							changed.Store(true)
						}
					}
				}
			}
		})
		// Pointer jumping: relabel colors downward until the forest is
		// flat (colors[colors[v]] == colors[v]).
		par.For(n, func(v int) {
			c := atomic.LoadInt32(&colors[v])
			for {
				cc := atomic.LoadInt32(&colors[c])
				if cc == c {
					break
				}
				c = cc
			}
			if atomic.LoadInt32(&colors[v]) != c {
				atomic.StoreInt32(&colors[v], c)
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	count := 0
	for v := 0; v < n; v++ {
		if colors[v] == int32(v) {
			count++
		}
	}
	return &Result{Colors: colors, Count: count}
}

// Component is one entry of a component census.
type Component struct {
	Label int32 // the component's color (smallest member id)
	Size  int64 // number of vertices
}

// Census returns the components ordered by decreasing size (ties broken by
// label), GraphCT's "calculate statistical distributions of component
// sizes" input and the ordering its "extract component N" scripting command
// indexes into (N=1 is the largest).
func (r *Result) Census() []Component {
	sizes := make(map[int32]int64)
	for _, c := range r.Colors {
		sizes[c]++
	}
	out := make([]Component, 0, len(sizes))
	for label, size := range sizes {
		out = append(out, Component{Label: label, Size: size})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Extract returns the subgraph of the rank-th largest component (rank 1 =
// largest) together with the original vertex ids. A rank beyond the number
// of components yields an empty graph.
func Extract(g *graph.Graph, r *Result, rank int) (*graph.Graph, []int32) {
	census := r.Census()
	if rank < 1 || rank > len(census) {
		return graph.Empty(0, g.Directed()), nil
	}
	return g.InducedByColor(r.Colors, census[rank-1].Label)
}

// Largest returns the largest (weakly) connected component of g with the
// original ids — the paper's LWCC rows in Table III.
func Largest(g *graph.Graph) (*graph.Graph, []int32) {
	return Extract(g, Components(g), 1)
}

// SameComponent reports whether u and v share a component in the labeling.
func (r *Result) SameComponent(u, v int32) bool {
	return r.Colors[u] == r.Colors[v]
}
