package cc

import (
	"testing"
	"testing/quick"

	"graphct/internal/bfs"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestSingleComponent(t *testing.T) {
	r := Components(gen.Ring(20))
	if r.Count != 1 {
		t.Fatalf("ring components = %d, want 1", r.Count)
	}
	for v, c := range r.Colors {
		if c != 0 {
			t.Fatalf("colors[%d] = %d, want 0", v, c)
		}
	}
}

func TestDisjointComponents(t *testing.T) {
	g := gen.Disjoint(gen.Ring(5), gen.Path(3), gen.Star(7))
	r := Components(g)
	if r.Count != 3 {
		t.Fatalf("components = %d, want 3", r.Count)
	}
	if !r.SameComponent(0, 4) || r.SameComponent(0, 5) {
		t.Fatal("component membership wrong")
	}
	census := r.Census()
	if len(census) != 3 || census[0].Size != 7 || census[1].Size != 5 || census[2].Size != 3 {
		t.Fatalf("census = %v", census)
	}
	// Labels are smallest member ids: 0 (ring), 5 (path), 8 (star).
	if census[0].Label != 8 || census[1].Label != 0 || census[2].Label != 5 {
		t.Fatalf("census labels = %v", census)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{U: 1, V: 2}}, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Components(g)
	if r.Count != 4 {
		t.Fatalf("components = %d, want 4 (3 singletons + one edge)", r.Count)
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Components(graph.Empty(0, false))
	if r.Count != 0 || len(r.Colors) != 0 {
		t.Fatal("empty graph should have zero components")
	}
}

func TestDirectedWeakConnectivity(t *testing.T) {
	// 0 -> 1 -> 2 with no back arcs is still one weak component.
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.Options{Directed: true})
	r := Components(g)
	if r.Count != 2 {
		t.Fatalf("weak components = %d, want 2 ({0,1,2} and {3})", r.Count)
	}
	if !r.SameComponent(0, 2) {
		t.Fatal("0 and 2 should be weakly connected")
	}
}

func TestExtract(t *testing.T) {
	g := gen.Disjoint(gen.Path(3), gen.Ring(6))
	r := Components(g)
	sub, orig := Extract(g, r, 1)
	if sub.NumVertices() != 6 || sub.NumEdges() != 6 {
		t.Fatalf("largest = %v", sub)
	}
	if orig[0] != 3 {
		t.Fatalf("origID = %v", orig)
	}
	second, _ := Extract(g, r, 2)
	if second.NumVertices() != 3 {
		t.Fatalf("second component n = %d", second.NumVertices())
	}
	empty, _ := Extract(g, r, 3)
	if empty.NumVertices() != 0 {
		t.Fatal("rank beyond count should be empty")
	}
	empty, _ = Extract(g, r, 0)
	if empty.NumVertices() != 0 {
		t.Fatal("rank 0 should be empty")
	}
}

func TestLargest(t *testing.T) {
	g := gen.Disjoint(gen.Star(4), gen.Complete(5))
	lwcc, orig := Largest(g)
	if lwcc.NumVertices() != 5 || lwcc.NumEdges() != 10 {
		t.Fatalf("LWCC = %v", lwcc)
	}
	if len(orig) != 5 || orig[0] != 4 {
		t.Fatalf("orig = %v", orig)
	}
}

// Property: labeling agrees with BFS reachability on random graphs.
func TestPropertyMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(100, 90, seed) // sparse => many components
		r := Components(g)
		reach := bfs.Search(g, 0)
		for v := 0; v < 100; v++ {
			if reach.Reached(int32(v)) != r.SameComponent(0, int32(v)) {
				return false
			}
		}
		// Colors must be component minima: colors[v] <= v and
		// colors[colors[v]] == colors[v].
		for v, c := range r.Colors {
			if c > int32(v) || r.Colors[c] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: census sizes sum to the vertex count and are sorted descending.
func TestPropertyCensusPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(80, 60, seed)
		census := Components(g).Census()
		var sum int64
		for i, c := range census {
			sum += c.Size
			if i > 0 && census[i-1].Size < c.Size {
				return false
			}
		}
		return sum == int64(g.NumVertices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLongChainConverges(t *testing.T) {
	// A long path stresses the pointer-jumping phase.
	r := Components(gen.Path(5000))
	if r.Count != 1 {
		t.Fatalf("path components = %d", r.Count)
	}
}

func TestComponentsBFSBasics(t *testing.T) {
	g := gen.Disjoint(gen.Ring(5), gen.Path(3), gen.Star(7))
	r := ComponentsBFS(g)
	if r.Count != 3 {
		t.Fatalf("components = %d, want 3", r.Count)
	}
	if !r.SameComponent(0, 4) || r.SameComponent(0, 5) {
		t.Fatal("membership wrong")
	}
	empty := ComponentsBFS(graph.Empty(0, false))
	if empty.Count != 0 {
		t.Fatal("empty graph")
	}
}

func TestComponentsBFSDirected(t *testing.T) {
	d, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, graph.Options{Directed: true})
	if got := ComponentsBFS(d).Count; got != 2 {
		t.Fatalf("weak components = %d, want 2", got)
	}
}

// Property: the multi-BFS coloring produces exactly the same labeling as
// the hook-and-jump kernel on random graphs — including long chains that
// stress the absorption phase and sparse graphs with many components.
func TestPropertyComponentsBFSEquivalent(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw)%200 + 10
		g := gen.ErdosRenyi(120, m, seed)
		a := Components(g)
		b := ComponentsBFS(g)
		if a.Count != b.Count {
			return false
		}
		for v := range a.Colors {
			if a.Colors[v] != b.Colors[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsBFSLongChain(t *testing.T) {
	r := ComponentsBFS(gen.Path(3000))
	if r.Count != 1 || r.Colors[2999] != 0 {
		t.Fatalf("path labeling: count=%d tail=%d", r.Count, r.Colors[2999])
	}
}

func BenchmarkComponentsBFSRMAT14(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(14, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComponentsBFS(g)
	}
}

func BenchmarkComponentsRMAT14(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(14, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g)
	}
}
