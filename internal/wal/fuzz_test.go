package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"graphct/internal/stream"
)

// validLog builds an intact in-memory log image with the given records,
// bypassing the filesystem.
func validLog(tb testing.TB, baseEpoch uint64, recs []Record) []byte {
	tb.Helper()
	var buf bytes.Buffer
	buf.Write(logMagic[:])
	var epoch [8]byte
	binary.LittleEndian.PutUint64(epoch[:], baseEpoch)
	buf.Write(epoch[:])
	for _, rec := range recs {
		payload, err := encodePayload(rec.BatchID, rec.Updates)
		if err != nil {
			tb.Fatal(err)
		}
		var hdr [recHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

// FuzzWALDecode drives the log decoder with arbitrary bytes. The recovery
// contract: decodeAll never panics; a log that is not a log fails with
// ErrFormat and yields no records; anything that does decode survives a
// re-encode/decode round trip unchanged (the recovered records are real
// records, not artifacts of the damage). Byte-prefix equality is not
// asserted — varint fields accept non-minimal encodings, so re-encoding
// may legitimately shrink.
func FuzzWALDecode(f *testing.F) {
	recs := []Record{
		{BatchID: "b-1", Updates: []stream.Update{{U: 0, V: 1, Time: 10}, {U: 1, V: 2, Time: 11}}},
		{BatchID: "", Updates: []stream.Update{{U: 2, V: 0, Time: 12, Del: true}}},
	}
	intact := validLog(f, 7, recs)
	f.Add(intact)
	f.Add(intact[:len(intact)-3]) // torn final record
	f.Add(intact[:headerLen])     // header only
	f.Add(intact[:4])             // torn header
	f.Add([]byte{})
	f.Add([]byte("GCTW\x01"))
	f.Add(bytes.Repeat([]byte{0xaa}, 100))
	flipped := append([]byte(nil), intact...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped) // CRC mismatch in the last record

	f.Fuzz(func(t *testing.T, data []byte) {
		baseEpoch, recs, torn, err := decodeAll(data)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("decodeAll error is not ErrFormat: %v", err)
			}
			if len(recs) != 0 {
				t.Fatalf("decodeAll returned %d records alongside %v", len(recs), err)
			}
			return
		}
		// Round-trip stability: the recovered records re-encode to a log
		// that decodes cleanly back to the same records.
		reencoded := validLog(t, baseEpoch, recs)
		base2, recs2, torn2, err2 := decodeAll(reencoded)
		if err2 != nil || torn2 || base2 != baseEpoch || len(recs2) != len(recs) {
			t.Fatalf("re-decode: base %d->%d, %d->%d records, torn=%v, err=%v",
				baseEpoch, base2, len(recs), len(recs2), torn2, err2)
		}
		for i := range recs {
			if recs2[i].BatchID != recs[i].BatchID || len(recs2[i].Updates) != len(recs[i].Updates) {
				t.Fatalf("record %d changed across round trip", i)
			}
			for j := range recs[i].Updates {
				if recs2[i].Updates[j] != recs[i].Updates[j] {
					t.Fatalf("record %d update %d changed across round trip", i, j)
				}
			}
		}
		_ = torn
	})
}
