package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphct/internal/failpoint"
	"graphct/internal/stream"
)

func testBatches() [][]stream.Update {
	return [][]stream.Update{
		{{U: 0, V: 1, Time: 1}, {U: 1, V: 2, Time: 2}},
		{{U: 2, V: 3, Time: 3}},
		{{U: 0, V: 1, Time: 4, Del: true}, {U: 3, V: 4, Time: 5}},
	}
}

func writeTestLog(t *testing.T, path string) {
	t.Helper()
	l, err := Create(path, 11)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i, batch := range testBatches() {
		id := ""
		if i != 1 { // middle batch is anonymous
			id = string(rune('a' + i))
		}
		if err := l.Append(id, batch); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := l.Appends(); got != 3 {
		t.Fatalf("Appends = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg", "epoch-1.wal")
	writeTestLog(t, path)
	var got []Record
	base, n, torn, err := Replay(path, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil || torn {
		t.Fatalf("Replay: n=%d torn=%v err=%v", n, torn, err)
	}
	if base != 11 || n != 3 {
		t.Fatalf("Replay base=%d n=%d, want 11, 3", base, n)
	}
	want := testBatches()
	for i, rec := range got {
		if len(rec.Updates) != len(want[i]) {
			t.Fatalf("record %d has %d updates, want %d", i, len(rec.Updates), len(want[i]))
		}
		for j := range want[i] {
			if rec.Updates[j] != want[i][j] {
				t.Fatalf("record %d update %d = %+v, want %+v", i, j, rec.Updates[j], want[i][j])
			}
		}
	}
	if got[0].BatchID != "a" || got[1].BatchID != "" || got[2].BatchID != "c" {
		t.Fatalf("batch ids = %q %q %q", got[0].BatchID, got[1].BatchID, got[2].BatchID)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch-1.wal")
	writeTestLog(t, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end: however deep the tear, replay recovers an
	// intact prefix and flags the damage.
	for cut := 1; cut < len(raw)-headerLen; cut += 3 {
		torn := raw[:len(raw)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		_, n, tornFlag, err := Replay(path, func(Record) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: Replay err: %v", cut, err)
		}
		if n >= 3 && !tornFlag {
			// Cutting within the final record must lose it or flag it.
			t.Fatalf("cut %d: n=%d torn=%v", cut, n, tornFlag)
		}
	}
}

func TestReplayCRCDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch-1.wal")
	writeTestLog(t, path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80 // corrupt the last record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, n, torn, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 2 || !torn {
		t.Fatalf("n=%d torn=%v, want 2 intact records and torn=true", n, torn)
	}
}

func TestReplayBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("definitely not GCTW"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Replay(path, func(Record) error { return nil }); !errors.Is(err, ErrFormat) {
		t.Fatalf("Replay on garbage = %v, want ErrFormat", err)
	}
}

func TestCreateTruncatesPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch-1.wal")
	writeTestLog(t, path)
	l, err := Create(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	base, n, torn, err := Replay(path, func(Record) error { return nil })
	if err != nil || torn || n != 0 || base != 99 {
		t.Fatalf("after re-create: base=%d n=%d torn=%v err=%v, want 99,0,false,nil", base, n, torn, err)
	}
}

func TestAppendFailpoint(t *testing.T) {
	defer failpoint.Default.DisarmAll()
	path := filepath.Join(t.TempDir(), "epoch-1.wal")
	l, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := failpoint.Default.Arm("wal.append=error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err = l.Append("id", []stream.Update{{U: 0, V: 1}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Append under failpoint = %v, want injected error", err)
	}
	failpoint.Default.DisarmAll()
	// The failed append wrote nothing: the log is still cleanly decodable.
	if err := l.Append("id", []stream.Update{{U: 0, V: 1}}); err != nil {
		t.Fatalf("Append after disarm: %v", err)
	}
	_, n, torn, err := Replay(path, func(Record) error { return nil })
	if err != nil || torn || n != 1 {
		t.Fatalf("Replay: n=%d torn=%v err=%v, want 1,false,nil", n, torn, err)
	}
}
