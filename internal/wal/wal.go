// Package wal implements graphctd's write-ahead batch log: an append-only
// file recording every ingest batch applied to a live graph since its
// last durable snapshot. Each record carries the client's batch_id and
// the batch itself in the existing GCTU wire framing (internal/stream),
// under a per-record CRC32C so a torn tail — the normal end state of a
// crashed process — is detected and recovery stops at the last intact
// record instead of replaying garbage.
//
// A log is a segment: it is created when a durable snapshot is committed
// (the segment's base epoch), accumulates the batches applied on top of
// that snapshot, and is deleted once a newer snapshot makes it redundant.
// Warm restart = load the newest durable snapshot + replay the segments
// based at or after its epoch, in order.
//
// File layout, all fields little-endian:
//
//	header  "GCTW" 0x01, baseEpoch uint64
//	records repeated:
//	    length uint32  payload bytes
//	    crc32c uint32  Castagnoli checksum of the payload
//	    payload:
//	        idLen   uvarint, then idLen bytes of batch_id (may be empty)
//	        updates GCTU frame (stream.EncodeUpdates)
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"graphct/internal/failpoint"
	"graphct/internal/stream"
)

var logMagic = [5]byte{'G', 'C', 'T', 'W', 1}

const (
	headerLen = len(logMagic) + 8
	recHdrLen = 8
	// maxRecordBytes bounds one record on decode; anything larger is
	// treated as corruption, not an allocation request.
	maxRecordBytes = 1 << 30
	// maxBatchIDLen mirrors (generously) the server's 128-byte batch_id
	// cap, so a corrupt length prefix cannot claim most of the payload.
	maxBatchIDLen = 4096
)

// ErrFormat reports a log whose header is malformed — not a torn tail but
// a file that was never a valid log (or had its head destroyed).
var ErrFormat = errors.New("wal: malformed log")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged batch.
type Record struct {
	BatchID string
	Updates []stream.Update
}

// Log is an open segment accepting appends. Callers serialize Append
// calls (graphctd holds the live graph's writer lock across them).
type Log struct {
	f         *os.File
	path      string
	baseEpoch uint64
	appends   int64
}

// Create creates (or truncates) a segment at path with the given base
// epoch, fsyncing the header and the parent directory before returning,
// so a crash immediately after a snapshot commit still finds the segment.
func Create(path string, baseEpoch uint64) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerLen)
	copy(hdr, logMagic[:])
	binary.LittleEndian.PutUint64(hdr[5:], baseEpoch)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{f: f, path: path, baseEpoch: baseEpoch}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }

// BaseEpoch returns the durable snapshot epoch this segment extends.
func (l *Log) BaseEpoch() uint64 { return l.baseEpoch }

// Appends returns how many records this Log has appended.
func (l *Log) Appends() int64 { return l.appends }

// Append durably logs one batch: when Append returns nil the record is
// fsynced and will be replayed by recovery. The wal.append failpoint
// fires before any I/O so an injected failure writes nothing.
func (l *Log) Append(batchID string, ups []stream.Update) error {
	if err := failpoint.Eval(failpoint.WALAppend); err != nil {
		return err
	}
	payload, err := encodePayload(batchID, ups)
	if err != nil {
		return err
	}
	rec := make([]byte, recHdrLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
	copy(rec[recHdrLen:], payload)
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.appends++
	return nil
}

// Close closes the segment file.
func (l *Log) Close() error { return l.f.Close() }

func encodePayload(batchID string, ups []stream.Update) ([]byte, error) {
	if len(batchID) > maxBatchIDLen {
		return nil, fmt.Errorf("wal: batch id of %d bytes exceeds %d", len(batchID), maxBatchIDLen)
	}
	var buf bytes.Buffer
	var idLen [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(idLen[:], uint64(len(batchID)))
	buf.Write(idLen[:n])
	buf.WriteString(batchID)
	if err := stream.EncodeUpdates(&buf, ups); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAll parses a whole log image. A malformed header returns ErrFormat
// and no records. A torn or corrupt tail — truncated record header,
// truncated payload, CRC mismatch, undecodable batch — ends the decode at
// the last intact record with torn=true; everything before it is returned.
// decodeAll never panics on arbitrary input (the FuzzWALDecode property).
func decodeAll(data []byte) (baseEpoch uint64, recs []Record, torn bool, err error) {
	if len(data) < headerLen {
		return 0, nil, false, fmt.Errorf("%w: %d bytes, header needs %d", ErrFormat, len(data), headerLen)
	}
	if [5]byte(data[:5]) != logMagic {
		return 0, nil, false, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:5])
	}
	baseEpoch = binary.LittleEndian.Uint64(data[5:])
	rest := data[headerLen:]
	for len(rest) > 0 {
		if len(rest) < recHdrLen {
			return baseEpoch, recs, true, nil
		}
		length := binary.LittleEndian.Uint32(rest[0:])
		if uint64(length) > maxRecordBytes || uint64(len(rest)-recHdrLen) < uint64(length) {
			return baseEpoch, recs, true, nil
		}
		payload := rest[recHdrLen : recHdrLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return baseEpoch, recs, true, nil
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// The CRC matched but the content does not parse: treat as
			// corruption and stop, like any other damaged tail.
			return baseEpoch, recs, true, nil
		}
		recs = append(recs, rec)
		rest = rest[recHdrLen+int(length):]
	}
	return baseEpoch, recs, false, nil
}

func decodePayload(payload []byte) (Record, error) {
	br := bytes.NewReader(payload)
	idLen, err := binary.ReadUvarint(br)
	if err != nil || idLen > maxBatchIDLen {
		return Record{}, fmt.Errorf("wal: bad batch id length")
	}
	id := make([]byte, idLen)
	if _, err := br.Read(id); err != nil && idLen > 0 {
		return Record{}, fmt.Errorf("wal: truncated batch id")
	}
	if uint64(len(id)) != idLen {
		return Record{}, fmt.Errorf("wal: truncated batch id")
	}
	ups, err := stream.DecodeUpdates(br, 0)
	if err != nil {
		return Record{}, err
	}
	return Record{BatchID: string(id), Updates: ups}, nil
}

// Decode parses a whole in-memory log image with decodeAll's torn-tail
// semantics. The follower replication tailer uses it to apply segments
// fetched over HTTP, where a torn tail just means the leader is still
// appending — the next poll picks up the rest.
func Decode(data []byte) (baseEpoch uint64, recs []Record, torn bool, err error) {
	return decodeAll(data)
}

// Replay reads the segment at path and calls fn for each intact record in
// append order, stopping at the first torn or corrupt frame. It returns
// the segment's base epoch, how many records were replayed, and whether
// the log ended in a damaged tail. fn returning an error aborts the
// replay and propagates.
func Replay(path string, fn func(Record) error) (baseEpoch uint64, n int, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	baseEpoch, recs, torn, err := decodeAll(data)
	if err != nil {
		return 0, 0, false, fmt.Errorf("%s: %w", path, err)
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return baseEpoch, n, torn, err
		}
		n++
	}
	return baseEpoch, n, torn, nil
}

// syncDir fsyncs a directory so segment creation survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
