// Package stream provides the streaming-graph substrate of the paper's
// companion work (Ediger, Jiang, Riedy, Bader, "Massive streaming data
// analytics: a case study with clustering coefficients", MTAAP 2010),
// which Section V positions as the temporal direction of this analysis:
// social graphs change over time, and recomputing metrics from scratch per
// batch wastes the structure shared between snapshots.
//
// A Stream ingests timestamped interaction edges, maintains a dynamic
// adjacency structure, incrementally tracks per-vertex triangle counts
// (so clustering coefficients are always available in O(1)), and can
// materialize a CSR snapshot for the static kernels at any point.
package stream

import (
	"fmt"
	"sort"

	"graphct/internal/graph"
)

// Update is one streamed interaction.
type Update struct {
	U, V int32
	Time int64 // arbitrary monotone timestamp (e.g. tweet id)
}

// Stream is a dynamic undirected graph with incrementally maintained
// triangle counts. It is not safe for concurrent mutation; batches are the
// concurrency unit, as in the streaming paper.
type Stream struct {
	n        int
	adj      []map[int32]struct{}
	tri      []int64 // triangles incident on each vertex
	edges    int64
	lastTime int64
}

// New creates a stream over n vertices and no edges.
func New(n int) *Stream {
	s := &Stream{n: n, adj: make([]map[int32]struct{}, n), tri: make([]int64, n)}
	for i := range s.adj {
		s.adj[i] = make(map[int32]struct{})
	}
	return s
}

// NumVertices returns the vertex count.
func (s *Stream) NumVertices() int { return s.n }

// NumEdges returns the current undirected edge count.
func (s *Stream) NumEdges() int64 { return s.edges }

// Degree returns the current degree of v.
func (s *Stream) Degree(v int32) int { return len(s.adj[v]) }

// HasEdge reports whether the undirected edge {u,v} is present.
func (s *Stream) HasEdge(u, v int32) bool {
	_, ok := s.adj[u][v]
	return ok
}

// LastTime returns the timestamp of the most recent accepted update.
func (s *Stream) LastTime() int64 { return s.lastTime }

// Insert adds the undirected edge {u,v}. Duplicate edges and self loops
// are ignored (the mention-graph dedup rule). It returns true when the
// edge was new. Triangle counts of u, v and each common neighbor are
// updated incrementally: inserting {u,v} creates one triangle per common
// neighbor.
func (s *Stream) Insert(up Update) (bool, error) {
	u, v := up.U, up.V
	if err := s.check(u, v); err != nil {
		return false, err
	}
	if u == v || s.HasEdge(u, v) {
		s.touch(up.Time)
		return false, nil
	}
	common := s.commonNeighbors(u, v)
	for _, w := range common {
		s.tri[w]++
	}
	s.tri[u] += int64(len(common))
	s.tri[v] += int64(len(common))
	s.adj[u][v] = struct{}{}
	s.adj[v][u] = struct{}{}
	s.edges++
	s.touch(up.Time)
	return true, nil
}

// Delete removes the undirected edge {u,v}, reversing the triangle
// bookkeeping. It returns true when the edge existed.
func (s *Stream) Delete(up Update) (bool, error) {
	u, v := up.U, up.V
	if err := s.check(u, v); err != nil {
		return false, err
	}
	if u == v || !s.HasEdge(u, v) {
		s.touch(up.Time)
		return false, nil
	}
	delete(s.adj[u], v)
	delete(s.adj[v], u)
	s.edges--
	common := s.commonNeighbors(u, v)
	for _, w := range common {
		s.tri[w]--
	}
	s.tri[u] -= int64(len(common))
	s.tri[v] -= int64(len(common))
	s.touch(up.Time)
	return true, nil
}

// InsertBatch applies a batch of insertions, returning how many were new
// edges. Batched ingest is the streaming paper's unit of work.
func (s *Stream) InsertBatch(batch []Update) (int, error) {
	added := 0
	for _, up := range batch {
		ok, err := s.Insert(up)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func (s *Stream) check(u, v int32) error {
	if u < 0 || int(u) >= s.n || v < 0 || int(v) >= s.n {
		return fmt.Errorf("stream: edge (%d,%d) outside [0,%d)", u, v, s.n)
	}
	return nil
}

func (s *Stream) touch(t int64) {
	if t > s.lastTime {
		s.lastTime = t
	}
}

// commonNeighbors returns vertices adjacent to both u and v, iterating
// the smaller adjacency set.
func (s *Stream) commonNeighbors(u, v int32) []int32 {
	a, b := u, v
	if len(s.adj[a]) > len(s.adj[b]) {
		a, b = b, a
	}
	var out []int32
	for w := range s.adj[a] {
		if _, ok := s.adj[b][w]; ok {
			out = append(out, w)
		}
	}
	return out
}

// Triangles returns the current per-vertex triangle counts (aliased copy).
func (s *Stream) Triangles() []int64 {
	out := make([]int64, s.n)
	copy(out, s.tri)
	return out
}

// Coefficient returns v's current local clustering coefficient in O(1)
// from the maintained triangle count.
func (s *Stream) Coefficient(v int32) float64 {
	d := int64(len(s.adj[v]))
	if d < 2 {
		return 0
	}
	return 2 * float64(s.tri[v]) / float64(d*(d-1))
}

// GlobalCoefficient returns the current transitivity.
func (s *Stream) GlobalCoefficient() float64 {
	var closed, wedges int64
	for v := 0; v < s.n; v++ {
		closed += s.tri[v]
		d := int64(len(s.adj[v]))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return float64(closed) / float64(wedges)
}

// Snapshot materializes the current graph as a static CSR graph, bridging
// the streaming substrate to every static kernel.
func (s *Stream) Snapshot() *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < s.n; u++ {
		nbr := make([]int32, 0, len(s.adj[u]))
		for w := range s.adj[u] {
			nbr = append(nbr, w)
		}
		sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
		for _, w := range nbr {
			if w > int32(u) {
				edges = append(edges, graph.Edge{U: int32(u), V: w})
			}
		}
	}
	g, err := graph.FromEdges(s.n, edges, graph.Options{})
	if err != nil {
		panic("stream: snapshot out of range: " + err.Error())
	}
	return g
}
