// Package stream provides the streaming-graph substrate of the paper's
// companion work (Ediger, Jiang, Riedy, Bader, "Massive streaming data
// analytics: a case study with clustering coefficients", MTAAP 2010),
// which Section V positions as the temporal direction of this analysis:
// social graphs change over time, and recomputing metrics from scratch per
// batch wastes the structure shared between snapshots.
//
// A Stream ingests timestamped interaction edges, maintains a dynamic
// adjacency structure, incrementally tracks per-vertex triangle counts
// (so clustering coefficients are always available in O(1)), and can
// materialize a CSR snapshot for the static kernels at any point.
// Snapshots are incremental: each materialization copies the adjacency of
// untouched vertices from the previous snapshot and rebuilds only the
// vertices updates dirtied, so steady-state snapshot cost tracks the
// update rate, not the graph size times log degree.
//
// Batches are the concurrency unit, as in the streaming paper: ApplyBatch
// parallelizes one batch internally over vertex shards (see batch.go),
// but a Stream accepts only one mutation call at a time — callers
// serialize writers (graphctd holds a per-graph writer lock) while any
// number of readers traverse previously materialized snapshots.
package stream

import (
	"fmt"

	"graphct/internal/graph"
)

// Update is one streamed interaction. The zero Del inserts the edge; Del
// true deletes it.
type Update struct {
	U, V int32
	Time int64 // arbitrary monotone timestamp (e.g. tweet id)
	Del  bool
}

// triScale is the fixed-point scale of the internal triangle counters:
// tri6[v] stores 6x the triangles incident on v. Every triangle
// contributes exactly triScale to each of its three corners no matter how
// it is discovered, which lets the batched update (batch.go) credit a
// triangle found from k of its edges with triScale/k per discovery — an
// exact integer for k in {1,2,3} — instead of tracking fractions.
const triScale = 6

// Stream is a dynamic undirected graph with incrementally maintained
// triangle counts. It is not safe for concurrent mutation; batches are the
// concurrency unit, as in the streaming paper.
type Stream struct {
	n        int
	adj      []map[int32]struct{}
	tri6     []int64 // triScale x triangles incident on each vertex
	edges    int64
	lastTime int64

	// Snapshot reuse state: prev is the last materialized CSR; dirty
	// marks vertices whose adjacency changed since, dirtyList holds them
	// without an O(n) scan, and sinceSnap counts effective mutations for
	// the snapshot-on-threshold policy.
	prev      *graph.Graph
	dirty     []bool
	dirtyList []int32
	sinceSnap int64
}

// New creates a stream over n vertices and no edges.
func New(n int) *Stream {
	s := &Stream{
		n:     n,
		adj:   make([]map[int32]struct{}, n),
		tri6:  make([]int64, n),
		dirty: make([]bool, n),
	}
	for i := range s.adj {
		s.adj[i] = make(map[int32]struct{})
	}
	return s
}

// FromGraph builds a stream preloaded with the undirected simple
// projection of g (self loops dropped, directions and duplicates
// collapsed), so an existing static graph can start accepting live
// updates. Triangle counts are established by one static count.
func FromGraph(g *graph.Graph) *Stream {
	if g.Directed() {
		g = g.Undirected()
	}
	s := New(g.NumVertices())
	for v := 0; v < s.n; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if w == int32(v) || w < int32(v) {
				continue
			}
			s.adj[v][w] = struct{}{}
			s.adj[w][int32(v)] = struct{}{}
			s.edges++
		}
	}
	for v := int32(0); v < int32(s.n); v++ {
		s.tri6[v] = triScale * s.countTriangles(v)
	}
	return s
}

// countTriangles counts triangles incident on v from the current
// adjacency sets (used only to seed FromGraph).
func (s *Stream) countTriangles(v int32) int64 {
	var twice int64
	for w := range s.adj[v] {
		twice += int64(len(s.commonNeighbors(v, w)))
	}
	return twice / 2
}

// NumVertices returns the vertex count.
func (s *Stream) NumVertices() int { return s.n }

// NumEdges returns the current undirected edge count.
func (s *Stream) NumEdges() int64 { return s.edges }

// Degree returns the current degree of v.
func (s *Stream) Degree(v int32) int { return len(s.adj[v]) }

// HasEdge reports whether the undirected edge {u,v} is present.
func (s *Stream) HasEdge(u, v int32) bool {
	_, ok := s.adj[u][v]
	return ok
}

// LastTime returns the timestamp of the most recent accepted update.
func (s *Stream) LastTime() int64 { return s.lastTime }

// Touch advances the stream's last-update timestamp without mutating the
// graph. Warm restarts use it to restore the clock recorded in a durable
// snapshot before replaying the log tail (whose updates carry their own
// timestamps and only ever move the clock forward).
func (s *Stream) Touch(t int64) { s.touch(t) }

// Insert adds the undirected edge {u,v}. Duplicate edges and self loops
// are ignored (the mention-graph dedup rule). It returns true when the
// edge was new. Triangle counts of u, v and each common neighbor are
// updated incrementally: inserting {u,v} creates one triangle per common
// neighbor.
func (s *Stream) Insert(up Update) (bool, error) {
	u, v := up.U, up.V
	if err := s.check(u, v); err != nil {
		return false, err
	}
	if u == v || s.HasEdge(u, v) {
		s.touch(up.Time)
		return false, nil
	}
	common := s.commonNeighbors(u, v)
	for _, w := range common {
		s.tri6[w] += triScale
	}
	s.tri6[u] += triScale * int64(len(common))
	s.tri6[v] += triScale * int64(len(common))
	s.adj[u][v] = struct{}{}
	s.adj[v][u] = struct{}{}
	s.edges++
	s.sinceSnap++
	s.markDirty(u)
	s.markDirty(v)
	s.touch(up.Time)
	return true, nil
}

// Delete removes the undirected edge {u,v}, reversing the triangle
// bookkeeping. It returns true when the edge existed.
func (s *Stream) Delete(up Update) (bool, error) {
	u, v := up.U, up.V
	if err := s.check(u, v); err != nil {
		return false, err
	}
	if u == v || !s.HasEdge(u, v) {
		s.touch(up.Time)
		return false, nil
	}
	delete(s.adj[u], v)
	delete(s.adj[v], u)
	s.edges--
	s.sinceSnap++
	s.markDirty(u)
	s.markDirty(v)
	common := s.commonNeighbors(u, v)
	for _, w := range common {
		s.tri6[w] -= triScale
	}
	s.tri6[u] -= triScale * int64(len(common))
	s.tri6[v] -= triScale * int64(len(common))
	s.touch(up.Time)
	return true, nil
}

// Apply routes one update by its Del flag.
func (s *Stream) Apply(up Update) (bool, error) {
	if up.Del {
		return s.Delete(up)
	}
	return s.Insert(up)
}

// InsertBatch applies a batch of insertions one at a time, returning how
// many were new edges. ApplyBatch is the parallel path.
func (s *Stream) InsertBatch(batch []Update) (int, error) {
	added := 0
	for _, up := range batch {
		ok, err := s.Insert(up)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func (s *Stream) check(u, v int32) error {
	if u < 0 || int(u) >= s.n || v < 0 || int(v) >= s.n {
		return fmt.Errorf("stream: edge (%d,%d) outside [0,%d)", u, v, s.n)
	}
	return nil
}

func (s *Stream) touch(t int64) {
	if t > s.lastTime {
		s.lastTime = t
	}
}

// markDirty records that v's adjacency diverged from the last snapshot.
func (s *Stream) markDirty(v int32) {
	if !s.dirty[v] {
		s.dirty[v] = true
		s.dirtyList = append(s.dirtyList, v)
	}
}

// DirtyVertices returns how many vertices changed since the last
// materialized snapshot (all of them before the first).
func (s *Stream) DirtyVertices() int {
	if s.prev == nil {
		return s.n
	}
	return len(s.dirtyList)
}

// PendingUpdates returns the effective mutations (edges added or removed)
// since the last materialized snapshot.
func (s *Stream) PendingUpdates() int64 { return s.sinceSnap }

// SnapshotDue implements the snapshot-on-threshold policy: it reports
// whether at least threshold effective mutations accumulated since the
// last materialization (or none has happened yet). threshold <= 0 asks
// for a snapshot after every effective batch.
func (s *Stream) SnapshotDue(threshold int64) bool {
	if s.prev == nil {
		return true
	}
	if threshold <= 0 {
		return s.sinceSnap > 0
	}
	return s.sinceSnap >= threshold
}

// commonNeighbors returns vertices adjacent to both u and v, iterating
// the smaller adjacency set.
func (s *Stream) commonNeighbors(u, v int32) []int32 {
	a, b := u, v
	if len(s.adj[a]) > len(s.adj[b]) {
		a, b = b, a
	}
	var out []int32
	for w := range s.adj[a] {
		if _, ok := s.adj[b][w]; ok {
			out = append(out, w)
		}
	}
	return out
}

// Triangles returns the current per-vertex triangle counts (aliased copy).
func (s *Stream) Triangles() []int64 {
	out := make([]int64, s.n)
	for v, t := range s.tri6 {
		out[v] = t / triScale
	}
	return out
}

// Coefficient returns v's current local clustering coefficient in O(1)
// from the maintained triangle count.
func (s *Stream) Coefficient(v int32) float64 {
	d := int64(len(s.adj[v]))
	if d < 2 {
		return 0
	}
	return 2 * float64(s.tri6[v]/triScale) / float64(d*(d-1))
}

// GlobalCoefficient returns the current transitivity.
func (s *Stream) GlobalCoefficient() float64 {
	var closed, wedges int64
	for v := 0; v < s.n; v++ {
		closed += s.tri6[v] / triScale
		d := int64(len(s.adj[v]))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return float64(closed) / float64(wedges)
}

// Snapshot materializes the current graph as a static CSR graph, bridging
// the streaming substrate to every static kernel. The returned graph is
// immutable and safe for concurrent reads while the stream keeps mutating.
//
// After the first call, materialization is incremental: vertices untouched
// since the previous snapshot copy their adjacency run from it, and only
// dirty vertices are re-collected and re-sorted from the dynamic sets.
func (s *Stream) Snapshot() *graph.Graph {
	deg := make([]int64, s.n)
	for v := range s.adj {
		deg[v] = int64(len(s.adj[v]))
	}
	dirty := s.dirty
	if s.prev == nil {
		dirty = nil // first materialization builds every vertex
	}
	g, err := graph.IncrementalCSR(s.prev, s.n, deg, dirty, func(v int32, dst []int32) {
		i := 0
		for w := range s.adj[v] {
			dst[i] = w
			i++
		}
	})
	if err != nil {
		// The stream maintains the builder's invariants (degrees match the
		// sets, clean vertices untouched); a failure is a bookkeeping bug.
		panic("stream: snapshot: " + err.Error())
	}
	for _, v := range s.dirtyList {
		s.dirty[v] = false
	}
	s.dirtyList = s.dirtyList[:0]
	s.sinceSnap = 0
	s.prev = g
	return g
}
