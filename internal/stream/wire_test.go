package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ups := make([]Update, 500)
	tm := int64(0)
	for i := range ups {
		tm += rng.Int63n(50) // non-monotone gaps are fine; deltas may be negative too
		if rng.Intn(10) == 0 {
			tm -= 17
		}
		ups[i] = Update{
			U:    int32(rng.Intn(1 << 20)),
			V:    int32(rng.Intn(1 << 20)),
			Time: tm,
			Del:  rng.Intn(4) == 0,
		}
	}
	var buf bytes.Buffer
	if err := EncodeUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdates(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("decoded %d of %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], ups[i])
		}
	}
}

func TestWireEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeUpdates(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdates(&buf, 10)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestWireRejectsNegativeVertex(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeUpdates(&buf, []Update{{U: -1, V: 2}}); err == nil {
		t.Fatal("negative vertex encoded")
	}
}

func TestWireMaxUpdates(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeUpdates(&buf, make([]Update, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeUpdates(bytes.NewReader(buf.Bytes()), 99); err == nil {
		t.Fatal("oversized frame accepted")
	} else if errors.Is(err, ErrWireFormat) {
		t.Fatal("limit violation must not classify as malformed frame")
	}
	if _, err := DecodeUpdates(bytes.NewReader(buf.Bytes()), 100); err != nil {
		t.Fatal(err)
	}
}

// TestWireHostileInputs: malformed frames return ErrWireFormat, never
// panic and never allocate per the declared (untrusted) count.
func TestWireHostileInputs(t *testing.T) {
	var valid bytes.Buffer
	_ = EncodeUpdates(&valid, []Update{{U: 1, V: 2, Time: 5}, {U: 2, V: 3, Time: 6, Del: true}})
	vb := valid.Bytes()

	cases := map[string][]byte{
		"empty":          {},
		"short magic":    []byte("GCT"),
		"bad magic":      []byte("XXXXX\x00"),
		"old version":    {'G', 'C', 'T', 'U', 0, 0},
		"truncated body": vb[:len(vb)-3],
		"trailing junk":  append(append([]byte{}, vb...), 0xFF),
		"unknown flags":  {'G', 'C', 'T', 'U', 1, 1, 0x80, 1, 2, 0},
		"huge count":     {'G', 'C', 'T', 'U', 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"oversized id":   {'G', 'C', 'T', 'U', 1, 1, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 2, 0},
	}
	for name, data := range cases {
		ups, err := DecodeUpdates(bytes.NewReader(data), 0)
		if err == nil {
			t.Fatalf("%s: accepted %v", name, ups)
		}
		if !errors.Is(err, ErrWireFormat) {
			t.Fatalf("%s: err %v not ErrWireFormat", name, err)
		}
	}
}
