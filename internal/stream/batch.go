package stream

import (
	"sync/atomic"

	"graphct/internal/failpoint"
	"graphct/internal/par"
)

// BatchResult summarizes one ApplyBatch call.
type BatchResult struct {
	Inserted int // updates that added a new edge
	Deleted  int // updates that removed an existing edge
	Ignored  int // self loops, duplicate inserts, deletes of absent edges
}

// pair is an edge normalized to lo < hi.
type pair struct{ lo, hi int32 }

func (p pair) key() int64 { return int64(p.lo)<<32 | int64(uint32(p.hi)) }

// ApplyBatch applies a batch of updates, parallelizing the work inside the
// batch while leaving the stream's single-writer contract to the caller
// (graphctd serializes batches per graph under a writer lock).
//
// The whole batch is validated before anything mutates, so an error means
// the stream is unchanged. The batch is then split into maximal runs of
// same-op updates (inserts accrete, deletes reverse; runs preserve the
// caller's op ordering). Each run is applied in phases:
//
//  1. adjacency mutation, parallel over vertex shards: every vertex
//     belongs to exactly one shard, each shard scans the run entries
//     touching its vertices in batch order and mutates only the adjacency
//     sets it owns. Both endpoint shards of an edge see the same
//     pre-state and the same in-run duplicate history, so they reach the
//     same new/duplicate verdict independently, keeping the sets
//     symmetric without cross-shard coordination;
//  2. triangle maintenance, parallel over the run's effective edges with
//     atomic adds: a triangle whose membership changed is discovered once
//     from each of its k changed edges, and each discovery contributes
//     triScale/k per corner — summing to exactly triScale (one triangle)
//     no matter how many batch edges it shares. This is the streaming
//     paper's batched clustering-coefficient update, kept in integers by
//     the fixed-point counter.
//
// The result bit-matches applying the same updates one at a time.
func (s *Stream) ApplyBatch(batch []Update) (BatchResult, error) {
	// Injection point for the chaos harness: firing here, before any
	// validation or mutation, guarantees an injected failure leaves the
	// stream unchanged — the property idempotent retries rely on.
	if err := failpoint.Eval(failpoint.StreamApply); err != nil {
		return BatchResult{}, err
	}
	var res BatchResult
	maxTime := s.lastTime
	for _, up := range batch {
		if err := s.check(up.U, up.V); err != nil {
			return BatchResult{}, err
		}
		if up.Time > maxTime {
			maxTime = up.Time
		}
	}
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		for hi < len(batch) && batch[hi].Del == batch[lo].Del {
			hi++
		}
		run := normalize(batch[lo:hi])
		if batch[lo].Del {
			res.Deleted += s.deleteRun(run)
		} else {
			res.Inserted += s.insertRun(run)
		}
		lo = hi
	}
	res.Ignored = len(batch) - res.Inserted - res.Deleted
	s.lastTime = maxTime
	return res, nil
}

// normalize orients each update's endpoints lo < hi and drops self loops.
func normalize(run []Update) []pair {
	out := make([]pair, 0, len(run))
	for _, up := range run {
		switch {
		case up.U < up.V:
			out = append(out, pair{up.U, up.V})
		case up.U > up.V:
			out = append(out, pair{up.V, up.U})
		}
	}
	return out
}

// shardCount picks a power-of-two shard count with a few shards per
// worker, so the dynamic scheduler can balance skewed per-shard work.
func shardCount() int {
	s := 1
	for s < 4*par.Workers() {
		s <<= 1
	}
	return s
}

// bucketize returns, per shard, the run indices touching a vertex that
// shard owns, in run order. An edge whose endpoints share a shard appears
// once in that shard's bucket.
func bucketize(run []pair, shards int) [][]int32 {
	buckets := make([][]int32, shards)
	mask := int32(shards - 1)
	for i, e := range run {
		a, b := e.lo&mask, e.hi&mask
		buckets[a] = append(buckets[a], int32(i))
		if b != a {
			buckets[b] = append(buckets[b], int32(i))
		}
	}
	return buckets
}

// insertRun applies one run of insertions and returns the new-edge count.
func (s *Stream) insertRun(run []pair) int {
	if len(run) == 0 {
		return 0
	}
	shards := shardCount()
	mask := int32(shards - 1)
	buckets := bucketize(run, shards)

	// Phase 1: sharded adjacency mutation. The lo-side shard doubles as
	// the edge's owner, recording effective (new) edges exactly once.
	newEdges := make([][]pair, shards)
	dirtied := make([][]int32, shards)
	par.ForChunked(shards, 1, func(sLo, sHi int) {
		for sid := sLo; sid < sHi; sid++ {
			for _, i := range buckets[sid] {
				e := run[i]
				if e.lo&mask == int32(sid) {
					if _, dup := s.adj[e.lo][e.hi]; !dup {
						s.adj[e.lo][e.hi] = struct{}{}
						newEdges[sid] = append(newEdges[sid], e)
						if !s.dirty[e.lo] {
							s.dirty[e.lo] = true
							dirtied[sid] = append(dirtied[sid], e.lo)
						}
					}
				}
				if e.hi&mask == int32(sid) {
					if _, dup := s.adj[e.hi][e.lo]; !dup {
						s.adj[e.hi][e.lo] = struct{}{}
						if !s.dirty[e.hi] {
							s.dirty[e.hi] = true
							dirtied[sid] = append(dirtied[sid], e.hi)
						}
					}
				}
			}
		}
	})
	fresh := s.mergeShardState(newEdges, dirtied)
	s.edges += int64(len(fresh))
	s.sinceSnap += int64(len(fresh))

	// Phase 2: batched triangle update over the post-insert adjacency.
	s.triangleDelta(fresh, +1)
	return len(fresh)
}

// deleteRun applies one run of deletions and returns the removed count.
func (s *Stream) deleteRun(run []pair) int {
	if len(run) == 0 {
		return 0
	}
	shards := shardCount()
	mask := int32(shards - 1)
	buckets := bucketize(run, shards)

	// Phase 1: each edge's owner shard decides which deletions take
	// effect (edge present and not already claimed by an earlier run
	// entry), without mutating — the triangle update needs the pre-delete
	// adjacency.
	removed := make([][]pair, shards)
	par.ForChunked(shards, 1, func(sLo, sHi int) {
		for sid := sLo; sid < sHi; sid++ {
			var claimed map[int64]struct{}
			for _, i := range buckets[sid] {
				e := run[i]
				if e.lo&mask != int32(sid) {
					continue
				}
				if _, ok := s.adj[e.lo][e.hi]; !ok {
					continue
				}
				if claimed == nil {
					claimed = make(map[int64]struct{})
				}
				if _, dup := claimed[e.key()]; dup {
					continue
				}
				claimed[e.key()] = struct{}{}
				removed[sid] = append(removed[sid], e)
			}
		}
	})
	var gone []pair
	for _, part := range removed {
		gone = append(gone, part...)
	}
	if len(gone) == 0 {
		return 0
	}

	// Phase 2: subtract destroyed triangles against the pre-delete state.
	s.triangleDelta(gone, -1)

	// Phase 3: sharded removal. Re-bucket just the effective deletions;
	// each shard deletes the adjacency entries of the vertices it owns.
	dirtied := make([][]int32, shards)
	goneBuckets := bucketize(gone, shards)
	par.ForChunked(shards, 1, func(sLo, sHi int) {
		for sid := sLo; sid < sHi; sid++ {
			for _, i := range goneBuckets[sid] {
				e := gone[i]
				for _, v := range [2]int32{e.lo, e.hi} {
					if v&mask != int32(sid) {
						continue
					}
					o := e.lo ^ e.hi ^ v // the other endpoint
					delete(s.adj[v], o)
					if !s.dirty[v] {
						s.dirty[v] = true
						dirtied[sid] = append(dirtied[sid], v)
					}
				}
			}
		}
	})
	for _, part := range dirtied {
		s.dirtyList = append(s.dirtyList, part...)
	}
	s.edges -= int64(len(gone))
	s.sinceSnap += int64(len(gone))
	return len(gone)
}

// mergeShardState folds per-shard new-edge and dirty lists into the
// stream's sequential bookkeeping.
func (s *Stream) mergeShardState(newEdges [][]pair, dirtied [][]int32) []pair {
	var fresh []pair
	for _, part := range newEdges {
		fresh = append(fresh, part...)
	}
	for _, part := range dirtied {
		s.dirtyList = append(s.dirtyList, part...)
	}
	return fresh
}

// triangleDelta applies the batched triangle correction for the changed
// edges: for inserts (sign +1) the adjacency already holds the run's new
// edges; for deletes (sign -1) it still holds the edges being removed. A
// triangle with k changed edges is discovered from each of them; each
// discovery credits triScale/k per corner so the triangle nets exactly
// one count at every corner.
func (s *Stream) triangleDelta(changed []pair, sign int64) {
	if len(changed) == 0 {
		return
	}
	inRun := make(map[int64]struct{}, len(changed))
	for _, e := range changed {
		inRun[e.key()] = struct{}{}
	}
	isChanged := func(a, b int32) int64 {
		p := pair{a, b}
		if a > b {
			p = pair{b, a}
		}
		if _, ok := inRun[p.key()]; ok {
			return 1
		}
		return 0
	}
	par.ForChunked(len(changed), 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := changed[i]
			u, v := e.lo, e.hi
			if len(s.adj[u]) > len(s.adj[v]) {
				u, v = v, u
			}
			for w := range s.adj[u] {
				if _, ok := s.adj[v][w]; !ok {
					continue
				}
				k := 1 + isChanged(e.lo, w) + isChanged(e.hi, w)
				d := sign * (triScale / k)
				atomic.AddInt64(&s.tri6[e.lo], d)
				atomic.AddInt64(&s.tri6[e.hi], d)
				atomic.AddInt64(&s.tri6[w], d)
			}
		}
	})
}
