package stream_test

import (
	"fmt"

	"graphct/internal/stream"
)

// ExampleStream maintains clustering coefficients incrementally as edges
// arrive, then closes a triangle and watches the coefficient jump.
func ExampleStream() {
	s := stream.New(4)
	s.Insert(stream.Update{U: 0, V: 1, Time: 1})
	s.Insert(stream.Update{U: 1, V: 2, Time: 2})
	fmt.Printf("before closing: coef(1) = %.2f\n", s.Coefficient(1))
	s.Insert(stream.Update{U: 2, V: 0, Time: 3}) // closes triangle 0-1-2
	fmt.Printf("after closing:  coef(1) = %.2f\n", s.Coefficient(1))
	snap := s.Snapshot()
	fmt.Println("snapshot edges:", snap.NumEdges())
	// Output:
	// before closing: coef(1) = 0.00
	// after closing:  coef(1) = 1.00
	// snapshot edges: 3
}
