package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/cluster"
)

// randomBatch draws mixed insert/delete updates over n vertices, self
// loops and duplicates included on purpose.
func randomBatch(rng *rand.Rand, n, size int, delFrac float64) []Update {
	batch := make([]Update, size)
	for i := range batch {
		batch[i] = Update{
			U:    int32(rng.Intn(n)),
			V:    int32(rng.Intn(n)),
			Time: rng.Int63n(1 << 20),
			Del:  rng.Float64() < delFrac,
		}
	}
	return batch
}

// assertStreamsEqual verifies two streams agree on every observable:
// edges, adjacency, triangle counts and coefficients.
func assertStreamsEqual(t *testing.T, got, want *Stream) {
	t.Helper()
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges %d != %d", got.NumEdges(), want.NumEdges())
	}
	for v := int32(0); int(v) < want.n; v++ {
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("degree(%d) %d != %d", v, got.Degree(v), want.Degree(v))
		}
		for w := range want.adj[v] {
			if !got.HasEdge(v, w) {
				t.Fatalf("missing edge {%d,%d}", v, w)
			}
		}
		if got.tri6[v] != want.tri6[v] {
			t.Fatalf("tri6(%d) %d != %d", v, got.tri6[v], want.tri6[v])
		}
	}
}

// TestApplyBatchMatchesSequential is the core differential check: the
// parallel sharded batch path must bit-match applying the same updates
// one at a time.
func TestApplyBatchMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		par := New(n)
		seq := New(n)
		for round := 0; round < 6; round++ {
			batch := randomBatch(rng, n, 1+rng.Intn(120), 0.3)
			res, err := par.ApplyBatch(batch)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			ins, del := 0, 0
			for _, up := range batch {
				ok, err := seq.Apply(up)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if ok && up.Del {
					del++
				} else if ok {
					ins++
				}
			}
			if res.Inserted != ins || res.Deleted != del {
				t.Fatalf("seed %d: batch counted %+v, sequential %d/%d", seed, res, ins, del)
			}
			assertStreamsEqual(t, par, seq)
			if par.LastTime() != seq.LastTime() {
				t.Fatalf("seed %d: LastTime %d != %d", seed, par.LastTime(), seq.LastTime())
			}
		}
	}
}

// TestDifferentialReplay replays many seeded update sequences and, at
// every 100-update checkpoint, demands that the incrementally maintained
// per-vertex clustering coefficients and edge counts bit-match a
// from-scratch internal/cluster computation over a materialized snapshot.
func TestDifferentialReplay(t *testing.T) {
	sequences := 1000
	if testing.Short() {
		sequences = 100
	}
	const n, updates, checkpoint = 24, 300, 100
	for seed := 0; seed < sequences; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		s := New(n)
		for i := 1; i <= updates; i++ {
			up := Update{
				U:    int32(rng.Intn(n)),
				V:    int32(rng.Intn(n)),
				Time: int64(i),
				Del:  rng.Float64() < 0.25,
			}
			if _, err := s.Apply(up); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if i%checkpoint != 0 {
				continue
			}
			snap := s.Snapshot()
			if snap.NumEdges() != s.NumEdges() {
				t.Fatalf("seed %d step %d: snapshot edges %d, stream %d",
					seed, i, snap.NumEdges(), s.NumEdges())
			}
			want := cluster.Coefficients(snap)
			for v := int32(0); v < n; v++ {
				if got := s.Coefficient(v); got != want[v] {
					t.Fatalf("seed %d step %d: coefficient(%d) = %v, from scratch %v",
						seed, i, v, got, want[v])
				}
			}
		}
	}
}

// TestApplyBatchAtomicOnError: a batch containing any out-of-range vertex
// is rejected whole, leaving the stream untouched.
func TestApplyBatchAtomicOnError(t *testing.T) {
	s := New(5)
	if _, err := s.ApplyBatch([]Update{{U: 0, V: 1}, {U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	bad := []Update{{U: 1, V: 2}, {U: 0, V: 9}, {U: 3, V: 4}}
	if _, err := s.ApplyBatch(bad); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if s.NumEdges() != 2 || s.HasEdge(1, 2) || s.HasEdge(3, 4) {
		t.Fatal("failed batch partially applied")
	}
	if s.PendingUpdates() != 2 {
		t.Fatalf("pending = %d", s.PendingUpdates())
	}
}

// TestApplyBatchRuns exercises ordering inside one batch: an edge
// inserted then deleted (and vice versa) must land in its final state.
func TestApplyBatchRuns(t *testing.T) {
	s := New(4)
	res, err := s.ApplyBatch([]Update{
		{U: 0, V: 1},
		{U: 0, V: 1, Del: true},
		{U: 2, V: 3, Del: true}, // absent: ignored
		{U: 2, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 || res.Ignored != 1 {
		t.Fatalf("res = %+v", res)
	}
	if s.HasEdge(0, 1) || !s.HasEdge(2, 3) || s.NumEdges() != 1 {
		t.Fatal("run ordering violated")
	}
}

// Property (snapshot validity): for arbitrary update sequences with
// duplicates and self loops, Snapshot yields a structurally valid CSR —
// Validate-clean (sorted adjacency rows, in-range ids), symmetric, with
// degrees summing to twice the edge count — and the incremental
// materialization equals a from-scratch one.
func TestPropertySnapshotValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		s := New(n)
		for round := 0; round < 4; round++ {
			batch := randomBatch(rng, n, rng.Intn(90), 0.35)
			if _, err := s.ApplyBatch(batch); err != nil {
				return false
			}
			snap := s.Snapshot()
			if snap.Validate() != nil || snap.Directed() {
				return false
			}
			var degSum int64
			for v := int32(0); int(v) < n; v++ {
				degSum += int64(snap.Degree(v))
				for _, w := range snap.Neighbors(v) {
					if w == v || !snap.HasEdge(w, v) {
						return false // self loop or asymmetry
					}
				}
			}
			if degSum != 2*snap.NumEdges() || snap.NumEdges() != s.NumEdges() {
				return false
			}
			// Incremental rebuild (dirty-vertex copy path) must equal the
			// from-scratch materialization of the same state.
			full := FromGraph(snap).Snapshot()
			for v := int32(0); int(v) < n; v++ {
				a, b := snap.Neighbors(v), full.Neighbors(v)
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return s.PendingUpdates() == 0 && s.DirtyVertices() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFromGraphSeedsTriangles: a stream seeded from a static graph starts
// with the static kernel's triangle counts and keeps them consistent
// through further updates.
func TestFromGraphSeedsTriangles(t *testing.T) {
	base := New(12)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		base.Insert(Update{U: int32(rng.Intn(12)), V: int32(rng.Intn(12)), Time: int64(i)})
	}
	snap := base.Snapshot()
	s := FromGraph(snap)
	if s.NumEdges() != snap.NumEdges() {
		t.Fatalf("edges %d != %d", s.NumEdges(), snap.NumEdges())
	}
	want := cluster.Triangles(snap)
	got := s.Triangles()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("tri(%d) = %d, want %d", v, got[v], want[v])
		}
	}
	s.Insert(Update{U: 0, V: 1, Time: 100})
	s.Delete(Update{U: 0, V: 1, Time: 101})
	assertStreamsEqual(t, s, FromGraph(s.Snapshot()))
}
