package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/cluster"
	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestInsertBasics(t *testing.T) {
	s := New(4)
	ok, err := s.Insert(Update{U: 0, V: 1, Time: 1})
	if err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if s.NumEdges() != 1 || s.Degree(0) != 1 {
		t.Fatal("bookkeeping wrong")
	}
	// Duplicate and self loop are no-ops.
	if ok, _ := s.Insert(Update{U: 1, V: 0, Time: 2}); ok {
		t.Fatal("duplicate accepted")
	}
	if ok, _ := s.Insert(Update{U: 2, V: 2, Time: 3}); ok {
		t.Fatal("self loop accepted")
	}
	if s.LastTime() != 3 {
		t.Fatalf("LastTime = %d", s.LastTime())
	}
}

func TestInsertRangeError(t *testing.T) {
	s := New(2)
	if _, err := s.Insert(Update{U: 0, V: 5}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := s.Delete(Update{U: -1, V: 0}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestTriangleMaintenanceOnInsert(t *testing.T) {
	s := New(4)
	s.Insert(Update{U: 0, V: 1})
	s.Insert(Update{U: 1, V: 2})
	if got := s.Triangles(); got[0] != 0 || got[1] != 0 {
		t.Fatal("premature triangles")
	}
	s.Insert(Update{U: 2, V: 0}) // closes triangle {0,1,2}
	tri := s.Triangles()
	for v := 0; v < 3; v++ {
		if tri[v] != 1 {
			t.Fatalf("tri = %v", tri)
		}
	}
	s.Insert(Update{U: 1, V: 3})
	s.Insert(Update{U: 3, V: 0}) // closes {0,1,3}
	tri = s.Triangles()
	if tri[0] != 2 || tri[1] != 2 || tri[2] != 1 || tri[3] != 1 {
		t.Fatalf("tri = %v", tri)
	}
}

func TestTriangleMaintenanceOnDelete(t *testing.T) {
	s := New(3)
	s.Insert(Update{U: 0, V: 1})
	s.Insert(Update{U: 1, V: 2})
	s.Insert(Update{U: 2, V: 0})
	ok, err := s.Delete(Update{U: 1, V: 2, Time: 9})
	if err != nil || !ok {
		t.Fatal("delete failed")
	}
	for v, tr := range s.Triangles() {
		if tr != 0 {
			t.Fatalf("tri[%d] = %d after delete", v, tr)
		}
	}
	if s.NumEdges() != 2 {
		t.Fatalf("edges = %d", s.NumEdges())
	}
	if ok, _ := s.Delete(Update{U: 1, V: 2}); ok {
		t.Fatal("double delete accepted")
	}
}

func TestCoefficients(t *testing.T) {
	s := New(4)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}} {
		s.Insert(Update{U: e[0], V: e[1]})
	}
	if got := s.Coefficient(0); got != 1 {
		t.Fatalf("coef(0) = %v", got)
	}
	if got := s.Coefficient(2); got != 1.0/3 {
		t.Fatalf("coef(2) = %v", got)
	}
	if got := s.Coefficient(3); got != 0 {
		t.Fatalf("coef(3) = %v", got)
	}
	if s.GlobalCoefficient() <= 0 {
		t.Fatal("global coefficient zero")
	}
	if New(2).GlobalCoefficient() != 0 {
		t.Fatal("empty global coefficient")
	}
}

func TestInsertBatch(t *testing.T) {
	s := New(5)
	batch := []Update{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 1}, {U: 3, V: 3}}
	added, err := s.InsertBatch(batch)
	if err != nil || added != 2 {
		t.Fatalf("added = %d err = %v", added, err)
	}
	if _, err := s.InsertBatch([]Update{{U: 0, V: 99}}); err == nil {
		t.Fatal("bad batch accepted")
	}
}

func TestSnapshotMatchesStatic(t *testing.T) {
	s := New(30)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		s.Insert(Update{U: int32(rng.Intn(30)), V: int32(rng.Intn(30)), Time: int64(i)})
	}
	snap := s.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != s.NumEdges() {
		t.Fatalf("snapshot edges %d != %d", snap.NumEdges(), s.NumEdges())
	}
	for v := int32(0); v < 30; v++ {
		if snap.Degree(v) != s.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

// Property: after any insert/delete sequence, the incrementally maintained
// triangle counts equal the static kernel's counts on a snapshot.
func TestPropertyIncrementalMatchesStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(20)
		type edge struct{ u, v int32 }
		var present []edge
		for i := 0; i < 200; i++ {
			u, v := int32(rng.Intn(20)), int32(rng.Intn(20))
			if rng.Float64() < 0.7 || len(present) == 0 {
				if ok, err := s.Insert(Update{U: u, V: v, Time: int64(i)}); err != nil {
					return false
				} else if ok {
					present = append(present, edge{u, v})
				}
			} else {
				k := rng.Intn(len(present))
				e := present[k]
				if ok, err := s.Delete(Update{U: e.u, V: e.v, Time: int64(i)}); err != nil || !ok {
					return false
				}
				present = append(present[:k], present[k+1:]...)
			}
		}
		want := cluster.Triangles(s.Snapshot())
		got := s.Triangles()
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: coefficients from the stream match the static kernel.
func TestPropertyCoefficientsMatchStatic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(25)
		for i := 0; i < 120; i++ {
			s.Insert(Update{U: int32(rng.Intn(25)), V: int32(rng.Intn(25))})
		}
		want := cluster.Coefficients(s.Snapshot())
		for v := int32(0); v < 25; v++ {
			if diff := s.Coefficient(v) - want[v]; diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFeedsStaticKernels(t *testing.T) {
	// A streamed ring snapshot behaves like a generated ring.
	s := New(10)
	for v := 0; v < 10; v++ {
		s.Insert(Update{U: int32(v), V: int32((v + 1) % 10)})
	}
	snap := s.Snapshot()
	want := gen.Ring(10)
	if snap.NumEdges() != want.NumEdges() {
		t.Fatal("ring snapshot wrong")
	}
	var g *graph.Graph = snap
	if g.MaxDegree() != 2 {
		t.Fatal("ring degrees wrong")
	}
}

func BenchmarkInsertWithTriangles(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(Update{U: int32(rng.Intn(10000)), V: int32(rng.Intn(10000)), Time: int64(i)})
	}
}
