package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"graphct/internal/api"
)

// Wire format for batched updates (the ingest endpoint's compact framing,
// Content-Type application/x-graphct-updates):
//
//	magic   "GCTU"
//	version 0x01
//	count   uvarint
//	records count times:
//	    flags  byte (bit0: delete)
//	    u      uvarint
//	    v      uvarint
//	    dt     varint, timestamp delta from the previous record
//	            (from zero for the first)
//
// Varint ids and delta-coded timestamps keep a typical mention-stream
// record at 4-7 bytes versus ~40 of JSON.

// WireContentType is the HTTP content type of the binary framing (the
// wire contract's api.ContentTypeUpdates; aliased here so codec callers
// need not import internal/api).
const WireContentType = api.ContentTypeUpdates

var wireMagic = [5]byte{'G', 'C', 'T', 'U', 1}

// ErrWireFormat reports a malformed binary update frame.
var ErrWireFormat = errors.New("stream: malformed update frame")

const wireDelete = 0x01

// EncodeUpdates writes ups in the binary wire framing.
func EncodeUpdates(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(wireMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(ups))); err != nil {
		return err
	}
	prev := int64(0)
	for _, up := range ups {
		if up.U < 0 || up.V < 0 {
			return fmt.Errorf("stream: encode: negative vertex in (%d,%d)", up.U, up.V)
		}
		flags := byte(0)
		if up.Del {
			flags |= wireDelete
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := putUvarint(uint64(up.U)); err != nil {
			return err
		}
		if err := putUvarint(uint64(up.V)); err != nil {
			return err
		}
		n := binary.PutVarint(buf[:], up.Time-prev)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = up.Time
	}
	return bw.Flush()
}

// DecodeUpdates reads one binary update frame, rejecting frames declaring
// more than maxUpdates records (<= 0 means no limit) before allocating.
// Any malformation — bad magic, truncation, oversized ids — returns an
// error wrapping ErrWireFormat; the decoder never panics on hostile input.
func DecodeUpdates(r io.Reader, maxUpdates int) ([]Update, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrWireFormat, err)
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrWireFormat, magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: bad count: %v", ErrWireFormat, err)
	}
	if maxUpdates > 0 && count > uint64(maxUpdates) {
		return nil, fmt.Errorf("stream: frame declares %d updates, limit %d", count, maxUpdates)
	}
	if count > uint64(1)<<32 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrWireFormat, count)
	}
	// Grow from a bounded capacity: the declared count is untrusted until
	// that many records actually parse.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	ups := make([]Update, 0, capHint)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrWireFormat, i)
		}
		if flags&^byte(wireDelete) != 0 {
			return nil, fmt.Errorf("%w: unknown flags 0x%02x at record %d", ErrWireFormat, flags, i)
		}
		u, err := binary.ReadUvarint(br)
		if err != nil || u > uint64(1)<<31-1 {
			return nil, fmt.Errorf("%w: bad source at record %d", ErrWireFormat, i)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil || v > uint64(1)<<31-1 {
			return nil, fmt.Errorf("%w: bad target at record %d", ErrWireFormat, i)
		}
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: bad timestamp at record %d", ErrWireFormat, i)
		}
		prev += dt
		ups = append(ups, Update{U: int32(u), V: int32(v), Time: prev, Del: flags&wireDelete != 0})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing bytes after %d records", ErrWireFormat, count)
	}
	return ups, nil
}
