package gen

import "graphct/internal/graph"

// Path returns the undirected path 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v - 1), V: int32(v)})
	}
	return must(n, edges)
}

// Ring returns the undirected cycle on n vertices (n >= 3).
func Ring(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + 1) % n)})
	}
	return must(n, edges)
}

// Star returns the star with center 0 and n-1 leaves, the archetype of the
// paper's broadcast hubs.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
	}
	return must(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return must(n, edges)
}

// BinaryTree returns a complete binary tree with n vertices; vertex 0 is the
// root and vertex v has parent (v-1)/2.
func BinaryTree(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32((v - 1) / 2), V: int32(v)})
	}
	return must(n, edges)
}

// Grid returns the rows x cols 4-connected grid.
func Grid(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return must(rows*cols, edges)
}

// Disjoint unions the given graphs on a fresh shared vertex numbering,
// producing one graph whose connected components are the inputs.
func Disjoint(gs ...*graph.Graph) *graph.Graph {
	var n int
	var edges []graph.Edge
	for _, g := range gs {
		base := int32(n)
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if w >= int32(v) {
					edges = append(edges, graph.Edge{U: base + int32(v), V: base + w})
				}
			}
		}
		n += g.NumVertices()
	}
	return must(n, edges)
}

func must(n int, edges []graph.Edge) *graph.Graph {
	g, err := graph.FromEdges(n, edges, graph.Options{KeepSelfLoops: true})
	if err != nil {
		panic("gen: deterministic generator out of range: " + err.Error())
	}
	return g
}
