// Package gen generates graphs: the R-MAT recursive generator used by the
// paper for its Facebook-scale experiment (A=0.55, B=C=0.10, D=0.25, edge
// factor 16), classic random models, and small deterministic topologies the
// test suites rely on. All generators are deterministic for a given seed.
package gen

import (
	"math/rand"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// RMATParams configures the recursive matrix generator of Chakrabarti,
// Zhan & Faloutsos. A+B+C+D must sum to 1.
type RMATParams struct {
	Scale      int     // 2^Scale vertices
	EdgeFactor int     // edges = EdgeFactor * 2^Scale
	A, B, C, D float64 // quadrant probabilities
	Seed       int64
	Noise      float64 // per-level probability perturbation, 0 disables
}

// PaperRMAT returns the parameters of the paper's scale-29 experiment with
// the scale knob lowered to fit commodity memory: A=0.55, B=C=0.10, D=0.25,
// edge factor 16.
func PaperRMAT(scale int, seed int64) RMATParams {
	return RMATParams{Scale: scale, EdgeFactor: 16, A: 0.55, B: 0.10, C: 0.10, D: 0.25, Seed: seed, Noise: 0.05}
}

// RMATEdges generates the raw directed edge list. Generation is parallel
// across worker goroutines, each with an independent seeded stream, so the
// output is deterministic for a given (params, worker-count-independent)
// seed: edges are partitioned by index, and the RNG for edge i is derived
// from Seed and i's block.
func RMATEdges(p RMATParams) []graph.Edge {
	n := 1 << uint(p.Scale)
	m := p.EdgeFactor * n
	edges := make([]graph.Edge, m)
	const block = 1 << 12
	blocks := (m + block - 1) / block
	par.For(blocks, func(b int) {
		rng := rand.New(rand.NewSource(p.Seed ^ int64(b)*0x5851F42D4C957F2D))
		lo, hi := b*block, (b+1)*block
		if hi > m {
			hi = m
		}
		for i := lo; i < hi; i++ {
			edges[i] = rmatEdge(p, rng)
		}
	})
	return edges
}

func rmatEdge(p RMATParams, rng *rand.Rand) graph.Edge {
	var u, v int
	a, b, c := p.A, p.B, p.C
	for bit := 1 << uint(p.Scale-1); bit > 0; bit >>= 1 {
		aa, bb, cc := a, b, c
		if p.Noise > 0 {
			// Perturb quadrant probabilities at every level so the
			// generated graph avoids exact self-similarity artifacts.
			aa *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			bb *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			cc *= 1 - p.Noise + 2*p.Noise*rng.Float64()
			dd := (1 - p.A - p.B - p.C) * (1 - p.Noise + 2*p.Noise*rng.Float64())
			norm := aa + bb + cc + dd
			aa, bb, cc = aa/norm, bb/norm, cc/norm
		}
		r := rng.Float64()
		switch {
		case r < aa:
			// upper-left quadrant: no bits set
		case r < aa+bb:
			v |= bit
		case r < aa+bb+cc:
			u |= bit
		default:
			u |= bit
			v |= bit
		}
	}
	return graph.Edge{U: int32(u), V: int32(v)}
}

// RMAT generates an undirected R-MAT graph (duplicates removed, self loops
// dropped), the form the paper's betweenness experiments run on.
func RMAT(p RMATParams) *graph.Graph {
	edges := RMATEdges(p)
	g, err := graph.FromEdges(1<<uint(p.Scale), edges, graph.Options{})
	if err != nil {
		// Generation keeps ids in range by construction.
		panic("gen: rmat produced out-of-range edge: " + err.Error())
	}
	return g
}

// ErdosRenyi generates an undirected G(n, m) random graph with m distinct
// sampled edges (before dedup).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
	}
	g, err := graph.FromEdges(n, edges, graph.Options{})
	if err != nil {
		panic("gen: erdos-renyi out of range: " + err.Error())
	}
	return g
}

// PreferentialAttachment generates an undirected Barabási–Albert style graph
// where each new vertex attaches to k earlier vertices chosen proportionally
// to degree. It produces the heavy-tailed degree distributions of real
// mention graphs and is used by the degree-distribution experiment.
func PreferentialAttachment(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// targets repeats each endpoint once per incident edge, so sampling
	// uniformly from it is degree-proportional sampling.
	targets := make([]int32, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	for v := 1; v < n; v++ {
		deg := k
		if v < k {
			deg = v
		}
		for j := 0; j < deg; j++ {
			var t int32
			if len(targets) == 0 {
				t = 0
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			edges = append(edges, graph.Edge{U: int32(v), V: t})
			targets = append(targets, int32(v), t)
		}
	}
	g, err := graph.FromEdges(n, edges, graph.Options{})
	if err != nil {
		panic("gen: preferential attachment out of range: " + err.Error())
	}
	return g
}
