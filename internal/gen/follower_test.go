package gen

import (
	"testing"

	"graphct/internal/graph"
)

func TestFollowerShape(t *testing.T) {
	g := Follower(DefaultFollower(2000, 1))
	if !g.Directed() {
		t.Fatal("follower graph must be directed")
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	avg := float64(g.NumArcs()) / 2000
	if avg < 5 || avg > 80 {
		t.Fatalf("average out-degree %v far from target", avg)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerInDegreeSkew(t *testing.T) {
	g := Follower(DefaultFollower(3000, 2))
	in := make([]int64, 3000)
	for v := 0; v < 3000; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			in[w]++
		}
	}
	var max, sum int64
	for _, c := range in {
		sum += c
		if c > max {
			max = c
		}
	}
	mean := float64(sum) / 3000
	if float64(max) < 20*mean {
		t.Fatalf("in-degree not skewed: max %d vs mean %.1f", max, mean)
	}
}

func TestFollowerReciprocity(t *testing.T) {
	p := DefaultFollower(2000, 3)
	g := Follower(p)
	r := ReciprocityOf(g)
	// Dedup and popularity collisions push measured reciprocity around
	// the knob; it must land in a broad band around 0.22 and far from
	// both extremes.
	if r < 0.10 || r > 0.45 {
		t.Fatalf("reciprocity %v outside plausible band", r)
	}
	p.Reciprocity = 0.9
	high := ReciprocityOf(Follower(p))
	if high <= r {
		t.Fatalf("raising the knob did not raise reciprocity: %v vs %v", high, r)
	}
}

func TestFollowerDeterministic(t *testing.T) {
	a := Follower(DefaultFollower(500, 7))
	b := Follower(DefaultFollower(500, 7))
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("nondeterministic generation")
	}
}

func TestFollowerDegenerate(t *testing.T) {
	g := Follower(FollowerParams{Vertices: 0, AvgOut: 0, Exponent: 0.5, Seed: 1})
	if g.NumVertices() != 2 {
		t.Fatalf("clamps failed: %v", g)
	}
}

func TestReciprocityOfExtremes(t *testing.T) {
	if ReciprocityOf(graph.Empty(3, true)) != 0 {
		t.Fatal("empty reciprocity != 0")
	}
	d, _ := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}}, graph.Options{Directed: true})
	if ReciprocityOf(d) != 1 {
		t.Fatal("mutual pair reciprocity != 1")
	}
	one, _ := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.Options{Directed: true})
	if ReciprocityOf(one) != 0 {
		t.Fatal("one-way reciprocity != 0")
	}
}
