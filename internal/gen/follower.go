package gen

import (
	"math/rand"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// FollowerParams configures the directed follower-network generator, a
// stand-in for the Kwak et al. Twitter follower graph the paper
// benchmarks (61.6 M vertices, 1.47 B edges): heavy-tailed in-degree
// (celebrities), light-tailed out-degree (individual attention budgets),
// and low reciprocity — Kwak et al. report ~22% of links reciprocated.
type FollowerParams struct {
	Vertices    int
	AvgOut      int     // mean follows per user
	Reciprocity float64 // probability a follow is returned
	Exponent    float64 // Zipf exponent for followee popularity (> 1)
	Seed        int64
}

// DefaultFollower returns parameters shaped like the Kwak measurements at
// a configurable vertex count.
func DefaultFollower(n int, seed int64) FollowerParams {
	return FollowerParams{Vertices: n, AvgOut: 24, Reciprocity: 0.22, Exponent: 1.7, Seed: seed}
}

// Follower generates the directed follower graph. Arc u->v means "u
// follows v"; v's in-degree follows the Zipf popularity.
func Follower(p FollowerParams) *graph.Graph {
	if p.Vertices < 2 {
		p.Vertices = 2
	}
	if p.AvgOut < 1 {
		p.AvgOut = 1
	}
	if p.Exponent <= 1 {
		p.Exponent = 1.5
	}
	n := p.Vertices
	const block = 1 << 10
	blocks := (n + block - 1) / block
	buckets := make([][]graph.Edge, blocks)
	par.For(blocks, func(b int) {
		rng := rand.New(rand.NewSource(p.Seed ^ int64(b)*0x5851F42D4C957F2D))
		zipf := rand.NewZipf(rng, p.Exponent, 1, uint64(n-1))
		lo, hi := b*block, (b+1)*block
		if hi > n {
			hi = n
		}
		var out []graph.Edge
		seen := make(map[int32]struct{}, 2*p.AvgOut)
		for u := lo; u < hi; u++ {
			// Out-degree ~ uniform around AvgOut; followees are distinct
			// so the reciprocity knob is not inflated by the dedup of
			// repeated follows onto the same celebrity.
			follows := 1 + rng.Intn(2*p.AvgOut-1)
			clear(seen)
			for attempts := 0; len(seen) < follows && attempts < 4*follows; attempts++ {
				v := int32(zipf.Uint64())
				if v == int32(u) {
					continue
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				out = append(out, graph.Edge{U: int32(u), V: v})
				if rng.Float64() < p.Reciprocity {
					out = append(out, graph.Edge{U: v, V: int32(u)})
				}
			}
		}
		buckets[b] = out
	})
	var edges []graph.Edge
	for _, b := range buckets {
		edges = append(edges, b...)
	}
	g, err := graph.FromEdges(n, edges, graph.Options{Directed: true})
	if err != nil {
		panic("gen: follower out of range: " + err.Error())
	}
	return g
}

// ReciprocityOf measures the fraction of arcs in a directed graph whose
// reverse arc also exists.
func ReciprocityOf(g *graph.Graph) float64 {
	if g.NumArcs() == 0 {
		return 0
	}
	mutual := par.ReduceSum(g.NumVertices(), func(v int) int64 {
		var c int64
		for _, w := range g.Neighbors(int32(v)) {
			if g.HasEdge(w, int32(v)) {
				c++
			}
		}
		return c
	})
	return float64(mutual) / float64(g.NumArcs())
}
