package gen

import (
	"testing"
	"testing/quick"

	"graphct/internal/graph"
)

func TestRMATShape(t *testing.T) {
	p := PaperRMAT(8, 42)
	g := RMAT(p)
	if g.NumVertices() != 256 {
		t.Fatalf("vertices = %d, want 256", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 16*256 {
		t.Fatalf("edges = %d, want within (0, 4096]", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMATEdges(PaperRMAT(7, 1))
	b := RMATEdges(PaperRMAT(7, 1))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := RMATEdges(PaperRMAT(7, 2))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical edge lists")
	}
}

func TestRMATSkew(t *testing.T) {
	// With A=0.55 the degree distribution must be skewed: the max degree
	// should far exceed the mean.
	g := RMAT(PaperRMAT(10, 3))
	mean := float64(g.NumArcs()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", g.MaxDegree(), mean)
	}
}

func TestRMATNoNoise(t *testing.T) {
	p := PaperRMAT(6, 9)
	p.Noise = 0
	g := RMAT(p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 5)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 300 {
		t.Fatalf("m = %d, want within (0, 300]", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	g := PreferentialAttachment(500, 3, 11)
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: max degree well above attachment parameter.
	if g.MaxDegree() < 12 {
		t.Fatalf("max degree %d suspiciously small for PA graph", g.MaxDegree())
	}
	if PreferentialAttachment(10, 0, 1).NumVertices() != 10 {
		t.Fatal("k<1 not clamped")
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("path wrong: %v", g)
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.NumEdges() != 6 {
		t.Fatalf("ring edges = %d", g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(int32(v)) != 2 {
			t.Fatalf("ring degree(%d) = %d", v, g.Degree(int32(v)))
		}
	}
}

func TestStar(t *testing.T) {
	g := Star(10)
	if g.Degree(0) != 9 {
		t.Fatalf("hub degree = %d", g.Degree(0))
	}
	for v := 1; v < 10; v++ {
		if g.Degree(int32(v)) != 1 {
			t.Fatalf("leaf degree(%d) = %d", v, g.Degree(int32(v)))
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.NumEdges())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7)
	if g.NumEdges() != 6 || g.Degree(0) != 2 || g.Degree(6) != 1 {
		t.Fatalf("tree wrong: %v", g)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid n = %d", g.NumVertices())
	}
	// edges = 3*3 horizontal + 2*4 vertical = 17
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
}

func TestDisjoint(t *testing.T) {
	g := Disjoint(Ring(3), Path(4), Star(5))
	if g.NumVertices() != 12 {
		t.Fatalf("disjoint n = %d", g.NumVertices())
	}
	if g.NumEdges() != 3+3+4 {
		t.Fatalf("disjoint edges = %d", g.NumEdges())
	}
	// No cross edges: vertex 0 (ring) should not reach vertex 3 (path).
	if g.HasEdge(0, 3) {
		t.Fatal("cross-component edge")
	}
}

// Property: every R-MAT edge stays in range for arbitrary small scales.
func TestPropertyRMATRange(t *testing.T) {
	f := func(seed int64, s uint8) bool {
		scale := int(s%6) + 3
		p := PaperRMAT(scale, seed)
		p.EdgeFactor = 4
		for _, e := range RMATEdges(p) {
			if e.U < 0 || e.V < 0 || int(e.U) >= 1<<uint(scale) || int(e.V) >= 1<<uint(scale) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: all generators yield graphs passing Validate.
func TestPropertyGeneratorsValid(t *testing.T) {
	graphs := []*graph.Graph{
		Path(2), Ring(3), Star(2), Complete(2), BinaryTree(1), Grid(1, 1),
		Path(50), Ring(50), Star(50), Complete(12), BinaryTree(63), Grid(7, 9),
		ErdosRenyi(64, 128, 2), PreferentialAttachment(64, 2, 2),
	}
	for i, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("graph %d invalid: %v", i, err)
		}
	}
}
