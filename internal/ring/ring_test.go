package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// names generates n seeded graph-name-like keys: a mix of short flat
// names and longer namespaced ones, the shapes real registries hold.
func names(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		switch rng.Intn(3) {
		case 0:
			out[i] = fmt.Sprintf("g%d", rng.Intn(1<<20))
		case 1:
			out[i] = fmt.Sprintf("tweets-%s-%d", []string{"h1n1", "atlflood", "sept1"}[rng.Intn(3)], i)
		default:
			out[i] = fmt.Sprintf("user/%d/graph-%d", rng.Intn(4096), rng.Intn(4096))
		}
	}
	return out
}

func workers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8423", i+1)
	}
	return out
}

// TestBalance: over seeded name sets, every worker's share of keys stays
// within a constant factor of the fair share, for several cluster sizes.
// The bound is loose enough to be hash-stable (the test is deterministic)
// but tight enough that a broken vnode projection — all points from one
// node clumping — fails it immediately.
func TestBalance(t *testing.T) {
	keys := names(20000, 1)
	for _, n := range []int{2, 3, 4, 8} {
		r := New(workers(n), 0)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Get(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d workers own keys", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for w, c := range counts {
			if ratio := float64(c) / fair; ratio < 0.5 || ratio > 1.75 {
				t.Errorf("n=%d: %s owns %d keys (%.2fx fair share; 0.5x..1.75x allowed)", n, w, c, ratio)
			}
		}
	}
}

// TestMinimalMovementOnJoin: adding a worker moves only the keys the new
// worker takes ownership of — every key whose owner changed must now be
// owned by the added node — and the moved fraction stays near the ideal
// 1/(N+1).
func TestMinimalMovementOnJoin(t *testing.T) {
	keys := names(20000, 2)
	for _, n := range []int{2, 4, 7} {
		old := New(workers(n), 0)
		grown := New(workers(n+1), 0) // workers(n+1) = workers(n) + one new node
		added := workers(n + 1)[n]
		moved := 0
		for _, k := range keys {
			was, now := old.Get(k), grown.Get(k)
			if was == now {
				continue
			}
			moved++
			if now != added {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the added node %s", n, k, was, now, added)
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f == 0 || f > 2*ideal {
			t.Errorf("n=%d: %d keys moved, want (0, %.0f]", n, moved, 2*ideal)
		}
	}
}

// TestMinimalMovementOnLeave is the mirror property: removing a worker
// only reassigns the keys it owned; keys on surviving workers stay put.
func TestMinimalMovementOnLeave(t *testing.T) {
	keys := names(20000, 3)
	n := 5
	full := New(workers(n), 0)
	removed := workers(n)[n-1]
	shrunk := New(workers(n-1), 0)
	for _, k := range keys {
		was, now := full.Get(k), shrunk.Get(k)
		if was == removed {
			if now == removed {
				t.Fatalf("key %q still owned by removed worker", k)
			}
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s though its owner survived", k, was, now)
		}
	}
}

// TestGetN returns the owner first, distinct nodes, and clamps at the
// cluster size.
func TestGetN(t *testing.T) {
	r := New(workers(4), 0)
	for _, k := range names(100, 4) {
		got := r.GetN(k, 3)
		if len(got) != 3 {
			t.Fatalf("GetN(%q, 3) returned %d nodes", k, len(got))
		}
		if got[0] != r.Get(k) {
			t.Fatalf("GetN(%q)[0] = %s, Get = %s", k, got[0], r.Get(k))
		}
		seen := map[string]bool{}
		for _, w := range got {
			if seen[w] {
				t.Fatalf("GetN(%q) repeated %s", k, w)
			}
			seen[w] = true
		}
	}
	if got := r.GetN("k", 10); len(got) != 4 {
		t.Fatalf("GetN clamp: got %d nodes, want 4", len(got))
	}
}

// TestDegenerate: empty rings answer harmlessly, duplicates collapse,
// lookups are deterministic.
func TestDegenerate(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Get("g"); got != "" {
		t.Fatalf("empty ring Get = %q", got)
	}
	if got := empty.GetN("g", 2); got != nil {
		t.Fatalf("empty ring GetN = %v", got)
	}
	dup := New([]string{"a", "a", "b"}, 16)
	if len(dup.Nodes()) != 2 {
		t.Fatalf("duplicate nodes not collapsed: %v", dup.Nodes())
	}
	r1, r2 := New(workers(3), 64), New(workers(3), 64)
	for _, k := range names(500, 5) {
		if r1.Get(k) != r2.Get(k) {
			t.Fatalf("lookup of %q not deterministic", k)
		}
	}
}
