// Package ring implements the consistent-hash ring the router role uses
// to partition graph names across worker shards. Each node is projected
// onto the ring at many virtual points (vnodes), a key is owned by the
// first node point at or clockwise of the key's hash, and the two
// properties the router depends on follow from the construction:
//
//   - balance: with enough vnodes the expected share of keys per node is
//     1/N with low variance, so no worker holds a disproportionate slice
//     of the registry;
//   - minimal movement: adding or removing a node only moves the keys in
//     the arcs that node's points own — every other key keeps its owner,
//     so a topology change invalidates one worker's worth of placement,
//     not the whole cluster's.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-point count per node when New is given a
// non-positive one. 128 points keeps the max/mean load ratio under ~1.3
// for small clusters without making ring construction noticeable.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over a set of node names.
// Lookups are O(log(nodes × vnodes)); construction sorts once. A Ring is
// safe for concurrent use — topology changes build a new Ring.
type Ring struct {
	points []point  // sorted by hash, clockwise
	nodes  []string // the distinct node names, in insertion order
	vnodes int
}

type point struct {
	hash uint64
	node int // index into nodes
}

// New builds a ring over the given node names with vnodes virtual points
// per node (<= 0 uses DefaultVnodes). Duplicate names collapse to one
// node. An empty node list yields a ring whose Get returns "".
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	r.points = make([]point, 0, len(r.nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashKey(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Nodes returns the ring's distinct node names in insertion order. The
// caller must not mutate the returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Get returns the node that owns key ("" for an empty ring).
func (r *Ring) Get(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.search(key)].node]
}

// GetN returns up to n distinct nodes for key, starting with the owner
// and continuing clockwise — the placement order for replicas of a
// partition. n larger than the node count returns every node.
func (r *Ring) GetN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i, at := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(at+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// search returns the index of the first point at or clockwise of key's
// hash, wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashKey hashes a ring key. FNV-64a alone has weak avalanche on the
// near-identical "node#0".."node#127" vnode labels, which clumps a
// node's points and skews the balance badly; the splitmix64 finalizer
// decorrelates them.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer — a cheap bijective scramble with
// full avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
