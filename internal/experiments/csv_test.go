package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestWriteCSVAllExperiments(t *testing.T) {
	dir := t.TempDir()
	cfg := tiny()
	cfg.Realizations = 1
	cfg.RMATScales = []int{7}
	for _, name := range Names {
		if err := WriteCSV(name, cfg, dir); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows := readCSV(t, filepath.Join(dir, name+".csv"))
		if len(rows) < 2 {
			t.Fatalf("%s: no data rows", name)
		}
		width := len(rows[0])
		for i, row := range rows {
			if len(row) != width {
				t.Fatalf("%s row %d: ragged csv", name, i)
			}
		}
	}
}

func TestWriteCSVFig4Parsable(t *testing.T) {
	dir := t.TempDir()
	cfg := tiny()
	cfg.Realizations = 1
	if err := WriteCSV("fig4", cfg, dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig4.csv"))
	// 3 datasets x 4 sampling levels + header.
	if len(rows) != 1+3*4 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
	for _, row := range rows[1:] {
		if _, err := strconv.ParseFloat(row[5], 64); err != nil {
			t.Fatalf("unparsable seconds %q", row[5])
		}
		frac, err := strconv.ParseFloat(row[3], 64)
		if err != nil || frac < 0.1 || frac > 1 {
			t.Fatalf("bad fraction %q", row[3])
		}
	}
}

func TestWriteCSVUnknownExperiment(t *testing.T) {
	if err := WriteCSV("nope", tiny(), t.TempDir()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	cfg := tiny()
	cfg.Realizations = 1
	// A file where the directory should be.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV("table2", cfg, blocker); err == nil {
		t.Fatal("writing into a file-as-dir should error")
	}
}
