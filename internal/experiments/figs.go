package experiments

import (
	"graphct/internal/cc"
	"graphct/internal/stats"
)

// Fig2Series is one data set's degree distribution on log-binned axes.
type Fig2Series struct {
	Name  string
	Bins  []stats.HistogramBin
	Alpha float64 // fitted power-law exponent
	Top20 float64 // share of arc endpoints held by the top 20% of vertices
}

// Fig2 regenerates Figure 2: the heavy-tailed degree distribution of the
// tweet mention graphs, with the power-law exponent and the 80/20
// concentration the paper discusses.
func Fig2(cfg Config) []Fig2Series {
	var out []Fig2Series
	w := cfg.out()
	fprintf(w, "Fig 2 — degree distribution of the Twitter user-user graphs\n")
	for _, c := range cfg.corpora() {
		ug := harvest(c.Opts)
		g := ug.Undirected()
		bins := stats.LogBinnedDegreeHistogram(g, 2)
		alpha, _ := stats.PowerLawAlpha(g, 4)
		s := Fig2Series{
			Name:  c.Name,
			Bins:  bins,
			Alpha: alpha,
			Top20: stats.TopShare(g, 0.20),
		}
		out = append(out, s)
		fprintf(w, "%s  (alpha=%.2f, top-20%% share=%.0f%%)\n", s.Name, s.Alpha, 100*s.Top20)
		fprintf(w, "%12s %12s\n", "degree", "vertices")
		for _, b := range bins {
			if b.Count == 0 {
				continue
			}
			fprintf(w, "%5d-%-6d %12d\n", b.Lo, b.Hi, b.Count)
		}
	}
	return out
}

// Fig3Row reports the subcommunity filter on one data set.
type Fig3Row struct {
	Name              string
	Original          int // vertices with any interaction
	LargestComponent  int // vertices in the LWCC
	Subcommunity      int // vertices with a reciprocal (conversation) edge
	SubcommunityEdges int64
}

// Fig3 regenerates Figure 3: retaining only vertex pairs that referred to
// one another collapses the broadcast-dominated graphs by one to two
// orders of magnitude, exposing the conversations.
func Fig3(cfg Config) []Fig3Row {
	var rows []Fig3Row
	w := cfg.out()
	fprintf(w, "Fig 3 — subcommunity (reciprocal-mention) filtering\n")
	fprintf(w, "%-28s %10s %10s %14s\n", "data set", "original", "LWCC", "subcommunity")
	for _, c := range cfg.corpora()[:2] { // the paper plots atlflood & H1N1
		ug := harvest(c.Opts)
		active, _ := ug.Graph.DropIsolated()
		lwcc, _ := cc.Largest(ug.Graph)
		core := ug.Graph.ReciprocalCore()
		coreActive, _ := core.DropIsolated()
		row := Fig3Row{
			Name:              c.Name,
			Original:          active.NumVertices(),
			LargestComponent:  lwcc.NumVertices(),
			Subcommunity:      coreActive.NumVertices(),
			SubcommunityEdges: coreActive.NumEdges(),
		}
		rows = append(rows, row)
		fprintf(w, "%-28s %10d %10d %14d\n", row.Name, row.Original, row.LargestComponent, row.Subcommunity)
	}
	return rows
}
