package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSamplingStrategiesCoverage(t *testing.T) {
	cfg := tiny()
	rows := SamplingStrategies(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SamplingRow{}
	for _, r := range rows {
		if r.Top1 < 0 || r.Top1 > 1 || r.Covered < 0 || r.Covered > 1 {
			t.Fatalf("out of range: %+v", r)
		}
		byName[r.Strategy] = r
	}
	// Stratified sampling guarantees a source in every component big
	// enough to earn one, so its vertex-weighted coverage cannot fall
	// meaningfully below uniform's.
	if byName["stratified"].Covered+0.05 < byName["uniform"].Covered {
		t.Fatalf("stratified coverage %v below uniform %v",
			byName["stratified"].Covered, byName["uniform"].Covered)
	}
	// The LWCC alone guarantees substantial vertex-weighted coverage.
	if byName["stratified"].Covered < 0.3 {
		t.Fatalf("stratified coverage %v suspiciously low", byName["stratified"].Covered)
	}
}

func TestKBCRobustnessShape(t *testing.T) {
	cfg := tiny()
	cfg.Realizations = 2
	rows := KBCRobustness(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Top10 < 0 || r.Top10 > 1 {
			t.Fatalf("overlap out of range: %+v", r)
		}
		if r.Spearman < -1 || r.Spearman > 1 {
			t.Fatalf("spearman out of range: %+v", r)
		}
		// A 5% edge drop must not destroy the ranking.
		if r.Top10 < 0.4 {
			t.Fatalf("ranking collapsed: %+v", r)
		}
	}
}

func TestDiameterQualityBounds(t *testing.T) {
	rows := DiameterQuality(tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Longest > r.Exact {
			t.Fatalf("sampled path exceeds exact diameter: %+v", r)
		}
		if r.Estimate != 4*r.Longest {
			t.Fatalf("4x rule broken: %+v", r)
		}
		if i > 0 && r.Longest < rows[i-1].Longest {
			t.Fatalf("more sources found shorter longest path: %v", rows)
		}
	}
	// With 256 sources on a small graph the estimate must cover the
	// exact diameter (every vertex sampled).
	last := rows[len(rows)-1]
	if last.Estimate < last.Exact {
		t.Fatalf("full-sampling estimate below exact: %+v", last)
	}
}

func TestTemporalShape(t *testing.T) {
	rows := Temporal(tiny())
	if len(rows) != 4 { // H1N1 corpus spans weeks 36-39
		t.Fatalf("rows = %d", len(rows))
	}
	var total int
	for i, r := range rows {
		total += r.Tweets
		if r.Users <= 0 || r.LWCCShare <= 0 || r.LWCCShare > 1 {
			t.Fatalf("bad row %+v", r)
		}
		if r.Turnover < 0 || r.Turnover > 1 {
			t.Fatalf("turnover out of range: %+v", r)
		}
		if i == 0 && r.Turnover != 0 {
			t.Fatal("first window must have zero turnover")
		}
	}
	// Crisis spike: the outbreak+1 week dominates the final week.
	if rows[1].Tweets <= rows[3].Tweets {
		t.Fatalf("no volume spike: %+v", rows)
	}
}

func TestConfidenceShape(t *testing.T) {
	cfg := tiny()
	cfg.Realizations = 3
	rows := Confidence(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TopKJaccard <= 0 || r.TopKJaccard > 1 {
			t.Fatalf("jaccard out of range: %+v", r)
		}
		if r.TopCV < 0 || r.StableTop < 0 || r.StableTop > 25 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Stability should not collapse as sampling rises from 10% to 50%.
	if rows[2].TopKJaccard+0.15 < rows[0].TopKJaccard {
		t.Fatalf("stability fell with sampling: %+v", rows)
	}
}

func TestRunIncludesExtras(t *testing.T) {
	cfg := tiny()
	cfg.Realizations = 2
	var buf bytes.Buffer
	cfg.Out = &buf
	for _, name := range []string{"sampling", "robustness", "diameter", "temporal", "confidence"} {
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, want := range []string{"sampling strategies", "robustness", "diameter estimator", "temporal analysis", "confidence"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}
