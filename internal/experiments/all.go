package experiments

import "fmt"

// Names lists the runnable experiments: the paper's tables and figures in
// order, then the future-work extensions (sampling strategies, k-BC
// robustness, diameter-estimator quality).
var Names = []string{
	"table2", "table3", "table4",
	"fig2", "fig3", "fig4", "fig5", "fig6",
	"sampling", "robustness", "diameter", "temporal", "confidence",
}

// Run executes one experiment by name.
func Run(name string, cfg Config) error {
	switch name {
	case "table2":
		Table2(cfg)
	case "table3":
		Table3(cfg)
	case "table4":
		Table4(cfg)
	case "fig2":
		Fig2(cfg)
	case "fig3":
		Fig3(cfg)
	case "fig4":
		Fig4(cfg)
	case "fig5":
		Fig5(cfg)
	case "fig6":
		Fig6(cfg)
	case "sampling":
		SamplingStrategies(cfg)
	case "robustness":
		KBCRobustness(cfg)
	case "diameter":
		DiameterQuality(cfg)
	case "temporal":
		Temporal(cfg)
	case "confidence":
		Confidence(cfg)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
	}
	return nil
}

// All runs every experiment in paper order.
func All(cfg Config) {
	for _, name := range Names {
		_ = Run(name, cfg)
		fprintf(cfg.out(), "\n")
	}
}
