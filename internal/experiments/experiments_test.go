package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests while keeping
// every structural relationship measurable.
func tiny() Config {
	return Config{
		Scale:        0.04,
		SeptScale:    0.0025,
		Realizations: 2,
		Seed:         7,
		RMATScales:   []int{8, 9},
	}
}

func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	rows := Table2(cfg)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both series must peak at week 18 and show the week-22 echo.
	peakPaper, peakModel := 0, 0
	for i, r := range rows {
		if r.Paper > rows[peakPaper].Paper {
			peakPaper = i
		}
		if r.Modeled > rows[peakModel].Modeled {
			peakModel = i
		}
	}
	if rows[peakPaper].Week != 18 || rows[peakModel].Week != 18 {
		t.Fatalf("peaks: paper wk%d model wk%d", rows[peakPaper].Week, rows[peakModel].Week)
	}
	if !(rows[5].Modeled > rows[4].Modeled && rows[5].Paper > rows[4].Paper) {
		t.Fatal("echo bump missing in one series")
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("no formatted output")
	}
}

func TestTable3Shape(t *testing.T) {
	rows := Table3(tiny())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Users <= 0 || r.UniqueInteractions <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.UsersLWCC > r.Users || r.UniqueInteractionsLWCC > r.UniqueInteractions {
			t.Fatalf("LWCC exceeds full graph: %+v", r)
		}
		if r.UsersLWCC <= 0 {
			t.Fatalf("no LWCC: %+v", r)
		}
		if r.TweetsWithResponses > r.Tweets {
			t.Fatalf("responses exceed tweets: %+v", r)
		}
	}
	// The broadcast-dominated corpora have a large LWCC (hubs connect a
	// sizable share of active users).
	if rows[0].UsersLWCC*4 < rows[0].Users/4 {
		t.Fatalf("H1N1 LWCC suspiciously small: %+v", rows[0])
	}
	// Relative sizes follow the paper: sept1 > h1n1 > atlflood in users.
	if !(rows[2].Users > rows[0].Users || rows[0].Users > rows[1].Users) {
		t.Fatalf("corpus ordering broken: %v", rows)
	}
}

func TestTable4HubsDominate(t *testing.T) {
	res := Table4(tiny())
	if len(res.H1N1) != 15 || len(res.AtlFlood) != 15 {
		t.Fatalf("rankings %d/%d", len(res.H1N1), len(res.AtlFlood))
	}
	// Scores must be ranked descending and positive at the top.
	for _, rows := range [][]Table4Row{res.H1N1, res.AtlFlood} {
		if rows[0].Score <= 0 {
			t.Fatal("top score not positive")
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Score > rows[i-1].Score {
				t.Fatal("ranking not descending")
			}
		}
	}
	// Hub handles carry the topic marker; at least a third of the top 15
	// should be hubs or heavy users.
	hubs := 0
	for _, r := range res.H1N1 {
		if strings.Contains(r.Handle, "h1n1") {
			hubs++
		}
	}
	if hubs < 3 {
		t.Fatalf("only %d hubs in H1N1 top 15: %v", hubs, res.H1N1)
	}
}

func TestFig2HeavyTail(t *testing.T) {
	series := Fig2(tiny())
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Alpha < 1.2 || s.Alpha > 5 {
			t.Fatalf("%s alpha = %v, not heavy-tail-like", s.Name, s.Alpha)
		}
		if s.Top20 < 0.5 {
			t.Fatalf("%s top-20%% share = %v, want dominance", s.Name, s.Top20)
		}
		var total int64
		for _, b := range s.Bins {
			total += b.Count
		}
		if total <= 0 {
			t.Fatalf("%s empty histogram", s.Name)
		}
	}
}

func TestFig3ReductionOrders(t *testing.T) {
	rows := Fig3(tiny())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Subcommunity <= 0 {
			t.Fatalf("no subcommunity found: %+v", r)
		}
		if r.Subcommunity >= r.LargestComponent || r.LargestComponent > r.Original {
			t.Fatalf("no reduction cascade: %+v", r)
		}
		// Reciprocal filtering reduces the graph by at least ~4x on the
		// broadcast-heavy corpora (paper: up to two orders of magnitude).
		if r.Original < 4*r.Subcommunity {
			t.Fatalf("reduction too weak: %+v", r)
		}
	}
}

func TestFig4RuntimeMonotone(t *testing.T) {
	series := Fig4(tiny())
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Cells) != len(SamplingFractions) {
			t.Fatalf("%s cells = %d", s.Name, len(s.Cells))
		}
		// Source counts must scale with the fraction; runtimes must not
		// shrink as sampling grows (allowing noise at tiny sizes by
		// comparing the extremes only).
		first, last := s.Cells[0], s.Cells[len(s.Cells)-1]
		if last.Sources < 9*first.Sources {
			t.Fatalf("%s sources %d -> %d not ~10x", s.Name, first.Sources, last.Sources)
		}
		if last.Mean < first.Mean {
			t.Fatalf("%s exact faster than 10%% sampling: %v vs %v", s.Name, last.Mean, first.Mean)
		}
	}
}

func TestFig5AccuracyImprovesWithSampling(t *testing.T) {
	series := Fig5(tiny())
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Cells) != len(SamplingFractions)*len(TopFractions) {
			t.Fatalf("%s cells = %d", s.Name, len(s.Cells))
		}
		byPair := map[[2]float64]float64{}
		for _, c := range s.Cells {
			if c.Overlap < 0 || c.Overlap > 1 {
				t.Fatalf("overlap out of range: %+v", c)
			}
			byPair[[2]float64{c.Fraction, c.TopFrac}] = c.Overlap
		}
		// Exact sampling recovers the exact ranking for every top level.
		for _, tf := range TopFractions {
			if byPair[[2]float64{1.0, tf}] < 0.999 {
				t.Fatalf("%s full sampling overlap = %v at top %v", s.Name, byPair[[2]float64{1.0, tf}], tf)
			}
		}
		// More sampling should not hurt badly: 50% >= 10% - 0.15 for the
		// top-20% band (noise tolerance at tiny test scales).
		if byPair[[2]float64{0.5, 0.2}]+0.15 < byPair[[2]float64{0.1, 0.2}] {
			t.Fatalf("%s accuracy fell with more sampling", s.Name)
		}
	}
}

func TestFig6SizesAndOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	points := Fig6(cfg)
	if len(points) != 3+len(cfg.RMATScales) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.SizeVE <= 0 || p.Elapsed <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if !strings.Contains(buf.String(), "R-MAT scale 9") {
		t.Fatal("missing R-MAT rows")
	}
}

func TestRunAndAll(t *testing.T) {
	cfg := tiny()
	cfg.RMATScales = []int{7}
	cfg.Realizations = 1
	for _, name := range Names {
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if err := Run("nope", cfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var buf bytes.Buffer
	cfg.Out = &buf
	All(cfg)
	for _, want := range []string{"Table II", "Table III", "Table IV", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("All output missing %q", want)
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := Default()
	if cfg.Scale <= 0 || cfg.Realizations < 1 || len(cfg.RMATScales) == 0 {
		t.Fatalf("default config degenerate: %+v", cfg)
	}
	if cfg.out() == nil {
		t.Fatal("nil writer not defaulted")
	}
	if (Config{}).realizations() != 1 {
		t.Fatal("realizations floor broken")
	}
	if (Config{Scale: 0.5}).septScale() != 0.5 {
		t.Fatal("septScale fallback broken")
	}
}
