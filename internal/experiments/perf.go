package experiments

import (
	"fmt"
	"time"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/gen"
	"graphct/internal/graph"
	"graphct/internal/rank"
)

// SamplingFractions are the source-sampling levels of Figures 4 and 5.
var SamplingFractions = []float64{0.10, 0.25, 0.50, 1.00}

// TopFractions are the top-k levels of Figure 5.
var TopFractions = []float64{0.01, 0.05, 0.10, 0.20}

// Fig4Cell is the runtime at one sampling level.
type Fig4Cell struct {
	Fraction float64
	Sources  int
	Mean     time.Duration // mean over realizations
}

// Fig4Series is one data set's runtime curve.
type Fig4Series struct {
	Name     string
	Vertices int
	Edges    int64
	Cells    []Fig4Cell
}

// Fig4 regenerates Figure 4: betweenness centrality runtime versus the
// percentage of randomly sampled source vertices, averaged over the
// configured realizations. Exact centrality (100%) is the control; the
// paper's log-linear plot shows the near-proportional drop reproduced
// here.
func Fig4(cfg Config) []Fig4Series {
	var out []Fig4Series
	w := cfg.out()
	fprintf(w, "Fig 4 — approximate BC runtime vs sampling (mean of %d runs)\n", cfg.realizations())
	for _, c := range cfg.corpora() {
		ug := harvest(c.Opts)
		g := ug.Undirected()
		s := Fig4Series{Name: c.Name, Vertices: g.NumVertices(), Edges: g.NumEdges()}
		for _, frac := range SamplingFractions {
			sources := int(frac * float64(g.NumVertices()))
			if sources < 1 {
				sources = 1
			}
			var total time.Duration
			for r := 0; r < cfg.realizations(); r++ {
				seed := cfg.Seed + int64(r)
				total += timed(func() {
					bc.Centrality(g, bc.Options{Samples: sources, Seed: seed})
				})
			}
			s.Cells = append(s.Cells, Fig4Cell{
				Fraction: frac,
				Sources:  sources,
				Mean:     total / time.Duration(cfg.realizations()),
			})
		}
		out = append(out, s)
		fprintf(w, "%s (%d vertices, %d edges)\n", s.Name, s.Vertices, s.Edges)
		for _, cell := range s.Cells {
			fprintf(w, "  %3.0f%% sampling (%6d sources): %12v\n", 100*cell.Fraction, cell.Sources, cell.Mean)
		}
	}
	return out
}

// Fig5Cell is the overlap accuracy at one (sampling, top-k) pair.
type Fig5Cell struct {
	Fraction float64 // sources sampled
	TopFrac  float64 // top-k level compared
	Overlap  float64 // mean fraction of exact top-k recovered
}

// Fig5Series is one data set's accuracy surface.
type Fig5Series struct {
	Name  string
	Cells []Fig5Cell
}

// Fig5 regenerates Figure 5: the fraction of the exact top 1/5/10/20% of
// actors recovered by approximate BC at each sampling level, averaged over
// realizations. The paper reports >= 80% at 10% sampling for the top 1-5%
// and >= 90% at 25-50% sampling.
func Fig5(cfg Config) []Fig5Series {
	var out []Fig5Series
	w := cfg.out()
	fprintf(w, "Fig 5 — approximate vs exact BC top-k%% overlap (mean of %d runs)\n", cfg.realizations())
	for _, c := range cfg.corpora() {
		ug := harvest(c.Opts)
		// Rank within the LWCC: unguided sampling on the full graph
		// spends most sources on tiny components (the paper notes this
		// failure mode; Section V conjectures it causes the variability).
		g, _ := cc.Largest(ug.Graph)
		exact := bc.Exact(g)
		s := Fig5Series{Name: c.Name}
		fprintf(w, "%s (%d vertices)\n", c.Name, g.NumVertices())
		for _, frac := range SamplingFractions {
			sources := int(frac * float64(g.NumVertices()))
			if sources < 1 {
				sources = 1
			}
			sums := make([]float64, len(TopFractions))
			for r := 0; r < cfg.realizations(); r++ {
				approx := bc.Centrality(g, bc.Options{Samples: sources, Seed: cfg.Seed + int64(r)})
				for ti, tf := range TopFractions {
					sums[ti] += rank.TopAccuracy(exact.Scores, approx.Scores, tf)
				}
			}
			for ti, tf := range TopFractions {
				cell := Fig5Cell{Fraction: frac, TopFrac: tf, Overlap: sums[ti] / float64(cfg.realizations())}
				s.Cells = append(s.Cells, cell)
				fprintf(w, "  sampling %3.0f%% top %2.0f%%: overlap %.3f\n",
					100*cell.Fraction, 100*cell.TopFrac, cell.Overlap)
			}
		}
		out = append(out, s)
	}
	return out
}

// Fig6Point is one graph's size and BC estimation time.
type Fig6Point struct {
	Name     string
	Vertices int
	Edges    int64
	SizeVE   float64 // vertices x edges, the paper's x-axis
	Elapsed  time.Duration
}

// Fig6 regenerates Figure 6: time to estimate betweenness centrality with
// 256 source vertices as a function of graph size (V*E), across the tweet
// corpora and an R-MAT sweep standing in for the Facebook-scale and Kwak
// et al. graphs. The expected shape is near-linear growth in V*E at fixed
// source count.
func Fig6(cfg Config) []Fig6Point {
	const sources = 256
	var out []Fig6Point
	w := cfg.out()
	fprintf(w, "Fig 6 — BC estimation time (256 sources) vs graph size\n")
	fprintf(w, "%-28s %10s %12s %14s %12s\n", "graph", "vertices", "edges", "V*E", "time")
	emit := func(name string, g *graph.Graph) {
		elapsed := timed(func() {
			bc.Centrality(g, bc.Options{Samples: sources, Seed: cfg.Seed})
		})
		p := Fig6Point{
			Name:     name,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
			SizeVE:   float64(g.NumVertices()) * float64(g.NumEdges()),
			Elapsed:  elapsed,
		}
		out = append(out, p)
		fprintf(w, "%-28s %10d %12d %14.3e %12v\n", p.Name, p.Vertices, p.Edges, p.SizeVE, p.Elapsed)
	}
	for _, c := range cfg.corpora() {
		ug := harvest(c.Opts)
		emit(c.Name, ug.Undirected())
	}
	for _, scale := range cfg.RMATScales {
		emit(rmatName(scale), gen.RMAT(gen.PaperRMAT(scale, cfg.Seed)))
	}
	return out
}

func rmatName(scale int) string {
	return fmt.Sprintf("R-MAT scale %d", scale)
}
