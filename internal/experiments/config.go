// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic substrates: the three Twitter corpora
// (H1N1, #atlflood, 1 Sep 2009), the crisis volume model, and R-MAT
// scaling graphs. Each experiment prints the same rows or series the paper
// reports and returns its data so tests can assert the expected shape.
package experiments

import (
	"fmt"
	"io"
	"time"

	"graphct/internal/tweets"
)

// Config controls every experiment.
type Config struct {
	// Scale multiplies the corpus sizes; 1.0 reproduces the paper-sized
	// harvests (735k-user September graph), smaller values keep the full
	// pipeline tractable on small machines.
	Scale float64
	// SeptScale additionally scales the large 1-Sept corpus, which at
	// Scale=1 is ~16x the H1N1 corpus; <= 0 uses Scale.
	SeptScale float64
	// Realizations averages the sampled experiments (the paper uses 10).
	Realizations int
	// Seed drives corpus generation and source sampling.
	Seed int64
	// RMATScales are the R-MAT scale knobs figure 6 sweeps.
	RMATScales []int
	// Out receives the formatted tables; nil discards output.
	Out io.Writer
}

// Default returns the configuration the cmd/experiments binary starts
// from: corpora scaled to run all experiments on a small machine in
// minutes while preserving every structural relationship.
func Default() Config {
	return Config{
		Scale:        0.25,
		SeptScale:    0.02,
		Realizations: 10,
		Seed:         1,
		RMATScales:   []int{10, 12, 14, 16},
	}
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) septScale() float64 {
	if c.SeptScale > 0 {
		return c.SeptScale
	}
	return c.Scale
}

func (c Config) realizations() int {
	if c.Realizations < 1 {
		return 1
	}
	return c.Realizations
}

// corpus describes one of the paper's three data sets.
type corpus struct {
	Name string
	Opts tweets.CorpusOptions
}

func (c Config) corpora() []corpus {
	return []corpus{
		{Name: "Sep 2009 H1N1", Opts: tweets.H1N1Corpus(c.Scale, c.Seed)},
		{Name: "20-25 Sep 2009 #atlflood", Opts: tweets.AtlFloodCorpus(c.Scale, c.Seed+1)},
		{Name: "1 Sep 2009 all", Opts: tweets.Sept1Corpus(c.septScale(), c.Seed+2)},
	}
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// harvest generates a corpus and removes spam, matching the paper's
// "English, non-spam" stream preparation, then builds the mention graph.
func harvest(opts tweets.CorpusOptions) *tweets.UserGraph {
	return tweets.Build(tweets.FilterSpam(tweets.Generate(opts), 0))
}
