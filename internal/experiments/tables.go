package experiments

import (
	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/tweets"
)

// Table2Row pairs a week with the paper's article count and the model's.
type Table2Row struct {
	Week    int
	Paper   int
	Modeled int
}

// Table2 regenerates Table II: H1N1 article volume per week, paper values
// next to the synthetic crisis-attention model.
func Table2(cfg Config) []Table2Row {
	weeks, paper := tweets.PaperTableII()
	_, modeled := tweets.ModelTableII()
	rows := make([]Table2Row, len(weeks))
	w := cfg.out()
	fprintf(w, "Table II — H1N1 articles per week (paper vs volume model)\n")
	fprintf(w, "%-8s %12s %12s\n", "week", "paper", "model")
	for i := range weeks {
		rows[i] = Table2Row{Week: weeks[i], Paper: paper[i], Modeled: modeled[i]}
		fprintf(w, "%-8d %12d %12d\n", rows[i].Week, rows[i].Paper, rows[i].Modeled)
	}
	return rows
}

// Table3Row reports one tweet graph, full and largest weakly connected
// component.
type Table3Row struct {
	Name                   string
	Users                  int
	UsersLWCC              int
	UniqueInteractions     int64
	UniqueInteractionsLWCC int64
	TweetsWithResponses    int
	Tweets                 int
}

// Table3 regenerates Table III: user/interaction counts for the three
// corpora, full graph and LWCC.
func Table3(cfg Config) []Table3Row {
	var rows []Table3Row
	w := cfg.out()
	fprintf(w, "Table III — Twitter user-to-user graph characteristics\n")
	fprintf(w, "%-28s %10s %10s %14s %14s %12s\n",
		"data set", "users", "LWCC", "interactions", "LWCC", "with-resp")
	for _, c := range cfg.corpora() {
		ug := harvest(c.Opts)
		lwcc, _ := cc.Largest(ug.Graph)
		users, inter := tweets.SubgraphStats(lwcc)
		row := Table3Row{
			Name:                   c.Name,
			Users:                  ug.Stats.Users,
			UsersLWCC:              users,
			UniqueInteractions:     ug.Stats.UniqueInteractions,
			UniqueInteractionsLWCC: inter,
			TweetsWithResponses:    ug.Stats.TweetsWithMentions,
			Tweets:                 ug.Stats.Tweets,
		}
		rows = append(rows, row)
		fprintf(w, "%-28s %10d %10d %14d %14d %12d\n",
			row.Name, row.Users, row.UsersLWCC, row.UniqueInteractions,
			row.UniqueInteractionsLWCC, row.TweetsWithResponses)
	}
	return rows
}

// Table4Row is one ranked actor.
type Table4Row struct {
	Rank   int
	Handle string
	Score  float64
}

// Table4Result holds the per-corpus rankings.
type Table4Result struct {
	H1N1     []Table4Row
	AtlFlood []Table4Row
}

// Table4 regenerates Table IV: the top 15 users by betweenness centrality
// in the H1N1 and #atlflood graphs. On the synthetic corpora the hub
// (media/government analogue) handles should dominate, as they do in the
// paper.
func Table4(cfg Config) Table4Result {
	w := cfg.out()
	fprintf(w, "Table IV — top 15 users by betweenness centrality\n")
	rank := func(c corpus) []Table4Row {
		ug := harvest(c.Opts)
		res := bc.Exact(ug.Graph)
		top := res.TopK(15)
		rows := make([]Table4Row, 0, len(top))
		fprintf(w, "%s\n", c.Name)
		for i, v := range top {
			row := Table4Row{Rank: i + 1, Handle: "@" + ug.Names[v], Score: res.Scores[v]}
			rows = append(rows, row)
			fprintf(w, "%2d. %-28s %14.1f\n", row.Rank, row.Handle, row.Score)
		}
		return rows
	}
	cs := cfg.corpora()
	return Table4Result{H1N1: rank(cs[0]), AtlFlood: rank(cs[1])}
}
