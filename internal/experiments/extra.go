package experiments

import (
	"math/rand"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/graph"
	"graphct/internal/rank"
	"graphct/internal/stats"
	"graphct/internal/temporal"
	"graphct/internal/tweets"
)

// The experiments in this file go beyond the paper's published tables:
// they implement the future-work directions its Section V raises — better
// sampling for disconnected graphs, approximation quality and confidence,
// and the robustness argument behind k-betweenness centrality.

// SamplingRow is one strategy's accuracy at the paper's hardest setting
// (10% sampling, full disconnected graph).
type SamplingRow struct {
	Strategy string
	Top1     float64 // overlap with exact top 1%
	Top5     float64
	Top10    float64
	Covered  float64 // fraction of vertices whose component holds a source
}

// SamplingStrategies compares uniform (the paper's unguided sampling)
// against stratified and degree-biased sampling on the full H1N1 graph —
// Section V conjectures unguided sampling "may miss components when the
// graph is not connected".
func SamplingStrategies(cfg Config) []SamplingRow {
	ug := harvest(tweets.H1N1Corpus(cfg.Scale, cfg.Seed))
	g := ug.Graph.Undirected()
	exact := bc.Exact(g)
	comps := cc.Components(g)
	samples := g.NumVertices() / 10
	if samples < 1 {
		samples = 1
	}
	w := cfg.out()
	fprintf(w, "Extra — sampling strategies at 10%% sources (%d of %d vertices, %d components)\n",
		samples, g.NumVertices(), comps.Count)
	fprintf(w, "%-14s %8s %8s %8s %10s\n", "strategy", "top1%", "top5%", "top10%", "coverage")
	strategies := []struct {
		name string
		s    bc.Sampling
	}{
		{"uniform", bc.SampleUniform},
		{"stratified", bc.SampleStratified},
		{"degree", bc.SampleDegreeBiased},
	}
	var rows []SamplingRow
	for _, st := range strategies {
		var t1, t5, t10, cov float64
		for r := 0; r < cfg.realizations(); r++ {
			res := bc.Centrality(g, bc.Options{Samples: samples, Seed: cfg.Seed + int64(r), Strategy: st.s})
			t1 += rank.TopAccuracy(exact.Scores, res.Scores, 0.01)
			t5 += rank.TopAccuracy(exact.Scores, res.Scores, 0.05)
			t10 += rank.TopAccuracy(exact.Scores, res.Scores, 0.10)
			hit := map[int32]bool{}
			for _, s := range res.Sources {
				hit[comps.Colors[s]] = true
			}
			var vertices int64
			for _, v := range comps.Colors {
				if hit[v] {
					vertices++
				}
			}
			cov += float64(vertices) / float64(g.NumVertices())
		}
		n := float64(cfg.realizations())
		row := SamplingRow{Strategy: st.name, Top1: t1 / n, Top5: t5 / n, Top10: t10 / n, Covered: cov / n}
		rows = append(rows, row)
		fprintf(w, "%-14s %8.3f %8.3f %8.3f %10.3f\n", row.Strategy, row.Top1, row.Top5, row.Top10, row.Covered)
	}
	return rows
}

// RobustnessRow reports one k level's rank stability under perturbation.
type RobustnessRow struct {
	K          int
	EdgeDrop   float64 // fraction of edges removed
	Top10      float64 // top-10% overlap original vs perturbed
	Spearman   float64 // whole-ranking correlation
	Components int     // components after perturbation
}

// KBCRobustness measures the motivation for k-betweenness centrality:
// "adding or removing a single edge may drastically alter many vertices'
// betweenness centrality scores", while paths within k of the shortest
// add robustness. Random edges are removed and the rankings' stability is
// compared across k in {0, 1, 2}.
func KBCRobustness(cfg Config) []RobustnessRow {
	ug := harvest(tweets.AtlFloodCorpus(cfg.Scale, cfg.Seed))
	lwcc, _ := cc.Largest(ug.Graph)
	g := lwcc.Undirected()
	const drop = 0.05
	w := cfg.out()
	fprintf(w, "Extra — k-betweenness rank robustness to %.0f%% edge removal (LWCC, %d vertices)\n",
		100*drop, g.NumVertices())
	fprintf(w, "%2s %10s %10s %12s\n", "k", "top10%", "spearman", "components")
	var rows []RobustnessRow
	for k := 0; k <= bc.MaxK; k++ {
		base := bc.Centrality(g, bc.Options{K: k})
		var t10, sp float64
		comps := 0
		for r := 0; r < cfg.realizations(); r++ {
			perturbed := removeRandomEdges(g, drop, cfg.Seed+int64(r))
			res := bc.Centrality(perturbed, bc.Options{K: k})
			t10 += rank.TopAccuracy(base.Scores, res.Scores, 0.10)
			sp += rank.Spearman(base.Scores, res.Scores)
			comps = cc.Components(perturbed).Count
		}
		n := float64(cfg.realizations())
		row := RobustnessRow{K: k, EdgeDrop: drop, Top10: t10 / n, Spearman: sp / n, Components: comps}
		rows = append(rows, row)
		fprintf(w, "%2d %10.3f %10.3f %12d\n", row.K, row.Top10, row.Spearman, row.Components)
	}
	return rows
}

// removeRandomEdges returns a copy of an undirected g with a fraction of
// edges dropped.
func removeRandomEdges(g *graph.Graph, frac float64, seed int64) *graph.Graph {
	if g.Directed() {
		g = g.Undirected()
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if u >= int32(v) && rng.Float64() >= frac {
				edges = append(edges, graph.Edge{U: int32(v), V: u})
			}
		}
	}
	out, err := graph.FromEdges(g.NumVertices(), edges, graph.Options{KeepSelfLoops: true})
	if err != nil {
		panic("experiments: perturbation out of range: " + err.Error())
	}
	return out
}

// TemporalRow reports one week's window in the temporal analysis.
type TemporalRow struct {
	Week         int
	Tweets       int
	Users        int
	Interactions int64
	LWCCShare    float64
	Turnover     float64 // top-actor churn vs the previous window (0 for the first)
}

// Temporal runs the weekly-window analysis on the H1N1 stream — the
// paper's "ongoing work examines the data's temporal aspects": window
// sizes track the crisis volume curve, and the top-actor set churns only
// partially because broadcast hubs persist.
func Temporal(cfg Config) []TemporalRow {
	ts := tweets.FilterSpam(tweets.Generate(tweets.H1N1Corpus(cfg.Scale, cfg.Seed)), 0)
	snaps := temporal.Analyze(ts, temporal.Options{TopK: 10, Samples: 256, Seed: cfg.Seed})
	growth := temporal.Growth(snaps)
	churn := temporal.Turnover(snaps)
	w := cfg.out()
	fprintf(w, "Extra — temporal analysis of the H1N1 stream (weekly windows)\n")
	fprintf(w, "%6s %8s %8s %13s %10s %10s\n", "week", "tweets", "users", "interactions", "LWCC", "turnover")
	rows := make([]TemporalRow, len(growth))
	for i, g := range growth {
		row := TemporalRow{
			Week: g.Week, Tweets: g.Tweets, Users: g.Users,
			Interactions: g.Interactions, LWCCShare: g.LWCCShare,
		}
		if i > 0 {
			row.Turnover = churn[i-1]
		}
		rows[i] = row
		fprintf(w, "%6d %8d %8d %13d %9.0f%% %9.0f%%\n",
			row.Week, row.Tweets, row.Users, row.Interactions, 100*row.LWCCShare, 100*row.Turnover)
	}
	return rows
}

// ConfidenceRow reports approximate-BC variability at one sampling level.
type ConfidenceRow struct {
	Fraction    float64
	TopKJaccard float64 // pairwise top-25 set similarity across realizations
	TopCV       float64 // mean coefficient of variation of the top-25 scores
	StableTop   int     // vertices in the top 25 of every realization
}

// Confidence quantifies the paper's closing open problem — "quantifying
// significance and confidence of approximations over noisy graph data" —
// by running independent source draws at each sampling level of Fig. 4/5
// and measuring score and ranking stability on the H1N1 LWCC.
func Confidence(cfg Config) []ConfidenceRow {
	ug := harvest(tweets.H1N1Corpus(cfg.Scale, cfg.Seed))
	g, _ := cc.Largest(ug.Graph)
	const topK = 25
	w := cfg.out()
	fprintf(w, "Extra — approximate BC confidence over %d source draws (LWCC, %d vertices, top %d)\n",
		cfg.realizations(), g.NumVertices(), topK)
	fprintf(w, "%10s %12s %10s %12s\n", "sampling", "jaccard", "score-CV", "stable-top")
	var rows []ConfidenceRow
	for _, frac := range SamplingFractions[:3] { // 100% has no sampling noise
		samples := int(frac * float64(g.NumVertices()))
		if samples < 1 {
			samples = 1
		}
		c := bc.EstimateWithConfidence(g, bc.Options{Samples: samples, Seed: cfg.Seed},
			cfg.realizations(), topK)
		row := ConfidenceRow{
			Fraction:    frac,
			TopKJaccard: c.TopKJaccard,
			TopCV:       c.CoefficientOfVariation(topK),
			StableTop:   len(c.TopKStable),
		}
		rows = append(rows, row)
		fprintf(w, "%9.0f%% %12.3f %10.3f %12d\n", 100*row.Fraction, row.TopKJaccard, row.TopCV, row.StableTop)
	}
	return rows
}

// DiameterRow reports the estimator at one sample count.
type DiameterRow struct {
	Sources  int
	Longest  int // longest sampled shortest path
	Estimate int // 4x rule
	Exact    int // true diameter
}

// DiameterQuality measures the load-time diameter estimator against the
// exact diameter on the #atlflood LWCC — quantifying the safety margin of
// the paper's "four times the longest path distance found" rule.
func DiameterQuality(cfg Config) []DiameterRow {
	ug := harvest(tweets.AtlFloodCorpus(cfg.Scale, cfg.Seed))
	lwcc, _ := cc.Largest(ug.Graph)
	g := lwcc.Undirected()
	exact := stats.ExactDiameter(g)
	w := cfg.out()
	fprintf(w, "Extra — diameter estimator quality (LWCC, %d vertices, exact diameter %d)\n",
		g.NumVertices(), exact)
	fprintf(w, "%10s %10s %10s %8s\n", "sources", "longest", "estimate", "exact")
	var rows []DiameterRow
	for _, samples := range []int{4, 16, 64, 256} {
		d := stats.EstimateDiameter(g, samples, 4, cfg.Seed)
		row := DiameterRow{Sources: d.Sources, Longest: d.LongestPath, Estimate: d.Estimate, Exact: exact}
		rows = append(rows, row)
		fprintf(w, "%10d %10d %10d %8d\n", row.Sources, row.Longest, row.Estimate, row.Exact)
	}
	return rows
}
