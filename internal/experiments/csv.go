package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV runs the named experiment and writes its data series as CSV
// into dir (one file per experiment, named <experiment>.csv), so the
// paper's figures can be re-plotted from machine-readable output.
func WriteCSV(name string, cfg Config, dir string) error {
	rows, header, err := tabulate(name, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tabulate converts one experiment's typed rows into CSV records.
func tabulate(name string, cfg Config) (rows [][]string, header []string, err error) {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	fi := func(v int) string { return strconv.Itoa(v) }
	f64 := func(v int64) string { return strconv.FormatInt(v, 10) }
	switch name {
	case "table2":
		header = []string{"week", "paper_articles", "model_articles"}
		for _, r := range Table2(cfg) {
			rows = append(rows, []string{fi(r.Week), fi(r.Paper), fi(r.Modeled)})
		}
	case "table3":
		header = []string{"dataset", "users", "users_lwcc", "interactions", "interactions_lwcc", "tweets_with_responses"}
		for _, r := range Table3(cfg) {
			rows = append(rows, []string{r.Name, fi(r.Users), fi(r.UsersLWCC),
				f64(r.UniqueInteractions), f64(r.UniqueInteractionsLWCC), fi(r.TweetsWithResponses)})
		}
	case "table4":
		header = []string{"dataset", "rank", "handle", "score"}
		res := Table4(cfg)
		for _, r := range res.H1N1 {
			rows = append(rows, []string{"h1n1", fi(r.Rank), r.Handle, ff(r.Score)})
		}
		for _, r := range res.AtlFlood {
			rows = append(rows, []string{"atlflood", fi(r.Rank), r.Handle, ff(r.Score)})
		}
	case "fig2":
		header = []string{"dataset", "degree_lo", "degree_hi", "vertices", "alpha", "top20_share"}
		for _, s := range Fig2(cfg) {
			for _, b := range s.Bins {
				if b.Count == 0 {
					continue
				}
				rows = append(rows, []string{s.Name, fi(b.Lo), fi(b.Hi), f64(b.Count), ff(s.Alpha), ff(s.Top20)})
			}
		}
	case "fig3":
		header = []string{"dataset", "original", "largest_component", "subcommunity", "subcommunity_edges"}
		for _, r := range Fig3(cfg) {
			rows = append(rows, []string{r.Name, fi(r.Original), fi(r.LargestComponent),
				fi(r.Subcommunity), f64(r.SubcommunityEdges)})
		}
	case "fig4":
		header = []string{"dataset", "vertices", "edges", "sampling_fraction", "sources", "mean_seconds"}
		for _, s := range Fig4(cfg) {
			for _, c := range s.Cells {
				rows = append(rows, []string{s.Name, fi(s.Vertices), f64(s.Edges),
					ff(c.Fraction), fi(c.Sources), ff(c.Mean.Seconds())})
			}
		}
	case "fig5":
		header = []string{"dataset", "sampling_fraction", "top_fraction", "overlap"}
		for _, s := range Fig5(cfg) {
			for _, c := range s.Cells {
				rows = append(rows, []string{s.Name, ff(c.Fraction), ff(c.TopFrac), ff(c.Overlap)})
			}
		}
	case "fig6":
		header = []string{"graph", "vertices", "edges", "size_ve", "seconds"}
		for _, p := range Fig6(cfg) {
			rows = append(rows, []string{p.Name, fi(p.Vertices), f64(p.Edges),
				ff(p.SizeVE), ff(p.Elapsed.Seconds())})
		}
	case "sampling":
		header = []string{"strategy", "top1", "top5", "top10", "coverage"}
		for _, r := range SamplingStrategies(cfg) {
			rows = append(rows, []string{r.Strategy, ff(r.Top1), ff(r.Top5), ff(r.Top10), ff(r.Covered)})
		}
	case "robustness":
		header = []string{"k", "edge_drop", "top10_overlap", "spearman", "components"}
		for _, r := range KBCRobustness(cfg) {
			rows = append(rows, []string{fi(r.K), ff(r.EdgeDrop), ff(r.Top10), ff(r.Spearman), fi(r.Components)})
		}
	case "diameter":
		header = []string{"sources", "longest", "estimate", "exact"}
		for _, r := range DiameterQuality(cfg) {
			rows = append(rows, []string{fi(r.Sources), fi(r.Longest), fi(r.Estimate), fi(r.Exact)})
		}
	case "temporal":
		header = []string{"week", "tweets", "users", "interactions", "lwcc_share", "turnover"}
		for _, r := range Temporal(cfg) {
			rows = append(rows, []string{fi(r.Week), fi(r.Tweets), fi(r.Users),
				f64(r.Interactions), ff(r.LWCCShare), ff(r.Turnover)})
		}
	case "confidence":
		header = []string{"sampling_fraction", "topk_jaccard", "top_cv", "stable_top"}
		for _, r := range Confidence(cfg) {
			rows = append(rows, []string{ff(r.Fraction), ff(r.TopKJaccard), ff(r.TopCV), fi(r.StableTop)})
		}
	default:
		return nil, nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names)
	}
	return rows, header, nil
}
