package bc

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphct/internal/gen"
)

// cancelBudget is how long a cancelled kernel may take to return. The
// kernels check their context between parallel rounds, so this bounds the
// cost of one in-flight round — far below an uncancelled run, which on
// these workloads takes seconds.
const cancelBudget = 500 * time.Millisecond

// checkGoroutines asserts the kernel's workers wound down after a
// cancelled run: the goroutine count returns to the pre-run baseline
// (with scheduler slack) instead of leaking abandoned workers.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCentralityCtxCancellation(t *testing.T) {
	g := gen.PreferentialAttachment(30000, 8, 1)
	opt := Options{Samples: 256, Seed: 1}

	// Warm up so lazily started infrastructure is in the baseline.
	_, _ = CentralityCtx(context.Background(), g, Options{Samples: 1, Seed: 1})
	baseline := runtime.NumGoroutine()

	// Already-cancelled: no work may start.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := CentralityCtx(ctx, g, opt)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-cancelled: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if d := time.Since(start); d > cancelBudget {
		t.Fatalf("pre-cancelled call took %v, budget %v", d, cancelBudget)
	}

	// Mid-run: the uncancelled workload runs for seconds, so a 10ms
	// cancel lands while sampling is underway; the kernel must abandon
	// its remaining sources and return within the budget.
	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start = time.Now()
	res, err = CentralityCtx(ctx, g, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("mid-run cancel: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if elapsed > 10*time.Millisecond+cancelBudget {
		t.Fatalf("mid-run cancel returned after %v, budget %v", elapsed, cancelBudget)
	}
	checkGoroutines(t, baseline)
}
