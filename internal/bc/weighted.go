package bc

import (
	"container/heap"
	"fmt"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// WeightedCentrality computes betweenness centrality over weighted
// shortest paths (Brandes's Dijkstra variant): the DIMACS weight column
// the loader preserves defines path lengths, and path counts follow ties
// in total weight. Unweighted graphs reduce exactly to Centrality. Only
// classic betweenness (k = 0) is supported for weighted graphs; sampling
// and concurrency behave as in Centrality. Negative weights are an error.
func WeightedCentrality(g *graph.Graph, opt Options) (*Result, error) {
	if opt.K != 0 {
		return nil, fmt.Errorf("bc: weighted k-betweenness not supported (k = %d)", opt.K)
	}
	if g.Directed() {
		g = g.Undirected() // projection drops weights: documented behavior
	}
	if !g.Weighted() {
		return Centrality(g, opt), nil
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Weights(int32(v)) {
			if w < 0 {
				return nil, fmt.Errorf("bc: negative edge weight %d at vertex %d", w, v)
			}
		}
	}
	n := g.NumVertices()
	sources := sampleWithStrategy(g, opt.Samples, opt.Seed, opt.Strategy)
	scores := make([]uint64, n)
	scale := 1.0
	if len(sources) > 0 && len(sources) < n {
		scale = float64(n) / float64(len(sources))
	}
	limit := opt.Concurrency
	if limit <= 0 {
		limit = par.Workers()
	}
	grp := par.NewGroup(limit)
	for _, s := range sources {
		s := s
		grp.Go(func() error {
			weightedSource(g, s, scores, scale)
			return nil
		})
	}
	grp.Wait()
	out := make([]float64, n)
	par.For(n, func(v int) { out[v] = par.LoadFloat64(&scores[v]) })
	return &Result{Scores: out, Sources: sources}, nil
}

// weightedSource is Brandes with Dijkstra: dist and sigma are settled in
// non-decreasing distance order, and the dependency sweep walks vertices
// in decreasing distance.
func weightedSource(g *graph.Graph, s int32, scores []uint64, scale float64) {
	n := g.NumVertices()
	dist := make([]int64, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1 // -1 = unreached; weights are non-negative
	}
	dist[s] = 0
	sigma[s] = 1
	settled := make([]bool, n)
	pq := &distHeap{{v: s, d: 0}}
	var order []int32
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		// Two live entries can carry the same final distance (pushed by
		// different predecessors); settle each vertex exactly once.
		if settled[item.v] || item.d > dist[item.v] {
			continue
		}
		settled[item.v] = true
		order = append(order, item.v)
		nbr := g.Neighbors(item.v)
		wts := g.Weights(item.v)
		for i, u := range nbr {
			if u == item.v {
				continue // self loops never lie on shortest paths
			}
			nd := item.d + int64(wts[i])
			switch {
			case dist[u] == -1 || nd < dist[u]:
				dist[u] = nd
				sigma[u] = sigma[item.v]
				heap.Push(pq, distItem{v: u, d: nd})
			case nd == dist[u]:
				sigma[u] += sigma[item.v]
			}
		}
	}
	// Dijkstra may pop a vertex more than once only via stale entries,
	// filtered above, so `order` holds each reached vertex once in
	// non-decreasing distance; accumulate dependencies in reverse.
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coef := (1 + delta[w]) / sigma[w]
		nbr := g.Neighbors(w)
		wts := g.Weights(w)
		for j, v := range nbr {
			if v == w {
				continue
			}
			if dist[v] != -1 && dist[v]+int64(wts[j]) == dist[w] {
				delta[v] += sigma[v] * coef
			}
		}
		par.AddFloat64(&scores[w], scale*delta[w])
	}
}

// distHeap is shared with the SSSP-style Dijkstra above.
type distItem struct {
	v int32
	d int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
