package bc

import (
	"math"
	"testing"

	"graphct/internal/gen"
)

func TestConfidenceFullSamplingIsExact(t *testing.T) {
	// With every vertex sampled there is no sampling noise: std must be
	// ~0 everywhere, the top-k sets identical, and the mean exact.
	g := gen.PreferentialAttachment(150, 2, 3)
	exact := Exact(g).Scores
	c := EstimateWithConfidence(g, Options{Samples: 0}, 3, 10)
	for v := range exact {
		if !approxEq(c.Mean[v], exact[v]) {
			t.Fatalf("mean differs at %d: %v vs %v", v, c.Mean[v], exact[v])
		}
		if c.Std[v] > 1e-9 {
			t.Fatalf("std at %d = %v, want 0", v, c.Std[v])
		}
	}
	if c.TopKJaccard != 1 {
		t.Fatalf("jaccard = %v, want 1", c.TopKJaccard)
	}
	if len(c.TopKStable) != 10 {
		t.Fatalf("stable set = %v", c.TopKStable)
	}
	if cv := c.CoefficientOfVariation(10); cv > 1e-9 {
		t.Fatalf("cv = %v, want 0", cv)
	}
}

func TestConfidenceSampledHasVariance(t *testing.T) {
	g := gen.PreferentialAttachment(300, 2, 5)
	c := EstimateWithConfidence(g, Options{Samples: 30, Seed: 1}, 5, 10)
	if c.Realizations != 5 {
		t.Fatalf("realizations = %d", c.Realizations)
	}
	var anyStd bool
	for _, s := range c.Std {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("bad std %v", s)
		}
		if s > 0 {
			anyStd = true
		}
	}
	if !anyStd {
		t.Fatal("10% sampling showed zero variance everywhere")
	}
	if c.TopKJaccard <= 0 || c.TopKJaccard > 1 {
		t.Fatalf("jaccard = %v", c.TopKJaccard)
	}
	if len(c.TopKStable) > 10 {
		t.Fatalf("stable set too large: %v", c.TopKStable)
	}
	if cv := c.CoefficientOfVariation(10); cv <= 0 {
		t.Fatalf("cv = %v, want > 0 under sampling", cv)
	}
}

func TestConfidenceMoreSamplesTightens(t *testing.T) {
	g := gen.PreferentialAttachment(300, 3, 7)
	loose := EstimateWithConfidence(g, Options{Samples: 15, Seed: 2}, 6, 15)
	tight := EstimateWithConfidence(g, Options{Samples: 150, Seed: 2}, 6, 15)
	if tight.CoefficientOfVariation(15) >= loose.CoefficientOfVariation(15) {
		t.Fatalf("cv did not tighten: %v vs %v",
			tight.CoefficientOfVariation(15), loose.CoefficientOfVariation(15))
	}
	if tight.TopKJaccard < loose.TopKJaccard-0.05 {
		t.Fatalf("ranking stability fell with more samples: %v vs %v",
			tight.TopKJaccard, loose.TopKJaccard)
	}
}

func TestConfidenceRealizationFloor(t *testing.T) {
	g := gen.Ring(20)
	c := EstimateWithConfidence(g, Options{Samples: 5}, 0, 5)
	if c.Realizations != 2 {
		t.Fatalf("realizations = %d, want floor 2", c.Realizations)
	}
}

func TestJaccardHelpers(t *testing.T) {
	if j := jaccard([]int32{1, 2}, []int32{2, 3}); !approxEq(j, 1.0/3) {
		t.Fatalf("jaccard = %v", j)
	}
	if jaccard(nil, nil) != 1 {
		t.Fatal("empty jaccard != 1")
	}
	if got := intersectAll([][]int32{{1, 2, 3}, {2, 3, 4}, {3, 2}}); len(got) != 2 || got[0] != 2 {
		t.Fatalf("intersectAll = %v", got)
	}
	if intersectAll(nil) != nil {
		t.Fatal("empty intersectAll")
	}
	if meanPairwiseJaccard([][]int32{{1}}) != 1 {
		t.Fatal("single-set jaccard != 1")
	}
}

// TestConfidenceRealizationSeedsDistinct is the regression test for the
// seed-derivation fix: realizations used to derive seeds by a small
// additive offset (seed + r·0x9E37), so a run at base seed X could share
// its realization-1 source draw with a run at base seed X+0x9E37 — and,
// worse, any future stride change risked realizations of ONE run
// colliding. The fixed derivation routes every (seed, realization) pair
// through a 64-bit finalizer; this test pins the user-visible property:
// on a seeded sampled run, no two realizations draw the same source set,
// and the old cross-seed alias is gone.
func TestConfidenceRealizationSeedsDistinct(t *testing.T) {
	g := gen.PreferentialAttachment(400, 2, 9)
	const realizations = 6
	opt := Options{Samples: 12, Seed: 42}
	// Reproduce each realization's source draw exactly as
	// EstimateWithConfidence derives it.
	draws := make([][]int32, realizations)
	for r := range draws {
		runOpt := opt
		runOpt.Seed = deriveSeed(opt.Seed, int64(r))
		draws[r] = Centrality(g, runOpt).Sources
	}
	for i := 0; i < realizations; i++ {
		for j := i + 1; j < realizations; j++ {
			if sameSources(draws[i], draws[j]) {
				t.Fatalf("realizations %d and %d drew identical source sets %v", i, j, draws[i])
			}
		}
	}
	// The historical collision: seed X realization 1 vs seed X+0x9E37
	// realization 0 were bit-identical under the additive scheme.
	if deriveSeed(42, 1) == deriveSeed(42+0x9E37, 0) {
		t.Fatal("derived seeds still alias across (seed, realization) pairs")
	}
}

func sameSources(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCoefficientOfVariationDegenerate(t *testing.T) {
	c := &ConfidenceResult{Mean: []float64{0, 0}, Std: []float64{1, 1}}
	if cv := c.CoefficientOfVariation(2); cv != 0 {
		t.Fatalf("all-zero-mean cv = %v", cv)
	}
}
