package bc

import "graphct/internal/par"

// Accumulation selects how per-source dependency contributions are merged
// into the shared score array.
type Accumulation int

const (
	// AccumAuto picks AccumStriped when the stripe arrays fit the memory
	// budget (Options.StripeBudget) and AccumAtomic otherwise, so small
	// and medium graphs get contention-free accumulation while huge
	// graphs keep the O(n) extra-space guarantee.
	AccumAuto Accumulation = iota
	// AccumStriped gives every in-flight source computation a private
	// []float64 score stripe and merges the stripes once at the end with
	// a parallel tree reduction. No synchronization on the hot path; the
	// cost is one stripe of n float64 per concurrency slot.
	AccumStriped
	// AccumAtomic accumulates into one shared array with an atomic
	// float64 CAS loop per update — the XMT idiom the port started with.
	// O(n) extra space regardless of concurrency, but scale-free hubs
	// turn a handful of cache lines white-hot under contention.
	AccumAtomic
)

// DefaultStripeBudget is the stripe memory AccumAuto allows before falling
// back to atomic accumulation: slots × n × 8 bytes must fit. 256 MiB
// covers ~4M vertices at 8 concurrency slots.
const DefaultStripeBudget int64 = 256 << 20

// accumulator owns the score state for one Centrality run. Exactly one of
// stripes/shared is non-nil.
type accumulator struct {
	n       int
	scale   float64
	stripes [][]float64 // striped: one private array per concurrency slot
	free    chan int    // striped: free-list of stripe indices
	shared  []uint64    // atomic: float64 bits, CAS-accumulated
}

// newAccumulator sizes score storage for n vertices and at most slots
// concurrent sources, resolving AccumAuto against the budget.
func newAccumulator(n, slots int, mode Accumulation, budget int64, scale float64) *accumulator {
	if budget <= 0 {
		budget = DefaultStripeBudget
	}
	if mode == AccumAuto {
		if int64(slots)*int64(n)*8 <= budget {
			mode = AccumStriped
		} else {
			mode = AccumAtomic
		}
	}
	a := &accumulator{n: n, scale: scale}
	if mode == AccumStriped {
		a.stripes = make([][]float64, slots)
		a.free = make(chan int, slots)
		for i := range a.stripes {
			a.stripes[i] = make([]float64, n)
			a.free <- i
		}
	} else {
		a.shared = make([]uint64, n)
	}
	return a
}

// striped reports which path the accumulator resolved to (tests and the
// benchmark harness record it).
func (a *accumulator) striped() bool { return a.stripes != nil }

// acquire hands a source computation its score sink; release must be
// called when the source finishes so the stripe returns to the free list.
// In atomic mode every source shares the CAS-accumulated array and release
// is a no-op.
func (a *accumulator) acquire() (sink scoreSink, release func()) {
	if a.stripes == nil {
		return scoreSink{shared: a.shared, scale: a.scale}, func() {}
	}
	i := <-a.free
	return scoreSink{local: a.stripes[i], scale: a.scale}, func() { a.free <- i }
}

// merge produces the final score array: a parallel tree reduction over the
// stripes, or an atomic drain of the shared array. The accumulator must
// not be used afterwards (the fold consumes the stripes).
func (a *accumulator) merge() []float64 {
	out := make([]float64, a.n)
	if a.stripes != nil {
		par.SumSlices(out, a.stripes)
		return out
	}
	par.For(a.n, func(v int) { out[v] = par.LoadFloat64(&a.shared[v]) })
	return out
}

// scoreSink is the accumulation target a single source computation writes
// its scaled dependency contributions into. Striped sinks are exclusive to
// one in-flight source, so plain adds suffice even when the source's own
// sweeps run fine-grained parallel loops (each vertex's entry is written
// by exactly one iteration). Atomic sinks go through the float64 CAS loop.
type scoreSink struct {
	local  []float64
	shared []uint64
	scale  float64
}

func (sk scoreSink) add(v int32, x float64) {
	if sk.local != nil {
		sk.local[v] += sk.scale * x
		return
	}
	par.AddFloat64(&sk.shared[v], sk.scale*x)
}
