package bc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

// bruteDirected computes directed BC by the σ formulation over directed
// all-pairs BFS.
func bruteDirected(g *graph.Graph) []float64 {
	n := g.NumVertices()
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		d := make([]int32, n)
		sg := make([]float64, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		sg[s] = 1
		q := []int32{int32(s)}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range g.Neighbors(u) {
				if d[v] == -1 {
					d[v] = d[u] + 1
					q = append(q, v)
				}
				if d[v] == d[u]+1 {
					sg[v] += sg[u]
				}
			}
		}
		dist[s] = d
		sigma[s] = sg
	}
	scores := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || dist[s][t] == -1 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t || dist[s][v] == -1 || dist[v][t] == -1 {
					continue
				}
				if dist[s][v]+dist[v][t] == dist[s][t] {
					scores[v] += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
	}
	return scores
}

func TestDirectedChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: vertex 1 carries pairs (0,2),(0,3); vertex 2
	// carries (0,3),(1,3). No reverse paths exist.
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, graph.Options{Directed: true})
	r := DirectedCentrality(g, DirectedOptions{})
	want := []float64{0, 2, 2, 0}
	for v, w := range want {
		if !approxEq(r.Scores[v], w) {
			t.Fatalf("BC(%d) = %v, want %v", v, r.Scores[v], w)
		}
	}
}

func TestDirectedVsUndirectedDiffer(t *testing.T) {
	// On a directed cycle every vertex lies on many directed shortest
	// paths; the undirected projection has shorter two-way routes.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}}
	d, _ := graph.FromEdges(5, edges, graph.Options{Directed: true})
	dir := DirectedCentrality(d, DirectedOptions{})
	und := Exact(d)
	if approxEq(dir.Scores[0], und.Scores[0]) {
		t.Fatalf("directed (%v) and undirected (%v) should differ on a cycle",
			dir.Scores[0], und.Scores[0])
	}
	// Directed 5-cycle: each pair (s,t), s != t has exactly one path;
	// interior vertices per pair = dist-1; per vertex total = 0+1+2+3 = 6.
	if !approxEq(dir.Scores[0], 6) {
		t.Fatalf("directed cycle BC = %v, want 6", dir.Scores[0])
	}
}

func TestDirectedMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var edges []graph.Edge
		for i := 0; i < 60; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(20)), V: int32(rng.Intn(20))})
		}
		g, err := graph.FromEdges(20, edges, graph.Options{Directed: true})
		if err != nil {
			return false
		}
		want := bruteDirected(g)
		got := DirectedCentrality(g, DirectedOptions{}).Scores
		for v := range want {
			if !approxEq(got[v], want[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedUndirectedInputFallsBack(t *testing.T) {
	g := gen.Ring(8)
	a := DirectedCentrality(g, DirectedOptions{}).Scores
	b := Exact(g).Scores
	for v := range a {
		if !approxEq(a[v], b[v]) {
			t.Fatal("undirected fallback differs from Centrality")
		}
	}
}

func TestDirectedSampled(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 1, V: 3}}
	g, _ := graph.FromEdges(4, edges, graph.Options{Directed: true})
	full := DirectedCentrality(g, DirectedOptions{Samples: 4}).Scores
	exact := DirectedCentrality(g, DirectedOptions{}).Scores
	for v := range exact {
		if !approxEq(full[v], exact[v]) {
			t.Fatal("full sampling differs from exact")
		}
	}
	sampled := DirectedCentrality(g, DirectedOptions{Samples: 2, Seed: 3})
	if len(sampled.Sources) != 2 {
		t.Fatalf("sources = %v", sampled.Sources)
	}
	for _, s := range sampled.Scores {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("bad sampled score %v", s)
		}
	}
}
