package bc_test

import (
	"fmt"

	"graphct/internal/bc"
	"graphct/internal/gen"
)

// ExampleExact ranks the vertices of a star graph: the hub brokers every
// pair of leaves.
func ExampleExact() {
	g := gen.Star(6)
	res := bc.Exact(g)
	fmt.Println("hub score:", res.Scores[0])
	fmt.Println("leaf score:", res.Scores[3])
	fmt.Println("normalized hub:", res.Normalized()[0])
	// Output:
	// hub score: 20
	// leaf score: 0
	// normalized hub: 1
}

// ExampleApprox samples sources instead of using all of them; scores are
// scaled to estimate the exact values and the ranking concentrates on the
// same vertices.
func ExampleApprox() {
	g := gen.Star(100)
	res := bc.Approx(g, 10, 42)
	fmt.Println("sources used:", len(res.Sources))
	fmt.Println("top vertex:", res.TopK(1)[0])
	// Output:
	// sources used: 10
	// top vertex: 0
}
