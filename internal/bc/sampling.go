package bc

import (
	"math"
	"math/rand"
	"sort"

	"graphct/internal/cc"
	"graphct/internal/graph"
)

// Sampling selects the source-sampling strategy for approximate
// betweenness centrality. The paper samples uniformly ("unguided") and
// conjectures in Section V that this misses components when the graph is
// disconnected; the alternative strategies implement that future-work
// direction and are compared by the sampling-strategy ablation.
type Sampling int

const (
	// SampleUniform draws sources uniformly without replacement — the
	// paper's strategy.
	SampleUniform Sampling = iota
	// SampleStratified allocates sources to connected components in
	// proportion to their size (largest-remainder rounding), then draws
	// uniformly within each component, so small components are not
	// silently skipped.
	SampleStratified
	// SampleDegreeBiased draws sources without replacement with
	// probability proportional to degree (Efraimidis–Spirakis weighted
	// reservoir), concentrating effort where most shortest paths start.
	SampleDegreeBiased
)

// sampleWithStrategy returns the source set for the requested strategy.
// samples out of range means every vertex regardless of strategy.
func sampleWithStrategy(g *graph.Graph, samples int, seed int64, strategy Sampling) []int32 {
	n := g.NumVertices()
	if n == 0 || samples <= 0 || samples >= n {
		return sampleSources(n, samples, seed)
	}
	switch strategy {
	case SampleStratified:
		return sampleStratified(g, samples, seed)
	case SampleDegreeBiased:
		return sampleDegreeBiased(g, samples, seed)
	default:
		return sampleSources(n, samples, seed)
	}
}

func sampleStratified(g *graph.Graph, samples int, seed int64) []int32 {
	comps := cc.Components(g)
	census := comps.Census()
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))

	// Bucket vertices by component label.
	members := make(map[int32][]int32, len(census))
	for v := 0; v < n; v++ {
		c := comps.Colors[v]
		members[c] = append(members[c], int32(v))
	}

	// Proportional allocation with largest-remainder rounding.
	type alloc struct {
		label int32
		want  float64
		got   int
	}
	allocs := make([]alloc, len(census))
	total := 0
	for i, c := range census {
		want := float64(samples) * float64(c.Size) / float64(n)
		got := int(math.Floor(want))
		if got > int(c.Size) {
			got = int(c.Size)
		}
		allocs[i] = alloc{label: c.Label, want: want, got: got}
		total += got
	}
	// Distribute the remainder to the largest fractional parts that still
	// have capacity.
	order := make([]int, len(allocs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		fa := allocs[order[a]].want - math.Floor(allocs[order[a]].want)
		fb := allocs[order[b]].want - math.Floor(allocs[order[b]].want)
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		if total >= samples {
			break
		}
		if allocs[i].got < len(members[allocs[i].label]) {
			allocs[i].got++
			total++
		}
	}
	// If rounding capacity still left samples unassigned (many singleton
	// components), sweep components in size order.
	for i := range allocs {
		if total >= samples {
			break
		}
		room := len(members[allocs[i].label]) - allocs[i].got
		take := samples - total
		if take > room {
			take = room
		}
		allocs[i].got += take
		total += take
	}

	out := make([]int32, 0, samples)
	for _, a := range allocs {
		vs := members[a.label]
		perm := rng.Perm(len(vs))
		for j := 0; j < a.got; j++ {
			out = append(out, vs[perm[j]])
		}
	}
	return out
}

func sampleDegreeBiased(g *graph.Graph, samples int, seed int64) []int32 {
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	type keyed struct {
		v   int32
		key float64
	}
	keys := make([]keyed, n)
	for v := 0; v < n; v++ {
		w := float64(g.Degree(int32(v)))
		if w <= 0 {
			// Zero-degree vertices contribute nothing to centrality;
			// give them an epsilon weight so they only fill leftover
			// slots.
			w = 1e-9
		}
		keys[v] = keyed{v: int32(v), key: math.Pow(rng.Float64(), 1/w)}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := make([]int32, samples)
	for i := 0; i < samples; i++ {
		out[i] = keys[i].v
	}
	return out
}
