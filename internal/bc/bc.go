// Package bc implements GraphCT's betweenness centrality kernels: exact
// Brandes centrality, the sampled approximation the paper evaluates at 10,
// 25, 50 and 100 percent source coverage, and k-betweenness centrality,
// which also counts paths up to k longer than the shortest so scores are
// robust to small graph perturbations.
//
// Parallelism follows the paper: the coarse level runs many source
// computations concurrently (bounded so working memory stays O(S·(m+n))),
// and each source's sweeps expose fine-grained parallelism; accumulation
// into the shared score array uses an atomic float add, the only
// synchronization primitive the algorithm needs.
package bc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// MaxK is the largest supported k for k-betweenness centrality. Beyond
// slack 2 the exact accounting of walks revisiting a vertex stops being a
// local computation; the paper's analyses use k of at most 2.
const MaxK = 2

// Options configures a centrality run.
type Options struct {
	// K selects k-betweenness centrality; 0 is classic betweenness. The
	// kernel supports k in [0, 2] — the range the paper's analyses and
	// script examples use (kcentrality 1 and 2); see MaxK.
	K int
	// Samples is the number of randomly sampled source vertices.
	// <= 0 or >= NumVertices means every vertex (exact computation).
	Samples int
	// Seed drives source sampling.
	Seed int64
	// Concurrency bounds how many sources run at once; <= 0 means the
	// worker count. Memory grows linearly with this bound.
	Concurrency int
	// FineGrained runs each source's sweeps with parallel loops as well.
	// Off by default: with many sources in flight, coarse parallelism
	// already saturates the machine (the ablation benchmarks compare).
	FineGrained bool
	// Strategy selects how sampled sources are drawn; the zero value is
	// the paper's uniform ("unguided") sampling.
	Strategy Sampling
}

// Result holds centrality scores. Sampled scores are scaled by n/|sources|
// so they estimate the exact scores.
type Result struct {
	Scores  []float64
	Sources []int32 // the sources actually used, in sampled order
	K       int
}

// Exact computes classic betweenness centrality from every source.
func Exact(g *graph.Graph) *Result {
	return Centrality(g, Options{})
}

// Approx computes sampled approximate betweenness centrality.
func Approx(g *graph.Graph, samples int, seed int64) *Result {
	return Centrality(g, Options{Samples: samples, Seed: seed})
}

// Centrality computes (k-)betweenness centrality per opt.
func Centrality(g *graph.Graph, opt Options) *Result {
	r, err := CentralityCtx(context.Background(), g, opt)
	if err != nil {
		// Unreachable: the background context never cancels and source
		// tasks produce no other errors.
		panic("bc: source task failed: " + err.Error())
	}
	return r
}

// CentralityCtx computes (k-)betweenness centrality per opt, observing
// cooperative cancellation between source computations — the coarse loop
// is the kernel's natural checkpoint granularity. A cancelled context
// returns ctx.Err() with no result.
func CentralityCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if opt.K < 0 || opt.K > MaxK {
		panic(fmt.Sprintf("bc: k = %d outside supported range [0, %d]", opt.K, MaxK))
	}
	if g.Directed() {
		// The paper treats mention graphs as undirected for centrality;
		// the backward sweeps likewise assume symmetric adjacency.
		g = g.Undirected()
	}
	n := g.NumVertices()
	sources := sampleWithStrategy(g, opt.Samples, opt.Seed, opt.Strategy)
	scores := make([]uint64, n) // float64 bits, accumulated atomically
	scale := 1.0
	if len(sources) > 0 && len(sources) < n {
		scale = float64(n) / float64(len(sources))
	}
	limit := opt.Concurrency
	if limit <= 0 {
		limit = par.Workers()
	}
	grp := par.NewGroup(limit)
	var pool sync.Pool
	for _, s := range sources {
		if ctx.Err() != nil {
			break // stop scheduling; in-flight sources finish
		}
		s := s
		grp.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			ws, _ := pool.Get().(*workspace)
			if ws == nil || ws.n != n || ws.k != opt.K {
				ws = newWorkspace(n, opt.K)
			}
			if opt.K == 0 {
				brandesSource(g, s, ws, scores, scale, opt.FineGrained)
			} else {
				kbcSource(g, s, ws, scores, scale)
			}
			pool.Put(ws)
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	par.For(n, func(v int) { out[v] = par.LoadFloat64(&scores[v]) })
	return &Result{Scores: out, Sources: sources, K: opt.K}, nil
}

// sampleSources returns the source set: all vertices when samples is out of
// range, otherwise a uniform sample without replacement.
func sampleSources(n, samples int, seed int64) []int32 {
	if n == 0 {
		return nil
	}
	if samples <= 0 || samples >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int32, samples)
	for i := 0; i < samples; i++ {
		out[i] = int32(perm[i])
	}
	return out
}

// Normalized returns the scores divided by (n-1)(n-2), the number of
// ordered vertex pairs a vertex could broker — the conventional
// normalization that makes scores comparable across graph sizes. Graphs
// with fewer than 3 vertices return zeros.
func (r *Result) Normalized() []float64 {
	n := len(r.Scores)
	out := make([]float64, n)
	if n < 3 {
		return out
	}
	denom := float64(n-1) * float64(n-2)
	for v, s := range r.Scores {
		out[v] = s / denom
	}
	return out
}

// TopK returns the indices of the k highest-scoring vertices in descending
// score order (ties broken by vertex id for determinism).
func (r *Result) TopK(k int) []int32 {
	n := len(r.Scores)
	if k > n {
		k = n
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	// Partial selection sort is fine for the small k the analyses use;
	// full sort keeps it simple and deterministic.
	sortByScore(idx, r.Scores)
	return idx[:k]
}

func sortByScore(idx []int32, scores []float64) {
	// Sort descending by score, ascending by id.
	less := func(a, b int32) bool {
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	}
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			p := idx[(lo+hi)/2]
			i, j := lo, hi-1
			for i <= j {
				for less(idx[i], p) {
					i++
				}
				for less(p, idx[j]) {
					j--
				}
				if i <= j {
					idx[i], idx[j] = idx[j], idx[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	}
	qs(0, len(idx))
}
