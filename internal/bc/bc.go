// Package bc implements GraphCT's betweenness centrality kernels: exact
// Brandes centrality, the sampled approximation the paper evaluates at 10,
// 25, 50 and 100 percent source coverage, and k-betweenness centrality,
// which also counts paths up to k longer than the shortest so scores are
// robust to small graph perturbations.
//
// Parallelism follows the paper: the coarse level runs many source
// computations concurrently (bounded so working memory stays O(S·(m+n))),
// and each source's sweeps expose fine-grained parallelism.
//
// Accumulation into the score array departs from the XMT idiom on purpose.
// The paper's hardware hides the latency of hammering one shared array
// with atomic updates; on cache-coherent commodity machines the same
// pattern turns the high-centrality hubs of a scale-free graph into
// white-hot contended cache lines. By default each in-flight source
// therefore accumulates into a private stripe and the stripes are merged
// once by a parallel tree reduction; the atomic-CAS path survives behind
// Options.Accumulation for graphs too large to afford the stripes. The
// Brandes forward sweeps are likewise direction-optimized (Beamer
// top-down/bottom-up, shared with internal/bfs) so hub-dominated levels
// stop scanning the whole edge list.
package bc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// MaxK is the largest supported k for k-betweenness centrality. Beyond
// slack 2 the exact accounting of walks revisiting a vertex stops being a
// local computation; the paper's analyses use k of at most 2.
const MaxK = 2

// Options configures a centrality run.
type Options struct {
	// K selects k-betweenness centrality; 0 is classic betweenness. The
	// kernel supports k in [0, 2] — the range the paper's analyses and
	// script examples use (kcentrality 1 and 2); see MaxK.
	K int
	// Samples is the number of randomly sampled source vertices.
	// <= 0 or >= NumVertices means every vertex (exact computation).
	Samples int
	// Seed drives source sampling.
	Seed int64
	// Concurrency bounds how many sources run at once; <= 0 means the
	// worker count. Memory grows linearly with this bound.
	Concurrency int
	// FineGrained runs each source's sweeps with parallel loops as well.
	// Off by default: with many sources in flight, coarse parallelism
	// already saturates the machine (the ablation benchmarks compare).
	FineGrained bool
	// Strategy selects how sampled sources are drawn; the zero value is
	// the paper's uniform ("unguided") sampling.
	Strategy Sampling
	// Accumulation selects how per-source contributions merge into the
	// score array. The zero value AccumAuto uses striped (contention-free)
	// accumulation when the stripes fit StripeBudget and the atomic-CAS
	// shared array otherwise.
	Accumulation Accumulation
	// StripeBudget caps the extra memory AccumAuto may spend on score
	// stripes, in bytes (slots × n × 8 must fit); 0 means
	// DefaultStripeBudget. Ignored when Accumulation is explicit.
	StripeBudget int64
	// Sweep selects the Brandes forward-sweep traversal. The zero value
	// SweepAuto direction-optimizes; SweepTopDown forces the classic
	// push-only reference sweep. Scores are bit-identical either way.
	Sweep Sweep
	// Scratch selects how per-source workspaces allocate. The zero value
	// ScratchAuto carves each workspace from one bump-allocator arena;
	// ScratchHeap keeps the individual heap allocations (the pre-arena
	// behavior, retained for the ablation benchmarks).
	Scratch Scratch
	// Adaptive switches ApproxCentralityCtx to the adaptive pair-sampling
	// estimator with an (ε,δ) absolute-error guarantee (see adaptive.go).
	// Off, it falls back bit-identically to the fixed-k sampling above.
	// Requires K == 0; Samples/Strategy/Sweep/Accumulation are ignored.
	Adaptive bool
	// Epsilon is the adaptive estimator's absolute-error bound on scores
	// normalized to [0,1] (score / n(n-1)); 0 means DefaultEpsilon.
	Epsilon float64
	// Delta is the adaptive estimator's failure probability: with
	// probability ≥ 1−Delta every guarantee-covered vertex is within
	// Epsilon. 0 means DefaultDelta.
	Delta float64
	// AdaptiveTopK relaxes the adaptive stopping rule to a ranked query:
	// stop when every vertex either has radius ≤ Epsilon or provably
	// cannot belong to the top-k set. 0 covers all vertices.
	AdaptiveTopK int
}

// Scratch selects the workspace allocation strategy.
type Scratch int

const (
	// ScratchAuto backs each pooled workspace with an internal/arena bump
	// allocator: one GC-opaque allocation per concurrency slot.
	ScratchAuto Scratch = iota
	// ScratchHeap allocates each scratch array individually on the heap.
	ScratchHeap
)

// Sweep selects the traversal strategy of the Brandes forward sweeps.
type Sweep int

const (
	// SweepAuto direction-optimizes each level: top-down push while the
	// frontier is small, bottom-up pull (frontier-sigma array) when the
	// frontier's out-edges dominate, per the thresholds shared with
	// bfs.HybridSearch.
	SweepAuto Sweep = iota
	// SweepTopDown forces the classic level-synchronous push sweep on
	// every level — the reference the equivalence tests compare against.
	SweepTopDown
)

// Result holds centrality scores. Sampled scores are scaled by n/|sources|
// so they estimate the exact scores.
type Result struct {
	Scores  []float64
	Sources []int32 // the sources actually used, in sampled order
	K       int
}

// Exact computes classic betweenness centrality from every source.
func Exact(g *graph.Graph) *Result {
	return Centrality(g, Options{})
}

// Approx computes sampled approximate betweenness centrality.
func Approx(g *graph.Graph, samples int, seed int64) *Result {
	return Centrality(g, Options{Samples: samples, Seed: seed})
}

// Centrality computes (k-)betweenness centrality per opt.
func Centrality(g *graph.Graph, opt Options) *Result {
	r, err := CentralityCtx(context.Background(), g, opt)
	if err != nil {
		// Unreachable: the background context never cancels and source
		// tasks produce no other errors.
		panic("bc: source task failed: " + err.Error())
	}
	return r
}

// CentralityCtx computes (k-)betweenness centrality per opt, observing
// cooperative cancellation between source computations — the coarse loop
// is the kernel's natural checkpoint granularity. A cancelled context
// returns ctx.Err() with no result.
func CentralityCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	if opt.K < 0 || opt.K > MaxK {
		panic(fmt.Sprintf("bc: k = %d outside supported range [0, %d]", opt.K, MaxK))
	}
	if g.Directed() {
		// The paper treats mention graphs as undirected for centrality;
		// the backward sweeps likewise assume symmetric adjacency.
		g = g.Undirected()
	}
	n := g.NumVertices()
	sources := sampleWithStrategy(g, opt.Samples, opt.Seed, opt.Strategy)
	scale := 1.0
	if len(sources) > 0 && len(sources) < n {
		scale = float64(n) / float64(len(sources))
	}
	limit := opt.Concurrency
	if limit <= 0 {
		limit = par.Workers()
	}
	// One stripe per concurrency slot suffices; fewer sources than slots
	// means fewer stripes to allocate and merge.
	slots := limit
	if len(sources) < slots {
		slots = len(sources)
	}
	if slots < 1 {
		slots = 1
	}
	acc := newAccumulator(n, slots, opt.Accumulation, opt.StripeBudget, scale)
	// Compact graphs decode neighbor rows into a workspace buffer sized to
	// the maximum degree, so the hot sweeps never allocate; raw graphs
	// alias CSR storage and need no buffer.
	nbufCap := 0
	if g.Compacted() {
		nbufCap = g.MaxDegree()
	}
	grp := par.NewGroup(limit)
	var pool sync.Pool
	for _, s := range sources {
		if ctx.Err() != nil {
			break // stop scheduling; in-flight sources finish
		}
		s := s
		grp.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			sink, release := acc.acquire()
			defer release()
			ws, _ := pool.Get().(*workspace)
			if ws == nil || ws.n != n || ws.k != opt.K {
				ws = newWorkspace(n, opt.K, nbufCap, opt.Scratch)
			}
			if opt.K == 0 {
				brandesSource(g, s, ws, sink, opt.FineGrained, opt.Sweep)
			} else {
				kbcSource(g, s, ws, sink)
			}
			pool.Put(ws)
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Scores: acc.merge(), Sources: sources, K: opt.K}, nil
}

// sampleSources returns the source set: all vertices when samples is out of
// range, otherwise a uniform sample without replacement.
func sampleSources(n, samples int, seed int64) []int32 {
	if n == 0 {
		return nil
	}
	if samples <= 0 || samples >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	out := make([]int32, samples)
	for i := 0; i < samples; i++ {
		out[i] = int32(perm[i])
	}
	return out
}

// Normalized returns the scores divided by (n-1)(n-2), the number of
// ordered vertex pairs a vertex could broker — the conventional
// normalization that makes scores comparable across graph sizes. Graphs
// with fewer than 3 vertices return zeros.
func (r *Result) Normalized() []float64 {
	n := len(r.Scores)
	out := make([]float64, n)
	if n < 3 {
		return out
	}
	denom := float64(n-1) * float64(n-2)
	for v, s := range r.Scores {
		out[v] = s / denom
	}
	return out
}

// TopK returns the indices of the k highest-scoring vertices in descending
// score order (ties broken by vertex id for determinism). Selection is a
// bounded min-heap over the k best seen so far — O(n log k) instead of
// sorting all n scores, which matters when a server request wants the top
// 10 of a multi-million-vertex graph.
func (r *Result) TopK(k int) []int32 {
	scores := r.Scores
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int32{}
	}
	// worse orders by eviction priority: lowest score first, highest id
	// first among ties, so the heap root is always the candidate to drop.
	worse := func(a, b int32) bool {
		if scores[a] != scores[b] {
			return scores[a] < scores[b]
		}
		return a > b
	}
	heap := make([]int32, 0, k)
	siftDown := func(i, size int) {
		for {
			l := 2*i + 1
			if l >= size {
				return
			}
			m := l
			if rt := l + 1; rt < size && worse(heap[rt], heap[l]) {
				m = rt
			}
			if !worse(heap[m], heap[i]) {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if len(heap) < k {
			heap = append(heap, v)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(heap[i], heap[p]) {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if worse(heap[0], v) {
			heap[0] = v
			siftDown(0, k)
		}
	}
	// Heap-sort extraction: repeatedly move the worst survivor to the
	// back, leaving best-to-worst order in place.
	for size := k - 1; size > 0; size-- {
		heap[0], heap[size] = heap[size], heap[0]
		siftDown(0, size)
	}
	return heap
}
