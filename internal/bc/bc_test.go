package bc

import (
	"math"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

const eps = 1e-9

func approxEq(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

// bruteForce computes betweenness by the σ_sv·σ_vt/σ_st formulation over
// all-pairs BFS — an implementation independent of the Brandes recurrence.
func bruteForce(g *graph.Graph) []float64 {
	n := g.NumVertices()
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		d := make([]int32, n)
		sg := make([]float64, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		sg[s] = 1
		q := []int32{int32(s)}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range g.Neighbors(u) {
				if d[v] == -1 {
					d[v] = d[u] + 1
					q = append(q, v)
				}
				if d[v] == d[u]+1 {
					sg[v] += sg[u]
				}
			}
		}
		dist[s] = d
		sigma[s] = sg
	}
	scores := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || dist[s][t] == -1 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t || dist[s][v] == -1 || dist[v][t] == -1 {
					continue
				}
				if dist[s][v]+dist[v][t] == dist[s][t] {
					scores[v] += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
	}
	return scores
}

func TestExactPath(t *testing.T) {
	g := gen.Path(5)
	r := Exact(g)
	want := []float64{0, 6, 8, 6, 0}
	for v, w := range want {
		if !approxEq(r.Scores[v], w) {
			t.Errorf("BC(%d) = %v, want %v", v, r.Scores[v], w)
		}
	}
}

func TestExactStar(t *testing.T) {
	g := gen.Star(8)
	r := Exact(g)
	if !approxEq(r.Scores[0], 7*6) {
		t.Fatalf("center BC = %v, want 42", r.Scores[0])
	}
	for v := 1; v < 8; v++ {
		if r.Scores[v] > eps {
			t.Fatalf("leaf BC(%d) = %v, want 0", v, r.Scores[v])
		}
	}
}

func TestExactCompleteIsZero(t *testing.T) {
	r := Exact(gen.Complete(6))
	for v, s := range r.Scores {
		if s > eps {
			t.Fatalf("K6 BC(%d) = %v, want 0", v, s)
		}
	}
}

func TestExactRingUniform(t *testing.T) {
	r := Exact(gen.Ring(9))
	for v := 1; v < 9; v++ {
		if !approxEq(r.Scores[v], r.Scores[0]) {
			t.Fatalf("ring BC not uniform: %v vs %v", r.Scores[v], r.Scores[0])
		}
	}
	if r.Scores[0] <= 0 {
		t.Fatal("ring BC should be positive")
	}
}

func TestMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(25, 60, seed)
		want := bruteForce(g)
		got := Exact(g).Scores
		for v := range want {
			if !approxEq(got[v], want[v]) {
				t.Logf("seed %d: BC(%d) = %v, want %v", seed, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFineGrainedMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 150, seed)
		a := Centrality(g, Options{}).Scores
		b := Centrality(g, Options{FineGrained: true}).Scores
		for v := range a {
			if !approxEq(a[v], b[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKZeroGeneralPathMatchesBrandes(t *testing.T) {
	// Drive kbcSource directly with k=0; it must agree with Brandes.
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 70, seed)
		n := g.NumVertices()
		want := Exact(g).Scores
		scores := make([]float64, n)
		ws := newWorkspace(n, 0, 0, ScratchAuto)
		for s := 0; s < n; s++ {
			kbcSource(g, int32(s), ws, scoreSink{local: scores, scale: 1})
		}
		for v := 0; v < n; v++ {
			got := scores[v]
			if !approxEq(got, want[v]) {
				t.Logf("seed %d v=%d got %v want %v", seed, v, got, want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// bruteWalks computes k-betweenness by explicit walk enumeration: all walks
// from s whose slack (length − dist) never exceeds k, crediting interior
// visits per target. Exponential; tiny graphs only.
func bruteWalks(g *graph.Graph, k int) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	for s := 0; s < n; s++ {
		// BFS distances from s.
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		q := []int32{int32(s)}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, v := range g.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					q = append(q, v)
				}
			}
		}
		// walkCount[t] = admissible walks s→t; visits[t][v] = total
		// interior visits to v over those walks.
		walkCount := make([]float64, n)
		visits := make([][]float64, n)
		for i := range visits {
			visits[i] = make([]float64, n)
		}
		var rec func(v int32, length int, interior []int32)
		rec = func(v int32, length int, interior []int32) {
			if v != int32(s) && length <= int(dist[v])+k {
				walkCount[v]++
				for _, iv := range interior {
					visits[v][iv]++
				}
			}
			for _, w := range g.Neighbors(v) {
				if w == int32(s) || dist[w] == -1 {
					continue
				}
				if length+1-int(dist[w]) > k {
					continue
				}
				ext := make([]int32, len(interior)+1)
				copy(ext, interior)
				ext[len(interior)] = v
				rec(w, length+1, ext)
			}
		}
		// The source's departure is not an interior visit; pass an empty
		// interior list and strip s from it at credit time instead.
		var rec0 func()
		rec0 = func() {
			for _, w := range g.Neighbors(int32(s)) {
				if w == int32(s) || dist[w] == -1 {
					continue
				}
				if 1-int(dist[w]) > k {
					continue
				}
				rec(w, 1, nil)
			}
		}
		rec0()
		for tt := 0; tt < n; tt++ {
			if tt == s || walkCount[tt] == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == tt {
					continue
				}
				scores[v] += visits[tt][v] / walkCount[tt]
			}
		}
	}
	return scores
}

func TestKBCMatchesWalkEnumeration(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(6),
		gen.Ring(6),
		gen.Star(6),
		gen.Grid(2, 3),
		gen.Complete(5),
		gen.Disjoint(gen.Ring(4), gen.Path(3)),
	}
	for gi, g := range graphs {
		for k := 0; k <= 2; k++ {
			want := bruteWalks(g, k)
			got := Centrality(g, Options{K: k}).Scores
			for v := range want {
				if !approxEq(got[v], want[v]) {
					t.Errorf("graph %d k=%d BC(%d) = %v, want %v", gi, k, v, got[v], want[v])
				}
			}
		}
	}
}

func TestKBCRandomSmallMatchesWalkEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(8, 12, seed)
		for k := 1; k <= 2; k++ {
			want := bruteWalks(g, k)
			got := Centrality(g, Options{K: k}).Scores
			for v := range want {
				if !approxEq(got[v], want[v]) {
					t.Logf("seed %d k=%d v=%d got %v want %v", seed, k, v, got[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestK1EqualsBCOnTrees(t *testing.T) {
	// Slack-1 walks need a lateral (same-level) edge, which BFS trees of a
	// tree graph never have, so 1-betweenness equals plain betweenness.
	// (k=2 differs even on trees: backtrack walks v->w->v are admissible.)
	g := gen.BinaryTree(31)
	exact := Exact(g).Scores
	got := Centrality(g, Options{K: 1}).Scores
	for v := range exact {
		if !approxEq(got[v], exact[v]) {
			t.Fatalf("k=1 BC(%d) = %v, want %v", v, got[v], exact[v])
		}
	}
	k2 := Centrality(g, Options{K: 2}).Scores
	want := bruteWalks(g, 2)
	for v := range want {
		if !approxEq(k2[v], want[v]) {
			t.Fatalf("k=2 tree BC(%d) = %v, want %v", v, k2[v], want[v])
		}
	}
}

func TestSampledAllSourcesEqualsExact(t *testing.T) {
	g := gen.ErdosRenyi(40, 100, 3)
	exact := Exact(g).Scores
	full := Centrality(g, Options{Samples: 40}).Scores
	over := Centrality(g, Options{Samples: 4000}).Scores
	for v := range exact {
		if !approxEq(exact[v], full[v]) || !approxEq(exact[v], over[v]) {
			t.Fatalf("100%% sampling differs at %d", v)
		}
	}
}

func TestSampledScaling(t *testing.T) {
	// On Star(6), each leaf source contributes (n-2)=4 to the center and
	// the center source contributes 0. With S samples the center score is
	// scaled by n/S.
	g := gen.Star(6)
	r := Centrality(g, Options{Samples: 3, Seed: 7})
	if len(r.Sources) != 3 {
		t.Fatalf("sources = %v", r.Sources)
	}
	leaves := 0
	for _, s := range r.Sources {
		if s != 0 {
			leaves++
		}
	}
	want := float64(6) / 3 * float64(leaves) * 4
	if !approxEq(r.Scores[0], want) {
		t.Fatalf("sampled center = %v, want %v (leaf sources %d)", r.Scores[0], want, leaves)
	}
}

func TestSampledDeterministicPerSeed(t *testing.T) {
	g := gen.PreferentialAttachment(200, 2, 5)
	a := Approx(g, 20, 99)
	b := Approx(g, 20, 99)
	for v := range a.Scores {
		// The source SET is seed-deterministic; scores agree up to the
		// floating-point accumulation order, which varies with the
		// parallel schedule when GOMAXPROCS > 1.
		if !approxEq(a.Scores[v], b.Scores[v]) {
			t.Fatal("same seed produced different scores")
		}
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatal("same seed drew different sources")
		}
	}
	c := Approx(g, 20, 100)
	same := true
	for v := range a.Scores {
		if a.Scores[v] != c.Scores[v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sampled scores")
	}
}

func TestSampleSourcesProperties(t *testing.T) {
	srcs := sampleSources(100, 30, 1)
	if len(srcs) != 30 {
		t.Fatalf("len = %d", len(srcs))
	}
	seen := map[int32]bool{}
	for _, s := range srcs {
		if s < 0 || s >= 100 || seen[s] {
			t.Fatalf("bad sample %d", s)
		}
		seen[s] = true
	}
	if got := sampleSources(0, 5, 1); len(got) != 0 {
		t.Fatal("empty graph should have no sources")
	}
	if got := sampleSources(5, 0, 1); len(got) != 5 {
		t.Fatal("samples<=0 should mean all sources")
	}
}

func TestDirectedGraphUsesUndirectedProjection(t *testing.T) {
	d, _ := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}, graph.Options{Directed: true})
	u := d.Undirected()
	a := Exact(d).Scores
	b := Exact(u).Scores
	for v := range a {
		if !approxEq(a[v], b[v]) {
			t.Fatalf("directed BC differs from undirected projection at %d", v)
		}
	}
}

func TestDisconnectedComponentsIndependent(t *testing.T) {
	g := gen.Disjoint(gen.Path(5), gen.Path(5))
	r := Exact(g)
	for v := 0; v < 5; v++ {
		if !approxEq(r.Scores[v], r.Scores[v+5]) {
			t.Fatalf("components differ at %d: %v vs %v", v, r.Scores[v], r.Scores[v+5])
		}
	}
	if !approxEq(r.Scores[2], 8) {
		t.Fatalf("mid-path BC = %v, want 8", r.Scores[2])
	}
}

func TestDegreeOneVerticesZero(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.PreferentialAttachment(80, 1, seed) // a tree: many leaves
		r := Exact(g)
		for v := 0; v < 80; v++ {
			if g.Degree(int32(v)) == 1 && r.Scores[v] > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	r := &Result{Scores: []float64{1, 9, 3, 9, 0}}
	top := r.TopK(3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("TopK = %v", top)
	}
	if got := r.TopK(99); len(got) != 5 {
		t.Fatalf("TopK clamp: %v", got)
	}
	if got := r.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0): %v", got)
	}
}

func TestTopKLarge(t *testing.T) {
	g := gen.PreferentialAttachment(300, 2, 8)
	r := Exact(g)
	top := r.TopK(300)
	for i := 1; i < len(top); i++ {
		a, b := r.Scores[top[i-1]], r.Scores[top[i]]
		if a < b || (a == b && top[i-1] >= top[i]) {
			t.Fatalf("TopK order violated at %d", i)
		}
	}
}

func TestNormalized(t *testing.T) {
	g := gen.Star(10)
	r := Exact(g)
	norm := r.Normalized()
	if !approxEq(norm[0], 1) { // the hub brokers every pair
		t.Fatalf("normalized hub = %v, want 1", norm[0])
	}
	for v := 1; v < 10; v++ {
		if norm[v] != 0 {
			t.Fatalf("normalized leaf = %v", norm[v])
		}
	}
	tiny := &Result{Scores: []float64{5, 7}}
	for _, v := range tiny.Normalized() {
		if v != 0 {
			t.Fatal("n<3 normalization should be zeros")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Exact(graph.Empty(0, false))
	if len(r.Scores) != 0 {
		t.Fatal("empty graph should give empty scores")
	}
	one := Exact(graph.Empty(1, false))
	if len(one.Scores) != 1 || one.Scores[0] != 0 {
		t.Fatal("singleton graph should give zero score")
	}
}

func TestNegativeKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative k did not panic")
		}
	}()
	Centrality(gen.Path(3), Options{K: -1})
}

func TestConcurrencyLimitRespected(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 2)
	a := Centrality(g, Options{Concurrency: 1}).Scores
	b := Centrality(g, Options{Concurrency: 8}).Scores
	for v := range a {
		if !approxEq(a[v], b[v]) {
			t.Fatal("concurrency changed results")
		}
	}
}

func BenchmarkExactBCSmallWorld(b *testing.B) {
	g := gen.PreferentialAttachment(2000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}

func BenchmarkApprox256RMAT12(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(12, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approx(g, 256, int64(i))
	}
}

func BenchmarkKBetweennessK1(b *testing.B) {
	g := gen.PreferentialAttachment(1000, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Centrality(g, Options{K: 1, Samples: 64, Seed: int64(i)})
	}
}
