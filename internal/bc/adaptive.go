package bc

import (
	"context"
	"fmt"
	"math"
	"sync"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// This file implements adaptive approximate betweenness centrality with an
// a-priori (ε,δ) absolute-error guarantee — the KADABRA shape from the
// NetworKit toolkit line of work, in contrast to the fixed-k source
// sampling above, whose only error statement is the empirical stability
// estimate in confidence.go.
//
// Estimator. One sample draws an ordered vertex pair (s,t) uniformly at
// random, samples one shortest s→t path uniformly among all shortest s→t
// paths, and scores X(v) = 1 for the path's interior vertices (everything
// but s and t). E[X(v)] = b(v), the betweenness of v normalized by the
// n(n-1) ordered pairs — exactly Exact(g).Scores[v] / (n(n-1)) — so the
// mean of t samples is an unbiased estimate with per-sample range [0,1].
// Disconnected pairs contribute zero to every vertex, which is correct:
// b(v) only counts pairs a path actually connects.
//
// Each sample runs a balanced bidirectional BFS: level-synchronous
// searches grow from s and from t, always expanding the side whose
// frontier has fewer out-edges, until some vertex is labeled by both
// sides with distF+distB ≤ (completed forward levels)+(completed backward
// levels) — at which point the minimum such sum is exactly d(s,t). Path
// counts σF/σB accumulate per side as in Brandes' forward sweep; the path
// is then drawn by choosing a meeting vertex at the split level c =
// max(0, D−lB) with probability σF·σB/σst and backtracking both ways
// through predecessors weighted by their σ. On scale-free graphs the
// balanced expansion touches a small fraction of the edges a full
// single-source sweep would, which is where the speedup over exact (and
// over per-source sampling) comes from.
//
// Stopping rule. Samples run in geometrically growing rounds. After round
// r with t cumulative samples, every vertex gets a confidence radius
//
//	rad(v) = min( sqrt(2·p̂(1-p̂)·L/t) + 3·L/t ,  sqrt(H/(2t)) )
//
// — the empirical-Bernstein bound (variance-adaptive, tight for the
// many near-zero-score vertices) and the Hoeffding bound (p̂-free
// worst case) — where L = ln(3/δ′), H = ln(2/δ′) and δ′ =
// δ/(adaptiveMaxRounds·n) union-bounds the failure budget over every
// (round, vertex) check the run can make. The run stops when rad(v) ≤ ε
// for all v (or, with AdaptiveTopK, for every vertex that could still
// belong to the top-k set). Because tMax = ⌈H/(2ε²)⌉ makes the Hoeffding
// radius ≤ ε, the cap forces termination after O(log tMax) rounds, so
// with probability ≥ 1−δ every score satisfies |Scores[v]/(n(n-1)) −
// b(v)| ≤ ε whatever round the rule fired in. The statistical acceptance
// test in stat_test.go checks this claim against exact BC instead of
// trusting the algebra.

const (
	// DefaultEpsilon is the absolute-error bound used when
	// Options.Epsilon is zero with Adaptive set: scores normalized to
	// [0,1] are within 0.01 of exact.
	DefaultEpsilon = 0.01
	// DefaultDelta is the failure probability used when Options.Delta is
	// zero with Adaptive set.
	DefaultDelta = 0.1
	// adaptiveFirstRound is the sample count of the first round; each
	// later round doubles the cumulative total (capped at tMax).
	adaptiveFirstRound = 256
	// adaptiveMaxRounds bounds how many stopping-rule checks a run can
	// make; the δ budget is split evenly across them. 64 doublings from
	// adaptiveFirstRound exceed any reachable tMax, so the cap never
	// binds — it only makes the union bound finite.
	adaptiveMaxRounds = 64
)

// Guarantee states the probabilistic error contract of an adaptive run:
// with probability at least 1−Delta, every vertex's normalized score
// (Scores[v] / (n·(n-1))) is within Epsilon of the exact value. Under
// AdaptiveTopK the per-vertex claim is restricted to vertices that could
// belong to the true top-k set; every other vertex is certified (to the
// same confidence) not to belong to it.
type Guarantee struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// SamplesUsed is the number of sampled pairs the run consumed.
	SamplesUsed int `json:"samples_used"`
	// Rounds is how many geometric rounds ran before the rule fired.
	Rounds int `json:"rounds"`
	// Stopped reports whether the adaptive rule ended the run before the
	// worst-case Hoeffding cap tMax; false means the run paid the full
	// a-priori budget (the guarantee holds either way). Non-adaptive
	// fallback results leave the whole Guarantee zero.
	Stopped bool `json:"stopped"`
}

// ApproxResult is an approximate centrality result plus its guarantee.
// Scores are scaled by n·(n-1) so they estimate the same quantity the
// exact kernel reports and TopK/Normalized work unchanged; Sources is nil
// for adaptive runs (the estimator samples pairs, not sources).
type ApproxResult struct {
	Result
	Guarantee Guarantee
}

// ApproxCentrality computes approximate betweenness centrality per opt:
// the adaptive (ε,δ)-guaranteed estimator when opt.Adaptive is set, and
// the classic fixed-k source sampling otherwise (bit-identical to
// Centrality, with a zero Guarantee).
func ApproxCentrality(g *graph.Graph, opt Options) *ApproxResult {
	r, err := ApproxCentralityCtx(context.Background(), g, opt)
	if err != nil {
		// Unreachable: the background context never cancels and the
		// estimator produces no other errors.
		panic("bc: adaptive estimator failed: " + err.Error())
	}
	return r
}

// ApproxCentralityCtx is ApproxCentrality with cooperative cancellation,
// checked between samples — a cancelled context returns ctx.Err() with no
// result, bounded by the in-flight samples like the other *Ctx kernels.
func ApproxCentralityCtx(ctx context.Context, g *graph.Graph, opt Options) (*ApproxResult, error) {
	if !opt.Adaptive {
		r, err := CentralityCtx(ctx, g, opt)
		if err != nil {
			return nil, err
		}
		return &ApproxResult{Result: *r}, nil
	}
	if opt.K != 0 {
		panic(fmt.Sprintf("bc: adaptive approximate centrality supports k=0 only (k = %d)", opt.K))
	}
	eps, delta := opt.Epsilon, opt.Delta
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if delta == 0 {
		delta = DefaultDelta
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("bc: epsilon and delta must lie in (0,1): eps=%v delta=%v", opt.Epsilon, opt.Delta))
	}
	if g.Directed() {
		// Same projection the exact kernel applies: the paper treats
		// mention graphs as undirected for centrality.
		g = g.Undirected()
	}
	n := g.NumVertices()
	if n < 3 {
		// No pair has an interior vertex; every score is exactly zero and
		// the guarantee holds with zero samples.
		return &ApproxResult{
			Result:    Result{Scores: make([]float64, n)},
			Guarantee: Guarantee{Epsilon: eps, Delta: delta, Stopped: true},
		}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est := newAdaptiveEstimator(g, opt, eps, delta)
	return est.run(ctx)
}

// adaptiveEstimator owns one adaptive run's sampling state.
type adaptiveEstimator struct {
	g          *graph.Graph
	n          int
	eps, delta float64
	seed       int64
	topK       int
	lnB        float64 // ln(3/δ′), the empirical-Bernstein log term
	lnH        float64 // ln(2/δ′), the Hoeffding log term
	tMax       int     // worst-case sample cap: Hoeffding radius ≤ ε
	counts     []int64 // per-vertex interior-hit counts over all samples
	ws         []*pairWorkspace
	errs       []error
}

func newAdaptiveEstimator(g *graph.Graph, opt Options, eps, delta float64) *adaptiveEstimator {
	n := g.NumVertices()
	// δ′ union-bounds the failure budget over every per-vertex check in
	// every possible round.
	checks := float64(adaptiveMaxRounds) * float64(n)
	est := &adaptiveEstimator{
		g:     g,
		n:     n,
		eps:   eps,
		delta: delta,
		seed:  opt.Seed,
		topK:  opt.AdaptiveTopK,
		lnB:   math.Log(3 * checks / delta),
		lnH:   math.Log(2 * checks / delta),
	}
	est.tMax = int(math.Ceil(est.lnH / (2 * eps * eps)))
	if est.tMax < 1 {
		est.tMax = 1
	}
	workers := opt.Concurrency
	if workers <= 0 {
		workers = par.Workers()
	}
	est.counts = make([]int64, n)
	nbufCap := 0
	if g.Compacted() {
		nbufCap = g.MaxDegree()
	}
	est.ws = make([]*pairWorkspace, workers)
	for i := range est.ws {
		est.ws[i] = newPairWorkspace(n, nbufCap)
	}
	est.errs = make([]error, workers)
	return est
}

func (est *adaptiveEstimator) run(ctx context.Context) (*ApproxResult, error) {
	t := 0
	rounds := 0
	stopped := false
	for rounds < adaptiveMaxRounds {
		target := t * 2
		if t == 0 {
			target = adaptiveFirstRound
		}
		if target > est.tMax {
			target = est.tMax
		}
		if err := est.sampleRange(ctx, t, target); err != nil {
			return nil, err
		}
		t = target
		rounds++
		if est.converged(t) {
			stopped = t < est.tMax
			break
		}
		if t >= est.tMax {
			// Unreachable: at tMax the Hoeffding radius is ≤ ε, so
			// converged fired above; kept as a loop-termination backstop.
			break
		}
	}
	scores := make([]float64, est.n)
	scale := float64(est.n) * float64(est.n-1) / float64(t)
	for v, c := range est.counts {
		scores[v] = float64(c) * scale
	}
	return &ApproxResult{
		Result: Result{Scores: scores},
		Guarantee: Guarantee{
			Epsilon: est.eps, Delta: est.delta,
			SamplesUsed: t, Rounds: rounds, Stopped: stopped,
		},
	}, nil
}

// sampleRange runs samples [from, to) across the workers and folds the
// per-worker counts into est.counts. Sample i derives its own RNG stream
// from (seed, i), so results are bit-identical whatever the worker count
// or scheduling order.
func (est *adaptiveEstimator) sampleRange(ctx context.Context, from, to int) error {
	count := to - from
	nw := len(est.ws)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := from + count*w/nw
		hi := from + count*(w+1)/nw
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ws := est.ws[w]
			for i := lo; i < hi; i++ {
				// A single sample is one truncated bidirectional BFS —
				// microseconds to low milliseconds — so per-sample checks
				// keep post-cancel latency far inside the 500ms budget.
				if i&15 == 0 && ctx.Err() != nil {
					est.errs[w] = ctx.Err()
					return
				}
				est.samplePair(ws, int64(i))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range est.errs {
		if est.errs[w] != nil {
			return est.errs[w]
		}
	}
	for _, ws := range est.ws {
		for v, c := range ws.counts {
			if c != 0 {
				est.counts[v] += c
				ws.counts[v] = 0
			}
		}
	}
	return nil
}

// samplePair draws the i-th sample's vertex pair and scores one shortest
// path between them.
func (est *adaptiveEstimator) samplePair(ws *pairWorkspace, i int64) {
	rng := sm64{state: deriveState(est.seed, i)}
	n := int32(est.n)
	s := rng.intn(n)
	t := rng.intn(n - 1)
	if t >= s {
		t++
	}
	bidirSample(est.g, ws, s, t, &rng)
}

// converged evaluates the stopping rule at t cumulative samples.
func (est *adaptiveEstimator) converged(t int) bool {
	tf := float64(t)
	radH := math.Sqrt(est.lnH / (2 * tf))
	if radH <= est.eps {
		return true
	}
	if est.topK > 0 {
		return est.convergedTopK(tf, radH)
	}
	// radH > ε here, so min(radB, radH) ≤ ε reduces to radB ≤ ε.
	for _, c := range est.counts {
		p := float64(c) / tf
		radB := math.Sqrt(2*p*(1-p)*est.lnB/tf) + 3*est.lnB/tf
		if radB > est.eps {
			return false
		}
	}
	return true
}

// convergedTopK is the relaxed rule for ranked queries: stop when every
// vertex either has radius ≤ ε or provably cannot belong to the top-k set
// (its upper bound lies below the k-th largest lower bound, so at least k
// vertices beat it with the run's confidence).
func (est *adaptiveEstimator) convergedTopK(tf, radH float64) bool {
	k := est.topK
	if k > est.n {
		k = est.n
	}
	rad := func(c int64) float64 {
		p := float64(c) / tf
		radB := math.Sqrt(2*p*(1-p)*est.lnB/tf) + 3*est.lnB/tf
		if radB < radH {
			return radB
		}
		return radH
	}
	// k-th largest lower bound via a bounded min-heap, the TopK idiom.
	heap := make([]float64, 0, k)
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(heap) {
				return
			}
			m := l
			if r := l + 1; r < len(heap) && heap[r] < heap[l] {
				m = r
			}
			if heap[m] >= heap[i] {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for _, c := range est.counts {
		lb := float64(c)/tf - rad(c)
		if len(heap) < k {
			heap = append(heap, lb)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[i] >= heap[p] {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
			continue
		}
		if lb > heap[0] {
			heap[0] = lb
			siftDown(0)
		}
	}
	lbK := heap[0]
	for _, c := range est.counts {
		r := rad(c)
		if r <= est.eps {
			continue
		}
		if float64(c)/tf+r < lbK {
			continue // certified outside the top-k set
		}
		return false
	}
	return true
}

// searchSide is one direction of the bidirectional search.
type searchSide struct {
	dist  []int32
	sigma []float64
	order []int32 // labeled vertices in label order (reset bookkeeping)
	front int     // index into order where the current frontier begins
	level int32   // completed levels: sigma is final for dist ≤ level
}

func (sd *searchSide) init(v int32) {
	sd.dist[v] = 0
	sd.sigma[v] = 1
	sd.order = append(sd.order, v)
	sd.front = 0
	sd.level = 0
}

func (sd *searchSide) reset() {
	for _, v := range sd.order {
		sd.dist[v] = -1
		sd.sigma[v] = 0
	}
	sd.order = sd.order[:0]
	sd.front = 0
	sd.level = 0
}

// frontierEdges is the expansion cost of the side's current frontier.
func (sd *searchSide) frontierEdges(g *graph.Graph) int64 {
	var e int64
	for _, u := range sd.order[sd.front:] {
		e += int64(g.Degree(u))
	}
	return e
}

// pairWorkspace holds one worker's per-sample state. Arrays are kept
// clean between samples by resetting only the vertices a sample touched,
// the same discipline as the Brandes workspace.
type pairWorkspace struct {
	f, b   searchSide
	meets  []int32 // vertices labeled by both sides, in second-label order
	counts []int64 // worker-local interior-hit counts
	nbuf   []int32 // neighbor decode buffer for compact graphs
}

func newPairWorkspace(n, nbufCap int) *pairWorkspace {
	ws := &pairWorkspace{
		counts: make([]int64, n),
		nbuf:   make([]int32, 0, nbufCap),
	}
	for _, sd := range []*searchSide{&ws.f, &ws.b} {
		sd.dist = make([]int32, n)
		for i := range sd.dist {
			sd.dist[i] = -1
		}
		sd.sigma = make([]float64, n)
		sd.order = make([]int32, 0, n)
	}
	return ws
}

func (ws *pairWorkspace) reset() {
	ws.f.reset()
	ws.b.reset()
	ws.meets = ws.meets[:0]
}

// expandLevel grows side x by one level, accumulating path counts and
// recording vertices that become labeled by both sides ("meets"). Returns
// the updated minimum distF+distB over newly met vertices.
func (ws *pairWorkspace) expandLevel(g *graph.Graph, x, y *searchSide, minSum int32) int32 {
	frontier := x.order[x.front:]
	x.front = len(x.order)
	next := x.level + 1
	for _, u := range frontier {
		su := x.sigma[u]
		for _, v := range g.NeighborsInto(&ws.nbuf, u) {
			switch x.dist[v] {
			case -1:
				x.dist[v] = next
				x.sigma[v] = su
				x.order = append(x.order, v)
				if y.dist[v] >= 0 {
					ws.meets = append(ws.meets, v)
					if sum := next + y.dist[v]; sum < minSum {
						minSum = sum
					}
				}
			case next:
				x.sigma[v] += su
			}
		}
	}
	x.level = next
	return minSum
}

// bidirSample samples one uniform shortest s→t path and increments
// ws.counts for its interior vertices; disconnected pairs contribute
// nothing. The graph must be undirected (adjacency symmetric), which the
// caller guarantees.
func bidirSample(g *graph.Graph, ws *pairWorkspace, s, t int32, rng *sm64) {
	defer ws.reset()
	ws.f.init(s)
	ws.b.init(t)
	const noMeet = int32(math.MaxInt32)
	minSum := noMeet
	for {
		if ws.f.front == len(ws.f.order) || ws.b.front == len(ws.b.order) {
			return // a side exhausted its component without meeting: no path
		}
		// Balanced expansion: grow the cheaper frontier.
		if ws.f.frontierEdges(g) <= ws.b.frontierEdges(g) {
			minSum = ws.expandLevel(g, &ws.f, &ws.b, minSum)
		} else {
			minSum = ws.expandLevel(g, &ws.b, &ws.f, minSum)
		}
		// Once the completed levels cover a meeting sum, that sum is
		// exactly d(s,t): any shorter path would have produced a meet
		// with a smaller (true-distance) sum already.
		if minSum <= ws.f.level+ws.b.level {
			break
		}
	}
	d := minSum
	// Split level: count paths through vertices at forward distance c and
	// backward distance d-c. c ≤ f.level and d-c ≤ b.level hold by the
	// stopping condition, so both sides' σ are final at the split.
	c := d - ws.b.level
	if c < 0 {
		c = 0
	}
	var sigTot float64
	for _, v := range ws.meets {
		if ws.f.dist[v] == c && ws.b.dist[v] == d-c {
			sigTot += ws.f.sigma[v] * ws.b.sigma[v]
		}
	}
	// Draw the meeting vertex with probability σF·σB/σst.
	x := rng.float64() * sigTot
	m := int32(-1)
	for _, v := range ws.meets {
		if ws.f.dist[v] == c && ws.b.dist[v] == d-c {
			m = v
			x -= ws.f.sigma[v] * ws.b.sigma[v]
			if x < 0 {
				break
			}
		}
	}
	if c > 0 && d-c > 0 {
		ws.counts[m]++ // m is interior (neither s nor t)
	}
	ws.backtrack(g, &ws.f, m, c, rng)
	ws.backtrack(g, &ws.b, m, d-c, rng)
}

// backtrack walks from the meeting vertex to the side's root, drawing each
// predecessor with probability σ(pred)/σ(cur) and scoring the interior
// vertices it lands on (levels level-1 … 1; the root itself is an
// endpoint, never interior).
func (ws *pairWorkspace) backtrack(g *graph.Graph, sd *searchSide, m, level int32, rng *sm64) {
	cur := m
	for j := level; j > 1; j-- {
		x := rng.float64() * sd.sigma[cur]
		pick := int32(-1)
		for _, u := range g.NeighborsInto(&ws.nbuf, cur) {
			if sd.dist[u] == j-1 {
				pick = u
				x -= sd.sigma[u]
				if x < 0 {
					break
				}
			}
		}
		ws.counts[pick]++
		cur = pick
	}
}
