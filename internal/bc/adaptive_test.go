package bc

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"graphct/internal/gen"
	"graphct/internal/graph"
	"graphct/internal/testutil"
)

// TestApproxFallbackBitIdentical pins the differential contract: with
// Adaptive off, ApproxCentralityCtx is a pass-through to CentralityCtx —
// same floats, same sources, zero Guarantee — for both sampled and
// exact (samples >= n) configurations.
func TestApproxFallbackBitIdentical(t *testing.T) {
	g := gen.RMAT(gen.PaperRMAT(8, 3))
	n := g.NumVertices()
	for _, opt := range []Options{
		{Samples: 17, Seed: 7},
		{Samples: n + 5, Seed: 7}, // >= n clamps to exact
		{Samples: 17, Seed: 9, Strategy: SampleDegreeBiased},
	} {
		want, err := CentralityCtx(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ApproxCentralityCtx(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Result, *want) {
			t.Fatalf("opt %+v: fallback result differs from CentralityCtx", opt)
		}
		if got.Guarantee != (Guarantee{}) {
			t.Fatalf("opt %+v: fallback guarantee not zero: %+v", opt, got.Guarantee)
		}
	}
}

// TestApproxLargeEpsilonStopsImmediately checks the degenerate tolerance:
// a huge ε makes the worst-case cap tiny, so the run ends after a single
// round with scores still inside the estimator's [0,1] normalized range.
func TestApproxLargeEpsilonStopsImmediately(t *testing.T) {
	g := gen.RMAT(gen.PaperRMAT(9, 1))
	n := g.NumVertices()
	res := ApproxCentrality(g, Options{Adaptive: true, Epsilon: 0.9, Delta: 0.5, Seed: 1})
	if res.Guarantee.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Guarantee.Rounds)
	}
	if res.Guarantee.SamplesUsed <= 0 || res.Guarantee.SamplesUsed > adaptiveFirstRound {
		t.Fatalf("samples = %d, want in (0, %d]", res.Guarantee.SamplesUsed, adaptiveFirstRound)
	}
	denom := float64(n) * float64(n-1)
	for v, s := range res.Scores {
		if norm := s / denom; norm < 0 || norm > 1 || math.IsNaN(norm) {
			t.Fatalf("vertex %d: normalized score %v outside [0,1]", v, norm)
		}
	}
}

// TestApproxDegenerateGraphs feeds the estimator the shapes that break
// unguarded samplers: no vertices, one vertex, isolated vertices (every
// pair disconnected), a directed graph (projected), and a weighted graph
// (weights ignored; hop-count paths). None may panic, and scores must be
// exact where exactness is forced.
func TestApproxDegenerateGraphs(t *testing.T) {
	opt := Options{Adaptive: true, Epsilon: 0.05, Seed: 1}

	empty, err := graph.FromEdges(0, nil, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := graph.FromEdges(1, nil, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"empty": empty, "single": single} {
		res := ApproxCentrality(g, opt)
		if len(res.Scores) != g.NumVertices() {
			t.Fatalf("%s: %d scores for %d vertices", name, len(res.Scores), g.NumVertices())
		}
		if !res.Guarantee.Stopped || res.Guarantee.SamplesUsed != 0 {
			t.Fatalf("%s: guarantee %+v, want stopped with zero samples", name, res.Guarantee)
		}
	}

	// Isolated vertices: every sampled pair is disconnected, every score
	// is exactly zero, and the rule still converges (zero variance).
	noEdges, err := graph.FromEdges(5, nil, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := ApproxCentrality(noEdges, opt)
	for v, s := range res.Scores {
		if s != 0 {
			t.Fatalf("isolated vertex %d scored %v, want 0", v, s)
		}
	}
	if res.Guarantee.SamplesUsed <= 0 {
		t.Fatalf("no-edge run used %d samples, want > 0", res.Guarantee.SamplesUsed)
	}

	// Directed input: projected to undirected like the exact kernel, so
	// the guarantee is against Exact of the projection.
	directed := gen.Follower(gen.DefaultFollower(60, 4))
	if !directed.Directed() {
		t.Fatal("follower generator no longer directed; test needs updating")
	}
	dres := ApproxCentrality(directed, Options{Adaptive: true, Epsilon: 0.04, Seed: 2})
	exact := Exact(directed) // Centrality applies the same projection
	nd := directed.NumVertices()
	assertWithinEpsilon(t, "directed", dres.Scores, exact.Scores, nd, 0.04)

	// Weighted input: the adaptive estimator is hop-count only; weights
	// are ignored rather than panicking, matching unweighted Exact.
	weighted, err := graph.FromWeightedEdges(6, []graph.WeightedEdge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 9},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 2}, {U: 0, V: 5, W: 7},
	}, graph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wres := ApproxCentrality(weighted, Options{Adaptive: true, Epsilon: 0.04, Seed: 3})
	wexact := Exact(weighted)
	assertWithinEpsilon(t, "weighted", wres.Scores, wexact.Scores, 6, 0.04)
}

func assertWithinEpsilon(t *testing.T, name string, got, want []float64, n int, eps float64) {
	t.Helper()
	denom := float64(n) * float64(n-1)
	for v := range got {
		if diff := math.Abs(got[v]-want[v]) / denom; diff > eps {
			t.Fatalf("%s: vertex %d normalized error %v exceeds eps %v", name, v, diff, eps)
		}
	}
}

// TestApproxDeterministicAcrossConcurrency pins the seed-stream design:
// sample i draws from an RNG derived from (seed, i), so worker count and
// scheduling cannot change the result.
func TestApproxDeterministicAcrossConcurrency(t *testing.T) {
	g := gen.RMAT(gen.PaperRMAT(9, 2))
	base := Options{Adaptive: true, Epsilon: 0.03, Seed: 11}
	opt1, opt4 := base, base
	opt1.Concurrency = 1
	opt4.Concurrency = 4
	r1 := ApproxCentrality(g, opt1)
	r4 := ApproxCentrality(g, opt4)
	if !reflect.DeepEqual(r1.Scores, r4.Scores) {
		t.Fatal("scores differ between Concurrency=1 and Concurrency=4")
	}
	if r1.Guarantee != r4.Guarantee {
		t.Fatalf("guarantees differ: %+v vs %+v", r1.Guarantee, r4.Guarantee)
	}
}

// TestApproxTopKStopsEarlier checks the relaxed ranked-query rule: on a
// hub-dominated graph, certifying "not top-k" for the long tail needs
// fewer samples than driving every tail radius under ε, and the certified
// top-1 on a star is its center.
func TestApproxTopKStopsEarlier(t *testing.T) {
	g := gen.RMAT(gen.PaperRMAT(10, 5))
	full := ApproxCentrality(g, Options{Adaptive: true, Epsilon: 0.005, Seed: 6})
	ranked := ApproxCentrality(g, Options{Adaptive: true, Epsilon: 0.005, Seed: 6, AdaptiveTopK: 10})
	if ranked.Guarantee.SamplesUsed > full.Guarantee.SamplesUsed {
		t.Fatalf("top-k run used %d samples, full run %d — relaxed rule fired later",
			ranked.Guarantee.SamplesUsed, full.Guarantee.SamplesUsed)
	}

	star := gen.Star(64)
	sres := ApproxCentrality(star, Options{Adaptive: true, Epsilon: 0.05, Seed: 1, AdaptiveTopK: 1})
	if top := sres.TopK(1); len(top) != 1 || top[0] != 0 {
		t.Fatalf("star top-1 = %v, want [0] (the center)", sres.TopK(1))
	}
}

// TestApproxOptionValidation pins the fail-fast paths: adaptive k-BC is
// unsupported, and out-of-range tolerances are caller bugs.
func TestApproxOptionValidation(t *testing.T) {
	g := gen.Path(5)
	for name, opt := range map[string]Options{
		"k":        {Adaptive: true, K: 1},
		"eps>=1":   {Adaptive: true, Epsilon: 1},
		"eps<0":    {Adaptive: true, Epsilon: -0.1},
		"delta>=1": {Adaptive: true, Delta: 1.5},
		"delta<0":  {Adaptive: true, Delta: -1},
		"both":     {Adaptive: true, Epsilon: 2, Delta: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			ApproxCentrality(g, opt)
		}()
	}
}

// TestApproxCentralityCtxCancellation mirrors TestCentralityCtxCancellation
// for the adaptive estimator: pre-cancelled contexts start no work, a
// mid-round cancel returns inside the budget, and the sampling workers
// wind down instead of leaking.
func TestApproxCentralityCtxCancellation(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := gen.PreferentialAttachment(30000, 8, 1)
	// ε small enough that the uncancelled run takes seconds on this graph,
	// so a 10ms cancel always lands mid-round.
	opt := Options{Adaptive: true, Epsilon: 0.0005, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := ApproxCentralityCtx(ctx, g, opt)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("pre-cancelled: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if d := time.Since(start); d > cancelBudget {
		t.Fatalf("pre-cancelled call took %v, budget %v", d, cancelBudget)
	}

	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start = time.Now()
	res, err = ApproxCentralityCtx(ctx, g, opt)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("mid-run cancel: res %v err %v, want nil result and context.Canceled", res, err)
	}
	if elapsed > 10*time.Millisecond+cancelBudget {
		t.Fatalf("mid-run cancel returned after %v, budget %v", elapsed, cancelBudget)
	}
}

// TestApproxDefaultsApplied checks zero Epsilon/Delta resolve to the
// documented defaults in the returned guarantee.
func TestApproxDefaultsApplied(t *testing.T) {
	res := ApproxCentrality(gen.Ring(32), Options{Adaptive: true, Seed: 1})
	if res.Guarantee.Epsilon != DefaultEpsilon || res.Guarantee.Delta != DefaultDelta {
		t.Fatalf("guarantee (%v,%v), want defaults (%v,%v)",
			res.Guarantee.Epsilon, res.Guarantee.Delta, DefaultEpsilon, DefaultDelta)
	}
}
