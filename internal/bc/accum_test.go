package bc

import (
	"math"
	"testing"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

// relEq applies the satellite tolerance: striped and atomic accumulation
// may round differently (per-stripe partial sums vs one CAS stream), but
// scores must agree within 1e-9 relative error.
func relEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func requireScoresClose(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: score lengths differ: %d vs %d", name, len(a), len(b))
	}
	for v := range a {
		if !relEq(a[v], b[v]) {
			t.Fatalf("%s: v=%d striped %v atomic %v", name, v, a[v], b[v])
		}
	}
}

// TestAccumulationEquivalence pins the tentpole's correctness claim: the
// striped and atomic accumulation paths compute the same scores (within
// 1e-9 relative tolerance) on random and R-MAT graphs, exact and sampled,
// k = 0 and k > 0, coarse and fine-grained.
func TestAccumulationEquivalence(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		opt  Options
	}{
		{"erdos-renyi/exact", gen.ErdosRenyi(200, 600, 1), Options{}},
		{"erdos-renyi/sampled", gen.ErdosRenyi(300, 900, 2), Options{Samples: 40, Seed: 7}},
		{"rmat/exact", gen.RMAT(gen.PaperRMAT(7, 3)), Options{}},
		{"rmat/sampled", gen.RMAT(gen.PaperRMAT(8, 4)), Options{Samples: 64, Seed: 11}},
		{"rmat/k1", gen.RMAT(gen.PaperRMAT(6, 5)), Options{K: 1, Samples: 32, Seed: 3}},
		{"erdos-renyi/k2", gen.ErdosRenyi(80, 240, 6), Options{K: 2, Samples: 20, Seed: 5}},
		{"rmat/fine", gen.RMAT(gen.PaperRMAT(7, 8)), Options{Samples: 32, Seed: 9, FineGrained: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.opt
			st.Accumulation = AccumStriped
			at := tc.opt
			at.Accumulation = AccumAtomic
			requireScoresClose(t, tc.name, Centrality(tc.g, st).Scores, Centrality(tc.g, at).Scores)
		})
	}
}

// TestHybridSweepMatchesReference checks the direction-optimized forward
// sweep against the pure top-down reference on 50 seeded random graphs.
// The pull-style backward sweep fixes summation order, so the match is
// exact, not approximate.
func TestHybridSweepMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		// Dense enough that middle BFS levels trip the bottom-up
		// thresholds (frontier > n/beta vertices and > remaining/alpha
		// edges).
		g := gen.ErdosRenyi(400, 2400, seed)
		hyb := Centrality(g, Options{Sweep: SweepAuto}).Scores
		ref := Centrality(g, Options{Sweep: SweepTopDown}).Scores
		for v := range ref {
			if hyb[v] != ref[v] {
				t.Fatalf("seed %d v=%d: hybrid %v != reference %v", seed, v, hyb[v], ref[v])
			}
		}
	}
}

// TestHybridSweepTakesBottomUpLevels guards against the hybrid path
// silently degrading to top-down (which would pass the equivalence test
// while losing the optimization): on a dense random graph at least one
// level of a single-source sweep must run bottom-up.
func TestHybridSweepTakesBottomUpLevels(t *testing.T) {
	g := gen.ErdosRenyi(400, 2400, 1)
	n := g.NumVertices()
	ws := newWorkspace(n, 0, 0, ScratchAuto)
	sink := scoreSink{local: make([]float64, n), scale: 1}
	brandesSource(g, 0, ws, sink, false, SweepAuto)
	// brandesSource resets the workspace, but the bottom-up level counter
	// survives reset.
	if ws.bottomUps == 0 {
		t.Fatal("no level ran bottom-up on a dense graph; thresholds broken?")
	}
}

// TestAccumulatorAutoSelection pins the memory-budget policy: striped
// while slots × n × 8 fits the budget, atomic beyond it, explicit modes
// always honored.
func TestAccumulatorAutoSelection(t *testing.T) {
	const n, slots = 1 << 10, 4
	fits := int64(slots * n * 8)
	if a := newAccumulator(n, slots, AccumAuto, fits, 1); !a.striped() {
		t.Fatal("auto under budget: want striped")
	}
	if a := newAccumulator(n, slots, AccumAuto, fits-1, 1); a.striped() {
		t.Fatal("auto over budget: want atomic")
	}
	if a := newAccumulator(n, slots, AccumStriped, 1, 1); !a.striped() {
		t.Fatal("explicit striped ignored budget? want striped")
	}
	if a := newAccumulator(n, slots, AccumAtomic, 1<<40, 1); a.striped() {
		t.Fatal("explicit atomic: want atomic")
	}
}

// TestStripeBudgetFallsBackToAtomic runs the full kernel with a budget too
// small for stripes and checks the result still matches the striped run.
func TestStripeBudgetFallsBackToAtomic(t *testing.T) {
	g := gen.ErdosRenyi(150, 450, 9)
	tight := Centrality(g, Options{StripeBudget: 8}).Scores
	roomy := Centrality(g, Options{Accumulation: AccumStriped}).Scores
	requireScoresClose(t, "budget-fallback", tight, roomy)
}
