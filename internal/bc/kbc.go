package bc

import (
	"graphct/internal/graph"
	"graphct/internal/par"
)

// kbcSource accumulates one source's k-betweenness contributions into
// sink. Following Jiang, Ediger & Bader, it counts walks of length up to
// k beyond the shortest path: after a BFS fixes distances, a forward sweep
// in path-length order computes sigma[v][j] — the number of admissible
// walks from s reaching v with slack j in [0, k] — and a backward sweep
// evaluates the generalized Brandes recurrence.
//
// With sigTot[t] = Σ_j sigma[t][j] (the paper's σ^k_st), the backward pass
// computes D[v][j] = Σ_t (walks v→t using the remaining slack)/sigTot[t],
// giving each vertex the closed-form credit Σ_j sigma[v][j]·D[v][j] − 1
// (the −1 removes v's own contribution as a path endpoint). At k = 0 this
// reduces exactly to Brandes's betweenness, which the tests verify.
//
// The source never appears as an intermediate or target vertex: walks
// re-entering s are not counted (sigma[s][j>0] stays 0 and s is skipped in
// the backward sums).
func kbcSource(g *graph.Graph, s int32, ws *workspace, sink scoreSink) {
	defer ws.reset()
	k := ws.k
	stride := k + 1
	dist, sigma, dep, sigTot := ws.dist, ws.sigma, ws.delta, ws.sigTot

	// Phase 1: BFS from s recording visitation order and level offsets.
	dist[s] = 0
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	for len(frontier) > 0 {
		frontierEnd := len(ws.order)
		for _, u := range frontier {
			du := dist[u]
			for _, v := range g.NeighborsInto(&ws.nbuf, u) {
				if dist[v] == -1 {
					dist[v] = du + 1
					ws.order = append(ws.order, v)
				}
			}
		}
		if len(ws.order) == frontierEnd {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		frontier = ws.order[frontierEnd:]
	}
	maxDist := len(ws.levelStart) - 1
	maxLen := maxDist + k

	levelSlice := func(d int) []int32 {
		if d < 0 || d > maxDist {
			return nil
		}
		lo := ws.levelStart[d]
		hi := len(ws.order)
		if d+1 <= maxDist {
			hi = ws.levelStart[d+1]
		}
		return ws.order[lo:hi]
	}

	// Phase 2: forward sweep in increasing walk length L. A walk of
	// length L arrives at v with slack j = L − dist[v]; its last step
	// leaves a neighbor u holding slack L−1−dist[u].
	sigma[int(s)*stride] = 1
	for L := 1; L <= maxLen; L++ {
		dLo := L - k
		if dLo < 0 {
			dLo = 0
		}
		dHi := L
		if dHi > maxDist {
			dHi = maxDist
		}
		for d := dLo; d <= dHi; d++ {
			lvl := levelSlice(d)
			par.ForGuided(len(lvl), 128, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := lvl[i]
					if v == s {
						continue
					}
					var sv float64
					// Iterator, not a shared decode buffer: the guided
					// chunks of one level run concurrently.
					for it := g.NeighborIter(v); ; {
						u, ok := it.Next()
						if !ok {
							break
						}
						du := dist[u]
						if du == -1 {
							continue
						}
						ju := L - 1 - int(du)
						if ju >= 0 && ju <= k {
							sv += sigma[int(u)*stride+ju]
						}
					}
					sigma[int(v)*stride+(L-d)] = sv
				}
			})
		}
	}
	for _, v := range ws.order {
		var tot float64
		base := int(v) * stride
		for j := 0; j <= k; j++ {
			tot += sigma[base+j]
		}
		sigTot[v] = tot
	}

	// Phase 3: backward sweep in decreasing walk length. dep[v][j] sums,
	// over targets t, the admissible v→t walk continuations divided by
	// sigTot[t]; the empty continuation contributes v's own target term.
	for L := maxLen; L >= 0; L-- {
		dLo := L - k
		if dLo < 0 {
			dLo = 0
		}
		dHi := L
		if dHi > maxDist {
			dHi = maxDist
		}
		for d := dLo; d <= dHi; d++ {
			lvl := levelSlice(d)
			par.ForGuided(len(lvl), 128, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := lvl[i]
					var dv float64
					if v != s {
						dv = 1 / sigTot[v]
					}
					for it := g.NeighborIter(v); ; {
						w, ok := it.Next()
						if !ok {
							break
						}
						if w == s {
							continue
						}
						dw := dist[w]
						if dw == -1 {
							continue
						}
						jw := L + 1 - int(dw)
						if jw >= 0 && jw <= k {
							dv += dep[int(w)*stride+jw]
						}
					}
					dep[int(v)*stride+(L-d)] = dv
				}
			})
		}
	}

	// Credit: Σ_j sigma[v][j]·dep[v][j] overcounts pairs whose target is v
	// itself. Walks ending at v contribute sigTot[v] final arrivals (the
	// constant −1 after normalization) plus, at k = 2, one interior visit
	// per walk that backtracked v→w→v at slack 0 — there are
	// sigma[v][0]·bt(v) of those, with bt(v) the reachable non-source
	// neighbor count. Slack bounds make deeper self-returns impossible
	// for k ≤ 2, which is why the kernel caps k there.
	for _, v := range ws.order {
		if v == s {
			continue
		}
		base := int(v) * stride
		var credit float64
		for j := 0; j <= k; j++ {
			credit += sigma[base+j] * dep[base+j]
		}
		credit -= 1
		if k >= 2 {
			bt := 0
			for _, w := range g.NeighborsInto(&ws.nbuf, v) {
				if w != s && w != v && dist[w] != -1 {
					bt++
				}
			}
			credit -= sigma[base] * float64(bt) / sigTot[v]
		}
		if credit > 0 {
			sink.add(v, credit)
		}
	}
}
