package bc

// Seed-stream derivation shared by the sampling estimators. Both the
// adaptive estimator's per-sample RNG streams and EstimateWithConfidence's
// per-realization source draws need many independent streams from one
// user-facing seed; deriving them by small additive offsets risks
// collisions between streams of related seeds (seed X, realization 1 and
// seed X+offset, realization 0 would draw identical sources), so streams
// are separated by a full 64-bit finalizer instead.

// mix64 is the murmur3 fmix64 finalizer: a bijective avalanche so any two
// distinct inputs give unrelated outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	return z ^ (z >> 33)
}

// deriveState builds the RNG state for stream i of seed: the seed is
// finalized first so (seed, i) and (seed', i') can only collide if a
// 64-bit avalanche collides, not through additive aliasing.
func deriveState(seed, i int64) uint64 {
	z := mix64(uint64(seed)) ^ uint64(i)*0x9E3779B97F4A7C15
	return mix64(z)
}

// deriveSeed is deriveState for code that needs an int64 seed (the
// fixed-k sampling paths seed math/rand sources).
func deriveSeed(seed, i int64) int64 {
	return int64(deriveState(seed, i))
}

// sm64 is a splitmix64 PRNG: 3 multiplies and a few shifts per draw, no
// allocation, and statistically solid for sampling — each per-sample
// stream is one of these seeded via deriveState, so results are
// bit-identical regardless of worker count or scheduling.
type sm64 struct{ state uint64 }

func (r *sm64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0,1) with 53 random bits.
func (r *sm64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0,n) via the multiply-shift range
// reduction (bias below 2⁻³², far under the estimator's error budget).
func (r *sm64) intn(n int32) int32 {
	return int32(uint64(uint32(n)) * (r.next() >> 32) >> 32)
}
