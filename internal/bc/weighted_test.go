package bc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

// bruteWeighted enumerates all simple paths between every pair on a tiny
// graph, keeps the minimum-weight ones, and credits interior vertices —
// fully independent of the Brandes/Dijkstra machinery.
func bruteWeighted(g *graph.Graph) []float64 {
	n := g.NumVertices()
	scores := make([]float64, n)
	type best struct {
		w     int64
		count float64
		inter []float64
	}
	for s := int32(0); s < int32(n); s++ {
		for t := int32(0); t < int32(n); t++ {
			if s == t {
				continue
			}
			b := best{w: -1, inter: make([]float64, n)}
			visited := make([]bool, n)
			var walk func(v int32, weight int64, path []int32)
			walk = func(v int32, weight int64, path []int32) {
				if v == t {
					switch {
					case b.w == -1 || weight < b.w:
						b.w = weight
						b.count = 1
						for i := range b.inter {
							b.inter[i] = 0
						}
						for _, p := range path[1:] {
							b.inter[p]++
						}
					case weight == b.w:
						b.count++
						for _, p := range path[1:] {
							b.inter[p]++
						}
					}
					return
				}
				nbr := g.Neighbors(v)
				wts := g.Weights(v)
				for i, u := range nbr {
					if visited[u] || u == v {
						continue
					}
					w := int64(1)
					if wts != nil {
						w = int64(wts[i])
					}
					visited[u] = true
					walk(u, weight+w, append(path, u))
					visited[u] = false
				}
			}
			visited[s] = true
			walk(s, 0, []int32{s})
			if b.w >= 0 {
				for v := 0; v < n; v++ {
					if int32(v) != s && int32(v) != t && b.inter[v] > 0 {
						scores[v] += b.inter[v] / b.count
					}
				}
			}
		}
	}
	return scores
}

func TestWeightedShortcutChangesRanking(t *testing.T) {
	// 0 -1- 1 -1- 2 and a heavy direct edge 0 -5- 2: the light route via
	// 1 wins, so vertex 1 brokers the (0,2) pair in both directions.
	g, _ := graph.FromWeightedEdges(3, []graph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 5},
	}, graph.Options{})
	r, err := WeightedCentrality(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Scores[1], 2) {
		t.Fatalf("BC(1) = %v, want 2", r.Scores[1])
	}
	// Unweighted, the triangle has no interior vertices at all.
	plain, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, graph.Options{})
	if Exact(plain).Scores[1] != 0 {
		t.Fatal("unweighted triangle should have zero BC")
	}
}

func TestWeightedUnitEqualsUnweighted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var wes []graph.WeightedEdge
		var es []graph.Edge
		for i := 0; i < 60; i++ {
			u, v := int32(rng.Intn(20)), int32(rng.Intn(20))
			wes = append(wes, graph.WeightedEdge{U: u, V: v, W: 1})
			es = append(es, graph.Edge{U: u, V: v})
		}
		wg, err := graph.FromWeightedEdges(20, wes, graph.Options{})
		if err != nil {
			return false
		}
		pg, err := graph.FromEdges(20, es, graph.Options{})
		if err != nil {
			return false
		}
		wr, err := WeightedCentrality(wg, Options{})
		if err != nil {
			return false
		}
		pr := Exact(pg)
		for v := range pr.Scores {
			if !approxEq(wr.Scores[v], pr.Scores[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var wes []graph.WeightedEdge
		for i := 0; i < 14; i++ {
			wes = append(wes, graph.WeightedEdge{
				U: int32(rng.Intn(8)), V: int32(rng.Intn(8)), W: 1 + rng.Int31n(4),
			})
		}
		g, err := graph.FromWeightedEdges(8, wes, graph.Options{})
		if err != nil {
			return false
		}
		want := bruteWeighted(g)
		got, err := WeightedCentrality(g, Options{})
		if err != nil {
			return false
		}
		for v := range want {
			if !approxEq(got.Scores[v], want[v]) {
				t.Logf("seed=%d v=%d got %v want %v", seed, v, got.Scores[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampledFullEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var wes []graph.WeightedEdge
	for i := 0; i < 120; i++ {
		wes = append(wes, graph.WeightedEdge{
			U: int32(rng.Intn(40)), V: int32(rng.Intn(40)), W: 1 + rng.Int31n(9),
		})
	}
	g, _ := graph.FromWeightedEdges(40, wes, graph.Options{})
	exact, err := WeightedCentrality(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := WeightedCentrality(g, Options{Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact.Scores {
		if !approxEq(exact.Scores[v], full.Scores[v]) {
			t.Fatalf("full sampling differs at %d", v)
		}
	}
	sampled, err := WeightedCentrality(g, Options{Samples: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled.Sources) != 10 {
		t.Fatalf("sources = %d", len(sampled.Sources))
	}
}

func TestWeightedErrors(t *testing.T) {
	neg, _ := graph.FromWeightedEdges(2, []graph.WeightedEdge{{U: 0, V: 1, W: -1}}, graph.Options{})
	if _, err := WeightedCentrality(neg, Options{}); err == nil {
		t.Fatal("negative weight accepted")
	}
	ok, _ := graph.FromWeightedEdges(2, []graph.WeightedEdge{{U: 0, V: 1, W: 1}}, graph.Options{})
	if _, err := WeightedCentrality(ok, Options{K: 1}); err == nil {
		t.Fatal("weighted k-betweenness accepted")
	}
}

func TestWeightedUnweightedGraphDelegates(t *testing.T) {
	g := gen.Star(10)
	r, err := WeightedCentrality(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Scores[0], 9*8) {
		t.Fatalf("delegated hub = %v", r.Scores[0])
	}
}
