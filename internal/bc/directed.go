package bc

import (
	"graphct/internal/graph"
	"graphct/internal/par"
)

// DirectedOptions configures directed-flow betweenness centrality — the
// paper's "directed model connecting only @foo to @bar could model
// directed flow and is of future interest". Shortest paths follow arc
// direction; the backward sweep scans the transpose graph for
// predecessors.
type DirectedOptions struct {
	Samples     int
	Seed        int64
	Concurrency int
	Strategy    Sampling
}

// DirectedCentrality computes betweenness centrality over directed
// shortest paths. The input must be a directed graph; undirected graphs
// should use Centrality, which treats each edge as bidirectional.
func DirectedCentrality(g *graph.Graph, opt DirectedOptions) *Result {
	if !g.Directed() {
		// An undirected graph already encodes both arc directions.
		return Centrality(g, Options{Samples: opt.Samples, Seed: opt.Seed,
			Concurrency: opt.Concurrency, Strategy: opt.Strategy})
	}
	n := g.NumVertices()
	rev := g.Reverse()
	sources := sampleWithStrategy(g, opt.Samples, opt.Seed, opt.Strategy)
	scores := make([]uint64, n)
	scale := 1.0
	if len(sources) > 0 && len(sources) < n {
		scale = float64(n) / float64(len(sources))
	}
	limit := opt.Concurrency
	if limit <= 0 {
		limit = par.Workers()
	}
	grp := par.NewGroup(limit)
	for _, s := range sources {
		s := s
		grp.Go(func() error {
			directedSource(g, rev, s, scores, scale)
			return nil
		})
	}
	grp.Wait()
	out := make([]float64, n)
	par.For(n, func(v int) { out[v] = par.LoadFloat64(&scores[v]) })
	return &Result{Scores: out, Sources: sources}
}

// directedSource is Brandes over directed arcs: forward BFS follows
// out-arcs; the dependency sweep finds predecessors by scanning the
// transpose adjacency.
func directedSource(g, rev *graph.Graph, s int32, scores []uint64, scale float64) {
	n := g.NumVertices()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	for i := range dist {
		dist[i] = -1
	}
	order := make([]int32, 0, 256)
	dist[s] = 0
	sigma[s] = 1
	order = append(order, s)
	frontier := order[0:1]
	for len(frontier) > 0 {
		end := len(order)
		for _, u := range frontier {
			du, su := dist[u], sigma[u]
			for _, v := range g.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = du + 1
					order = append(order, v)
				}
				if dist[v] == du+1 {
					sigma[v] += su
				}
			}
		}
		frontier = order[end:]
	}
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		coef := (1 + delta[w]) / sigma[w]
		dw := dist[w]
		for _, v := range rev.Neighbors(w) {
			if dist[v] == dw-1 {
				delta[v] += sigma[v] * coef
			}
		}
		par.AddFloat64(&scores[w], scale*delta[w])
	}
}
