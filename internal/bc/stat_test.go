package bc

import (
	"fmt"
	"math"
	"testing"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

// Statistical acceptance test for the adaptive estimator's (ε,δ) claim:
// on ~30 seeded graphs spanning the shapes that stress the estimator
// differently — scale-free R-MAT and preferential attachment (hub-heavy
// σ counts), paths and rings (deep searches, unique paths), stars and
// cliques (degenerate distances), disconnected unions (zero-contribution
// pairs), bridged cliques (one white-hot vertex) and directed follower
// graphs (projection) — run the adaptive estimator repeatedly with
// independent seeds and compare every vertex against exact Brandes.
//
// The contract under test: per run, P(any vertex's normalized error
// exceeds ε) ≤ δ. The acceptance threshold allows exactly the δ fraction
// of runs to fail (slack factor 1.0: the concentration bounds carry
// conservative constants and a union bound over rounds × vertices, so
// the observed exceedance rate sits orders of magnitude below δ — in
// this fixed-seed, deterministic configuration it is zero, and the slack
// exists so the assertion states the statistical claim rather than a
// brittle exact zero). Worst observed errors are always logged and
// reported on failure.

const (
	statEps   = 0.03
	statDelta = 0.1
	statRuns  = 3 // independent adaptive runs per graph
)

// twoClique builds two k-cliques joined by a single bridge edge — the
// bridge endpoints carry essentially all betweenness, the clique
// interiors essentially none, which stresses both radius regimes of the
// stopping rule at once.
func twoClique(k int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			edges = append(edges, graph.Edge{U: int32(k + i), V: int32(k + j)})
		}
	}
	edges = append(edges, graph.Edge{U: int32(k - 1), V: int32(k)})
	g, err := graph.FromEdges(2*k, edges, graph.Options{})
	if err != nil {
		panic(err)
	}
	return g
}

func statGraphs() map[string]*graph.Graph {
	gs := map[string]*graph.Graph{
		"path50":     gen.Path(50),
		"path101":    gen.Path(101),
		"ring64":     gen.Ring(64),
		"star60":     gen.Star(60),
		"tree63":     gen.BinaryTree(63),
		"grid8x8":    gen.Grid(8, 8),
		"complete12": gen.Complete(12),
		"2clique8":   twoClique(8),
		"2clique12":  twoClique(12),
		"disjoint-rmat": gen.Disjoint(
			gen.RMAT(gen.PaperRMAT(5, 1)), gen.RMAT(gen.PaperRMAT(5, 2))),
		"disjoint-path-star": gen.Disjoint(gen.Path(20), gen.Star(20)),
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		gs[fmt.Sprintf("rmat6/%d", seed)] = gen.RMAT(gen.PaperRMAT(6, seed))
	}
	for _, seed := range []int64{1, 2, 3} {
		gs[fmt.Sprintf("rmat7/%d", seed)] = gen.RMAT(gen.PaperRMAT(7, seed))
		gs[fmt.Sprintf("er/%d", seed)] = gen.ErdosRenyi(100, 300, seed)
		gs[fmt.Sprintf("pa/%d", seed)] = gen.PreferentialAttachment(150, 3, seed)
	}
	for _, seed := range []int64{1, 2} {
		gs[fmt.Sprintf("rmat8/%d", seed)] = gen.RMAT(gen.PaperRMAT(8, seed))
	}
	gs["er/4"] = gen.ErdosRenyi(200, 800, 4)
	for _, seed := range []int64{4, 5} {
		gs[fmt.Sprintf("follower/%d", seed)] = gen.Follower(gen.DefaultFollower(80, seed))
	}
	return gs
}

func TestAdaptiveGuaranteeStatistical(t *testing.T) {
	graphs := statGraphs()
	if len(graphs) < 28 {
		t.Fatalf("graph battery shrank to %d graphs; keep ~30", len(graphs))
	}
	totalRuns, failedRuns := 0, 0
	vertexChecks, vertexExceed := 0, 0
	worst := 0.0
	worstAt := ""
	for name, g := range graphs {
		exact := Exact(g).Scores
		n := g.NumVertices()
		if g.Directed() {
			n = g.Undirected().NumVertices() // projection preserves n; explicit for clarity
		}
		denom := float64(n) * float64(n-1)
		var nameHash int64
		for _, c := range name {
			nameHash = nameHash*131 + int64(c)
		}
		for run := 0; run < statRuns; run++ {
			// Independent runs: seeds from the shared stream derivation so
			// no two (graph, run) pairs alias.
			seed := deriveSeed(nameHash, int64(run))
			res := ApproxCentrality(g, Options{
				Adaptive: true, Epsilon: statEps, Delta: statDelta, Seed: seed,
			})
			if res.Guarantee.SamplesUsed <= 0 || res.Guarantee.Rounds <= 0 {
				t.Fatalf("%s run %d: degenerate guarantee %+v", name, run, res.Guarantee)
			}
			totalRuns++
			runFailed := false
			for v := range res.Scores {
				vertexChecks++
				err := math.Abs(res.Scores[v]-exact[v]) / denom
				if err > worst {
					worst = err
					worstAt = fmt.Sprintf("%s run %d vertex %d", name, run, v)
				}
				if err > statEps {
					vertexExceed++
					runFailed = true
				}
			}
			if runFailed {
				failedRuns++
			}
		}
	}
	t.Logf("%d runs over %d graphs: %d failed runs, %d/%d vertex exceedances, worst error %.5f (eps %v) at %s",
		totalRuns, len(graphs), failedRuns, vertexExceed, vertexChecks, worst, statEps, worstAt)
	// Per-run failure rate: the guarantee itself, at slack 1.0.
	if limit := statDelta * float64(totalRuns); float64(failedRuns) > limit {
		t.Errorf("failed runs %d exceed delta budget %.1f of %d runs; worst error %.5f at %s",
			failedRuns, limit, totalRuns, worst, worstAt)
	}
	// Per-vertex exceedance rate: strictly weaker than the per-run claim,
	// asserted too because it is the quantity a user of one vertex's score
	// experiences.
	if rate := float64(vertexExceed) / float64(vertexChecks); rate > statDelta {
		t.Errorf("per-vertex exceedance rate %.4f exceeds delta %v; worst error %.5f at %s",
			rate, statDelta, worst, worstAt)
	}
}
