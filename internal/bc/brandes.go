package bc

import (
	"sync/atomic"

	"graphct/internal/bfs"
	"graphct/internal/graph"
	"graphct/internal/par"
)

// workspace holds the per-source O(m+n) arrays. Workspaces are pooled so
// concurrent sources bound total memory at O(S·(m+n)) for S in-flight
// sources, matching the paper's memory model. Arrays are kept clean between
// runs by resetting only the vertices the previous search touched.
type workspace struct {
	n, k       int
	dist       []int32
	sigma      []float64 // path counts; stride k+1 per vertex when k > 0
	delta      []float64 // dependencies; same shape as sigma
	sigTot     []float64 // per-vertex total short-path count (k > 0 only)
	order      []int32   // visitation order of the last search
	levelStart []int     // offsets into order where each BFS level begins
	front      bitset    // previous-level membership for bottom-up sweeps
}

func newWorkspace(n, k int) *workspace {
	ws := &workspace{
		n:      n,
		k:      k,
		dist:   make([]int32, n),
		sigma:  make([]float64, n*(k+1)),
		delta:  make([]float64, n*(k+1)),
		sigTot: make([]float64, n),
		order:  make([]int32, 0, n),
	}
	for i := range ws.dist {
		ws.dist[i] = -1
	}
	return ws
}

// reset clears the entries touched by the last search. The frontier bitmap
// needs no clearing here: bottom-up levels rebuild it before every use.
func (ws *workspace) reset() {
	stride := ws.k + 1
	for _, v := range ws.order {
		ws.dist[v] = -1
		base := int(v) * stride
		for j := 0; j < stride; j++ {
			ws.sigma[base+j] = 0
			ws.delta[base+j] = 0
		}
		if ws.sigTot != nil {
			ws.sigTot[v] = 0
		}
	}
	ws.order = ws.order[:0]
	ws.levelStart = ws.levelStart[:0]
}

// bitset is a packed vertex set; bottom-up sweeps test previous-level
// membership with one bit load instead of a 4-byte dist compare, keeping
// the hub-scan working set 32× smaller.
type bitset []uint64

func newBitset(n int) bitset      { return make(bitset, (n+63)/64) }
func (b bitset) set(v int32)      { b[v>>6] |= 1 << (uint(v) & 63) }
func (b bitset) has(v int32) bool { return b[v>>6]&(1<<(uint(v)&63)) != 0 }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// brandesSource runs one source's forward and backward sweeps,
// accumulating scaled dependency contributions into sink.
//
// The forward sweep is level-synchronous and direction-optimizing: each
// level runs top-down (push from the frontier) or bottom-up (every
// unvisited vertex pulls path counts from frontier neighbors found via the
// bitmap) by the Beamer thresholds shared with bfs.HybridSearch. On
// scale-free graphs the two or three hub-dominated middle levels hold most
// of the edges; bottom-up stops those levels from scanning the whole edge
// list through the frontier.
//
// The backward sweep pulls dependencies from successors in sorted
// adjacency order, so the resulting scores are bit-identical whichever
// forward strategy discovered each level — the property the equivalence
// tests pin down. (Path counts are integer-valued, so forward summation
// order cannot perturb them either.)
func brandesSource(g *graph.Graph, s int32, ws *workspace, sink scoreSink, fine bool, sweep Sweep) {
	defer ws.reset()
	if fine {
		brandesSourceFine(g, s, ws, sink)
		return
	}
	dist, sigma := ws.dist, ws.sigma
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	n := int64(g.NumVertices())
	remaining := g.NumArcs()
	hybrid := sweep != SweepTopDown && !g.Directed()
	for len(frontier) > 0 {
		var frontierEdges int64
		for _, u := range frontier {
			frontierEdges += int64(g.Degree(u))
		}
		remaining -= frontierEdges
		frontierEnd := len(ws.order)
		if hybrid && frontierEdges > remaining/bfs.HybridAlpha && int64(len(frontier)) > n/bfs.HybridBeta {
			ws.bottomUpLevel(g, frontier)
		} else {
			topDownLevel(g, frontier, dist, sigma, &ws.order)
		}
		if len(ws.order) == frontierEnd {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		frontier = ws.order[frontierEnd:]
	}
	backwardSweep(g, s, ws, sink)
}

// topDownLevel expands the frontier push-style: the classic Brandes step,
// O(frontier out-edges).
func topDownLevel(g *graph.Graph, frontier []int32, dist []int32, sigma []float64, order *[]int32) {
	for _, u := range frontier {
		du := dist[u]
		su := sigma[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = du + 1
				*order = append(*order, v)
			}
			if dist[v] == du+1 {
				sigma[v] += su
			}
		}
	}
}

// bottomUpLevel discovers the next level pull-style: every unvisited
// vertex scans its own adjacency for frontier members (bitmap test) and
// sums their path counts in one shot. O(unvisited-vertex edges), which on
// hub levels is far less than the frontier's out-edges.
func (ws *workspace) bottomUpLevel(g *graph.Graph, frontier []int32) {
	if ws.front == nil {
		ws.front = newBitset(ws.n)
	}
	front := ws.front
	front.clear()
	for _, u := range frontier {
		front.set(u)
	}
	d := ws.dist[frontier[0]] + 1
	dist, sigma := ws.dist, ws.sigma
	for v := int32(0); int(v) < ws.n; v++ {
		if dist[v] != -1 {
			continue
		}
		var sv float64
		for _, u := range g.Neighbors(v) {
			if front.has(u) {
				sv += sigma[u]
			}
		}
		if sv != 0 {
			dist[v] = d
			sigma[v] = sv
			ws.order = append(ws.order, v)
		}
	}
}

// backwardSweep evaluates the Brandes dependency recurrence pull-style,
// deepest level first: delta[v] sums sigma[v]/sigma[w]·(1+delta[w]) over
// v's successors w in sorted adjacency order. Pulling makes each vertex
// the only writer of its own delta entry and fixes the floating-point
// summation order independently of visitation order.
func backwardSweep(g *graph.Graph, s int32, ws *workspace, sink scoreSink) {
	dist, sigma, delta := ws.dist, ws.sigma, ws.delta
	for li := len(ws.levelStart) - 1; li >= 0; li-- {
		lo := ws.levelStart[li]
		hi := len(ws.order)
		if li+1 < len(ws.levelStart) {
			hi = ws.levelStart[li+1]
		}
		for _, v := range ws.order[lo:hi] {
			dv := dist[v]
			sv := sigma[v]
			var dsum float64
			for _, w := range g.Neighbors(v) {
				if dist[w] == dv+1 {
					dsum += sv / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = dsum
			if v != s {
				sink.add(v, dsum)
			}
		}
	}
}

// brandesSourceFine is the fine-grained variant: each level's sigma and
// delta sweeps run as guided-scheduled parallel pull loops (no atomics
// needed because each vertex writes only its own entry — including its
// score-sink entry, so striped accumulation stays race-free here too). It
// exists for the parallelism ablation; coarse source-level parallelism
// usually wins when many sources are in flight.
func brandesSourceFine(g *graph.Graph, s int32, ws *workspace, sink scoreSink) {
	defer ws.reset()
	dist, sigma, delta := ws.dist, ws.sigma, ws.delta
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	for len(frontier) > 0 {
		frontierEnd := len(ws.order)
		// Discovery: parallel claim of next level.
		next := discoverLevel(g, frontier, dist)
		ws.order = append(ws.order, next...)
		if len(next) == 0 {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		// Sigma: pull from predecessors, parallel and race-free. Guided
		// scheduling keeps a worker that drew a run of hubs from
		// stranding the level's tail.
		par.ForGuided(len(next), 128, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := next[i]
				dv := dist[v]
				var sv float64
				for _, u := range g.Neighbors(v) {
					if dist[u] == dv-1 {
						sv += sigma[u]
					}
				}
				sigma[v] = sv
			}
		})
		frontier = ws.order[frontierEnd:]
	}
	// Delta: pull from successors level by level, deepest first.
	for li := len(ws.levelStart) - 1; li >= 0; li-- {
		lo := ws.levelStart[li]
		hi := len(ws.order)
		if li+1 < len(ws.levelStart) {
			hi = ws.levelStart[li+1]
		}
		lvl := ws.order[lo:hi]
		par.ForGuided(len(lvl), 128, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := lvl[i]
				dv := dist[v]
				sv := sigma[v]
				var dsum float64
				for _, w := range g.Neighbors(v) {
					if dist[w] == dv+1 {
						dsum += sv / sigma[w] * (1 + delta[w])
					}
				}
				delta[v] = dsum
				if v != s {
					sink.add(v, dsum)
				}
			}
		})
	}
}

func discoverLevel(g *graph.Graph, frontier []int32, dist []int32) []int32 {
	workers := par.Workers()
	buffers := make([][]int32, workers)
	par.ForEachWorker(func(w, workers int) {
		var buf []int32
		for i := w; i < len(frontier); i += workers {
			u := frontier[i]
			du := dist[u]
			for _, v := range g.Neighbors(u) {
				if atomic.LoadInt32(&dist[v]) == -1 && par.CASInt32(&dist[v], -1, du+1) {
					buf = append(buf, v)
				}
			}
		}
		buffers[w] = buf
	})
	var next []int32
	for _, b := range buffers {
		next = append(next, b...)
	}
	return next
}
