package bc

import (
	"sync/atomic"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// workspace holds the per-source O(m+n) arrays. Workspaces are pooled so
// concurrent sources bound total memory at O(S·(m+n)) for S in-flight
// sources, matching the paper's memory model. Arrays are kept clean between
// runs by resetting only the vertices the previous search touched.
type workspace struct {
	n, k       int
	dist       []int32
	sigma      []float64 // path counts; stride k+1 per vertex when k > 0
	delta      []float64 // dependencies; same shape as sigma
	sigTot     []float64 // per-vertex total short-path count (k > 0 only)
	order      []int32   // visitation order of the last search
	levelStart []int     // offsets into order where each BFS level begins
}

func newWorkspace(n, k int) *workspace {
	ws := &workspace{
		n:      n,
		k:      k,
		dist:   make([]int32, n),
		sigma:  make([]float64, n*(k+1)),
		delta:  make([]float64, n*(k+1)),
		sigTot: make([]float64, n),
		order:  make([]int32, 0, n),
	}
	for i := range ws.dist {
		ws.dist[i] = -1
	}
	return ws
}

// reset clears the entries touched by the last search.
func (ws *workspace) reset() {
	stride := ws.k + 1
	for _, v := range ws.order {
		ws.dist[v] = -1
		base := int(v) * stride
		for j := 0; j < stride; j++ {
			ws.sigma[base+j] = 0
			ws.delta[base+j] = 0
		}
		if ws.sigTot != nil {
			ws.sigTot[v] = 0
		}
	}
	ws.order = ws.order[:0]
	ws.levelStart = ws.levelStart[:0]
}

// brandesSource accumulates one source's dependency contributions into
// scores (float64 bit patterns, added atomically, scaled by scale).
func brandesSource(g *graph.Graph, s int32, ws *workspace, scores []uint64, scale float64, fine bool) {
	defer ws.reset()
	if fine {
		brandesSourceFine(g, s, ws, scores, scale)
		return
	}
	dist, sigma, delta := ws.dist, ws.sigma, ws.delta
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	frontier := ws.order[0:1]
	for len(frontier) > 0 {
		frontierEnd := len(ws.order)
		for _, u := range frontier {
			du := dist[u]
			su := sigma[u]
			for _, v := range g.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = du + 1
					ws.order = append(ws.order, v)
				}
				if dist[v] == du+1 {
					sigma[v] += su
				}
			}
		}
		frontier = ws.order[frontierEnd:]
	}
	// Dependency accumulation in reverse visitation order; within a level
	// the order is immaterial because predecessors sit strictly shallower.
	for i := len(ws.order) - 1; i > 0; i-- {
		w := ws.order[i]
		coef := (1 + delta[w]) / sigma[w]
		dw := dist[w]
		for _, v := range g.Neighbors(w) {
			if dist[v] == dw-1 {
				delta[v] += sigma[v] * coef
			}
		}
		par.AddFloat64(&scores[w], scale*delta[w])
	}
}

// brandesSourceFine is the fine-grained variant: each level's sigma and
// delta sweeps run as parallel pull-style loops (no atomics needed because
// each vertex writes only its own entry). It exists for the parallelism
// ablation; coarse source-level parallelism usually wins when many sources
// are in flight.
func brandesSourceFine(g *graph.Graph, s int32, ws *workspace, scores []uint64, scale float64) {
	dist, sigma, delta := ws.dist, ws.sigma, ws.delta
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	for len(frontier) > 0 {
		frontierEnd := len(ws.order)
		// Discovery: parallel claim of next level.
		next := discoverLevel(g, frontier, dist)
		ws.order = append(ws.order, next...)
		if len(next) == 0 {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		// Sigma: pull from predecessors, parallel and race-free.
		par.For(len(next), func(i int) {
			v := next[i]
			dv := dist[v]
			var sv float64
			for _, u := range g.Neighbors(v) {
				if dist[u] == dv-1 {
					sv += sigma[u]
				}
			}
			sigma[v] = sv
		})
		frontier = ws.order[frontierEnd:]
	}
	// Delta: pull from successors level by level, deepest first.
	for li := len(ws.levelStart) - 1; li >= 0; li-- {
		lo := ws.levelStart[li]
		hi := len(ws.order)
		if li+1 < len(ws.levelStart) {
			hi = ws.levelStart[li+1]
		}
		lvl := ws.order[lo:hi]
		par.For(len(lvl), func(i int) {
			v := lvl[i]
			dv := dist[v]
			var dsum float64
			for _, w := range g.Neighbors(v) {
				if dist[w] == dv+1 {
					dsum += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			delta[v] = dsum
			if v != s {
				par.AddFloat64(&scores[v], scale*dsum)
			}
		})
	}
}

func discoverLevel(g *graph.Graph, frontier []int32, dist []int32) []int32 {
	workers := par.Workers()
	buffers := make([][]int32, workers)
	par.ForEachWorker(func(w, workers int) {
		var buf []int32
		for i := w; i < len(frontier); i += workers {
			u := frontier[i]
			du := dist[u]
			for _, v := range g.Neighbors(u) {
				if atomic.LoadInt32(&dist[v]) == -1 && par.CASInt32(&dist[v], -1, du+1) {
					buf = append(buf, v)
				}
			}
		}
		buffers[w] = buf
	})
	var next []int32
	for _, b := range buffers {
		next = append(next, b...)
	}
	return next
}
