package bc

import (
	"sync/atomic"

	"graphct/internal/arena"
	"graphct/internal/bfs"
	"graphct/internal/graph"
	"graphct/internal/par"
)

// workspace holds the per-source O(m+n) arrays. Workspaces are pooled so
// concurrent sources bound total memory at O(S·(m+n)) for S in-flight
// sources, matching the paper's memory model. Arrays are kept clean between
// runs by resetting only the vertices the previous search touched.
//
// By default the arrays are carved from one workspace arena: a single
// GC-opaque allocation instead of seven heap objects per slot, laid out in
// sweep-touch order. Options.Scratch == ScratchHeap keeps the pre-arena
// individual allocations for the ablation benchmarks.
//
// The per-vertex state stays in separate dense arrays rather than an
// interleaved struct-of-one-record layout: the whole per-source state
// fits L2 at bench scales and the hot entries are the relabeled hubs,
// which dense arrays pack 16-per-cache-line into L1 — measured faster
// than interleaving, which only pays off when every field access misses.
type workspace struct {
	n, k       int
	dist       []int32
	sigma      []float64 // path counts; stride k+1 per vertex when k > 0
	delta      []float64 // dependencies; same shape as sigma
	sigTot     []float64 // per-vertex total short-path count (k > 0 only)
	order      []int32   // visitation order of the last search
	levelStart []int     // offsets into order where each BFS level begins
	nbuf       []int32   // neighbor decode buffer for compact graphs
	ar         *arena.Arena
	bottomUps  int // levels discovered pull-style; survives reset (test sentinel)
}

func newWorkspace(n, k, nbufCap int, scratch Scratch) *workspace {
	ws := &workspace{n: n, k: k}
	if scratch == ScratchHeap {
		ws.dist = make([]int32, n)
		ws.sigma = make([]float64, n*(k+1))
		ws.delta = make([]float64, n*(k+1))
		ws.sigTot = make([]float64, n)
		ws.order = make([]int32, 0, n)
		ws.nbuf = make([]int32, 0, nbufCap)
	} else {
		bytes := arena.Bytes[int32](n) + // dist
			2*arena.Bytes[float64](n*(k+1)) + // sigma, delta
			arena.Bytes[float64](n) + // sigTot
			arena.Bytes[int32](n) + // order
			arena.Bytes[int32](nbufCap)
		ws.ar = arena.New(bytes)
		ws.dist = arena.Make[int32](ws.ar, n)
		ws.sigma = arena.Make[float64](ws.ar, n*(k+1))
		ws.delta = arena.Make[float64](ws.ar, n*(k+1))
		ws.sigTot = arena.Make[float64](ws.ar, n)
		ws.order = arena.Make[int32](ws.ar, n)[:0]
		ws.nbuf = arena.Make[int32](ws.ar, nbufCap)[:0]
	}
	for i := range ws.dist {
		ws.dist[i] = -1
	}
	return ws
}

// reset clears the entries touched by the last search.
func (ws *workspace) reset() {
	stride := ws.k + 1
	for _, v := range ws.order {
		ws.dist[v] = -1
		base := int(v) * stride
		for j := 0; j < stride; j++ {
			ws.sigma[base+j] = 0
			ws.delta[base+j] = 0
		}
		if ws.sigTot != nil {
			ws.sigTot[v] = 0
		}
	}
	ws.order = ws.order[:0]
	ws.levelStart = ws.levelStart[:0]
}

// brandesSource runs one source's forward and backward sweeps,
// accumulating scaled dependency contributions into sink.
//
// The forward sweep is level-synchronous and direction-optimizing: each
// level runs top-down (push from the frontier) or bottom-up (every
// unvisited vertex pulls path counts straight from the frontier-sigma
// array) by the Beamer thresholds shared with bfs.HybridSearch. On
// scale-free graphs the two or three hub-dominated middle levels hold most
// of the edges; bottom-up stops those levels from scanning the whole edge
// list through the frontier.
//
// The backward sweep pulls dependencies from successors in sorted
// adjacency order, so the resulting scores are bit-identical whichever
// forward strategy discovered each level — the property the equivalence
// tests pin down. (Path counts are integer-valued, so forward summation
// order cannot perturb them either.)
func brandesSource(g *graph.Graph, s int32, ws *workspace, sink scoreSink, fine bool, sweep Sweep) {
	defer ws.reset()
	if fine {
		brandesSourceFine(g, s, ws, sink)
		return
	}
	dist, sigma := ws.dist, ws.sigma
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	n := int64(g.NumVertices())
	remaining := g.NumArcs()
	hybrid := sweep != SweepTopDown && !g.Directed()
	for len(frontier) > 0 {
		var frontierEdges int64
		for _, u := range frontier {
			frontierEdges += int64(g.Degree(u))
		}
		remaining -= frontierEdges
		frontierEnd := len(ws.order)
		if hybrid && frontierEdges > remaining/bfs.HybridAlpha && int64(len(frontier)) > n/bfs.HybridBeta {
			ws.bottomUpLevel(g, frontier)
		} else {
			ws.topDownLevel(g, frontier)
		}
		if len(ws.order) == frontierEnd {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		frontier = ws.order[frontierEnd:]
	}
	backwardSweep(g, s, ws, sink)
}

// topDownLevel expands the frontier push-style: the classic Brandes step,
// O(frontier out-edges). NeighborsInto keeps the raw path an aliased CSR
// subslice and decodes compact rows into the workspace buffer, so the loop
// body is identical either way and allocation-free after warmup.
func (ws *workspace) topDownLevel(g *graph.Graph, frontier []int32) {
	dist, sigma := ws.dist, ws.sigma
	for _, u := range frontier {
		du := dist[u]
		su := sigma[u]
		for _, v := range g.NeighborsInto(&ws.nbuf, u) {
			if dist[v] == -1 {
				dist[v] = du + 1
				ws.order = append(ws.order, v)
			}
			if dist[v] == du+1 {
				sigma[v] += su
			}
		}
	}
}

// bottomUpLevel discovers the next level pull-style: every unvisited
// vertex scans its own adjacency and sums frontier path counts in one
// shot. O(unvisited-vertex edges), which on hub levels is far less than
// the frontier's out-edges.
//
// Frontier membership is encoded in the values themselves: fsig holds
// sigma[u] for frontier vertices and 0 everywhere else, so the inner loop
// is an unconditional load-and-add — no membership test, no branch to
// mispredict on the hub levels where half the neighbors are frontier.
// ws.delta is dead during the forward sweep (zeroed by reset) and hosts
// fsig; the frontier entries are re-zeroed before returning, restoring
// the all-zero invariant the next bottom-up level (and reset's
// bookkeeping) relies on.
func (ws *workspace) bottomUpLevel(g *graph.Graph, frontier []int32) {
	ws.bottomUps++
	fsig := ws.delta
	sigma := ws.sigma
	for _, u := range frontier {
		fsig[u] = sigma[u]
	}
	d := ws.dist[frontier[0]] + 1
	dist := ws.dist
	for v := int32(0); int(v) < ws.n; v++ {
		if dist[v] != -1 {
			continue
		}
		var sv float64
		for _, u := range g.NeighborsInto(&ws.nbuf, v) {
			sv += fsig[u]
		}
		if sv != 0 {
			dist[v] = d
			sigma[v] = sv
			ws.order = append(ws.order, v)
		}
	}
	for _, u := range frontier {
		fsig[u] = 0
	}
}

// backwardSweep evaluates the Brandes dependency recurrence pull-style,
// deepest level first: delta[v] = sigma[v] · Σ (1+delta[w])/sigma[w] over
// v's successors w in sorted adjacency order. Pulling makes each vertex
// the only writer of its own delta entry and fixes the floating-point
// summation order independently of visitation order.
//
// The successor term (1+delta[w])/sigma[w] is materialized into coef[w]
// once per vertex, and the level structure makes the successor test
// itself free: a neighbor of a level-li vertex can only live on levels
// li-1, li or li+1, so if coef is populated for strictly deeper levels
// only — each level's coefficients are published in a second pass, after
// every delta of that level is computed — then coef[w] is nonzero exactly
// for successors and zero otherwise (unset levels and unreached vertices
// read as the cleared 0). The inner loop is one load and one add per
// edge: no dist read, no branch, no divide. ws.sigTot is dead in the
// k=0 path and hosts coef without a new allocation.
func backwardSweep(g *graph.Graph, s int32, ws *workspace, sink scoreSink) {
	sigma, delta := ws.sigma, ws.delta
	coef := ws.sigTot
	for li := len(ws.levelStart) - 1; li >= 0; li-- {
		lo := ws.levelStart[li]
		hi := len(ws.order)
		if li+1 < len(ws.levelStart) {
			hi = ws.levelStart[li+1]
		}
		lvl := ws.order[lo:hi]
		for _, v := range lvl {
			var dsum float64
			for _, w := range g.NeighborsInto(&ws.nbuf, v) {
				dsum += coef[w]
			}
			dsum *= sigma[v]
			delta[v] = dsum
			if v != s {
				sink.add(v, dsum)
			}
		}
		// Publish this level's coefficients only now: during the pass
		// above, same-level neighbors must still read coef == 0.
		for _, v := range lvl {
			coef[v] = (1 + delta[v]) / sigma[v]
		}
	}
}

// brandesSourceFine is the fine-grained variant: each level's sigma and
// delta sweeps run as guided-scheduled parallel pull loops (no atomics
// needed because each vertex writes only its own entry — including its
// score-sink entry, so striped accumulation stays race-free here too). It
// exists for the parallelism ablation; coarse source-level parallelism
// usually wins when many sources are in flight.
func brandesSourceFine(g *graph.Graph, s int32, ws *workspace, sink scoreSink) {
	defer ws.reset()
	dist, sigma, delta := ws.dist, ws.sigma, ws.delta
	dist[s] = 0
	sigma[s] = 1
	ws.order = append(ws.order, s)
	ws.levelStart = append(ws.levelStart, 0)
	frontier := ws.order[0:1]
	for len(frontier) > 0 {
		frontierEnd := len(ws.order)
		// Discovery: parallel claim of next level.
		next := discoverLevel(g, frontier, dist)
		ws.order = append(ws.order, next...)
		if len(next) == 0 {
			break
		}
		ws.levelStart = append(ws.levelStart, frontierEnd)
		// Sigma: pull from predecessors, parallel and race-free. Guided
		// scheduling keeps a worker that drew a run of hubs from
		// stranding the level's tail.
		// NeighborIter rather than a decode buffer: the guided-parallel
		// chunks share the workspace, so a common buffer would race.
		par.ForGuided(len(next), 128, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := next[i]
				dv := dist[v]
				var sv float64
				for it := g.NeighborIter(v); ; {
					u, ok := it.Next()
					if !ok {
						break
					}
					if dist[u] == dv-1 {
						sv += sigma[u]
					}
				}
				sigma[v] = sv
			}
		})
		frontier = ws.order[frontierEnd:]
	}
	// Delta: pull from successors level by level, deepest first, through
	// the same two-pass coef[w] = (1+delta[w])/sigma[w] materialization
	// as backwardSweep (identical arithmetic, so the two strategies stay
	// bit-identical): the delta pass reads only deeper levels' published
	// coefficients, then a second barrier-separated pass publishes this
	// level's — which also keeps the parallel loops race-free.
	coef := ws.sigTot
	for li := len(ws.levelStart) - 1; li >= 0; li-- {
		lo := ws.levelStart[li]
		hi := len(ws.order)
		if li+1 < len(ws.levelStart) {
			hi = ws.levelStart[li+1]
		}
		lvl := ws.order[lo:hi]
		par.ForGuided(len(lvl), 128, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := lvl[i]
				var dsum float64
				for it := g.NeighborIter(v); ; {
					w, ok := it.Next()
					if !ok {
						break
					}
					dsum += coef[w]
				}
				dsum *= sigma[v]
				delta[v] = dsum
				if v != s {
					sink.add(v, dsum)
				}
			}
		})
		par.ForGuided(len(lvl), 512, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := lvl[i]
				coef[v] = (1 + delta[v]) / sigma[v]
			}
		})
	}
}

func discoverLevel(g *graph.Graph, frontier []int32, dist []int32) []int32 {
	workers := par.Workers()
	buffers := make([][]int32, workers)
	par.ForEachWorker(func(w, workers int) {
		var buf []int32
		for i := w; i < len(frontier); i += workers {
			u := frontier[i]
			du := dist[u]
			for it := g.NeighborIter(u); ; {
				v, ok := it.Next()
				if !ok {
					break
				}
				if atomic.LoadInt32(&dist[v]) == -1 && par.CASInt32(&dist[v], -1, du+1) {
					buf = append(buf, v)
				}
			}
		}
		buffers[w] = buf
	})
	var next []int32
	for _, b := range buffers {
		next = append(next, b...)
	}
	return next
}
