package bc

import (
	"math"
	"sort"

	"graphct/internal/graph"
)

// ConfidenceResult quantifies the run-to-run variability of sampled
// betweenness centrality — the paper's closing open problem:
// "quantifying significance and confidence of approximations over noisy
// graph data". Scores are estimated over independent source draws
// (realizations); per-vertex means and standard deviations summarize
// score stability, and the top-k sets' pairwise Jaccard similarity
// summarizes ranking stability.
type ConfidenceResult struct {
	Mean         []float64 // per-vertex mean sampled score
	Std          []float64 // per-vertex standard deviation across realizations
	Realizations int
	TopKJaccard  float64 // mean pairwise Jaccard similarity of top-k sets
	TopKStable   []int32 // vertices in the top k of every realization
}

// EstimateWithConfidence runs `realizations` independent sampled-BC
// estimates (each with its own source draw) and aggregates them. topK
// controls the ranking-stability statistics; realizations < 2 is raised
// to 2.
func EstimateWithConfidence(g *graph.Graph, opt Options, realizations, topK int) *ConfidenceResult {
	if realizations < 2 {
		realizations = 2
	}
	n := g.NumVertices()
	if topK > n {
		topK = n
	}
	mean := make([]float64, n)
	m2 := make([]float64, n) // Welford accumulator
	tops := make([][]int32, realizations)
	for r := 0; r < realizations; r++ {
		runOpt := opt
		// Each realization gets a fully mixed derived seed: the old
		// additive offset (seed + r·0x9E37) let realizations of related
		// base seeds alias each other's source draws.
		runOpt.Seed = deriveSeed(opt.Seed, int64(r))
		res := Centrality(g, runOpt)
		for v, s := range res.Scores {
			delta := s - mean[v]
			mean[v] += delta / float64(r+1)
			m2[v] += delta * (s - mean[v])
		}
		tops[r] = res.TopK(topK)
	}
	std := make([]float64, n)
	for v := range std {
		std[v] = math.Sqrt(m2[v] / float64(realizations-1))
	}
	return &ConfidenceResult{
		Mean:         mean,
		Std:          std,
		Realizations: realizations,
		TopKJaccard:  meanPairwiseJaccard(tops),
		TopKStable:   intersectAll(tops),
	}
}

// CoefficientOfVariation returns std/mean for the top `k` vertices by
// mean score — a compact "how trustworthy are the headline ranks"
// statistic. Vertices with zero mean are skipped.
func (c *ConfidenceResult) CoefficientOfVariation(k int) float64 {
	idx := make([]int32, len(c.Mean))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if c.Mean[idx[a]] != c.Mean[idx[b]] {
			return c.Mean[idx[a]] > c.Mean[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	var sum float64
	used := 0
	for _, v := range idx[:k] {
		if c.Mean[v] > 0 {
			sum += c.Std[v] / c.Mean[v]
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return sum / float64(used)
}

func meanPairwiseJaccard(sets [][]int32) float64 {
	if len(sets) < 2 {
		return 1
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			sum += jaccard(sets[i], sets[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

func jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[int32]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	inter := 0
	for _, v := range b {
		if inA[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func intersectAll(sets [][]int32) []int32 {
	if len(sets) == 0 {
		return nil
	}
	count := make(map[int32]int)
	for _, set := range sets {
		for _, v := range set {
			count[v]++
		}
	}
	var out []int32
	for v, c := range count {
		if c == len(sets) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
