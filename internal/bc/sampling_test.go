package bc

import (
	"testing"
	"testing/quick"

	"graphct/internal/cc"
	"graphct/internal/gen"
)

func TestStratifiedCoversComponents(t *testing.T) {
	// Three components of sizes 60, 30, 10: a 10-source stratified draw
	// must allocate ~6/3/1 and never skip a component entirely.
	g := gen.Disjoint(gen.ErdosRenyi(60, 150, 1), gen.Ring(30), gen.Path(10))
	comps := cc.Components(g)
	srcs := sampleWithStrategy(g, 10, 7, SampleStratified)
	if len(srcs) != 10 {
		t.Fatalf("sources = %d", len(srcs))
	}
	perComp := map[int32]int{}
	seen := map[int32]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[s] = true
		perComp[comps.Colors[s]]++
	}
	if len(perComp) != 3 {
		t.Fatalf("only %d components sampled: %v", len(perComp), perComp)
	}
	if perComp[comps.Colors[0]] < 4 {
		t.Fatalf("large component undersampled: %v", perComp)
	}
}

func TestStratifiedManySingletons(t *testing.T) {
	// 5-vertex ring plus 95 singletons: allocation must still emit the
	// requested number of in-range, distinct sources.
	g := gen.Disjoint(gen.Ring(5), gen.Star(1))
	for i := 0; i < 94; i++ {
		g = gen.Disjoint(g, gen.Star(1))
	}
	srcs := sampleWithStrategy(g, 20, 3, SampleStratified)
	if len(srcs) != 20 {
		t.Fatalf("sources = %d", len(srcs))
	}
	seen := map[int32]bool{}
	for _, s := range srcs {
		if s < 0 || int(s) >= g.NumVertices() || seen[s] {
			t.Fatalf("bad source set %v", srcs)
		}
		seen[s] = true
	}
}

func TestDegreeBiasedPrefersHubs(t *testing.T) {
	// Star(200): the hub should essentially always be drawn.
	g := gen.Star(200)
	hits := 0
	for seed := int64(0); seed < 20; seed++ {
		srcs := sampleWithStrategy(g, 5, seed, SampleDegreeBiased)
		if len(srcs) != 5 {
			t.Fatalf("sources = %d", len(srcs))
		}
		for _, s := range srcs {
			if s == 0 {
				hits++
				break
			}
		}
	}
	if hits < 18 {
		t.Fatalf("hub drawn in only %d/20 trials", hits)
	}
}

func TestStrategiesFallBackToExact(t *testing.T) {
	g := gen.Ring(10)
	for _, st := range []Sampling{SampleUniform, SampleStratified, SampleDegreeBiased} {
		srcs := sampleWithStrategy(g, 0, 1, st)
		if len(srcs) != 10 {
			t.Fatalf("strategy %d: exact fallback gave %d sources", st, len(srcs))
		}
	}
}

func TestStratifiedScoresStillEstimate(t *testing.T) {
	// On a connected vertex-transitive graph stratified == uniform in
	// effect; full sampling recovers exact scores under any strategy.
	g := gen.ErdosRenyi(40, 120, 9)
	exact := Exact(g).Scores
	for _, st := range []Sampling{SampleStratified, SampleDegreeBiased} {
		full := Centrality(g, Options{Samples: 40, Strategy: st}).Scores
		for v := range exact {
			if !approxEq(exact[v], full[v]) {
				t.Fatalf("strategy %d full sampling differs at %d", st, v)
			}
		}
	}
}

// Property: every strategy returns the requested number of distinct
// in-range sources.
func TestPropertyStrategiesWellFormed(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		g := gen.ErdosRenyi(50, 40, seed) // sparse: many components
		samples := int(sRaw)%49 + 1
		for _, st := range []Sampling{SampleUniform, SampleStratified, SampleDegreeBiased} {
			srcs := sampleWithStrategy(g, samples, seed, st)
			if len(srcs) != samples {
				return false
			}
			seen := map[int32]bool{}
			for _, s := range srcs {
				if s < 0 || int(s) >= 50 || seen[s] {
					return false
				}
				seen[s] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Stratified sampling should reach vertices in components uniform sampling
// can miss: with 2 samples on a graph whose second component is tiny,
// stratified still gives the big component both samples only when
// proportional allocation says so.
func TestStratifiedProportionality(t *testing.T) {
	g := gen.Disjoint(gen.Ring(90), gen.Ring(10))
	comps := cc.Components(g)
	srcs := sampleWithStrategy(g, 10, 5, SampleStratified)
	big, small := 0, 0
	for _, s := range srcs {
		if comps.Colors[s] == comps.Colors[0] {
			big++
		} else {
			small++
		}
	}
	if big != 9 || small != 1 {
		t.Fatalf("allocation big=%d small=%d, want 9/1", big, small)
	}
}
