// Package rank compares vertex rankings, implementing the paper's accuracy
// metric for approximate betweenness centrality: the normalized top-N% set
// Hamming distance between the actors ranked by exact and approximate
// scores (after Fagin et al.'s top-k list comparison).
package rank

import (
	"math"
	"sort"
)

// Top returns the indices of the k highest scores, descending, ties broken
// by ascending index so rankings are deterministic.
func Top(scores []float64, k int) []int32 {
	n := len(scores)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// TopFraction returns the top ceil(frac*n) indices by score.
func TopFraction(scores []float64, frac float64) []int32 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	k := int(math.Ceil(frac * float64(len(scores))))
	return Top(scores, k)
}

// Overlap returns |A ∩ B| / k for two top-k sets of equal length k: the
// "percent of top k actors present in both exact and approximate BC
// rankings" of the paper's Fig. 5. Empty sets overlap fully.
func Overlap(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	k := len(a)
	if len(b) > k {
		k = len(b)
	}
	inA := make(map[int32]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	common := 0
	for _, v := range b {
		if inA[v] {
			common++
		}
	}
	return float64(common) / float64(k)
}

// NormalizedHamming returns the normalized set Hamming distance between two
// top-k sets: |A △ B| / (|A| + |B|), which is 0 for identical sets and 1
// for disjoint ones. With |A| = |B| it equals 1 − Overlap.
func NormalizedHamming(a, b []int32) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	inA := make(map[int32]bool, len(a))
	for _, v := range a {
		inA[v] = true
	}
	inB := make(map[int32]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	diff := 0
	for v := range inA {
		if !inB[v] {
			diff++
		}
	}
	for v := range inB {
		if !inA[v] {
			diff++
		}
	}
	return float64(diff) / float64(len(a)+len(b))
}

// TopAccuracy compares approximate scores against exact scores at the given
// top fraction, returning the Fig. 5 overlap metric.
func TopAccuracy(exact, approx []float64, frac float64) float64 {
	return Overlap(TopFraction(exact, frac), TopFraction(approx, frac))
}

// Spearman returns the Spearman rank correlation between two score vectors
// of equal length — a whole-ranking complement to the top-k set metrics.
// It returns 0 for vectors shorter than 2.
func Spearman(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks assigns average ranks (1-based) with ties sharing the mean rank.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			r[idx[t]] = avg
		}
		i = j + 1
	}
	return r
}
