package blob

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotLoad drives the durable-snapshot decoder with arbitrary
// bytes: whatever a crashed or bit-rotted disk hands recovery, decoding
// must either produce a validated snapshot or fail cleanly with
// ErrCorrupt-class errors — never panic, never return a graph that fails
// its own invariants. Both layers are exercised: the CRC object frame
// (DecodeFramedSnapshot, the fs-store read path) and the bare snapshot
// envelope (DecodeSnapshot, what sits under the frame).
func FuzzSnapshotLoad(f *testing.F) {
	framed, err := EncodeSnapshot(Snapshot{Epoch: 3, LastTime: 99, Graph: ringGraph(6)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeFrame(framed))            // intact object
	f.Add(framed)                         // envelope without the frame
	f.Add(encodeFrame(framed)[:11])       // torn mid-header
	f.Add(encodeFrame(framed)[:30])       // torn mid-payload
	f.Add([]byte{})                       // empty file
	f.Add([]byte("GCTO"))                 // magic fragment
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // noise
	corrupted := append([]byte(nil), encodeFrame(framed)...)
	corrupted[len(corrupted)-3] ^= 0x40
	f.Add(corrupted) // CRC mismatch

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeFramedSnapshot(data); err == nil {
			if s.Graph == nil {
				t.Fatalf("framed decode succeeded with nil graph")
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("framed decode failed without ErrCorrupt: %v", err)
		}
		if s, err := DecodeSnapshot(data); err == nil {
			if s.Graph == nil {
				t.Fatalf("decode succeeded with nil graph")
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode failed without ErrCorrupt: %v", err)
		}
	})
}
