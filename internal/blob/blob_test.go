package blob

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphct/internal/failpoint"
	"graphct/internal/graph"
)

func TestFSRoundTrip(t *testing.T) {
	fs := NewFS(t.TempDir())
	key := "g/epoch-00000000000000000007.snap"
	payload := []byte("hello durable world")
	if err := fs.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := fs.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
}

func TestFSGetMissing(t *testing.T) {
	fs := NewFS(t.TempDir())
	if _, err := fs.Get("nope/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := fs.Delete("nope/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
}

func TestFSListSortedWithPrefix(t *testing.T) {
	fs := NewFS(t.TempDir())
	for _, key := range []string{"b/2", "a/1", "b/1", "c"} {
		if err := fs.Put(key, []byte(key)); err != nil {
			t.Fatalf("Put %q: %v", key, err)
		}
	}
	all, err := fs.List("")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"a/1", "b/1", "b/2", "c"}
	if len(all) != len(want) {
		t.Fatalf("List = %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("List = %v, want %v", all, want)
		}
	}
	bs, err := fs.List("b/")
	if err != nil {
		t.Fatalf("List(b/): %v", err)
	}
	if len(bs) != 2 || bs[0] != "b/1" || bs[1] != "b/2" {
		t.Fatalf("List(b/) = %v, want [b/1 b/2]", bs)
	}
}

func TestFSListMissingRoot(t *testing.T) {
	fs := NewFS(filepath.Join(t.TempDir(), "never-created"))
	keys, err := fs.List("")
	if err != nil || len(keys) != 0 {
		t.Fatalf("List on missing root = %v, %v; want empty, nil", keys, err)
	}
}

func TestFSDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(dir)
	key := "g/obj"
	if err := fs.Put(key, []byte("payload payload payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	raw[len(raw)-1] ^= 0xff // flip a payload bit under the CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := fs.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get corrupted = %v, want ErrCorrupt", err)
	}
	// Truncation is also corruption, not a crash.
	if err := os.WriteFile(path, raw[:7], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := fs.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get truncated = %v, want ErrCorrupt", err)
	}
}

func TestValidateKey(t *testing.T) {
	for _, key := range []string{"a", "a/b", "g/epoch-1.snap", "dot.dot/x-y_z"} {
		if err := ValidateKey(key); err != nil {
			t.Errorf("ValidateKey(%q) = %v, want nil", key, err)
		}
	}
	for _, key := range []string{"", "/a", "a/", "a//b", "..", "a/../b", ".", "a/.", "a\\b", "a\x00b"} {
		if err := ValidateKey(key); err == nil {
			t.Errorf("ValidateKey(%q) = nil, want error", key)
		}
	}
	fs := NewFS(t.TempDir())
	if err := fs.Put("../escape", []byte("x")); err == nil {
		t.Fatalf("Put with traversal key succeeded")
	}
}

func TestFSPutFailpoint(t *testing.T) {
	defer failpoint.Default.DisarmAll()
	if err := failpoint.Default.Arm("blob.put=error(boom)"); err != nil {
		t.Fatalf("arm: %v", err)
	}
	fs := NewFS(t.TempDir())
	err := fs.Put("g/x", []byte("x"))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Put under failpoint = %v, want injected error", err)
	}
	failpoint.Default.DisarmAll()
	if _, err := fs.Get("g/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed Put left an object behind: %v", err)
	}
}

func ringGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: int32(i), V: int32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges, graph.Options{})
	if err != nil {
		panic(err)
	}
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := ringGraph(12)
	s := Snapshot{Epoch: 42, LastTime: 1234567, Graph: g}
	data, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Epoch != 42 || got.LastTime != 1234567 {
		t.Fatalf("roundtrip header = (%d,%d), want (42,1234567)", got.Epoch, got.LastTime)
	}
	if got.Graph.NumVertices() != g.NumVertices() || got.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip graph = %d/%d, want %d/%d",
			got.Graph.NumVertices(), got.Graph.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "g.snap")
	s := Snapshot{Epoch: 7, LastTime: -1, Graph: ringGraph(5)}
	if err := WriteSnapshotFile(path, s); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if got.Epoch != 7 || got.Graph.NumVertices() != 5 {
		t.Fatalf("roundtrip = epoch %d over %d vertices, want 7 over 5", got.Epoch, got.Graph.NumVertices())
	}
}

// TestSnapshotFileMatchesStoreObject pins the compatibility contract:
// WriteSnapshotFile emits the exact bytes the fs store holds for the same
// snapshot, so graphct's "read snapshot" works on a daemon's data dir.
func TestSnapshotFileMatchesStoreObject(t *testing.T) {
	dir := t.TempDir()
	s := Snapshot{Epoch: 9, LastTime: 5, Graph: ringGraph(8)}
	data, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	fs := NewFS(filepath.Join(dir, "blobs"))
	if err := fs.Put("g/e.snap", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	file := filepath.Join(dir, "direct.snap")
	if err := WriteSnapshotFile(file, s); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	a, err := os.ReadFile(filepath.Join(dir, "blobs", "g", "e.snap"))
	if err != nil {
		t.Fatalf("read store object: %v", err)
	}
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read snapshot file: %v", err)
	}
	if string(a) != string(b) {
		t.Fatalf("store object and snapshot file bytes differ (%d vs %d bytes)", len(a), len(b))
	}
	if _, err := ReadSnapshotFile(filepath.Join(dir, "blobs", "g", "e.snap")); err != nil {
		t.Fatalf("ReadSnapshotFile on store object: %v", err)
	}
}
