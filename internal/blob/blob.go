// Package blob provides the durability substrate for graphctd: a small
// Store interface over opaque keys plus the on-disk object and snapshot
// framing every durable artifact shares. The filesystem implementation
// (fs.go) commits objects with write-to-temp + fsync + atomic rename and
// wraps every payload in a CRC32C frame, so a half-written or bit-rotted
// object is detected at read time instead of silently recovering garbage.
// The interface is deliberately minimal — Put/Get/List/Delete over flat
// keys — so an object-store backend (S3-style, keyed uploads) can slot in
// behind the same call sites later.
package blob

import (
	"errors"
	"fmt"
	"strings"
)

// Store is a durable key/value object store. Keys are opaque
// slash-separated paths ("name/epoch-000....snap"); values are immutable
// once written (Put over an existing key replaces it atomically).
type Store interface {
	// Put durably stores data under key, replacing any previous object.
	// When Put returns nil the object survives a crash.
	Put(key string, data []byte) error
	// Get returns the object stored under key, verifying integrity.
	// A missing key returns ErrNotFound; a damaged object ErrCorrupt.
	Get(key string) ([]byte, error)
	// List returns all keys with the given prefix in lexicographic order
	// ("" lists everything).
	List(prefix string) ([]string, error)
	// Delete removes the object under key; missing keys return ErrNotFound.
	Delete(key string) error
}

// ErrNotFound reports a Get or Delete of a key with no object.
var ErrNotFound = errors.New("blob: object not found")

// ErrCorrupt reports an object that exists but fails its integrity frame
// (bad magic, truncated payload, CRC mismatch).
var ErrCorrupt = errors.New("blob: corrupt object")

// ValidateKey rejects keys that cannot map safely onto a filesystem path:
// empty keys, absolute paths, path traversal, and segments with reserved
// characters. Stores call it on every operation so hostile graph names
// cannot escape the store root.
func ValidateKey(key string) error {
	if key == "" {
		return fmt.Errorf("blob: empty key")
	}
	if strings.ContainsAny(key, "\\\x00") {
		return fmt.Errorf("blob: key %q contains reserved characters", key)
	}
	for _, seg := range strings.Split(key, "/") {
		switch seg {
		case "", ".", "..":
			return fmt.Errorf("blob: key %q has unsafe path segment", key)
		}
	}
	return nil
}
