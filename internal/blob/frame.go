package blob

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Object frame — the integrity envelope around every stored payload:
//
//	magic   "GCTO"
//	version 0x01
//	length  uint64 payload bytes
//	crc32c  uint32 Castagnoli checksum of the payload
//	payload
//
// All fields little-endian. The frame makes torn and bit-rotted objects
// detectable: Get fails with ErrCorrupt instead of handing back garbage.

var frameMagic = [5]byte{'G', 'C', 'T', 'O', 1}

const frameHeaderLen = len(frameMagic) + 8 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame wraps payload in the object frame.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload))
	copy(out, frameMagic[:])
	binary.LittleEndian.PutUint64(out[5:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[13:], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeaderLen:], payload)
	return out
}

// decodeFrame verifies the object frame and returns the payload. Every
// malformation — short header, bad magic, length mismatch, checksum
// mismatch — wraps ErrCorrupt; decodeFrame never panics on hostile input.
func decodeFrame(data []byte) ([]byte, error) {
	if len(data) < frameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, frame header needs %d", ErrCorrupt, len(data), frameHeaderLen)
	}
	if [5]byte(data[:5]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:5])
	}
	length := binary.LittleEndian.Uint64(data[5:])
	if length != uint64(len(data)-frameHeaderLen) {
		return nil, fmt.Errorf("%w: frame declares %d payload bytes, has %d", ErrCorrupt, length, len(data)-frameHeaderLen)
	}
	payload := data[frameHeaderLen:]
	if want := binary.LittleEndian.Uint32(data[13:]); crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: crc32c mismatch", ErrCorrupt)
	}
	return payload, nil
}

// atomicWriteFile durably commits data to path: write to a temp file in
// the same directory, fsync it, rename over the destination, fsync the
// directory. A crash at any point leaves either the old object or the new
// one, never a torn mix.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
