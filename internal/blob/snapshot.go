package blob

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"graphct/internal/dimacs"
	"graphct/internal/graph"
)

// Durable snapshot format — one epoch of a live graph, the unit the blob
// store persists and warm restarts recover from:
//
//	magic    "GCTS"
//	version  0x01
//	epoch    uint64 the daemon epoch that published it (0 from the CLI)
//	lastTime int64  timestamp of the newest update the snapshot includes
//	payload  the existing binary CSR format (dimacs.WriteBinary, "GCTB")
//
// All fields little-endian. On disk a snapshot is wrapped in the object
// frame (frame.go), so files written by WriteSnapshotFile are
// byte-identical to objects the filesystem store commits — graphct's
// "read snapshot" works directly on the daemon's data directory.

var snapMagic = [5]byte{'G', 'C', 'T', 'S', 1}

const snapHeaderLen = len(snapMagic) + 8 + 8

// Snapshot is one decoded durable epoch.
type Snapshot struct {
	Epoch    uint64
	LastTime int64
	Graph    *graph.Graph
}

// EncodeSnapshot serializes s into the (unframed) snapshot envelope;
// stores add the object frame on Put.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(snapMagic[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], s.Epoch)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.LastTime))
	buf.Write(hdr[:])
	if err := dimacs.WriteBinary(&buf, s.Graph); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses an unframed snapshot envelope, validating the CSR
// invariants of the embedded graph. Malformed input — wrong magic,
// truncation anywhere, CSR violations — returns an error wrapping
// ErrCorrupt; DecodeSnapshot never panics on hostile bytes.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	if len(data) < snapHeaderLen {
		return Snapshot{}, fmt.Errorf("%w: %d bytes, snapshot header needs %d", ErrCorrupt, len(data), snapHeaderLen)
	}
	if [5]byte(data[:5]) != snapMagic {
		return Snapshot{}, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, data[:5])
	}
	s := Snapshot{
		Epoch:    binary.LittleEndian.Uint64(data[5:]),
		LastTime: int64(binary.LittleEndian.Uint64(data[13:])),
	}
	g, err := dimacs.ReadBinary(bytes.NewReader(data[snapHeaderLen:]))
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Graph = g
	return s, nil
}

// DecodeFramedSnapshot decodes a snapshot wrapped in the object frame —
// the byte form stored by the filesystem store and WriteSnapshotFile.
func DecodeFramedSnapshot(data []byte) (Snapshot, error) {
	payload, err := decodeFrame(data)
	if err != nil {
		return Snapshot{}, err
	}
	return DecodeSnapshot(payload)
}

// WriteSnapshotFile durably writes s to path in the framed snapshot
// format (atomic rename + fsync, like a store Put).
func WriteSnapshotFile(path string, s Snapshot) error {
	payload, err := EncodeSnapshot(s)
	if err != nil {
		return err
	}
	return atomicWriteFile(path, encodeFrame(payload))
}

// ReadSnapshotFile reads a framed snapshot from path.
func ReadSnapshotFile(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	s, err := DecodeFramedSnapshot(data)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
