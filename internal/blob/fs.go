package blob

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"graphct/internal/failpoint"
)

// FS is the filesystem Store: keys map to files under a root directory,
// every object is CRC32C-framed, and Put commits with write-to-temp +
// fsync + atomic rename so a crash never leaves a torn object under a
// live key.
type FS struct {
	root string
}

// NewFS returns a store rooted at dir. The directory is created lazily on
// the first Put, so constructing a store is infallible and read paths
// over a missing root simply see no objects.
func NewFS(dir string) *FS { return &FS{root: dir} }

// Root returns the store's root directory.
func (s *FS) Root() string { return s.root }

func (s *FS) path(key string) string {
	return filepath.Join(s.root, filepath.FromSlash(key))
}

// Put implements Store. The blob.put failpoint fires before any I/O, so
// an injected failure leaves both the store and the filesystem unchanged.
func (s *FS) Put(key string, data []byte) error {
	if err := failpoint.Eval(failpoint.BlobPut); err != nil {
		return err
	}
	if err := ValidateKey(key); err != nil {
		return err
	}
	return atomicWriteFile(s.path(key), encodeFrame(data))
}

// Get implements Store.
func (s *FS) Get(key string) ([]byte, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, err
	}
	payload, err := decodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	return payload, nil
}

// List implements Store. Temp files from in-flight Puts are skipped, so a
// crashed commit never surfaces as a key.
func (s *FS) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) && path == s.root {
				return nil // no root yet: empty store
			}
			return err
		}
		if d.IsDir() || strings.Contains(d.Name(), ".tmp-") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *FS) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	if err := os.Remove(s.path(key)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return err
	}
	return nil
}
