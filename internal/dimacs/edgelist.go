package dimacs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// Edge-list ("SNAP") format support: one "u v" pair per line with
// 0-based integer ids, '#' comment lines. This is how large public
// social graphs — including the Kwak et al. Twitter follower graph the
// paper benchmarks — are distributed.

// EdgeListOptions controls edge-list ingest.
type EdgeListOptions struct {
	// Directed keeps arcs as written; default symmetrizes.
	Directed bool
	// NumVertices fixes the vertex count; <= 0 sizes the graph to the
	// largest id seen.
	NumVertices int
	// MaxVertices rejects inputs referencing vertex ids at or beyond the
	// limit, guarding against hostile lines demanding enormous
	// allocations. <= 0 means unlimited (trusted input).
	MaxVertices int
}

// ParseEdgeList reads an edge-list graph from r, parsing in parallel like
// the DIMACS path.
func ParseEdgeList(r io.Reader, opt EdgeListOptions) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("edgelist: read: %w", err)
	}
	return ParseEdgeListBytes(data, opt)
}

// ParseEdgeListFile reads the edge-list file at path.
func ParseEdgeListFile(path string, opt EdgeListOptions) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("edgelist: %w", err)
	}
	return ParseEdgeListBytes(data, opt)
}

// ParseEdgeListBytes parses an in-memory edge list in parallel.
func ParseEdgeListBytes(data []byte, opt EdgeListOptions) (*graph.Graph, error) {
	chunks := splitLines(data, 4*par.Workers())
	type partial struct {
		edges []graph.Edge
		max   int32
		err   error
	}
	parts := make([]partial, len(chunks))
	par.For(len(chunks), func(i int) {
		parts[i].edges, parts[i].max, parts[i].err = parseEdgeChunk(chunks[i])
	})
	var total int
	max := int32(-1)
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
		total += len(parts[i].edges)
		if parts[i].max > max {
			max = parts[i].max
		}
	}
	n := opt.NumVertices
	if n <= 0 {
		n = int(max) + 1
	}
	if opt.MaxVertices > 0 && n > opt.MaxVertices {
		return nil, fmt.Errorf("edgelist: %d vertices exceeds limit %d", n, opt.MaxVertices)
	}
	edges := make([]graph.Edge, 0, total)
	for i := range parts {
		edges = append(edges, parts[i].edges...)
	}
	return graph.FromEdges(n, edges, graph.Options{Directed: opt.Directed})
}

func parseEdgeChunk(chunk []byte) ([]graph.Edge, int32, error) {
	var edges []graph.Edge
	max := int32(-1)
	for len(chunk) > 0 {
		line := chunk
		if idx := bytes.IndexByte(chunk, '\n'); idx >= 0 {
			line = chunk[:idx]
			chunk = chunk[idx+1:]
		} else {
			chunk = nil
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 || fields[0][0] == '#' {
			continue
		}
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("edgelist: malformed line %q", line)
		}
		u, err := strconv.ParseInt(string(fields[0]), 10, 32)
		if err != nil || u < 0 {
			return nil, 0, fmt.Errorf("edgelist: bad source in %q", line)
		}
		v, err := strconv.ParseInt(string(fields[1]), 10, 32)
		if err != nil || v < 0 {
			return nil, 0, fmt.Errorf("edgelist: bad target in %q", line)
		}
		if int32(u) > max {
			max = int32(u)
		}
		if int32(v) > max {
			max = int32(v)
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	}
	return edges, max, nil
}

// WriteEdgeList emits g as an edge list; undirected edges are written
// once (u <= v).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graphct edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if !g.Directed() && u < int32(v) {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
