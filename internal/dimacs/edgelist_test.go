package dimacs

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
)

func TestParseEdgeListBasic(t *testing.T) {
	src := "# comment\n0 1\n1 2\n\n2 0\n"
	g, err := ParseEdgeList(strings.NewReader(src), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("symmetrization missing")
	}
}

func TestParseEdgeListDirected(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("0 1\n1 2\n"), EdgeListOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumArcs() != 2 || g.HasEdge(1, 0) {
		t.Fatalf("directed parse = %v", g)
	}
}

func TestParseEdgeListFixedVertexCount(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("0 1\n"), EdgeListOptions{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g.NumVertices())
	}
	// Fixed count smaller than ids -> range error from the builder.
	if _, err := ParseEdgeList(strings.NewReader("0 9\n"), EdgeListOptions{NumVertices: 5}); err == nil {
		t.Fatal("oversize id accepted")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, src := range []string{"0\n", "a 1\n", "0 b\n", "-1 2\n", "0 -2\n"} {
		if _, err := ParseEdgeList(strings.NewReader(src), EdgeListOptions{}); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseEdgeListEmpty(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("# nothing\n"), EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 {
		t.Fatalf("empty list gave %d vertices", g.NumVertices())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 9)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEdgeList(&buf, EdgeListOptions{NumVertices: 40})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d != %d", back.NumEdges(), g.NumEdges())
	}
	for v := 0; v < 40; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if !back.HasEdge(int32(v), w) {
				t.Fatalf("lost edge %d-%d", v, w)
			}
		}
	}
}

func TestParseEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := writeFile(path, "0 1\n1 2\n"); err != nil {
		t.Fatal(err)
	}
	g, err := ParseEdgeListFile(path, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatal("file parse wrong")
	}
	if _, err := ParseEdgeListFile(filepath.Join(dir, "missing"), EdgeListOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Property: edge-list round trip preserves the adjacency structure for
// directed graphs too.
func TestPropertyEdgeListDirectedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		base := gen.ErdosRenyi(20, 50, seed)
		// Reinterpret as directed by re-ingesting its arcs.
		var buf bytes.Buffer
		if WriteEdgeList(&buf, base) != nil {
			return false
		}
		d, err := ParseEdgeList(bytes.NewReader(buf.Bytes()), EdgeListOptions{Directed: true, NumVertices: 20})
		if err != nil {
			return false
		}
		return d.NumArcs() == base.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
