package dimacs

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

const sample = `c sample graph
p edge 4 4
e 1 2 5
e 2 3 7
e 3 4 2
e 4 1 9
`

func TestParseBasic(t *testing.T) {
	g, err := Parse(strings.NewReader(sample), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("parsed %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("symmetrization missing")
	}
	if g.Weighted() {
		t.Fatal("weights kept without KeepWeights")
	}
}

func TestParseWeights(t *testing.T) {
	g, err := Parse(strings.NewReader(sample), ParseOptions{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights dropped")
	}
	nbr, wts := g.Neighbors(0), g.Weights(0)
	for i, w := range nbr {
		want := int32(5)
		if w == 3 {
			want = 9
		}
		if wts[i] != want {
			t.Fatalf("weight 0-%d = %d, want %d", w, wts[i], want)
		}
	}
}

func TestParseDirected(t *testing.T) {
	g, err := Parse(strings.NewReader("p sp 3 2\na 1 2 1\na 2 3 1\n"), ParseOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() || g.NumArcs() != 2 {
		t.Fatalf("directed parse = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed graph has reverse arc")
	}
}

func TestParseNoWeightColumn(t *testing.T) {
	g, err := Parse(strings.NewReader("p edge 2 1\ne 1 2\n"), ParseOptions{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weights(0)[0] != 1 {
		t.Fatal("default weight should be 1")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"e 1 2 1\n",                  // edge before header
		"p edge\n",                   // short header
		"p edge x 1\n",               // bad n
		"p edge 2 y\n",               // bad m
		"p edge 2 1\ne 1\n",          // short edge
		"p edge 2 1\ne a 2 1\n",      // bad source
		"p edge 2 1\ne 1 b 1\n",      // bad target
		"p edge 2 1\ne 1 2 w\n",      // bad weight
		"p edge 2 1\ne 0 2 1\n",      // id underflow
		"p edge 2 1\ne 1 3 1\n",      // id overflow
		"p edge 2 1\nz what is this", // unknown line
		"p edge -2 1\n",              // negative n
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), ParseOptions{}); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseMaxVerticesGuard(t *testing.T) {
	src := "p edge 1000000 1\ne 1 2 1\n"
	if _, err := Parse(strings.NewReader(src), ParseOptions{MaxVertices: 100}); err == nil {
		t.Fatal("hostile header accepted")
	}
	if _, err := Parse(strings.NewReader(src), ParseOptions{}); err != nil {
		t.Fatalf("unlimited parse failed: %v", err)
	}
	if _, err := ParseEdgeList(strings.NewReader("0 5000\n"), EdgeListOptions{MaxVertices: 100}); err == nil {
		t.Fatal("hostile edge list accepted")
	}
}

func TestParseBlankLinesAndComments(t *testing.T) {
	src := "c leading\n\np edge 2 1\nc mid\n\ne 1 2 3\nc trailing"
	g, err := Parse(strings.NewReader(src), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestParseNoTrailingNewline(t *testing.T) {
	g, err := Parse(strings.NewReader("p edge 2 1\ne 1 2 3"), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatal("edge on final unterminated line lost")
	}
}

func TestParseLargeParallel(t *testing.T) {
	// Build a large file spanning many parse chunks.
	var sb strings.Builder
	const n = 5000
	sb.WriteString("p edge 5000 4999\n")
	for v := 2; v <= n; v++ {
		sb.WriteString("e ")
		sb.WriteString(strconv.Itoa(v - 1))
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(v))
		sb.WriteString(" 1\n")
	}
	g, err := ParseBytes([]byte(sb.String()), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n || g.NumEdges() != n-1 {
		t.Fatalf("large parse: %v", g)
	}
	for v := 1; v < n-1; v++ {
		if g.Degree(int32(v)) != 2 {
			t.Fatalf("path degree broken at %d", v)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 3)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", back, g)
	}
	for v := 0; v < 50; v++ {
		a, b := g.Neighbors(int32(v)), back.Neighbors(int32(v))
		if len(a) != len(b) {
			t.Fatalf("degree changed at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency changed at %d", v)
			}
		}
	}
}

func TestWriteDirectedRoundTrip(t *testing.T) {
	d, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 0}}, graph.Options{Directed: true})
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, ParseOptions{Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumArcs() != 3 || !back.HasEdge(3, 0) || back.HasEdge(0, 3) {
		t.Fatalf("directed round trip broken: %v", back)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(100, 300, 1),
		gen.Star(5),
		graph.Empty(7, false),
		graph.Empty(0, true),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("graph %d write: %v", i, err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d read: %v", i, err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumArcs() != g.NumArcs() || back.Directed() != g.Directed() {
			t.Fatalf("graph %d shape changed", i)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("graph %d invalid after round trip: %v", i, err)
		}
	}
}

func TestBinaryWeightedRoundTrip(t *testing.T) {
	g, _ := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 42}, {U: 1, V: 2, W: 7}}, graph.Options{})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weighted() || back.Weights(0)[0] != 42 {
		t.Fatal("weights lost in binary round trip")
	}
}

func TestBinaryBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("GCTB"), // truncated after magic
		append([]byte("GCTB"), 9, 0, 0, 0, 0, 0, 0, 0), // bad version
		append([]byte("GCTB"), 1, 0, 0, 0, 0, 0, 0, 0), // truncated sizes
	}
	for i, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g := gen.Ring(12)
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 12 {
		t.Fatal("file round trip changed edges")
	}
	if _, err := LoadBinary(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.dimacs")
	if err := writeFile(path, sample); err != nil {
		t.Fatal(err)
	}
	g, err := ParseFile(path, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatal("ParseFile wrong edges")
	}
	if _, err := ParseFile(filepath.Join(dir, "nope"), ParseOptions{}); err == nil {
		t.Fatal("missing file should error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// Property: DIMACS text round trip preserves the undirected edge set.
func TestPropertyTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 60, seed)
		var buf bytes.Buffer
		if Write(&buf, g) != nil {
			return false
		}
		back, err := Parse(&buf, ParseOptions{})
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < 30; v++ {
			for _, w := range g.Neighbors(int32(v)) {
				if !back.HasEdge(int32(v), w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
