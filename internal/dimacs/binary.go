package dimacs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphct/internal/graph"
)

// Binary CSR format ("save graph ... comp1.bin" in the paper's script):
//
//	magic   [4]byte "GCTB"
//	version uint32  (1)
//	flags   uint32  (bit0 directed, bit1 weighted)
//	n       int64   vertices
//	arcs    int64   stored arcs
//	rowPtr  [n+1]int64
//	adj     [arcs]int32
//	weights [arcs]int32 (when bit1 set)
//
// All fields little-endian.

var binaryMagic = [4]byte{'G', 'C', 'T', 'B'}

const binaryVersion = 1

// WriteBinary serializes g to w in the binary CSR format.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Directed() {
		flags |= 1
	}
	if g.Weighted() {
		flags |= 2
	}
	for _, v := range []uint32{binaryVersion, flags} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.NumArcs()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.RowPtr()); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.AdjArray()); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.WeightArray()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, validating the
// CSR invariants before returning it.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dimacs: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("dimacs: bad magic %q", magic[:])
	}
	var version, flags uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("dimacs: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	var n, arcs int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, err
	}
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("dimacs: negative sizes n=%d arcs=%d", n, arcs)
	}
	const maxReasonable = int64(1) << 40
	if n > maxReasonable || arcs > maxReasonable {
		return nil, fmt.Errorf("dimacs: implausible sizes n=%d arcs=%d", n, arcs)
	}
	// Arrays are read in bounded chunks so a corrupt header claiming a
	// huge graph fails at the first truncated read instead of attempting
	// one enormous allocation.
	rowPtr, err := readInt64s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("dimacs: rowPtr: %w", err)
	}
	adj, err := readInt32s(br, arcs)
	if err != nil {
		return nil, fmt.Errorf("dimacs: adjacency: %w", err)
	}
	var weights []int32
	if flags&2 != 0 {
		weights, err = readInt32s(br, arcs)
		if err != nil {
			return nil, fmt.Errorf("dimacs: weights: %w", err)
		}
	}
	return graph.FromCSR(rowPtr, adj, weights, flags&1 != 0)
}

const readChunk = 1 << 18 // elements per chunked read

func readInt64s(r io.Reader, n int64) ([]int64, error) {
	out := make([]int64, 0, min64(n, readChunk))
	for remaining := n; remaining > 0; {
		c := min64(remaining, readChunk)
		buf := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		remaining -= c
	}
	return out, nil
}

func readInt32s(r io.Reader, n int64) ([]int32, error) {
	out := make([]int32, 0, min64(n, readChunk))
	for remaining := n; remaining > 0; {
		c := min64(remaining, readChunk)
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		remaining -= c
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// SaveBinary writes g to the named file.
func SaveBinary(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from the named file.
func LoadBinary(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
